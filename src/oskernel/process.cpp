#include "oskernel/process.hpp"

#include <algorithm>

namespace ulsocks::os {

Process::FdEntry& Process::entry(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    throw SocketError(SockErr::kInvalid, "bad file descriptor");
  }
  return it->second;
}

int Process::install(FdEntry e) {
  int fd = next_fd_++;
  fds_[fd] = std::move(e);
  return fd;
}

sim::Task<int> Process::open(std::string path, OpenMode mode) {
  OpenFile f = co_await host_.fs().open(std::move(path), mode);
  FdEntry e;
  e.kind = FdEntry::Kind::kFile;
  e.file = std::move(f);
  co_return install(std::move(e));
}

sim::Task<int> Process::socket(SocketApi& stack) {
  int sd = co_await stack.socket();
  FdEntry e;
  e.kind = FdEntry::Kind::kSocket;
  e.api = &stack;
  e.sd = sd;
  co_return install(std::move(e));
}

sim::Task<void> Process::bind(int fd, SockAddr local) {
  auto& e = entry(fd);
  if (e.kind != FdEntry::Kind::kSocket) {
    throw SocketError(SockErr::kInvalid, "bind on non-socket");
  }
  co_await e.api->bind(e.sd, local);
}

sim::Task<void> Process::listen(int fd, int backlog) {
  auto& e = entry(fd);
  if (e.kind != FdEntry::Kind::kSocket) {
    throw SocketError(SockErr::kInvalid, "listen on non-socket");
  }
  co_await e.api->listen(e.sd, backlog);
}

sim::Task<int> Process::accept(int fd, SockAddr* peer) {
  auto& e = entry(fd);
  if (e.kind != FdEntry::Kind::kSocket) {
    throw SocketError(SockErr::kInvalid, "accept on non-socket");
  }
  SocketApi* api = e.api;
  int sd = co_await api->accept(e.sd, peer);
  FdEntry child;
  child.kind = FdEntry::Kind::kSocket;
  child.api = api;
  child.sd = sd;
  co_return install(std::move(child));
}

sim::Task<void> Process::connect(int fd, SockAddr remote) {
  auto& e = entry(fd);
  if (e.kind != FdEntry::Kind::kSocket) {
    throw SocketError(SockErr::kInvalid, "connect on non-socket");
  }
  co_await e.api->connect(e.sd, remote);
}

sim::Task<void> Process::set_option(int fd, SockOpt opt, int value) {
  auto& e = entry(fd);
  if (e.kind != FdEntry::Kind::kSocket) {
    throw SocketError(SockErr::kInvalid, "setsockopt on non-socket");
  }
  co_await e.api->set_option(e.sd, opt, value);
}

sim::Task<int> Process::get_option(int fd, SockOpt opt) {
  auto& e = entry(fd);
  if (e.kind != FdEntry::Kind::kSocket) {
    throw SocketError(SockErr::kInvalid, "getsockopt on non-socket");
  }
  co_return co_await e.api->get_option(e.sd, opt);
}

sim::Task<std::size_t> Process::read(int fd, std::span<std::uint8_t> out) {
  auto& e = entry(fd);
  if (e.kind == FdEntry::Kind::kFile) {
    co_return co_await host_.fs().read(e.file, out);
  }
  co_return co_await e.api->read(e.sd, out);
}

sim::Task<std::size_t> Process::write(int fd,
                                      std::span<const std::uint8_t> in) {
  auto& e = entry(fd);
  if (e.kind == FdEntry::Kind::kFile) {
    co_await host_.fs().write(e.file, in);
    co_return in.size();
  }
  co_return co_await e.api->write(e.sd, in);
}

sim::Task<void> Process::close(int fd) {
  auto& e = entry(fd);
  if (e.kind == FdEntry::Kind::kFile) {
    co_await host_.fs().close(e.file);
  } else {
    co_await e.api->close(e.sd);
  }
  fds_.erase(fd);
}

sim::Task<void> Process::write_all(int fd, std::span<const std::uint8_t> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    done += co_await write(fd, in.subspan(done));
  }
}

sim::Task<void> Process::read_exact(int fd, std::span<std::uint8_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    std::size_t n = co_await read(fd, out.subspan(done));
    if (n == 0) {
      throw SocketError(SockErr::kClosed, "peer closed during read_exact");
    }
    done += n;
  }
}

sim::Task<std::vector<int>> Process::select(std::vector<int> fds) {
  co_await host_.syscall();
  for (;;) {
    std::vector<int> ready;
    SocketApi* single_stack = nullptr;
    bool multiple_stacks = false;
    for (int fd : fds) {
      auto& e = entry(fd);
      if (e.kind == FdEntry::Kind::kFile) {
        ready.push_back(fd);  // regular files never block
        continue;
      }
      if (e.api->readable(e.sd)) ready.push_back(fd);
      if (single_stack == nullptr) {
        single_stack = e.api;
      } else if (single_stack != e.api) {
        multiple_stacks = true;
      }
    }
    if (!ready.empty()) co_return ready;
    if (single_stack != nullptr && !multiple_stacks) {
      co_await single_stack->activity().wait();
    } else {
      // Heterogeneous fd set: poll at scheduler granularity.
      co_await host_.engine().delay(5'000);
    }
  }
}

}  // namespace ulsocks::os
