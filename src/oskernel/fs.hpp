// RAM-disk filesystem model.
//
// The paper's ftp experiment uses RAM disks "to remove the effects of disk
// access and caching"; what remains — and what caps ftp below the socket
// peak — is filesystem overhead.  This model charges a per-call VFS cost
// plus a per-byte cost on the host CPU for every read and write.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace ulsocks::os {

class FsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class OpenMode : std::uint8_t { kRead, kWrite };

struct OpenFile {
  std::string path;
  OpenMode mode = OpenMode::kRead;
  std::size_t offset = 0;
};

class RamDiskFs {
 public:
  RamDiskFs(sim::Engine& eng, const sim::CostModel& model,
            sim::SerialResource& cpu)
      : eng_(&eng), model_(model), cpu_(cpu) {}

  /// Live shard migration: retarget the engine reference (the CPU resource
  /// is rebound by its owner, os::Host).  Barrier-only.
  void rebind(sim::Engine& eng) noexcept { eng_ = &eng; }

  /// Instantly create a file (test/bench fixture setup; charges no time).
  void install(const std::string& path, std::vector<std::uint8_t> data) {
    files_[path] = std::move(data);
  }

  [[nodiscard]] bool exists(const std::string& path) const {
    return files_.count(path) != 0;
  }
  [[nodiscard]] std::size_t size_of(const std::string& path) const {
    auto it = files_.find(path);
    return it == files_.end() ? 0 : it->second.size();
  }
  [[nodiscard]] const std::vector<std::uint8_t>& contents(
      const std::string& path) const {
    auto it = files_.find(path);
    if (it == files_.end()) throw FsError("no such file: " + path);
    return it->second;
  }

  [[nodiscard]] sim::Task<OpenFile> open(std::string path, OpenMode mode) {
    co_await cpu_.use(model_.host.syscall_ns + model_.host.fs_op_ns);
    if (mode == OpenMode::kRead) {
      if (!files_.count(path)) throw FsError("no such file: " + path);
    } else {
      files_[path].clear();  // O_TRUNC semantics
    }
    co_return OpenFile{std::move(path), mode, 0};
  }

  /// Read up to out.size() bytes at the file cursor; returns bytes read
  /// (0 at EOF).
  [[nodiscard]] sim::Task<std::size_t> read(OpenFile& f,
                                            std::span<std::uint8_t> out) {
    auto it = files_.find(f.path);
    if (it == files_.end()) throw FsError("file vanished: " + f.path);
    const auto& data = it->second;
    std::size_t n = 0;
    if (f.offset < data.size()) {
      n = std::min(out.size(), data.size() - f.offset);
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(f.offset), n,
                  out.begin());
    }
    co_await cpu_.use(model_.host.syscall_ns + model_.host.fs_op_ns +
                      sim::copy_ns(n, model_.host.fs_bytes_per_us));
    f.offset += n;
    co_return n;
  }

  [[nodiscard]] sim::Task<void> write(OpenFile& f,
                                      std::span<const std::uint8_t> in) {
    if (f.mode != OpenMode::kWrite) throw FsError("file not open for write");
    auto& data = files_[f.path];
    if (f.offset + in.size() > data.size()) data.resize(f.offset + in.size());
    std::copy(in.begin(), in.end(),
              data.begin() + static_cast<std::ptrdiff_t>(f.offset));
    co_await cpu_.use(model_.host.syscall_ns + model_.host.fs_op_ns +
                      sim::copy_ns(in.size(), model_.host.fs_bytes_per_us));
    f.offset += in.size();
  }

  [[nodiscard]] sim::Task<void> close(OpenFile&) {
    co_await cpu_.use(model_.host.syscall_ns);
  }

  [[nodiscard]] sim::Task<void> remove(const std::string& path) {
    co_await cpu_.use(model_.host.syscall_ns + model_.host.fs_op_ns);
    files_.erase(path);
  }

 private:
  sim::Engine* eng_;
  sim::CostModel model_;
  sim::SerialResource& cpu_;
  std::map<std::string, std::vector<std::uint8_t>> files_;
};

}  // namespace ulsocks::os
