// Process: a per-application file-descriptor table dispatching generic
// read()/write()/close() calls to files or sockets.
//
// This is the simulation analogue of the paper's §5.4 "file descriptor
// tracking": their substrate preloads interceptors for open(), socket(),
// read(), write() and close() and routes each call to libc or to the EMP
// substrate by the descriptor's kind.  Here the same dispatch happens in
// Process, and applications hold only Process fds — they cannot tell which
// stack (kernel TCP or sockets-over-EMP) carries their traffic.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "oskernel/fs.hpp"
#include "oskernel/host.hpp"
#include "oskernel/socket_api.hpp"
#include "sim/task.hpp"

namespace ulsocks::os {

class Process {
 public:
  explicit Process(Host& host) : host_(host) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] Host& host() noexcept { return host_; }

  // ---- files ----
  [[nodiscard]] sim::Task<int> open(std::string path, OpenMode mode);

  // ---- sockets ----
  /// Create a socket on `stack` and install it in the fd table.  Which
  /// stack a program is handed is the *only* difference between its TCP
  /// and EMP runs.
  [[nodiscard]] sim::Task<int> socket(SocketApi& stack);
  [[nodiscard]] sim::Task<void> bind(int fd, SockAddr local);
  [[nodiscard]] sim::Task<void> listen(int fd, int backlog);
  [[nodiscard]] sim::Task<int> accept(int fd, SockAddr* peer = nullptr);
  [[nodiscard]] sim::Task<void> connect(int fd, SockAddr remote);
  [[nodiscard]] sim::Task<void> set_option(int fd, SockOpt opt, int value);
  [[nodiscard]] sim::Task<int> get_option(int fd, SockOpt opt);

  // ---- generic calls (the overloaded name-space of §4.3) ----
  [[nodiscard]] sim::Task<std::size_t> read(int fd,
                                            std::span<std::uint8_t> out);
  [[nodiscard]] sim::Task<std::size_t> write(
      int fd, std::span<const std::uint8_t> in);
  [[nodiscard]] sim::Task<void> close(int fd);

  [[nodiscard]] sim::Task<void> write_all(int fd,
                                          std::span<const std::uint8_t> in);
  [[nodiscard]] sim::Task<void> read_exact(int fd,
                                           std::span<std::uint8_t> out);

  /// Block until at least one of `fds` is readable; returns the readable
  /// subset.  Regular files are always readable (POSIX).
  [[nodiscard]] sim::Task<std::vector<int>> select(std::vector<int> fds);

  [[nodiscard]] std::size_t open_fd_count() const { return fds_.size(); }

 private:
  struct FdEntry {
    enum class Kind { kFile, kSocket } kind = Kind::kFile;
    // socket
    SocketApi* api = nullptr;
    int sd = -1;
    // file
    OpenFile file;
  };

  FdEntry& entry(int fd);
  int install(FdEntry e);

  Host& host_;
  int next_fd_ = 3;  // 0..2 are the traditional stdio fds
  std::map<int, FdEntry> fds_;
};

}  // namespace ulsocks::os
