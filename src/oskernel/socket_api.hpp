// The stack-neutral sockets interface.
//
// Applications in this repository are written once against `SocketApi` and
// run unmodified over the kernel TCP stack (src/tcp) or the sockets-over-EMP
// substrate (src/sockets) — the repo-level restatement of the paper's claim
// that existing sockets applications need no changes.  The fd-kind dispatch
// that the paper implements by pre-loading interceptors for open()/read()/
// write() is implemented here by os::Process's fd table.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/payload_slice.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace ulsocks::os {

/// Network address: (node, port).  Node ids double as EMP node indices and
/// as "IP addresses" for the kernel stack.
struct SockAddr {
  std::uint16_t node = 0;
  std::uint16_t port = 0;
  friend bool operator==(const SockAddr&, const SockAddr&) = default;
};

enum class SockErr : std::uint8_t {
  kInvalid,       // bad fd / bad state for this call
  kInUse,         // bind: address already bound
  kRefused,       // connect: nobody listening
  kClosed,        // peer closed / connection reset
  kTimedOut,
  kNoResources,   // backlog overflow, out of buffers
};

class SocketError : public std::runtime_error {
 public:
  SocketError(SockErr code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] SockErr code() const noexcept { return code_; }

 private:
  SockErr code_;
};

/// Socket options understood by the stacks (each stack ignores options that
/// do not apply to it).
enum class SockOpt : std::uint8_t {
  kSndBuf,        // kernel TCP send-buffer bytes
  kRcvBuf,        // kernel TCP receive-buffer bytes
  kNoDelay,       // disable Nagle (kernel TCP)
  kCredits,       // substrate: credit count N (posts 2N descriptors)
  kDatagram,      // substrate: disable data streaming (paper §6.2), 0/1
};

/// Zero-copy receive view: the stack exposes the received bytes as spans
/// into buffers it owns instead of copying them out.  `parts` (in stream
/// order) stay valid until the next read/read_view call on the same socket
/// or until the view is reset; `keepalive` pins any refcounted payload
/// slices backing the spans, and `scratch` backs the spans for stacks (or
/// A/B modes) that cannot lend their internal buffers.
struct RecvView {
  std::vector<std::span<const std::uint8_t>> parts;
  std::vector<net::PayloadSlice> keepalive;
  std::vector<std::uint8_t> scratch;

  void reset() noexcept {
    parts.clear();
    keepalive.clear();
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& p : parts) n += p.size();
    return n;
  }
};

/// Scratch allocations above this are treated as one-off spikes: the next
/// smaller request releases the memory back to the host allocator instead
/// of keeping the high-water buffer alive for the connection's lifetime.
/// Ring servers hold one RecvView per connection, so an unbounded scratch
/// would multiply a single large read across thousands of connections.
inline constexpr std::size_t kRecvScratchHighWater = 64 * 1024;

/// Size `view.scratch` for a `max_bytes` receive, capping retained growth
/// at kRecvScratchHighWater.  Returns the scratch size in bytes, which the
/// stack reports through note_recv_scratch() (the "host/recv_scratch_hwm"
/// gauge).  Host-side memory management only: no simulated cost, no
/// digest impact.
inline std::size_t ensure_recv_scratch(RecvView& view, std::size_t max_bytes) {
  if (view.scratch.size() < max_bytes) {
    view.scratch.resize(max_bytes);
  } else if (view.scratch.size() > kRecvScratchHighWater &&
             max_bytes <= kRecvScratchHighWater) {
    // Shrink-to-request: drop the spike, keep at most the high-water mark.
    std::vector<std::uint8_t>(std::max(max_bytes, std::size_t{1}))
        .swap(view.scratch);
  }
  return view.scratch.size();
}

/// A blocking BSD-style sockets interface.  All calls are coroutines in
/// simulated time; errors are reported as SocketError.
class SocketApi {
 public:
  virtual ~SocketApi() = default;

  /// Create a socket; returns the stack-local descriptor.
  [[nodiscard]] virtual sim::Task<int> socket() = 0;

  [[nodiscard]] virtual sim::Task<void> bind(int sd, SockAddr local) = 0;
  [[nodiscard]] virtual sim::Task<void> listen(int sd, int backlog) = 0;

  /// Block until a connection request arrives; returns the connected
  /// socket and fills `peer` (may be null) with the requester's address —
  /// the information the paper's "data message exchange" scheme preserves.
  [[nodiscard]] virtual sim::Task<int> accept(int sd, SockAddr* peer) = 0;

  [[nodiscard]] virtual sim::Task<void> connect(int sd, SockAddr remote) = 0;

  /// Read up to out.size() bytes; blocks until at least one byte (stream
  /// semantics) or a full message (datagram semantics) is available.
  /// Returns 0 on orderly peer close.
  [[nodiscard]] virtual sim::Task<std::size_t> read(
      int sd, std::span<std::uint8_t> out) = 0;

  /// Write some prefix of `in`; returns bytes accepted (>= 1 unless `in`
  /// is empty).  May block for buffer space / flow-control credits.
  [[nodiscard]] virtual sim::Task<std::size_t> write(
      int sd, std::span<const std::uint8_t> in) = 0;

  /// readv-style read: like read(), but delivers up to `max_bytes` as
  /// spans in `view` instead of copying into a caller buffer, eliminating
  /// the last host copy for stacks that can lend their receive buffers.
  /// The default implementation reads into `view.scratch` (one copy), so
  /// every stack supports the call.  Blocking and return-value semantics
  /// match read().
  [[nodiscard]] virtual sim::Task<std::size_t> read_view(
      int sd, RecvView& view, std::size_t max_bytes) {
    view.reset();
    note_recv_scratch(ensure_recv_scratch(view, max_bytes));
    std::size_t n =
        co_await read(sd, std::span<std::uint8_t>(view.scratch.data(),
                                                  max_bytes));
    if (n > 0) {
      view.parts.push_back(
          std::span<const std::uint8_t>(view.scratch.data(), n));
    }
    co_return n;
  }

  [[nodiscard]] virtual sim::Task<void> close(int sd) = 0;

  /// Option semantics are ignore-unsupported, matching setsockopt() use in
  /// portable applications: set_option() silently accepts options the stack
  /// has no equivalent for (e.g. kNoDelay on the substrate, kCredits on
  /// kernel TCP), and get_option() returns 0 for them.  Options a stack
  /// does understand round-trip: get_option() after set_option() returns
  /// the effective value.  Both throw SocketError(kInvalid) only for a bad
  /// descriptor or a state in which a supported option can no longer be
  /// changed (e.g. substrate credits after connect).
  [[nodiscard]] virtual sim::Task<void> set_option(int sd, SockOpt opt,
                                                   int value) = 0;
  [[nodiscard]] virtual sim::Task<int> get_option(int sd, SockOpt opt) = 0;

  /// select()/ring support: non-blocking readiness probes plus a condition
  /// variable notified on any socket state change in this stack.
  /// readable(sd) true means the next read()/accept() completes without
  /// parking on activity(); writable(sd) true means the next write()
  /// accepts at least one byte without parking for buffer space or
  /// flow-control credits.  Both also return true when the operation would
  /// fail immediately (reset, closed peer), mirroring POSIX select(),
  /// which marks error'd descriptors ready so the caller collects the
  /// error from the call itself.
  [[nodiscard]] virtual bool readable(int sd) const = 0;
  [[nodiscard]] virtual bool writable(int sd) const = 0;
  [[nodiscard]] virtual sim::CondVar& activity() = 0;

  /// Non-blocking batched accept: drain up to `max` already-arrived
  /// connection requests from listener `sd` into `out` (and, when `peers`
  /// is non-null, the matching client addresses), returning how many were
  /// accepted.  Never parks waiting for a request (a request may still pay
  /// its normal handshake costs in simulated time).  The default loops
  /// readable()+accept(); stacks with a scannable backlog override it to
  /// take one pass over their pre-posted descriptors.
  [[nodiscard]] virtual sim::Task<std::size_t> accept_many(
      int sd, std::size_t max, std::vector<int>& out,
      std::vector<SockAddr>* peers = nullptr) {
    std::size_t n = 0;
    while (n < max && readable(sd)) {
      SockAddr peer{};
      out.push_back(co_await accept(sd, &peer));
      if (peers != nullptr) peers->push_back(peer);
      ++n;
    }
    co_return n;
  }

  /// Convenience: write the whole buffer.
  [[nodiscard]] sim::Task<void> write_all(int sd,
                                          std::span<const std::uint8_t> in) {
    std::size_t done = 0;
    while (done < in.size()) {
      done += co_await write(sd, in.subspan(done));
    }
  }

  /// Convenience: read exactly out.size() bytes; throws kClosed on early
  /// EOF.
  [[nodiscard]] sim::Task<void> read_exact(int sd,
                                           std::span<std::uint8_t> out) {
    std::size_t done = 0;
    while (done < out.size()) {
      std::size_t n = co_await read(sd, out.subspan(done));
      if (n == 0) {
        throw SocketError(SockErr::kClosed, "peer closed during read_exact");
      }
      done += n;
    }
  }

 protected:
  /// Scratch-size report from the read_view path; stacks override to feed
  /// the "host/recv_scratch_hwm" gauge (the interface itself has no
  /// metrics registry to write to).
  virtual void note_recv_scratch(std::size_t /*bytes*/) {}
};

}  // namespace ulsocks::os
