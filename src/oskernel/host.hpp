// Simulated host: one CPU (serially occupied by application, library and
// kernel work), a RAM-disk filesystem, and cost-charging helpers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "oskernel/fs.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace ulsocks::os {

class Host {
 public:
  Host(sim::Engine& eng, const sim::CostModel& model, std::uint16_t id)
      : eng_(&eng),
        model_(model),
        id_(id),
        cpu_(eng, "host" + std::to_string(id) + "-cpu"),
        fs_(eng, model, cpu_) {}

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] std::uint16_t id() const noexcept { return id_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_; }
  [[nodiscard]] const sim::CostModel& model() const noexcept { return model_; }
  [[nodiscard]] sim::SerialResource& cpu() noexcept { return cpu_; }
  [[nodiscard]] RamDiskFs& fs() noexcept { return fs_; }

  /// Live shard migration: point the host (CPU, filesystem) at its new
  /// engine.  Barrier-only; apps::Cluster's DomainMigrator is the caller.
  void rebind(sim::Engine& eng) noexcept {
    eng_ = &eng;
    cpu_.rebind(eng);
    fs_.rebind(eng);
  }

  /// Charge one system-call round trip.
  [[nodiscard]] sim::Task<void> syscall() {
    co_await cpu_.use(model_.host.syscall_ns);
  }

  /// Charge application compute time (matmul kernels etc.).  Long bursts
  /// are charged in scheduler-quantum slices so that kernel work (interrupt
  /// handling, ack generation) preempts them as it would on a real host —
  /// a 100 ms kernel-starving monolith would otherwise time out peers.
  [[nodiscard]] sim::Task<void> compute(sim::Duration d) {
    const sim::Duration quantum = model_.host.sched_granularity_ns / 4;
    while (d > quantum) {
      co_await cpu_.use(quantum);
      co_await eng_->yield();  // let queued kernel jobs run
      d -= quantum;
    }
    co_await cpu_.use(d);
  }

  /// Charge a user-space memory copy of `bytes`.
  [[nodiscard]] sim::Task<void> copy(std::uint64_t bytes) {
    co_await cpu_.use(model_.memcpy_cost(bytes));
  }

 private:
  sim::Engine* eng_;
  sim::CostModel model_;
  std::uint16_t id_;
  sim::SerialResource cpu_;
  RamDiskFs fs_;
};

}  // namespace ulsocks::os
