// io_uring-style submission/completion ring over any SocketApi stack.
//
// The paper's §5.4 fd-tracking argument is that user-level sockets already
// keep per-descriptor state in pre-posted EMP descriptor queues, so batching
// N socket operations into one boundary crossing is free structure: the
// descriptors ARE the ring slots.  `OpRing` packages that as an explicit
// submission queue (SQEs tagged with caller data) and completion queue
// (CQEs in deterministic order), the shape the kernel-bypass literature
// converged on (io_uring, PSM3's endpoint model).
//
// Why this beats one-blocking-coroutine-per-operation at C10K scale: a
// blocking server parks one coroutine per idle connection inside the
// stack's activity() condition variable, so every stack state change pays
// one scheduler event per parked handler (the thundering herd).  The ring
// parks exactly ONE pump coroutine there, probes readiness host-side, and
// starts the few runnable operations inline through the resume trampoline
// — the event cost per stack wake-up drops from O(connections) to O(1).
//
// Determinism: submit() runs entirely inside the caller's current engine
// event (zero scheduler events — better than the one-doorbell-event
// budget), and every host-side decision (probes, grouping, cancellation)
// is a pure function of simulated state at the current timestamp.  Because
// host-side work costs no simulated time, an application that reaps in
// batches of 1 or of 1000 performs identical submissions at identical
// timestamps, so `Engine::digest()` is byte-identical across reap batch
// sizes (tests/ring_test.cpp proves this; DESIGN.md §13 has the argument).
//
// Lifetime rules: the caller keeps SQE buffers (`read`/`write` spans,
// `RecvView` targets) alive until the matching CQE is reaped, and drains
// the ring (every submitted SQE reaped) before destroying it — an SQE on a
// descriptor that never becomes ready and is never closed would otherwise
// leave its driver parked in the stack forever, exactly like a blocking
// read on a silent peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "oskernel/socket_api.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace ulsocks::os {

enum class OpKind : std::uint8_t { kAccept, kRead, kReadView, kWrite, kClose };

/// Completion-queue entry.  `seq` is the submission sequence number (ring-
/// global, assigned at push time); reap() orders CQEs by
/// (completion_time, seq), so ties at one timestamp resolve in submission
/// order no matter how the stack interleaved the operations internally.
struct Cqe {
  std::uint64_t user_data = 0;
  OpKind op = OpKind::kRead;
  int sd = -1;              // the descriptor the SQE named (listener for accepts)
  std::int64_t result = 0;  // bytes moved; accepted sd for kAccept; -1 on failure
  SockErr error = SockErr::kInvalid;  // valid only when `failed`
  bool failed = false;
  sim::Time completion_time = 0;
  std::uint64_t seq = 0;
  SockAddr peer{};  // kAccept: the connecting client's address
};

/// Submission/completion ring.  Typical event-loop shape:
///
///   os::OpRing ring(eng, stack);
///   ring.push_accept(listen_sd, kAcceptTag);
///   ring.submit();
///   for (;;) {
///     for (const os::Cqe& c : co_await ring.reap(1, 64)) { ...push more... }
///     ring.submit();
///   }
///
/// Cancellation: a kClose SQE cancels every not-yet-started SQE on the same
/// descriptor (they complete with failed=true, error=kClosed) at submit
/// time, then runs the stack close; operations already in flight inside the
/// stack complete through the stack's own close semantics (error CQE).
class OpRing {
 public:
  OpRing(sim::Engine& eng, SocketApi& stack);
  OpRing(const OpRing&) = delete;
  OpRing& operator=(const OpRing&) = delete;

  // --- Submission queue -----------------------------------------------
  void push_accept(int sd, std::uint64_t user_data);
  void push_read(int sd, std::span<std::uint8_t> buf, std::uint64_t user_data);
  void push_read_view(int sd, RecvView& view, std::size_t max_bytes,
                      std::uint64_t user_data);
  void push_write(int sd, std::span<const std::uint8_t> buf,
                  std::uint64_t user_data);
  void push_close(int sd, std::uint64_t user_data);

  /// Ring the doorbell: hand every pushed SQE to the stack in one call.
  /// Runs inside the caller's current engine event — cancellations are
  /// applied, ready operations start inline (accepts on one listener are
  /// grouped into a single accept_many pass over its pre-posted
  /// descriptors), and unready ones wait on the single pump coroutine.
  void submit();

  /// Block (simulated time) until at least `min` CQEs are available or no
  /// submitted SQE remains in flight, then return up to `max` CQEs in
  /// (completion_time, seq) order.  `min` is clamped to `max`; min == 0
  /// never parks.
  [[nodiscard]] sim::Task<std::vector<Cqe>> reap(std::size_t min,
                                                 std::size_t max);

  /// SQEs submitted and not yet completed (started or awaiting readiness).
  [[nodiscard]] std::size_t inflight() const noexcept {
    return pending_.size();
  }
  /// CQEs ready to reap without blocking.
  [[nodiscard]] std::size_t cqe_ready() const noexcept {
    return ready_.size();
  }
  /// SQEs pushed but not yet submitted.
  [[nodiscard]] std::size_t staged() const noexcept { return staged_.size(); }

 private:
  struct Sqe {
    OpKind op = OpKind::kRead;
    int sd = -1;
    std::uint64_t user_data = 0;
    std::span<std::uint8_t> read_buf;
    std::span<const std::uint8_t> write_buf;
    RecvView* view = nullptr;
    std::size_t max_bytes = 0;
  };
  struct Op {
    Sqe sqe;
    std::uint64_t seq = 0;
    bool started = false;
  };

  void push(Sqe sqe);
  [[nodiscard]] bool has_unstarted() const noexcept;
  /// Scan pending unstarted SQEs in seq order and start every one whose
  /// readiness probe says the stack call completes without parking.
  void start_ready();
  void start_op(Op* op);
  void ensure_pump();
  /// Complete `op` (erases it from pending_) and wake reapers.
  void finish(Op* op, std::int64_t result, SockAddr peer = {});
  void fail(Op* op, SockErr error);
  /// Cancel unstarted pending SQEs on `sd` (except `except_seq` and other
  /// closes) with failed/kClosed CQEs.
  void cancel_unstarted(int sd, std::uint64_t except_seq);
  void prune_drivers();

  /// Per-SQE driver: run the blocking stack call, emit the CQE.
  sim::Task<void> drive(Op* op);
  /// Batched accepts: one accept_many pass completes up to ops.size()
  /// SQEs; the remainder revert to pending-unstarted.
  sim::Task<void> drive_accepts(int sd, std::vector<Op*> ops);
  /// The single parked waiter: wakes on stack activity, starts whatever
  /// became ready, exits when no unstarted SQE remains.
  sim::Task<void> pump();

  sim::Engine& eng_;
  SocketApi& stack_;
  sim::CondVar cqe_cv_;

  std::vector<std::unique_ptr<Op>> staged_;          // push order == seq order
  std::map<std::uint64_t, std::unique_ptr<Op>> pending_;  // by seq
  std::vector<Cqe> ready_;
  std::vector<sim::Task<void>> drivers_;  // frames owned until done
  sim::Task<void> pump_task_;
  bool pump_running_ = false;
  std::uint64_t next_seq_ = 0;
  std::exception_ptr fatal_;  // non-socket error from a driver; rethrown

  obs::Histogram& batch_size_;    // SQEs per submit()
  obs::Histogram& reap_wait_ns_;  // simulated ns parked per reap()
  obs::Gauge& sqe_inflight_;      // high-water mark of in-flight SQEs
};

}  // namespace ulsocks::os
