// Registry of cross-layer invariant checkers.
//
// Each protocol layer registers a checker — a callable that inspects its
// own state and throws check::InvariantError on a violation.  The sim
// engine owns one registry and sweeps it periodically (every
// `check_interval` events), so corruption anywhere in the stack surfaces
// within a bounded number of events of its introduction, in every build
// type, without instrumenting each hot path.
//
// Checkers must be read-only: they run between events and must not perturb
// simulation state, or they would break bit-determinism.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/invariant.hpp"

namespace ulsocks::check {

class Registry {
 public:
  using Id = std::size_t;
  using Checker = std::function<void()>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register a named checker; returns an id for removal.  Checkers run
  /// in registration order (deterministic).
  Id add(std::string name, Checker fn) {
    Id id = next_id_++;
    entries_.push_back(Entry{id, std::move(name), std::move(fn)});
    return id;
  }

  void remove(Id id) {
    std::erase_if(entries_, [id](const Entry& e) { return e.id == id; });
  }

  /// Move one checker into another registry (live shard migration rehomes
  /// a host's checkers along with its events).  Returns the new id in
  /// `to`, or 0 if `id` is not registered here.
  Id transfer(Id id, Registry& to) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->id == id) {
        Id nid = to.add(std::move(it->name), std::move(it->fn));
        entries_.erase(it);
        return nid;
      }
    }
    return 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Run every checker.  A violation is rethrown with the checker's name
  /// prepended so the failing layer is identifiable from what() alone.
  void run_all() const {
    for (const auto& e : entries_) {
      try {
        e.fn();
      } catch (const InvariantError& err) {
        throw InvariantError("[checker " + e.name + "] " + err.what());
      }
    }
  }

 private:
  struct Entry {
    Id id;
    std::string name;
    Checker fn;
  };
  std::vector<Entry> entries_;
  Id next_id_ = 1;
};

/// RAII registration: removes the checker when destroyed.  Must not
/// outlive the registry it registered with (in practice: the engine
/// outlives every protocol object attached to it).
class ScopedChecker {
 public:
  ScopedChecker() = default;
  ScopedChecker(Registry& registry, std::string name, Registry::Checker fn)
      : registry_(&registry), id_(registry.add(std::move(name),
                                               std::move(fn))) {}
  ScopedChecker(const ScopedChecker&) = delete;
  ScopedChecker& operator=(const ScopedChecker&) = delete;
  ScopedChecker(ScopedChecker&& other) noexcept
      : registry_(other.registry_), id_(other.id_) {
    other.registry_ = nullptr;
  }
  ScopedChecker& operator=(ScopedChecker&& other) noexcept {
    if (this != &other) {
      reset();
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
    }
    return *this;
  }
  ~ScopedChecker() { reset(); }

  void reset() {
    if (registry_ != nullptr) {
      registry_->remove(id_);
      registry_ = nullptr;
    }
  }

  /// Re-register with `to`, preserving the checker (migration rehoming).
  void move_to(Registry& to) {
    if (registry_ == nullptr || registry_ == &to) return;
    id_ = registry_->transfer(id_, to);
    registry_ = id_ != 0 ? &to : nullptr;
  }

 private:
  Registry* registry_ = nullptr;
  Registry::Id id_ = 0;
};

}  // namespace ulsocks::check
