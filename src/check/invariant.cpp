#include "check/invariant.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace ulsocks::check {

std::string msgf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return fmt;
  }
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
  va_end(args_copy);
  return std::string(buf.data(), static_cast<std::size_t>(needed));
}

void invariant_failed(const char* condition, const char* file, int line,
                      const std::string& message) {
  std::string what = "invariant violated: (";
  what += condition;
  what += ") at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  if (!message.empty()) {
    what += ": ";
    what += message;
  }
  throw InvariantError(what);
}

}  // namespace ulsocks::check
