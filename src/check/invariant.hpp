// Always-on protocol invariants.
//
// The paper's results hinge on protocol state machines being exactly right:
// EMP credit accounting (N credits backed by 2N pre-posted descriptors,
// §6.1), descriptor tag-matching, and cumulative-ACK reliability.  A plain
// assert() guards none of that in the default Release build.  The
// ULSOCKS_INVARIANT macro is active in every build type and throws
// InvariantError with the failed condition, source location and a
// caller-supplied context message, so a violated protocol invariant stops
// the run loudly instead of silently corrupting a result.
//
// The message argument is evaluated only on failure; use check::msgf() to
// format state values into it without paying for the formatting on the
// (always-taken) success path.
#pragma once

#include <stdexcept>
#include <string>

namespace ulsocks::check {

/// Thrown when an ULSOCKS_INVARIANT fails.  what() carries the condition
/// text, source location and context message.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// printf-style formatter for invariant context messages.
[[nodiscard]] std::string msgf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Builds the full diagnostic and throws InvariantError.
[[noreturn]] void invariant_failed(const char* condition, const char* file,
                                   int line, const std::string& message);

}  // namespace ulsocks::check

/// Check `cond` in every build type; on failure throw
/// check::InvariantError carrying `msg` (evaluated lazily).
#define ULSOCKS_INVARIANT(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::ulsocks::check::invariant_failed(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                        \
  } while (0)
