// Alteon Tigon2-style programmable NIC.
//
// The device exposes the resources protocol firmware runs on:
//   - two embedded firmware processors (the Tigon2's novelty), one driving
//     the transmit path and one the receive path (a single-CPU mode exists
//     for ablation);
//   - one DMA engine moving bytes between host memory and the NIC across
//     the PCI bus;
//   - a MAC with a line-rate-paced transmit queue.
//
// Protocol personalities (EMP firmware in src/emp, the stock acenic-style
// firmware in src/tcp) schedule their work onto these resources and install
// a receive handler for incoming frames.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "net/frame.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace ulsocks::nic {

class NicDevice final : public net::FrameSink {
 public:
  NicDevice(sim::Engine& eng, const sim::CostModel& model, net::Link& link,
            net::Link::Side side, net::MacAddress mac, bool dual_cpu = true)
      : eng_(&eng),
        model_(model),
        link_(link),
        side_(side),
        mac_(mac),
        dual_cpu_(dual_cpu),
        tx_cpu_(eng, "nic-tx-cpu"),
        rx_cpu_(eng, "nic-rx-cpu"),
        dma_(eng, "nic-dma"),
        scope_(eng.metrics(),
               "h" + std::to_string(mac.host_index()) + "/nic"),
        frames_tx_(scope_.counter("frames_tx")),
        frames_rx_(scope_.counter("frames_rx")),
        frames_filtered_(scope_.counter("frames_filtered")),
        tracer_(eng.tracer()),
        trk_(eng.tracer().track("h" + std::to_string(mac.host_index()),
                                "nic")) {
    pool_.bind_hwm_gauge(scope_.gauge("frame_pool_hwm"));
    slice_pool_.bind_hwm_gauge(scope_.gauge("slice_pool_hwm"));
    link_.attach(side_, this, eng);
  }

  [[nodiscard]] net::MacAddress mac() const noexcept { return mac_; }
  [[nodiscard]] const sim::CostModel& model() const noexcept { return model_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_; }

  /// Firmware processors.  In single-CPU mode both paths share one core.
  [[nodiscard]] sim::SerialResource& tx_cpu() noexcept { return tx_cpu_; }
  [[nodiscard]] sim::SerialResource& rx_cpu() noexcept {
    return dual_cpu_ ? rx_cpu_ : tx_cpu_;
  }

  /// The host's frame recycler: every frame this NIC originates (EMP and
  /// kernel-TCP paths alike) is acquired here and returns here after the
  /// receive side is done with it.
  [[nodiscard]] net::FramePool& frame_pool() noexcept { return pool_; }

  /// The host's pinned-buffer recycler: protocol send paths pin payloads
  /// into slices drawn from here (the simulated DMA-registered region) and
  /// fragment by refcount instead of copying.
  [[nodiscard]] net::SlicePool& slice_pool() noexcept { return slice_pool_; }

  /// Schedule firmware work on the transmit / receive processor.
  void fw_tx(sim::Duration cost, sim::EventFn fn) {
    tx_cpu().run(cost, std::move(fn));
  }
  void fw_rx(sim::Duration cost, sim::EventFn fn) {
    rx_cpu().run(cost, std::move(fn));
  }

  /// One DMA transfer of `bytes` across the host bus (setup + per byte).
  void dma_transfer(std::uint64_t bytes, sim::EventFn done) {
    if (tracer_.enabled()) {
      tracer_.complete(trk_, eng_->now(), model_.dma_cost(bytes), "dma",
                       "\"bytes\":" + std::to_string(bytes));
    }
    dma_.run(model_.dma_cost(bytes), std::move(done));
  }

  /// Hand a frame to the MAC: queued and transmitted at line rate.
  void mac_send(net::FramePtr frame) {
    ++frames_tx_;
    tx_queue_.push_back(std::move(frame));
    if (!tx_draining_) drain_tx();
  }

  /// Install a protocol receive entry point for one EtherType (runs at
  /// frame arrival; the handler is responsible for charging firmware time
  /// via fw_rx).  EMP firmware and the kernel-path driver can coexist on
  /// one NIC, each claiming its own EtherType.
  void set_rx_handler(net::EtherType type,
                      std::function<void(net::FramePtr)> handler) {
    if (type == net::EtherType::kEmp) {
      rx_emp_ = std::move(handler);
    } else {
      rx_ip_ = std::move(handler);
    }
  }

  void frame_arrived(net::FramePtr frame) override {
    // MAC filtering: flooded frames for other hosts (the switch floods
    // unknown destinations) are dropped in hardware.
    if (frame->dst != mac_ && !frame->dst.is_broadcast()) {
      ++frames_filtered_;
      return;
    }
    ++frames_rx_;
    auto& handler =
        frame->type == net::EtherType::kEmp ? rx_emp_ : rx_ip_;
    if (handler) handler(std::move(frame));
  }

  [[nodiscard]] std::uint64_t frames_tx() const noexcept {
    return frames_tx_.value();
  }
  [[nodiscard]] std::uint64_t frames_rx() const noexcept {
    return frames_rx_.value();
  }
  [[nodiscard]] std::uint64_t frames_filtered() const noexcept {
    return frames_filtered_.value();
  }
  [[nodiscard]] sim::SerialResource& dma() noexcept { return dma_; }

  /// Live shard migration: move the firmware processors and DMA engine to
  /// the new engine.  The link endpoint is rehomed separately by the
  /// topology owner (apps::Cluster), which also re-registers lookahead.
  /// Metrics/tracer scopes stay on the birth engine's registries: distinct
  /// per-host names, written only by whichever thread owns the domain and
  /// read only at quiesce.  Barrier-only.
  void rebind(sim::Engine& eng) noexcept {
    eng_ = &eng;
    tx_cpu_.rebind(eng);
    rx_cpu_.rebind(eng);
    dma_.rebind(eng);
  }

 private:
  void drain_tx() {
    if (tx_queue_.empty()) {
      tx_draining_ = false;
      return;
    }
    tx_draining_ = true;
    net::FramePtr frame = std::move(tx_queue_.front());
    tx_queue_.pop_front();
    sim::Duration ser = link_.serialization_time(*frame);
    if (tracer_.enabled()) tracer_.complete(trk_, eng_->now(), ser, "mac_tx");
    link_.transmit(side_, std::move(frame));
    eng_->schedule_after(ser, [this] { drain_tx(); });
  }

  sim::Engine* eng_;
  sim::CostModel model_;
  net::Link& link_;
  net::Link::Side side_;
  net::MacAddress mac_;
  bool dual_cpu_;
  sim::SerialResource tx_cpu_;
  sim::SerialResource rx_cpu_;
  sim::SerialResource dma_;
  net::FramePool pool_;
  net::SlicePool slice_pool_;
  std::deque<net::FramePtr> tx_queue_;
  bool tx_draining_ = false;
  std::function<void(net::FramePtr)> rx_emp_;
  std::function<void(net::FramePtr)> rx_ip_;
  obs::Scope scope_;  // "h<N>/nic" registry prefix
  obs::Counter& frames_tx_;
  obs::Counter& frames_rx_;
  obs::Counter& frames_filtered_;
  obs::Tracer& tracer_;
  std::uint32_t trk_;  // ("h<N>", "nic") timeline track
};

}  // namespace ulsocks::nic
