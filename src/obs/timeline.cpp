#include "obs/timeline.hpp"

#include <cstdio>
#include <fstream>

namespace ulsocks::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint32_t Tracer::track(std::string_view host,
                            std::string_view component) {
  auto key = std::make_pair(std::string(host), std::string(component));
  auto it = track_ids_.find(key);
  if (it != track_ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(tracks_.size());
  tracks_.push_back(Track{key.first, key.second});
  track_ids_.emplace(std::move(key), id);
  return id;
}

std::string Tracer::to_chrome_json() const {
  // pid = dense host index, tid = dense track index within that host; a
  // metadata event names each so chrome://tracing shows "h0" processes with
  // "sockets"/"emp"/"nic"/... thread rows.
  std::map<std::string, int> pids;
  for (const auto& t : tracks_) {
    pids.emplace(t.host, static_cast<int>(pids.size()));
  }

  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  for (const auto& [host, pid] : pids) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                  "\"args\":{\"name\":\"%s\"}},\n",
                  pid, json_escape(host).c_str());
    out += buf;
  }
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%zu,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}},\n",
                  pids.at(tracks_[i].host), i,
                  json_escape(tracks_[i].component).c_str());
    out += buf;
  }

  bool first = true;
  for (const auto& e : events_) {
    if (!first) out += ",\n";
    first = false;
    const Track& t = tracks_.at(e.track);
    const char* ph = "i";
    switch (e.phase) {
      case TraceEvent::Phase::kBegin:
        ph = "B";
        break;
      case TraceEvent::Phase::kEnd:
        ph = "E";
        break;
      case TraceEvent::Phase::kComplete:
        ph = "X";
        break;
      case TraceEvent::Phase::kInstant:
        ph = "i";
        break;
      case TraceEvent::Phase::kCounter:
        ph = "C";
        break;
    }
    // ts in microseconds with ns resolution (three decimals).
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"%s\",\"pid\":%d,\"tid\":%u,\"ts\":%llu.%03llu",
                  ph, pids.at(t.host), e.track,
                  static_cast<unsigned long long>(e.ts / 1000),
                  static_cast<unsigned long long>(e.ts % 1000));
    out += buf;
    if (e.phase == TraceEvent::Phase::kComplete) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%llu.%03llu",
                    static_cast<unsigned long long>(e.dur / 1000),
                    static_cast<unsigned long long>(e.dur % 1000));
      out += buf;
    }
    if (!e.name.empty()) {
      out += ",\"cat\":\"sim\",\"name\":\"" + json_escape(e.name) + "\"";
    }
    if (e.phase == TraceEvent::Phase::kInstant) out += ",\"s\":\"t\"";
    if (!e.args.empty()) out += ",\"args\":{" + e.args + "}";
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::export_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_chrome_json();
  return static_cast<bool>(f);
}

}  // namespace ulsocks::obs
