#include "obs/metrics.hpp"

#include <cmath>

namespace ulsocks::obs {

std::uint64_t Histogram::quantile_bound(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the observation at position ceil(q * count) in sorted
  // order (0-based index below), so q -> 1 always reaches the last bucket.
  auto pos = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t rank = pos == 0 ? 0 : pos - 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      // Bucket 0 holds {0, 1}; bucket i >= 1 covers [2^i, 2^(i+1)).
      // Report the exclusive upper bound.
      return i == 0 ? 2 : (1ull << (i + 1));
    }
  }
  return max_;
}

Counter& Registry::counter(const std::string& path) {
  auto it = counters_.find(path);
  if (it != counters_.end()) return *it->second;
  counter_store_.emplace_back();
  Counter* c = &counter_store_.back();
  counters_.emplace(path, c);
  return *c;
}

Gauge& Registry::gauge(const std::string& path) {
  auto it = gauges_.find(path);
  if (it != gauges_.end()) return *it->second;
  gauge_store_.emplace_back();
  Gauge* g = &gauge_store_.back();
  gauges_.emplace(path, g);
  return *g;
}

Histogram& Registry::histogram(const std::string& path) {
  auto it = histograms_.find(path);
  if (it != histograms_.end()) return *it->second;
  histogram_store_.emplace_back();
  Histogram* h = &histogram_store_.back();
  histograms_.emplace(path, h);
  return *h;
}

std::map<std::string, std::int64_t> Registry::snapshot() const {
  return snapshot("");
}

std::map<std::string, std::int64_t> Registry::snapshot(
    std::string_view prefix) const {
  std::map<std::string, std::int64_t> out;
  auto matches = [&](const std::string& path) {
    return path.size() >= prefix.size() &&
           std::string_view(path).substr(0, prefix.size()) == prefix;
  };
  for (const auto& [path, c] : counters_) {
    if (matches(path)) out[path] = static_cast<std::int64_t>(c->value());
  }
  for (const auto& [path, g] : gauges_) {
    if (matches(path)) out[path] = g->value();
  }
  for (const auto& [path, h] : histograms_) {
    if (!matches(path)) continue;
    out[path + "/count"] = static_cast<std::int64_t>(h->count());
    out[path + "/sum"] = static_cast<std::int64_t>(h->sum());
    out[path + "/min"] = static_cast<std::int64_t>(h->min());
    out[path + "/max"] = static_cast<std::int64_t>(h->max());
    out[path + "/p50"] = static_cast<std::int64_t>(h->quantile_bound(0.50));
    out[path + "/p99"] = static_cast<std::int64_t>(h->quantile_bound(0.99));
  }
  return out;
}

}  // namespace ulsocks::obs
