// Unified metrics registry: the one read-out path for every per-layer
// counter in the stack.
//
// Each protocol layer registers typed handles — Counter, Gauge, or
// log-bucket Histogram — under a "scope/name" path (e.g.
// "h0/emp/data_frames_tx").  The registry owns the instruments; handles are
// stable references, so hot-path increments are a single pointer chase.
// `snapshot()` flattens everything into an ordered path→value map, which is
// what benches embed in their BENCH_*.json records and what tests diff
// across runs for determinism (paths are sorted, values are integers — two
// identical seeded runs must produce byte-identical snapshots).
//
// The legacy typed stats structs (SubstrateStats, EmpStats, TcpStats) are
// thin views materialized from these counters; the registry is canonical.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ulsocks::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  Counter& operator++() noexcept {
    ++value_;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) noexcept {
    value_ += n;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level (queue depth, credits held, live sockets).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void add(std::int64_t d) noexcept { value_ += d; }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Log-bucket histogram: bucket i counts observations in [2^(i-1), 2^i)
/// (bucket 0 holds zeros and ones).  Constant memory, O(1) observe, and
/// enough resolution for latency/depth distributions whose interesting
/// structure is multiplicative.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t v) noexcept {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ ? min_ : 0;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return i < kBuckets ? buckets_[i] : 0;
  }

  /// Upper bound (exclusive) of the values quantile `q` in [0,1] falls in:
  /// the smallest power-of-two bucket boundary covering that rank.
  [[nodiscard]] std::uint64_t quantile_bound(double q) const noexcept;

  /// Which bucket a value lands in.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Owns every instrument, keyed by path.  Lookup is by exact path; creating
/// twice returns the same instrument (so a reconstructed component attaches
/// to its accumulated history within one engine lifetime).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& path);
  [[nodiscard]] Gauge& gauge(const std::string& path);
  [[nodiscard]] Histogram& histogram(const std::string& path);

  /// Ordered path → value view of every instrument.  Counters and gauges
  /// contribute one entry; histograms expand into `/count`, `/sum`, `/min`,
  /// `/max`, and `/p50`//`/p99` bound entries so the map stays integral
  /// (and therefore byte-stable across identical runs).
  [[nodiscard]] std::map<std::string, std::int64_t> snapshot() const;

  /// snapshot() restricted to paths starting with `prefix` — the host- or
  /// layer-scoped view ("h0/", "h1/tcp/", ...).
  [[nodiscard]] std::map<std::string, std::int64_t> snapshot(
      std::string_view prefix) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // deques give stable element addresses; maps index into them by path.
  std::deque<Counter> counter_store_;
  std::deque<Gauge> gauge_store_;
  std::deque<Histogram> histogram_store_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
};

/// Prefix helper: a component creates one Scope ("h3/emp") and registers
/// its instruments by bare name.
class Scope {
 public:
  Scope(Registry& reg, std::string prefix)
      : reg_(reg), prefix_(std::move(prefix)) {}

  [[nodiscard]] Counter& counter(std::string_view name) {
    return reg_.counter(prefix_ + "/" + std::string(name));
  }
  [[nodiscard]] Gauge& gauge(std::string_view name) {
    return reg_.gauge(prefix_ + "/" + std::string(name));
  }
  [[nodiscard]] Histogram& histogram(std::string_view name) {
    return reg_.histogram(prefix_ + "/" + std::string(name));
  }
  [[nodiscard]] const std::string& prefix() const noexcept { return prefix_; }

 private:
  Registry& reg_;
  std::string prefix_;
};

}  // namespace ulsocks::obs
