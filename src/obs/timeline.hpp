// Span-based timeline tracer with Chrome trace_event export.
//
// Layers open spans stamped with *simulated* time, attributed to a
// (host, component) pair; the export writes Chrome's trace_event JSON so a
// send() can be followed in chrome://tracing (or https://ui.perfetto.dev)
// from the substrate call, through EMP descriptor posting, NIC firmware and
// DMA, across the switch, to the peer's read() — each host a process row,
// each component a thread row.
//
// Off by default: when disabled, begin()/end()/instant() are a single
// branch, so the hot paths pay nothing.  This is a *timeline* facility,
// complementary to the printf-style sim/trace.hpp debug log.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ulsocks::obs {

/// One trace_event record.  `ts` is simulated nanoseconds (exported as
/// fractional microseconds, Chrome's native unit).
struct TraceEvent {
  enum class Phase : std::uint8_t {
    kBegin,
    kEnd,
    kComplete,
    kInstant,
    kCounter
  };
  Phase phase = Phase::kInstant;
  sim::Time ts = 0;
  sim::Duration dur = 0;    // kComplete only
  std::uint32_t track = 0;  // dense (host, component) track index
  std::string name;
  std::string args;  // pre-rendered JSON object body, may be empty
};

class Tracer {
 public:
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Dense id for a (host, component) pair, e.g. ("h0", "sockets").
  /// Callers cache the id at construction so hot-path events skip the map.
  [[nodiscard]] std::uint32_t track(std::string_view host,
                                    std::string_view component);

  /// Open / close a nested duration span on a track.  Spans on one track
  /// must nest (close in LIFO order); use these only in synchronous code
  /// where no coroutine suspension can interleave another span on the same
  /// track — Chrome rejects interleavings.
  void begin(std::uint32_t track, sim::Time now, std::string_view name,
             std::string args = {}) {
    if (enabled_) push(TraceEvent::Phase::kBegin, track, now, 0, name,
                       std::move(args));
  }
  void end(std::uint32_t track, sim::Time now) {
    if (enabled_) push(TraceEvent::Phase::kEnd, track, now, 0, {}, {});
  }

  /// Retrospective duration span [start, start+dur] (Chrome "X" event).
  /// Safe from coroutines: overlapping completes on one track render as
  /// stacked slices without the LIFO discipline begin/end requires.
  void complete(std::uint32_t track, sim::Time start, sim::Duration dur,
                std::string_view name, std::string args = {}) {
    if (enabled_) push(TraceEvent::Phase::kComplete, track, start, dur, name,
                       std::move(args));
  }

  /// Zero-duration marker (frame on the wire, drop, retransmit).
  void instant(std::uint32_t track, sim::Time now, std::string_view name,
               std::string args = {}) {
    if (enabled_) push(TraceEvent::Phase::kInstant, track, now, 0, name,
                       std::move(args));
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  void clear() { events_.clear(); }

  /// Render the Chrome trace_event JSON document (metadata events naming
  /// each process/thread row, then every recorded event in order).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path`; returns false on I/O failure.
  bool export_chrome_json(const std::string& path) const;

 private:
  struct Track {
    std::string host;
    std::string component;
  };

  void push(TraceEvent::Phase phase, std::uint32_t track, sim::Time ts,
            sim::Duration dur, std::string_view name, std::string args) {
    events_.push_back(
        TraceEvent{phase, ts, dur, track, std::string(name), std::move(args)});
  }

  bool enabled_ = false;
  std::vector<Track> tracks_;
  std::map<std::pair<std::string, std::string>, std::uint32_t> track_ids_;
  std::vector<TraceEvent> events_;
};

/// Minimal JSON string escaping for names/labels embedded in the export.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace ulsocks::obs
