// EMP endpoint: the host API plus the NIC-resident protocol engine.
//
// Mirrors the EMP of Shivam et al. (SC'01) as the paper describes it:
//   - the host posts transmit/receive descriptors (one syscall pins and
//     translates the buffer on first touch; a translation cache absorbs
//     later posts of the same region);
//   - the NIC firmware fragments messages into MTU frames, DMAs data
//     directly between host memory and the wire (zero copy, no NIC
//     buffering), and matches incoming frames against pre-posted
//     descriptors by walking them in post order (550 ns per walked
//     descriptor);
//   - reliability is NIC-to-NIC: cumulative ACKs every `ack_window` frames
//     (4 in the paper), NACK on a detected gap, sender-side retransmission
//     on timeout; unmatched messages are dropped and resent by the sender;
//   - an optional unexpected-message queue catches unmatched arrivals in
//     temporary buffers, checked after all pre-posted descriptors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "check/registry.hpp"
#include "emp/wire.hpp"
#include "net/payload_slice.hpp"
#include "nic/nic_device.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace ulsocks::emp {

class EmpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct EmpConfig {
  /// Frames per NIC-level acknowledgment (the paper uses 4).
  std::uint32_t ack_window = 4;
  /// Sender-side retransmission timeout for unacknowledged frames.  Kept
  /// well above the worst receive-side firmware backlog so acks delayed by
  /// a busy NIC do not trigger spurious retransmission.
  sim::Duration retransmit_timeout = 10'000'000;  // 10 ms
  /// Give up (fail the send) after this many retransmission rounds.
  std::uint32_t max_retries = 50;
  /// Translation/pin cache capacity, in distinct regions.
  std::size_t translation_cache_capacity = 1024;
  /// Completed (src, msg) pairs remembered for re-acking late duplicates.
  /// Must cover every message the endpoint can complete within one
  /// retransmission horizon: an entry evicted while the sender is still
  /// retransmitting lets the duplicate re-match a fresh descriptor and be
  /// delivered twice (observed downstream as credit over-return).  C10K
  /// workloads complete several thousand messages per retransmit_timeout
  /// during an accept storm, so the window is sized for that rate with
  /// margin (~16 B/entry; memory stays trivial).
  std::size_t completed_history = 16384;
  /// Messages with tags above this never use the unexpected queue.  The
  /// substrate reserves the high-bit tag range for connection requests,
  /// which must be bounded by the pre-posted backlog descriptors alone
  /// (§5.1) rather than absorbed by unexpected buffers.
  Tag unexpected_max_tag = 0x7fff;
};

struct RecvResult {
  NodeId src = 0;
  Tag tag = 0;
  std::uint32_t bytes = 0;
};

/// Shared state of one posted send.  Obtained from post_send; the handle
/// keeps the state alive until the caller is done observing it.
struct SendState {
  explicit SendState(sim::Engine& eng) : local_evt(eng), acked_evt(eng) {}
  NodeId dst = 0;
  Tag tag = 0;
  std::uint32_t msg_id = 0;
  std::vector<std::uint8_t> data;  // legacy mode: deep snapshot of the pages
  net::PayloadSlice pinned;        // sliced mode: refcounted pinned payload
  bool sliced = false;
  std::uint16_t total_frames = 0;
  std::uint32_t acked_frames = 0;
  std::uint32_t retries = 0;
  bool local_done = false;  // every frame DMA'd and handed to the MAC
  bool acked_done = false;  // receiver acknowledged the whole message
  bool failed = false;
  sim::ManualEvent local_evt;
  sim::ManualEvent acked_evt;

  /// Total message payload size, whichever mode holds it.
  [[nodiscard]] std::uint32_t size_bytes() const noexcept {
    return sliced ? static_cast<std::uint32_t>(pinned.size())
                  : static_cast<std::uint32_t>(data.size());
  }
};
using SendHandle = std::shared_ptr<SendState>;

/// Shared state of one posted receive.
struct RecvState {
  explicit RecvState(sim::Engine& eng) : done_evt(eng) {}
  std::optional<NodeId> src_match;  // nullopt: wildcard source
  Tag tag = 0;
  std::uint8_t* buffer = nullptr;
  std::uint32_t capacity = 0;
  // Binding (filled when the first frame of a message matches):
  bool bound = false;
  NodeId from = 0;
  std::uint32_t msg_id = 0;
  std::uint16_t total_frames = 0;
  std::uint32_t msg_bytes = 0;
  std::vector<bool> got;
  std::uint32_t frames_received = 0;
  std::uint32_t frames_landed = 0;  // fragments whose DMA completed
  bool completed = false;
  bool failed = false;
  bool unposted = false;
  bool filed = false;  // descriptor reached the NIC walk list
  // Index of this descriptor in the endpoint's walk list while filed;
  // makes removal a single O(1) tombstone write (see walk_remove).
  std::size_t walk_slot = ~std::size_t{0};
  // Sliced mode: the caller asked to receive fragments as refcounted
  // slices (one per frame index) instead of a contiguous copy into
  // `buffer`.  `parts` is sized at bind time; messages that arrive via
  // the unexpected queue are still materialized into `buffer` and leave
  // `parts` holding only empty slices.
  bool want_slices = false;
  std::vector<net::PayloadSlice> parts;
  RecvResult result;
  sim::ManualEvent done_evt;

  /// True when the message bytes live in `parts` rather than `buffer`.
  [[nodiscard]] bool sliced_delivery() const noexcept {
    for (const auto& p : parts) {
      if (!p.empty()) return true;
    }
    return false;
  }

  /// Copy `dst.size()` message bytes starting at message offset `off` into
  /// `dst`, whichever home the bytes landed in.  Returns bytes copied.
  std::size_t copy_out(std::size_t off, std::span<std::uint8_t> dst) const {
    if (dst.empty()) return 0;
    if (!sliced_delivery()) {
      std::size_t n = dst.size();
      std::copy_n(buffer + off, n, dst.data());
      return n;
    }
    std::size_t written = 0;
    std::size_t part_start = 0;
    for (const auto& p : parts) {
      if (written == dst.size()) break;
      std::size_t part_end = part_start + p.size();
      if (off < part_end && !p.empty()) {
        std::size_t from = off > part_start ? off - part_start : 0;
        std::size_t avail = p.size() - from;
        std::size_t take = std::min(avail, dst.size() - written);
        std::copy_n(p.data() + from, take, dst.data() + written);
        written += take;
        off += take;
      }
      part_start = part_end;
    }
    return written;
  }
};
using RecvHandle = std::shared_ptr<RecvState>;

/// Thin read-out view over the registry counters under "h<N>/emp/" (the
/// registry, reachable via Engine::metrics(), is the canonical store; this
/// struct exists for ergonomic field access in tests and reports).
struct EmpStats {
  std::uint64_t sends_posted = 0;
  std::uint64_t recvs_posted = 0;
  std::uint64_t data_frames_tx = 0;
  std::uint64_t data_frames_rx = 0;
  std::uint64_t acks_tx = 0;
  std::uint64_t acks_rx = 0;
  std::uint64_t nacks_tx = 0;
  std::uint64_t retransmitted_frames = 0;
  std::uint64_t unmatched_drops = 0;
  std::uint64_t too_small_drops = 0;
  std::uint64_t duplicate_frames = 0;
  std::uint64_t stale_frames = 0;
  std::uint64_t reacks = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t misrouted_frames = 0;
  std::uint64_t unexpected_claims = 0;
  std::uint64_t unexpected_evictions = 0;
  std::uint64_t descriptors_walked = 0;
  std::uint64_t pin_hits = 0;
  std::uint64_t pin_misses = 0;
};

class EmpEndpoint {
 public:
  /// `resolve` maps EMP node ids to MAC addresses (the cluster's routing
  /// table).  `host_cpu` is the CPU that host-side library work runs on.
  EmpEndpoint(sim::Engine& eng, const sim::CostModel& model,
              nic::NicDevice& nic, sim::SerialResource& host_cpu, NodeId self,
              std::function<net::MacAddress(NodeId)> resolve,
              EmpConfig config = {});

  EmpEndpoint(const EmpEndpoint&) = delete;
  EmpEndpoint& operator=(const EmpEndpoint&) = delete;

  [[nodiscard]] NodeId node_id() const noexcept { return self_; }

  /// Live shard migration: retarget the endpoint at its host's new engine.
  /// Rebinds every parked completion event (posted receives, in-flight
  /// sends), moves the invariant checker, and points the engine-wide
  /// bytes_copied tally at the new engine's registry (per-engine counters
  /// are summed across shards in reports, so totals are preserved).  The
  /// NIC and host CPU are rebound by their owners.  Barrier-only.
  void rebind(sim::Engine& eng);
  [[nodiscard]] const EmpConfig& config() const noexcept { return config_; }
  /// Materialize the typed stats view from the registry counters.
  [[nodiscard]] EmpStats stats() const noexcept;

  // ---- Host-side operations (coroutines charging host CPU time) ----

  /// Post a transmit descriptor.  The data is read from the (pinned) user
  /// pages by NIC DMA; the one host copy taken here models exactly that.
  /// With slicing on the copy lands in a pooled refcounted slice every
  /// frame references; legacy mode deep-snapshots into a per-send vector.
  [[nodiscard]] sim::Task<SendHandle> post_send(
      NodeId dst, Tag tag, std::span<const std::uint8_t> data);

  /// Scatter-gather post: `head` + `body` form one message, gathered into
  /// a single pinned slice (or one legacy snapshot) without the caller
  /// first concatenating them in a staging buffer.  `pin_base` is the
  /// address charged to the translation cache — callers that present a
  /// stable staging region (the substrate's credit ring) pass its slot
  /// address so pin timing matches the legacy copy-through-staging path
  /// exactly.
  [[nodiscard]] sim::Task<SendHandle> post_send_sg(
      NodeId dst, Tag tag, std::span<const std::uint8_t> head,
      std::span<const std::uint8_t> body, const void* pin_base);

  /// Post a receive descriptor matching (src, tag); src == nullopt matches
  /// any sender.  Checks the unexpected queue first, as the EMP library
  /// does.  With `want_slices`, fragments are retained as refcounted
  /// slices on the handle (RecvState::parts) instead of being copied into
  /// `buffer`; `buffer` remains the pinned fallback home (unexpected-queue
  /// deliveries still materialize into it).
  [[nodiscard]] sim::Task<RecvHandle> post_recv(std::optional<NodeId> src,
                                                Tag tag,
                                                std::span<std::uint8_t> buffer,
                                                bool want_slices = false);

  /// Grow the unexpected-message pool by `count` buffers of `bytes` each.
  [[nodiscard]] sim::Task<void> post_unexpected(std::size_t count,
                                                std::uint32_t bytes);

  /// Wait until every frame of the send has been DMA'd from host memory
  /// and handed to the MAC (the user buffer has been fully read).
  [[nodiscard]] sim::Task<void> wait_send_local(SendHandle h);

  /// Wait until the receiver's NIC acknowledged the entire message.
  [[nodiscard]] sim::Task<void> wait_send_acked(SendHandle h);

  /// Wait for a posted receive to complete; returns (src, tag, bytes).
  [[nodiscard]] sim::Task<RecvResult> wait_recv(RecvHandle h);

  /// Non-blocking completion probes.
  [[nodiscard]] bool test_recv(const RecvHandle& h) const {
    return h->completed || h->failed;
  }
  [[nodiscard]] bool test_send_acked(const SendHandle& h) const {
    return h->acked_done || h->failed;
  }

  /// Remove a not-yet-matched receive descriptor (EMP has no garbage
  /// collection: every descriptor must be used or explicitly unposted).
  /// Returns false if the descriptor had already matched a message.
  [[nodiscard]] sim::Task<bool> unpost_recv(RecvHandle h);

  /// Host-side probe of the unexpected queue: if a completed message from
  /// (src, tag) is waiting there, copy it into `buffer` (the unexpected
  /// path's extra memory copy) and return its metadata without posting any
  /// descriptor.  This is how the substrate consumes acknowledgments kept
  /// on the unexpected queue (paper §6.4).
  [[nodiscard]] sim::Task<std::optional<RecvResult>> try_claim_unexpected(
      std::optional<NodeId> src, Tag tag, std::span<std::uint8_t> buffer);

  /// Non-consuming probe: is a completed message from (src, tag) waiting on
  /// the unexpected queue?  Used by the substrate's select() support for
  /// datagram sockets.
  [[nodiscard]] bool has_unexpected_ready(std::optional<NodeId> src,
                                          Tag tag) const {
    for (const auto* u : unexpected_ready_) {
      bool src_ok = !src.has_value() || *src == u->from;
      if (src_ok && tag == u->tag) return true;
    }
    return false;
  }

  /// Invoked on every completion event (receive completed, send acked,
  /// unexpected message became ready).  The substrate uses it to drive its
  /// select()/blocking machinery from one condition variable.
  void set_completion_hook(std::function<void()> hook) {
    completion_hook_ = std::move(hook);
  }

  // ---- Resource accounting (used by substrate/leak tests) ----
  [[nodiscard]] std::size_t posted_descriptor_count() const {
    return walk_.size() - walk_tombstones_;
  }
  [[nodiscard]] std::size_t unexpected_free_count() const;
  [[nodiscard]] std::size_t unexpected_ready_count() const {
    return unexpected_ready_.size();
  }
  [[nodiscard]] std::size_t pending_send_count() const {
    return pending_sends_.size();
  }

  /// Cross-layer invariants: in-flight-frame / cumulative-ACK consistency,
  /// receive-binding consistency, translation-cache and history bounds.
  /// Registered with the engine's checker registry at construction.
  void check_invariants() const;

 private:
  /// Registry-backed counters/histograms (EmpStats mirrors the counters).
  /// References are stable: the registry owns the instruments.
  struct Instruments {
    obs::Counter& sends_posted;
    obs::Counter& recvs_posted;
    obs::Counter& data_frames_tx;
    obs::Counter& data_frames_rx;
    obs::Counter& acks_tx;
    obs::Counter& acks_rx;
    obs::Counter& nacks_tx;
    obs::Counter& retransmitted_frames;
    obs::Counter& unmatched_drops;
    obs::Counter& too_small_drops;
    obs::Counter& duplicate_frames;
    obs::Counter& stale_frames;
    obs::Counter& reacks;
    obs::Counter& malformed_frames;
    obs::Counter& misrouted_frames;
    obs::Counter& unexpected_claims;
    obs::Counter& unexpected_evictions;
    obs::Counter& descriptors_walked;
    obs::Counter& pin_hits;
    obs::Counter& pin_misses;
    /// Tag-match walk length per incoming data frame (descriptors +
    /// unexpected entries inspected; the 550 ns/descriptor cost driver).
    obs::Histogram& tag_walk_len;
    /// Live pre-posted descriptor count, observed on both edges of the
    /// queue: as each descriptor files and as each is removed (completion,
    /// unpost, unexpected delivery).
    obs::Histogram& desc_queue_depth;
    explicit Instruments(obs::Scope scope);
  };

  struct UnexpectedEntry {
    std::vector<std::uint8_t> buffer;
    bool bound = false;
    bool ready = false;
    NodeId from = 0;
    Tag tag = 0;
    std::uint32_t msg_id = 0;
    std::uint16_t total_frames = 0;
    std::uint32_t msg_bytes = 0;
    std::vector<bool> got;
    std::uint32_t frames_received = 0;
    std::uint32_t frames_landed = 0;
  };

  // Either a posted descriptor or an unexpected entry can be the home of an
  // in-flight message.  The shared handle keeps the descriptor alive for
  // late duplicates still queued behind firmware work.
  struct Binding {
    RecvHandle recv;
    UnexpectedEntry* unexpected = nullptr;
  };

  static std::uint64_t key_of(NodeId src, std::uint32_t msg_id) {
    return (static_cast<std::uint64_t>(src) << 32) | msg_id;
  }

  // NIC-side paths.  The frame travels by FramePtr through the firmware
  // pipeline — its payload backs the fragment span until the DMA copy in
  // deliver_fragment, after which the frame returns to the NIC's pool.
  void on_frame(net::FramePtr frame);
  void handle_data(const EmpHeader& h, net::FramePtr frame);
  void handle_ack(const EmpHeader& h);
  void handle_nack(const EmpHeader& h);
  void deliver_fragment(Binding binding, const EmpHeader& h,
                        net::FramePtr frame);
  void fragment_landed(const Binding& binding);
  void complete_recv(const RecvHandle& r);
  void unexpected_ready(UnexpectedEntry* u);
  void reconcile_unexpected();
  void send_ack(NodeId to, std::uint32_t msg_id, std::uint32_t count);
  void send_nack(NodeId to, std::uint32_t msg_id, std::uint32_t missing);
  void transmit_frames(const SendHandle& st, std::uint32_t first_frame,
                       bool retransmit = false);
  void arm_retransmit_timer(const SendHandle& st);
  void remember_completed(NodeId src, std::uint32_t msg_id,
                          std::uint16_t total);
  void fail_send(const SendHandle& st);

  /// Host-side: deliver a ready unexpected entry into a receive descriptor
  /// (the extra memory copy of the unexpected path).
  // Takes the handle by value: callers may pass a reference into walk_,
  // which this function erases from.
  void deliver_unexpected(RecvHandle r, UnexpectedEntry* u);

  /// Translation/pin cache lookup; returns the host-time cost.
  sim::Duration pin_cost(const void* base);

  /// Shared body of post_send / post_send_sg (head + body = one message).
  sim::Task<SendHandle> post_send_impl(NodeId dst, Tag tag,
                                       std::span<const std::uint8_t> head,
                                       std::span<const std::uint8_t> body,
                                       const void* pin_base);

  /// Control frames (and legacy callers with an explicit fragment span).
  net::FramePtr make_frame(NodeId dst, const EmpHeader& h,
                           std::span<const std::uint8_t> fragment);

  /// Data frame for `[offset, offset+len)` of the send's payload: sliced
  /// sends reference the pinned slice (header-only encode), legacy sends
  /// copy the fragment into the frame payload.
  net::FramePtr make_data_frame(const SendHandle& st, const EmpHeader& h,
                                std::uint32_t offset, std::uint32_t len);

  /// Memoized resolve_: node ids are tiny and stable, so skip the
  /// std::function call on the per-frame path.
  net::MacAddress resolve_mac(NodeId dst);

  [[nodiscard]] std::uint32_t fragment_size() const {
    return max_fragment_bytes(model_.wire.mtu);
  }

  void fire_completion_hook() {
    if (completion_hook_) completion_hook_();
  }

  sim::Engine* eng_;
  sim::CostModel model_;
  nic::NicDevice& nic_;
  sim::SerialResource& host_cpu_;
  NodeId self_;
  std::function<net::MacAddress(NodeId)> resolve_;
  EmpConfig config_;
  Instruments ctr_;
  obs::Counter* bytes_copied_;  // engine-wide "host/bytes_copied"
  obs::Tracer& tracer_;
  std::uint32_t trk_lib_;  // ("h<N>", "emp") host-library timeline track
  std::uint32_t trk_fw_;   // ("h<N>", "emp-fw") NIC-firmware timeline track
  std::function<void()> completion_hook_;

  std::uint32_t next_msg_id_ = 1;

  /// Remove `r` from the walk list by tombstoning its slot (null entry;
  /// post order preserved), compacting only when tombstones outnumber live
  /// descriptors.  No-op if `r` never filed.  Observes desc_queue_depth.
  void walk_remove(const RecvHandle& r);

  // NIC-side receive state.  walk_ holds pre-posted descriptors in post
  // order; null entries are tombstones of removed descriptors (counted by
  // walk_tombstones_) that every scan skips without charging modeled
  // per-descriptor walk time — the NIC's list never contained them.
  std::vector<RecvHandle> walk_;
  std::size_t walk_tombstones_ = 0;
  std::list<UnexpectedEntry> unexpected_pool_;
  std::vector<UnexpectedEntry*> unexpected_ready_;
  std::unordered_map<std::uint64_t, Binding> bound_;
  std::unordered_map<std::uint64_t, std::uint16_t> completed_history_;
  std::deque<std::uint64_t> completed_order_;

  // NIC-side transmit state.
  std::unordered_map<std::uint32_t, SendHandle> pending_sends_;

  // Host-side translation cache (LRU over region base addresses).
  std::list<const void*> pin_lru_;
  std::unordered_map<const void*, std::list<const void*>::iterator> pin_map_;

  // NodeId -> MAC memo for the per-frame transmit path.
  std::unordered_map<NodeId, net::MacAddress> resolve_cache_;

  // Last member: deregisters before the state it inspects is torn down.
  check::ScopedChecker inv_check_;
};

}  // namespace ulsocks::emp
