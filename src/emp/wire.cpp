#include "emp/wire.hpp"

#include <cstring>

namespace ulsocks::emp {

namespace {

void store16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void store32(std::uint8_t* p, std::uint32_t v) {
  store16(p, static_cast<std::uint16_t>(v));
  store16(p + 2, static_cast<std::uint16_t>(v >> 16));
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] |
                                    (static_cast<std::uint16_t>(in[at + 1])
                                     << 8));
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint32_t>(get16(in, at)) |
         (static_cast<std::uint32_t>(get16(in, at + 2)) << 16);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const EmpHeader& h,
                                       std::span<const std::uint8_t> fragment) {
  std::vector<std::uint8_t> out;
  encode_frame_into(h, fragment, out);
  return out;
}

namespace {

void build_header(const EmpHeader& h, std::uint8_t* hdr) {
  hdr[0] = static_cast<std::uint8_t>(h.kind);
  hdr[1] = 0;  // reserved / alignment
  store16(hdr + 2, h.src_node);
  store16(hdr + 4, h.dst_node);
  store16(hdr + 6, h.tag);
  store32(hdr + 8, h.msg_id);
  store16(hdr + 12, h.frame_index);
  store16(hdr + 14, h.total_frames);
  // The final word is msg_bytes for data frames and ack_value for control
  // frames (control frames carry no payload, data frames carry no ack).
  store32(hdr + 16, h.kind == FrameKind::kData ? h.msg_bytes : h.ack_value);
}

}  // namespace

void encode_frame_into(const EmpHeader& h,
                       std::span<const std::uint8_t> fragment,
                       std::vector<std::uint8_t>& out) {
  // Assemble the header on the stack, then append header and payload as
  // two bulk ranges: one capacity check per range instead of one per byte
  // (this runs once per frame on the simulator's hottest path).
  std::uint8_t hdr[kHeaderBytes];
  build_header(h, hdr);
  out.clear();
  out.reserve(kHeaderBytes + fragment.size());
  out.insert(out.end(), hdr, hdr + kHeaderBytes);
  out.insert(out.end(), fragment.begin(), fragment.end());
}

void encode_header_into(const EmpHeader& h, std::vector<std::uint8_t>& out) {
  std::uint8_t hdr[kHeaderBytes];
  build_header(h, hdr);
  out.clear();
  out.insert(out.end(), hdr, hdr + kHeaderBytes);
}

std::optional<DecodedFrame> decode_frame(std::span<const std::uint8_t> p) {
  if (p.size() < kHeaderBytes) return std::nullopt;
  EmpHeader h;
  auto kind = p[0];
  if (kind < 1 || kind > 3) return std::nullopt;
  h.kind = static_cast<FrameKind>(kind);
  h.src_node = get16(p, 2);
  h.dst_node = get16(p, 4);
  h.tag = get16(p, 6);
  h.msg_id = get32(p, 8);
  h.frame_index = get16(p, 12);
  h.total_frames = get16(p, 14);
  h.msg_bytes = get32(p, 16);
  // ack_value occupies bytes 16..19 only for control frames; data frames
  // use those bytes for msg_bytes.  Control frames carry no msg_bytes.
  if (h.kind != FrameKind::kData) {
    h.ack_value = h.msg_bytes;
    h.msg_bytes = 0;
  }
  if (h.kind == FrameKind::kData && h.total_frames == 0) return std::nullopt;
  return DecodedFrame{h, p.subspan(kHeaderBytes)};
}

}  // namespace ulsocks::emp
