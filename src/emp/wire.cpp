#include "emp/wire.hpp"

#include <cstring>

namespace ulsocks::emp {

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v));
  put16(out, static_cast<std::uint16_t>(v >> 16));
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] |
                                    (static_cast<std::uint16_t>(in[at + 1])
                                     << 8));
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint32_t>(get16(in, at)) |
         (static_cast<std::uint32_t>(get16(in, at + 2)) << 16);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const EmpHeader& h,
                                       std::span<const std::uint8_t> fragment) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + fragment.size());
  out.push_back(static_cast<std::uint8_t>(h.kind));
  out.push_back(0);  // reserved / alignment
  put16(out, h.src_node);
  put16(out, h.dst_node);
  put16(out, h.tag);
  put32(out, h.msg_id);
  put16(out, h.frame_index);
  put16(out, h.total_frames);
  // The final word is msg_bytes for data frames and ack_value for control
  // frames (control frames carry no payload, data frames carry no ack).
  put32(out, h.kind == FrameKind::kData ? h.msg_bytes : h.ack_value);
  out.insert(out.end(), fragment.begin(), fragment.end());
  return out;
}

std::optional<DecodedFrame> decode_frame(std::span<const std::uint8_t> p) {
  if (p.size() < kHeaderBytes) return std::nullopt;
  EmpHeader h;
  auto kind = p[0];
  if (kind < 1 || kind > 3) return std::nullopt;
  h.kind = static_cast<FrameKind>(kind);
  h.src_node = get16(p, 2);
  h.dst_node = get16(p, 4);
  h.tag = get16(p, 6);
  h.msg_id = get32(p, 8);
  h.frame_index = get16(p, 12);
  h.total_frames = get16(p, 14);
  h.msg_bytes = get32(p, 16);
  // ack_value occupies bytes 16..19 only for control frames; data frames
  // use those bytes for msg_bytes.  Control frames carry no msg_bytes.
  if (h.kind != FrameKind::kData) {
    h.ack_value = h.msg_bytes;
    h.msg_bytes = 0;
  }
  if (h.kind == FrameKind::kData && h.total_frames == 0) return std::nullopt;
  return DecodedFrame{h, p.subspan(kHeaderBytes)};
}

}  // namespace ulsocks::emp
