// EMP frame wire format.
//
// Every EMP frame starts with a fixed 20-byte header followed by the data
// fragment (empty for ACK/NACK frames).  Fields are encoded little-endian.
// The receiving NIC classifies frames by `kind`, exactly as the paper
// describes ("classified as a data, header, acknowledgment or a negative
// acknowledgment frame" — the first frame of a message, which carries the
// message length, plays the "header" role).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ulsocks::emp {

/// Small integer node index, as EMP uses ("source index of the sender").
using NodeId = std::uint16_t;
/// Arbitrary user-provided 16-bit tag used for NIC tag matching.
using Tag = std::uint16_t;

enum class FrameKind : std::uint8_t {
  kData = 1,
  kAck = 2,
  kNack = 3,
};

struct EmpHeader {
  FrameKind kind = FrameKind::kData;
  NodeId src_node = 0;
  NodeId dst_node = 0;
  Tag tag = 0;
  std::uint32_t msg_id = 0;        // sender-local message sequence number
  std::uint16_t frame_index = 0;   // 0-based fragment index
  std::uint16_t total_frames = 0;  // fragments in the message
  std::uint32_t msg_bytes = 0;     // total message payload size
  /// ACK: cumulative count of frames received.  NACK: index of the first
  /// missing frame.
  std::uint32_t ack_value = 0;

  friend bool operator==(const EmpHeader&, const EmpHeader&) = default;
};

inline constexpr std::size_t kHeaderBytes = 20;

// Layout pin: the encoder serializes kind (1 byte + 1 reserved), the five
// 16/32-bit id fields, and one final word shared by msg_bytes (data) and
// ack_value (control) — exactly kHeaderBytes on the wire.  Growing
// EmpHeader must fail here until kHeaderBytes and encode_/decode_ are
// consciously revised together.
static_assert(sizeof(EmpHeader::kind) + 1 /* reserved */ +
                      sizeof(EmpHeader::src_node) +
                      sizeof(EmpHeader::dst_node) + sizeof(EmpHeader::tag) +
                      sizeof(EmpHeader::msg_id) +
                      sizeof(EmpHeader::frame_index) +
                      sizeof(EmpHeader::total_frames) +
                      sizeof(EmpHeader::msg_bytes) ==
                  kHeaderBytes,
              "EmpHeader layout drifted: revise kHeaderBytes and the "
              "encode_/decode_ functions together");
static_assert(sizeof(EmpHeader::ack_value) == sizeof(EmpHeader::msg_bytes),
              "ack_value shares the final EmpHeader wire word with "
              "msg_bytes; the two must stay the same width");

/// Largest data fragment per Ethernet frame (MTU minus EMP header).
[[nodiscard]] constexpr std::uint32_t max_fragment_bytes(std::uint32_t mtu) {
  return mtu - static_cast<std::uint32_t>(kHeaderBytes);
}

/// Number of frames needed for a message of `bytes` (at least one, so that
/// zero-byte messages still exist on the wire).
[[nodiscard]] constexpr std::uint16_t frames_for(std::uint32_t bytes,
                                                 std::uint32_t mtu) {
  std::uint32_t frag = max_fragment_bytes(mtu);
  std::uint32_t n = (bytes + frag - 1) / frag;
  return static_cast<std::uint16_t>(n == 0 ? 1 : n);
}

/// Serialize header + fragment into a frame payload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const EmpHeader& h, std::span<const std::uint8_t> fragment);

/// Same, but into `out` (cleared first).  Lets pooled frames reuse their
/// payload vector's capacity instead of allocating per frame.
void encode_frame_into(const EmpHeader& h,
                       std::span<const std::uint8_t> fragment,
                       std::vector<std::uint8_t>& out);

/// Header-only encode for the sliced data path: `out` receives just the
/// 20 header bytes; the fragment rides the frame's scatter-gather slice
/// list instead of being copied in.
void encode_header_into(const EmpHeader& h, std::vector<std::uint8_t>& out);

/// Parse a frame payload.  Returns nullopt for malformed payloads (too
/// short, bad kind, or length mismatch).
struct DecodedFrame {
  EmpHeader header;
  std::span<const std::uint8_t> fragment;  // view into the input payload
};
static_assert(sizeof(DecodedFrame) ==
                  sizeof(EmpHeader) + sizeof(std::span<const std::uint8_t>),
              "DecodedFrame is a parsed header plus a borrowed view; "
              "adding owning state would put an allocation on the per-"
              "frame decode path");
[[nodiscard]] std::optional<DecodedFrame> decode_frame(
    std::span<const std::uint8_t> payload);

}  // namespace ulsocks::emp
