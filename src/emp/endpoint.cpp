#include "emp/endpoint.hpp"

#include <algorithm>
#include <cstring>

#include "check/invariant.hpp"
#include "sim/trace.hpp"

namespace ulsocks::emp {

namespace {

/// One message may not exceed what total_frames (16-bit) can describe.
constexpr std::uint32_t kMaxFramesPerMessage = 65'535;

std::string host_label(NodeId self) { return "h" + std::to_string(self); }

}  // namespace

EmpEndpoint::Instruments::Instruments(obs::Scope scope)
    : sends_posted(scope.counter("sends_posted")),
      recvs_posted(scope.counter("recvs_posted")),
      data_frames_tx(scope.counter("data_frames_tx")),
      data_frames_rx(scope.counter("data_frames_rx")),
      acks_tx(scope.counter("acks_tx")),
      acks_rx(scope.counter("acks_rx")),
      nacks_tx(scope.counter("nacks_tx")),
      retransmitted_frames(scope.counter("retransmitted_frames")),
      unmatched_drops(scope.counter("unmatched_drops")),
      too_small_drops(scope.counter("too_small_drops")),
      duplicate_frames(scope.counter("duplicate_frames")),
      stale_frames(scope.counter("stale_frames")),
      reacks(scope.counter("reacks")),
      malformed_frames(scope.counter("malformed_frames")),
      misrouted_frames(scope.counter("misrouted_frames")),
      unexpected_claims(scope.counter("unexpected_claims")),
      unexpected_evictions(scope.counter("unexpected_evictions")),
      descriptors_walked(scope.counter("descriptors_walked")),
      pin_hits(scope.counter("pin_hits")),
      pin_misses(scope.counter("pin_misses")),
      tag_walk_len(scope.histogram("tag_walk_len")),
      desc_queue_depth(scope.histogram("desc_queue_depth")) {}

EmpEndpoint::EmpEndpoint(sim::Engine& eng, const sim::CostModel& model,
                         nic::NicDevice& nic, sim::SerialResource& host_cpu,
                         NodeId self,
                         std::function<net::MacAddress(NodeId)> resolve,
                         EmpConfig config)
    : eng_(&eng),
      model_(model),
      nic_(nic),
      host_cpu_(host_cpu),
      self_(self),
      resolve_(std::move(resolve)),
      config_(config),
      ctr_(obs::Scope(eng.metrics(), host_label(self) + "/emp")),
      bytes_copied_(&eng.metrics().counter("host/bytes_copied")),
      tracer_(eng.tracer()),
      trk_lib_(tracer_.track(host_label(self), "emp")),
      trk_fw_(tracer_.track(host_label(self), "emp-fw")),
      inv_check_(eng.checks(), "emp.endpoint",
                 [this] { check_invariants(); }) {
  nic_.set_rx_handler(net::EtherType::kEmp,
                      [this](net::FramePtr f) { on_frame(std::move(f)); });
}

void EmpEndpoint::rebind(sim::Engine& eng) {
  eng_ = &eng;
  bytes_copied_ = &eng.metrics().counter("host/bytes_copied");
  // Parked coroutines move with their domain; the events that wake them
  // must schedule the resume on the engine that now steps them.
  for (const RecvHandle& r : walk_) {
    if (r) r->done_evt.rebind(eng);
  }
  // Visit order is irrelevant below: each handle is retargeted
  // independently and nothing is scheduled or allocated.
  for (auto& [key, b] : bound_) {  // NOLINT(ulsan-determinism)
    if (b.recv) b.recv->done_evt.rebind(eng);
  }
  for (auto& [id, st] : pending_sends_) {  // NOLINT(ulsan-determinism)
    st->local_evt.rebind(eng);
    st->acked_evt.rebind(eng);
  }
  inv_check_.move_to(eng.checks());
}

EmpStats EmpEndpoint::stats() const noexcept {
  EmpStats s;
  s.sends_posted = ctr_.sends_posted.value();
  s.recvs_posted = ctr_.recvs_posted.value();
  s.data_frames_tx = ctr_.data_frames_tx.value();
  s.data_frames_rx = ctr_.data_frames_rx.value();
  s.acks_tx = ctr_.acks_tx.value();
  s.acks_rx = ctr_.acks_rx.value();
  s.nacks_tx = ctr_.nacks_tx.value();
  s.retransmitted_frames = ctr_.retransmitted_frames.value();
  s.unmatched_drops = ctr_.unmatched_drops.value();
  s.too_small_drops = ctr_.too_small_drops.value();
  s.duplicate_frames = ctr_.duplicate_frames.value();
  s.stale_frames = ctr_.stale_frames.value();
  s.reacks = ctr_.reacks.value();
  s.malformed_frames = ctr_.malformed_frames.value();
  s.misrouted_frames = ctr_.misrouted_frames.value();
  s.unexpected_claims = ctr_.unexpected_claims.value();
  s.unexpected_evictions = ctr_.unexpected_evictions.value();
  s.descriptors_walked = ctr_.descriptors_walked.value();
  s.pin_hits = ctr_.pin_hits.value();
  s.pin_misses = ctr_.pin_misses.value();
  return s;
}

void EmpEndpoint::check_invariants() const {
  // Reliability: a send still pending has neither finished nor failed, its
  // cumulative-ACK progress never exceeds the frames that exist, and the
  // give-up counter is within its configured bound.
  // Order-insensitive sweep: asserts per-entry bounds, mutates nothing,
  // schedules nothing — hash order cannot leak into simulated state.
  for (const auto& [id, st] : pending_sends_) {  // NOLINT(ulsan-determinism)
    ULSOCKS_INVARIANT(
        !st->acked_done && !st->failed,
        check::msgf("node%u msg=%u finished send still pending", self_, id));
    ULSOCKS_INVARIANT(
        st->acked_frames <= st->total_frames,
        check::msgf("node%u msg=%u acked %u of %u frames", self_, id,
                    st->acked_frames, st->total_frames));
    ULSOCKS_INVARIANT(
        st->retries <= config_.max_retries,
        check::msgf("node%u msg=%u retries=%u > max=%u", self_, id,
                    st->retries, config_.max_retries));
  }
  // Receive bindings: every in-flight message is homed in exactly one
  // descriptor or unexpected entry, with per-frame accounting in bounds.
  // Order-insensitive sweep, as above: pure per-binding invariant checks.
  for (const auto& [key, b] : bound_) {  // NOLINT(ulsan-determinism)
    ULSOCKS_INVARIANT(
        (b.recv != nullptr) != (b.unexpected != nullptr),
        check::msgf("node%u binding %llx must have exactly one home", self_,
                    static_cast<unsigned long long>(key)));
    if (b.recv) {
      ULSOCKS_INVARIANT(
          b.recv->bound,
          check::msgf("node%u bound map points at unbound descriptor",
                      self_));
      ULSOCKS_INVARIANT(
          b.recv->frames_received <= b.recv->total_frames &&
              b.recv->frames_landed <= b.recv->total_frames,
          check::msgf("node%u msg from=%u frame accounting out of bounds: "
                      "received=%u landed=%u total=%u",
                      self_, b.recv->from, b.recv->frames_received,
                      b.recv->frames_landed, b.recv->total_frames));
    }
  }
  for (const auto* u : unexpected_ready_) {
    ULSOCKS_INVARIANT(
        u->bound && u->ready,
        check::msgf("node%u unexpected-ready entry not bound+ready", self_));
  }
  // Translation cache: map and LRU list describe the same set, and the
  // eviction policy keeps it within capacity.
  ULSOCKS_INVARIANT(
      pin_map_.size() == pin_lru_.size(),
      check::msgf("node%u translation cache map/LRU diverged: %zu != %zu",
                  self_, pin_map_.size(), pin_lru_.size()));
  ULSOCKS_INVARIANT(
      pin_lru_.size() <= config_.translation_cache_capacity,
      check::msgf("node%u translation cache over capacity: %zu > %zu", self_,
                  pin_lru_.size(), config_.translation_cache_capacity));
  // Duplicate-suppression history is bounded and consistent.
  ULSOCKS_INVARIANT(
      completed_history_.size() == completed_order_.size() &&
          completed_history_.size() <= config_.completed_history,
      check::msgf("node%u completed history out of bounds: map=%zu order=%zu "
                  "cap=%zu",
                  self_, completed_history_.size(), completed_order_.size(),
                  config_.completed_history));
}

// ---------------------------------------------------------------------------
// Host-side operations
// ---------------------------------------------------------------------------

sim::Duration EmpEndpoint::pin_cost(const void* base) {
  auto it = pin_map_.find(base);
  if (it != pin_map_.end()) {
    ++ctr_.pin_hits;
    pin_lru_.splice(pin_lru_.begin(), pin_lru_, it->second);
    return model_.host.pin_cache_hit_ns;
  }
  ++ctr_.pin_misses;
  pin_lru_.push_front(base);
  pin_map_[base] = pin_lru_.begin();
  if (pin_lru_.size() > config_.translation_cache_capacity) {
    pin_map_.erase(pin_lru_.back());
    pin_lru_.pop_back();
  }
  return model_.host.syscall_ns + model_.host.pin_region_ns;
}

sim::Task<SendHandle> EmpEndpoint::post_send(
    NodeId dst, Tag tag, std::span<const std::uint8_t> data) {
  return post_send_impl(dst, tag, {}, data, data.data());
}

sim::Task<SendHandle> EmpEndpoint::post_send_sg(
    NodeId dst, Tag tag, std::span<const std::uint8_t> head,
    std::span<const std::uint8_t> body, const void* pin_base) {
  return post_send_impl(dst, tag, head, body, pin_base);
}

sim::Task<SendHandle> EmpEndpoint::post_send_impl(
    NodeId dst, Tag tag, std::span<const std::uint8_t> head,
    std::span<const std::uint8_t> body, const void* pin_base) {
  const sim::Time t0 = eng_->now();
  const std::uint32_t total_bytes =
      static_cast<std::uint32_t>(head.size() + body.size());
  sim::Duration cost = model_.host.desc_build_ns + pin_cost(pin_base) +
                       model_.nic.mailbox_post_ns;
  // Capture the payload before yielding the CPU: the caller's spans only
  // have to outlive the synchronous prefix of this call, so callers may
  // recycle one staging buffer across back-to-back sends.  This is the
  // message's one host copy: with slicing on it lands in a pooled
  // refcounted slice that every frame references; legacy mode
  // deep-snapshots into a per-send vector instead.  Both variants charge
  // the same simulated time — only wall-clock and the copy tally differ.
  net::PayloadSlice pinned;
  std::vector<std::uint8_t> payload;
  const bool sliced = net::SlicePool::slicing_enabled();
  if (sliced) {
    pinned = nic_.slice_pool().gather(head, body);
  } else {
    payload.reserve(total_bytes);
    payload.insert(payload.end(), head.begin(), head.end());
    payload.insert(payload.end(), body.begin(), body.end());
  }
  *bytes_copied_ += total_bytes;
  co_await host_cpu_.use(cost);

  auto st = std::make_shared<SendState>(*eng_);
  st->dst = dst;
  st->tag = tag;
  st->msg_id = next_msg_id_++;
  st->data = std::move(payload);
  st->pinned = std::move(pinned);
  st->sliced = sliced;
  st->total_frames = frames_for(total_bytes, model_.wire.mtu);
  ULSOCKS_INVARIANT(
      st->total_frames <= kMaxFramesPerMessage,
      check::msgf("message of %u bytes exceeds the 16-bit frame count",
                  total_bytes));
  pending_sends_[st->msg_id] = st;
  ++ctr_.sends_posted;

  nic_.fw_tx(model_.nic.fw_tx_post_ns,
             [this, st] { transmit_frames(st, 0); });
  if (tracer_.enabled()) {
    tracer_.complete(trk_lib_, t0, eng_->now() - t0, "post_send",
                     "\"dst\":" + std::to_string(dst) +
                         ",\"bytes\":" + std::to_string(total_bytes));
  }
  co_return st;
}

sim::Task<RecvHandle> EmpEndpoint::post_recv(std::optional<NodeId> src,
                                             Tag tag,
                                             std::span<std::uint8_t> buffer,
                                             bool want_slices) {
  const sim::Time t0 = eng_->now();
  sim::Duration cost = model_.host.desc_build_ns + pin_cost(buffer.data()) +
                       model_.nic.mailbox_post_ns;
  co_await host_cpu_.use(cost);

  auto r = std::make_shared<RecvState>(*eng_);
  r->src_match = src;
  r->tag = tag;
  r->buffer = buffer.data();
  r->capacity = static_cast<std::uint32_t>(buffer.size());
  r->want_slices = want_slices && net::SlicePool::slicing_enabled();
  ++ctr_.recvs_posted;
  ULS_TRACE(*eng_, "emp", "node%u post_recv src=%d tag=%u h=%p", self_,
            src ? (int)*src : -1, tag, (void*)r.get());

  // File the descriptor with the NIC; it joins the tag-matching walk list
  // in post order.  Unexpected-queue messages are delivered exclusively by
  // reconcile_unexpected() — at filing time here, and at message-completion
  // time in unexpected_ready() — which always scans the walk list in post
  // order.  Claiming directly at post time would hand the message to an
  // arbitrary descriptor and break the FIFO the substrate's byte stream
  // depends on.
  nic_.fw_rx(model_.nic.fw_rx_post_ns, [this, r] {
    if (r->unposted || r->completed) return;
    r->filed = true;
    r->walk_slot = walk_.size();
    walk_.push_back(r);
    ctr_.desc_queue_depth.observe(walk_.size() - walk_tombstones_);
    reconcile_unexpected();
  });
  if (tracer_.enabled()) {
    tracer_.complete(trk_lib_, t0, eng_->now() - t0, "post_recv",
                     "\"tag\":" + std::to_string(tag) +
                         ",\"capacity\":" + std::to_string(buffer.size()));
  }
  co_return r;
}

sim::Task<void> EmpEndpoint::post_unexpected(std::size_t count,
                                             std::uint32_t bytes) {
  // Library-allocated temporary buffers carved from one registered arena:
  // one pin syscall for the batch, one descriptor build each.
  sim::Duration cost =
      static_cast<sim::Duration>(count) * model_.host.desc_build_ns +
      model_.host.syscall_ns + model_.host.pin_region_ns +
      model_.nic.mailbox_post_ns;
  co_await host_cpu_.use(cost);
  nic_.fw_rx(static_cast<sim::Duration>(count) * model_.nic.fw_rx_post_ns,
             [this, count, bytes] {
               for (std::size_t i = 0; i < count; ++i) {
                 unexpected_pool_.emplace_back();
                 unexpected_pool_.back().buffer.resize(bytes);
               }
             });
}

sim::Task<void> EmpEndpoint::wait_send_local(SendHandle h) {
  co_await h->local_evt.wait();
  co_await host_cpu_.use(model_.host.poll_iteration_ns);
  if (h->failed) throw EmpError("EMP send failed (retries exhausted)");
}

sim::Task<void> EmpEndpoint::wait_send_acked(SendHandle h) {
  co_await h->acked_evt.wait();
  co_await host_cpu_.use(model_.host.poll_iteration_ns);
  if (h->failed) throw EmpError("EMP send failed (retries exhausted)");
}

sim::Task<RecvResult> EmpEndpoint::wait_recv(RecvHandle h) {
  co_await h->done_evt.wait();
  co_await host_cpu_.use(model_.host.poll_iteration_ns);
  if (h->failed) throw EmpError("EMP receive failed");
  co_return h->result;
}

sim::Task<bool> EmpEndpoint::unpost_recv(RecvHandle h) {
  co_await host_cpu_.use(model_.nic.mailbox_post_ns);
  if (h->bound || h->completed) co_return false;
  h->unposted = true;
  nic_.fw_rx(model_.nic.fw_rx_post_ns, [this, h] { walk_remove(h); });
  co_return true;
}

sim::Task<std::optional<RecvResult>> EmpEndpoint::try_claim_unexpected(
    std::optional<NodeId> src, Tag tag, std::span<std::uint8_t> buffer) {
  co_await host_cpu_.use(model_.host.poll_iteration_ns);
  for (auto* u : unexpected_ready_) {
    bool src_ok = !src.has_value() || *src == u->from;
    if (!src_ok || tag != u->tag || u->msg_bytes > buffer.size()) continue;
    std::uint32_t bytes = u->msg_bytes;
    ULS_TRACE(*eng_, "emp", "node%u uq-claim from=%u tag=%u", self_, u->from,
              u->tag);
    RecvResult result{u->from, u->tag, bytes};
    if (bytes > 0) {
      std::memcpy(buffer.data(), u->buffer.data(), bytes);
      *bytes_copied_ += bytes;
    }
    std::erase(unexpected_ready_, u);
    bound_.erase(key_of(u->from, u->msg_id));
    remember_completed(u->from, u->msg_id, u->total_frames);
    u->bound = false;
    u->ready = false;
    u->got.clear();
    u->frames_received = 0;
    u->frames_landed = 0;
    co_await host_cpu_.use(model_.memcpy_cost(bytes));
    co_return result;
  }
  co_return std::nullopt;
}

std::size_t EmpEndpoint::unexpected_free_count() const {
  std::size_t n = 0;
  for (const auto& u : unexpected_pool_) {
    if (!u.bound) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// NIC-side transmit path
// ---------------------------------------------------------------------------

net::MacAddress EmpEndpoint::resolve_mac(NodeId dst) {
  auto it = resolve_cache_.find(dst);
  if (it != resolve_cache_.end()) return it->second;
  net::MacAddress mac = resolve_(dst);
  resolve_cache_.emplace(dst, mac);
  return mac;
}

net::FramePtr EmpEndpoint::make_frame(
    NodeId dst, const EmpHeader& h,
    std::span<const std::uint8_t> fragment) {
  net::FramePtr f = nic_.frame_pool().acquire();
  f->dst = resolve_mac(dst);
  f->src = nic_.mac();
  f->type = net::EtherType::kEmp;
  encode_frame_into(h, fragment, f->payload);
  return f;
}

net::FramePtr EmpEndpoint::make_data_frame(const SendHandle& st,
                                           const EmpHeader& h,
                                           std::uint32_t offset,
                                           std::uint32_t len) {
  net::FramePtr f = nic_.frame_pool().acquire();
  f->dst = resolve_mac(st->dst);
  f->src = nic_.mac();
  f->type = net::EtherType::kEmp;
  if (st->sliced) {
    // Zero-copy: the frame carries the 20 header bytes inline and
    // references the pinned payload through a subslice.
    encode_header_into(h, f->payload);
    if (len > 0) f->slices.push_back(st->pinned.subslice(offset, len));
  } else {
    encode_frame_into(
        h, std::span<const std::uint8_t>(st->data).subspan(offset, len),
        f->payload);
    *bytes_copied_ += len;
  }
  return f;
}

void EmpEndpoint::transmit_frames(const SendHandle& st,
                                  std::uint32_t first_frame, bool retransmit) {
  const std::uint32_t total = st->total_frames;
  const std::uint32_t frag = fragment_size();
  for (std::uint32_t idx = first_frame; idx < total; ++idx) {
    if (retransmit) {
      ++ctr_.retransmitted_frames;
      if (tracer_.enabled()) {
        tracer_.instant(trk_fw_, eng_->now(), "retransmit");
      }
    }
    const std::uint32_t bytes = st->size_bytes();
    std::uint32_t offset0 = idx * frag;
    std::uint32_t len0 =
        bytes == 0 ? 0 : std::min<std::uint32_t>(frag, bytes - offset0);
    nic_.tx_cpu().run(
        model_.fw_tx_frame_cost(len0),
        [this, st, idx, total, offset0, len0]() mutable {
          nic_.dma_transfer(
              len0 + kHeaderBytes,
              [this, st = std::move(st), idx, total, offset = offset0,
               len = len0] {
                EmpHeader h;
                h.kind = FrameKind::kData;
                h.src_node = self_;
                h.dst_node = st->dst;
                h.tag = st->tag;
                h.msg_id = st->msg_id;
                h.frame_index = static_cast<std::uint16_t>(idx);
                h.total_frames = static_cast<std::uint16_t>(total);
                h.msg_bytes = st->size_bytes();
                ++ctr_.data_frames_tx;
                nic_.mac_send(make_data_frame(st, h, offset, len));
                if (idx + 1 == total) {
                  if (!st->local_done) {
                    st->local_done = true;
                    st->local_evt.set();
                  }
                  arm_retransmit_timer(st);
                }
              });
        });
  }
}

void EmpEndpoint::arm_retransmit_timer(const SendHandle& st) {
  eng_->schedule_after(config_.retransmit_timeout, [this, st] {
    if (st->acked_done || st->failed) return;
    if (++st->retries > config_.max_retries) {
      fail_send(st);
      return;
    }
    // Cumulative acks: resend everything past the acknowledged prefix.
    transmit_frames(st, st->acked_frames, /*retransmit=*/true);
  });
}

void EmpEndpoint::fail_send(const SendHandle& st) {
  st->failed = true;
  st->local_evt.set();
  st->acked_evt.set();
  pending_sends_.erase(st->msg_id);
  fire_completion_hook();
}

// ---------------------------------------------------------------------------
// NIC-side receive path
// ---------------------------------------------------------------------------

void EmpEndpoint::on_frame(net::FramePtr frame) {
  auto decoded = decode_frame(frame->payload);
  if (!decoded) {
    ++ctr_.malformed_frames;
    return;
  }
  EmpHeader h = decoded->header;
  if (h.dst_node != self_) {
    ++ctr_.misrouted_frames;  // not ours (should be filtered by the MAC)
    return;
  }
  switch (h.kind) {
    case FrameKind::kData: {
      // The frame itself rides through the firmware pipeline; its payload
      // backs the fragment until DMA, so no per-frame fragment copy.
      // Fragment length comes from payload_bytes(): sliced frames carry
      // the fragment in the scatter-gather list, so the inline-payload
      // span decode_frame returns would undercount and skew firmware
      // costs between the A/B modes.
      std::size_t frag_len = frame->payload_bytes() - kHeaderBytes;
      nic_.fw_rx(model_.fw_rx_frame_cost(frag_len),
                 [this, h, f = std::move(frame)]() mutable {
                   handle_data(h, std::move(f));
                 });
      break;
    }
    case FrameKind::kAck:
      nic_.fw_rx(model_.nic.fw_ack_rx_ns, [this, h] { handle_ack(h); });
      break;
    case FrameKind::kNack:
      nic_.fw_rx(model_.nic.fw_ack_rx_ns, [this, h] { handle_nack(h); });
      break;
  }
}

void EmpEndpoint::handle_data(const EmpHeader& h, net::FramePtr frame) {
  ++ctr_.data_frames_rx;
  const std::uint64_t key = key_of(h.src_node, h.msg_id);

  // A message the receiver already completed must never re-match a fresh
  // descriptor: a retransmission that raced with a slow ack would otherwise
  // be delivered twice.  Re-ack it and drop the frame.
  if (auto hist = completed_history_.find(key);
      hist != completed_history_.end()) {
    ++ctr_.reacks;
    ++ctr_.duplicate_frames;
    send_ack(h.src_node, h.msg_id, hist->second);
    return;
  }

  Binding binding{};
  std::size_t walked = 0;

  if (auto it = bound_.find(key); it != bound_.end()) {
    // Later frame of an in-flight message: the receive record is found
    // directly through the frame's source index — only the FIRST frame of
    // a message pays the pre-posted-queue walk.  (Without this, a receiver
    // with many posted descriptors would pay the full walk on every frame
    // of a bulk message and fall behind the wire.)
    binding = it->second;
    walked = 1;
  } else {
    // First frame of a message: walk pre-posted descriptors in post order.
    bool too_small_candidate = false;
    for (std::size_t i = 0; i < walk_.size() && !binding.recv; ++i) {
      RecvState* r = walk_[i].get();
      // Tombstones are host-side bookkeeping; the NIC's walk list never
      // held them, so they cost no modeled per-descriptor match time.
      if (r == nullptr) continue;
      ++walked;
      if (r->bound) continue;
      bool src_ok = !r->src_match.has_value() || *r->src_match == h.src_node;
      if (!src_ok || r->tag != h.tag) continue;
      if (h.msg_bytes > r->capacity) {
        too_small_candidate = true;
        continue;
      }
      r->bound = true;
      r->from = h.src_node;
      r->msg_id = h.msg_id;
      r->total_frames = h.total_frames;
      r->msg_bytes = h.msg_bytes;
      r->got.assign(h.total_frames, false);
      if (r->want_slices) r->parts.assign(h.total_frames, net::PayloadSlice{});
      binding.recv = walk_[i];
    }
    if (!binding.recv) {
      // Unexpected queue: checked after every pre-posted descriptor.
      // High-range tags (connection requests) are excluded so the backlog
      // descriptors alone bound pending connections (§5.1).
      bool uq_eligible = h.tag <= config_.unexpected_max_tag;
      if (uq_eligible) {
        // If the pool is exhausted, recycle the oldest unclaimed entry:
        // stale control messages from closed connections must not starve
        // live traffic.
        bool has_free = false;
        for (auto& u : unexpected_pool_) {
          if (!u.bound && u.buffer.size() >= h.msg_bytes) {
            has_free = true;
            break;
          }
        }
        if (!has_free && !unexpected_ready_.empty()) {
          UnexpectedEntry* victim = unexpected_ready_.front();
          unexpected_ready_.erase(unexpected_ready_.begin());
          bound_.erase(key_of(victim->from, victim->msg_id));
          victim->bound = false;
          victim->ready = false;
          victim->got.clear();
          victim->frames_received = 0;
          victim->frames_landed = 0;
          ++ctr_.unexpected_evictions;
        }
      }
      for (auto& u : unexpected_pool_) {
        if (!uq_eligible) break;
        ++walked;
        if (u.bound || u.buffer.size() < h.msg_bytes) continue;
        u.bound = true;
        u.from = h.src_node;
        u.tag = h.tag;
        u.msg_id = h.msg_id;
        u.total_frames = h.total_frames;
        u.msg_bytes = h.msg_bytes;
        u.got.assign(h.total_frames, false);
        u.frames_received = 0;
        u.frames_landed = 0;
        binding.unexpected = &u;
        ++ctr_.unexpected_claims;
        break;
      }
    }
    if (!binding.recv && binding.unexpected == nullptr) {
      ctr_.descriptors_walked += walked;
      ctr_.tag_walk_len.observe(walked);
      nic_.rx_cpu().run(
          static_cast<sim::Duration>(walked) *
              model_.nic.tag_match_per_desc_ns,
          [] {});
      if (too_small_candidate) {
        ++ctr_.too_small_drops;
        if (tracer_.enabled()) {
          tracer_.instant(trk_fw_, eng_->now(), "drop_too_small");
        }
      } else {
        // No descriptor: drop.  The sender's timeout retransmits, exactly
        // the behaviour the substrate's flow control exists to avoid.
        ULS_TRACE(*eng_, "emp", "node%u drop src=%u tag=%u msg=%u", self_,
                  h.src_node, h.tag, h.msg_id);
        ++ctr_.unmatched_drops;
        if (tracer_.enabled()) {
          tracer_.instant(trk_fw_, eng_->now(), "drop_unmatched");
        }
      }
      return;
    }
    bound_[key] = binding;
  }

  ctr_.descriptors_walked += walked;
  ctr_.tag_walk_len.observe(walked);
  if (tracer_.enabled()) {
    tracer_.complete(
        trk_fw_, eng_->now(),
        static_cast<sim::Duration>(walked) * model_.nic.tag_match_per_desc_ns,
        "tag_match");
  }
  nic_.rx_cpu().run(
      static_cast<sim::Duration>(walked) * model_.nic.tag_match_per_desc_ns,
      [this, binding, h, f = std::move(frame)]() mutable {
        deliver_fragment(binding, h, std::move(f));
      });
}

void EmpEndpoint::deliver_fragment(Binding binding, const EmpHeader& h,
                                   net::FramePtr frame) {
  const std::size_t frag_len = frame->payload_bytes() - kHeaderBytes;
  std::vector<bool>* got;
  std::uint32_t* received;
  std::uint8_t* dest_base;
  if (binding.recv) {
    got = &binding.recv->got;
    received = &binding.recv->frames_received;
    dest_base = binding.recv->buffer;
  } else {
    // A recv binding's shared handle keeps the descriptor alive, but an
    // unexpected entry is pool storage: by the time this deferred firmware
    // work runs, the entry may have completed, been claimed or evicted, and
    // been re-bound to a DIFFERENT message.  Writing this fragment into the
    // recycled entry would corrupt the new message (and mark it received),
    // so a binding whose entry no longer matches the fragment's (src,
    // msg_id) is dead — drop the fragment.  Per-sender msg_ids never
    // repeat, so a match is unambiguous; the sender keeps retransmitting
    // and the live copy re-binds through the normal tag-match path.
    UnexpectedEntry* u = binding.unexpected;
    if (!u->bound || u->from != h.src_node || u->msg_id != h.msg_id) {
      ++ctr_.stale_frames;
      return;
    }
    got = &u->got;
    received = &u->frames_received;
    dest_base = u->buffer.data();
  }

  if (h.frame_index >= got->size() || (*got)[h.frame_index]) {
    ++ctr_.duplicate_frames;
    // Re-ack the contiguous prefix so a sender that lost our ack makes
    // progress.
    std::uint32_t prefix = 0;
    while (prefix < got->size() && (*got)[prefix]) ++prefix;
    ++ctr_.reacks;
    send_ack(h.src_node, h.msg_id, prefix);
    return;
  }
  (*got)[h.frame_index] = true;
  ++*received;

  // Acks are cumulative: they carry the length of the contiguous prefix of
  // received frames, so the sender can resend exactly from the first hole.
  std::uint32_t prefix = 0;
  while (prefix < got->size() && (*got)[prefix]) ++prefix;

  const std::uint32_t total = h.total_frames;
  bool all_received = *received == total;
  if (*received % config_.ack_window == 0 || all_received) {
    send_ack(h.src_node, h.msg_id, prefix);
  }

  // Gap detection: a frame far ahead of the first hole triggers a NACK.
  if (!all_received && h.frame_index >= 2 * config_.ack_window) {
    std::uint32_t first_missing = 0;
    while (first_missing < got->size() && (*got)[first_missing]) {
      ++first_missing;
    }
    if (first_missing + 2 * config_.ack_window <= h.frame_index) {
      send_nack(h.src_node, h.msg_id, first_missing);
    }
  }

  // DMA the fragment to (pinned) memory.  Content moves now; the timing of
  // "landed" is the DMA completion.  The frame dies here — back to its
  // pool.  A slice-hungry descriptor instead takes a reference on the
  // frame's payload slice: the bytes never move, only the refcount does
  // (the slice outlives the frame's return to its pool).  Both paths
  // charge the identical DMA transfer — the A/B modes differ only in
  // host copies, never in simulated time.
  bool took_slice = false;
  if (binding.recv && binding.recv->want_slices && !frame->slices.empty() &&
      h.frame_index < binding.recv->parts.size()) {
    binding.recv->parts[h.frame_index] = frame->slices.front();
    took_slice = true;
  }
  if (!took_slice && frag_len > 0) {
    std::uint32_t offset = h.frame_index * fragment_size();
    frame->copy_payload(kHeaderBytes, {dest_base + offset, frag_len});
    *bytes_copied_ += frag_len;
  }
  nic_.dma_transfer(frag_len + kHeaderBytes,
                    [this, binding] { fragment_landed(binding); });
}

void EmpEndpoint::fragment_landed(const Binding& binding) {
  if (binding.recv) {
    const RecvHandle& r = binding.recv;
    ++r->frames_landed;
    if (r->frames_landed == r->total_frames &&
        r->frames_received == r->total_frames) {
      nic_.rx_cpu().run(model_.nic.completion_write_ns,
                        [this, r] { complete_recv(r); });
    }
  } else {
    UnexpectedEntry* u = binding.unexpected;
    ++u->frames_landed;
    if (u->frames_landed == u->total_frames &&
        u->frames_received == u->total_frames) {
      // The completion record is written by the firmware like any other
      // completion, so unexpected messages cannot overtake earlier posted
      // receives still in the completion pipeline.
      nic_.rx_cpu().run(model_.nic.completion_write_ns,
                        [this, u] { unexpected_ready(u); });
    }
  }
}

void EmpEndpoint::walk_remove(const RecvHandle& r) {
  // Tombstone instead of std::erase_if: eager removal rescanned the whole
  // walk list per completion — O(n) *host* time per descriptor, which the
  // model never charges for (tag matching pays 550 ns per *live*
  // descriptor in simulated time; that accounting is untouched).  The slot
  // index makes removal O(1); compaction runs only once tombstones
  // outnumber live entries, preserving post order, so N removals cost O(N)
  // amortized.
  const std::size_t slot = r->walk_slot;
  if (slot >= walk_.size() || walk_[slot].get() != r.get()) {
    return;  // never filed (e.g. unposted before the NIC filed it)
  }
  walk_[slot].reset();
  ++walk_tombstones_;
  if (walk_tombstones_ * 2 > walk_.size()) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < walk_.size(); ++i) {
      if (!walk_[i]) continue;
      walk_[i]->walk_slot = out;
      walk_[out++] = std::move(walk_[i]);
    }
    walk_.resize(out);
    walk_tombstones_ = 0;
  }
  // The drain edge of the queue-depth histogram (filing observes the
  // growth edge).
  ctr_.desc_queue_depth.observe(walk_.size() - walk_tombstones_);
}

void EmpEndpoint::complete_recv(const RecvHandle& r) {
  r->completed = true;
  r->result = RecvResult{r->from, r->tag, r->msg_bytes};
  bound_.erase(key_of(r->from, r->msg_id));
  remember_completed(r->from, r->msg_id, r->total_frames);
  walk_remove(r);
  r->done_evt.set();
  fire_completion_hook();
}

void EmpEndpoint::unexpected_ready(UnexpectedEntry* u) {
  ULS_TRACE(*eng_, "emp", "node%u uq-ready from=%u tag=%u bytes=%u", self_,
            u->from, u->tag, u->msg_bytes);
  u->ready = true;
  unexpected_ready_.push_back(u);
  // A descriptor may have been filed while this message was in flight to
  // the unexpected queue.
  reconcile_unexpected();
  fire_completion_hook();
}

void EmpEndpoint::reconcile_unexpected() {
  // Deliver ready unexpected messages into matching filed descriptors.
  // The walk list is scanned in post order so delivery respects the same
  // FIFO the NIC's tag matching gives directly-matched messages.
  bool delivered = true;
  while (delivered && !unexpected_ready_.empty()) {
    delivered = false;
    for (auto* u : unexpected_ready_) {
      for (auto& r : walk_) {
        if (!r) continue;  // tombstone
        if (r->bound || r->completed || r->unposted) continue;
        bool src_ok = !r->src_match.has_value() || *r->src_match == u->from;
        if (src_ok && r->tag == u->tag && u->msg_bytes <= r->capacity) {
          deliver_unexpected(r, u);
          delivered = true;
          break;
        }
      }
      if (delivered) break;  // both lists changed; restart the scan
    }
  }
}

void EmpEndpoint::deliver_unexpected(RecvHandle r, UnexpectedEntry* u) {
  ULS_TRACE(*eng_, "emp", "node%u uq-deliver from=%u tag=%u", self_, u->from,
            u->tag);
  // The descriptor is consumed by the library, never matched at the NIC.
  r->bound = true;
  r->from = u->from;
  r->msg_id = u->msg_id;
  r->total_frames = u->total_frames;
  r->msg_bytes = u->msg_bytes;
  walk_remove(r);
  std::erase(unexpected_ready_, u);
  bound_.erase(key_of(u->from, u->msg_id));
  remember_completed(u->from, u->msg_id, u->total_frames);

  // The unexpected path costs one extra host memory copy.
  std::uint32_t bytes = u->msg_bytes;
  if (bytes > 0) {
    std::memcpy(r->buffer, u->buffer.data(), bytes);
    *bytes_copied_ += bytes;
  }
  RecvHandle handle = r;
  host_cpu_.run(model_.memcpy_cost(bytes), [this, handle] {
    handle->completed = true;
    handle->result =
        RecvResult{handle->from, handle->tag, handle->msg_bytes};
    handle->done_evt.set();
    fire_completion_hook();
  });

  // Return the entry to the free pool.
  u->bound = false;
  u->ready = false;
  u->got.clear();
  u->frames_received = 0;
  u->frames_landed = 0;
}

void EmpEndpoint::remember_completed(NodeId src, std::uint32_t msg_id,
                                     std::uint16_t total) {
  const std::uint64_t key = key_of(src, msg_id);
  if (completed_history_.emplace(key, total).second) {
    completed_order_.push_back(key);
    if (completed_order_.size() > config_.completed_history) {
      completed_history_.erase(completed_order_.front());
      completed_order_.pop_front();
    }
  }
}

void EmpEndpoint::send_ack(NodeId to, std::uint32_t msg_id,
                           std::uint32_t count) {
  nic_.tx_cpu().run(model_.nic.fw_ack_tx_ns, [this, to, msg_id, count] {
    EmpHeader h;
    h.kind = FrameKind::kAck;
    h.src_node = self_;
    h.dst_node = to;
    h.msg_id = msg_id;
    h.ack_value = count;
    ++ctr_.acks_tx;
    nic_.mac_send(make_frame(to, h, {}));
  });
}

void EmpEndpoint::send_nack(NodeId to, std::uint32_t msg_id,
                            std::uint32_t missing) {
  nic_.tx_cpu().run(model_.nic.fw_ack_tx_ns, [this, to, msg_id, missing] {
    EmpHeader h;
    h.kind = FrameKind::kNack;
    h.src_node = self_;
    h.dst_node = to;
    h.msg_id = msg_id;
    h.ack_value = missing;
    ++ctr_.nacks_tx;
    nic_.mac_send(make_frame(to, h, {}));
  });
}

void EmpEndpoint::handle_ack(const EmpHeader& h) {
  ++ctr_.acks_rx;
  auto it = pending_sends_.find(h.msg_id);
  if (it == pending_sends_.end()) return;  // late ack for a finished send
  SendHandle st = it->second;
  if (h.ack_value > st->acked_frames) {
    st->acked_frames = h.ack_value;
    st->retries = 0;  // progress resets the give-up counter
  }
  if (st->acked_frames >= st->total_frames) {
    st->acked_done = true;
    st->acked_evt.set();
    pending_sends_.erase(it);
    fire_completion_hook();
  }
}

void EmpEndpoint::handle_nack(const EmpHeader& h) {
  auto it = pending_sends_.find(h.msg_id);
  if (it == pending_sends_.end()) return;
  SendHandle st = it->second;
  std::uint32_t idx = h.ack_value;
  if (idx >= st->total_frames) return;
  // Immediate single-frame repair; the regular timer still backstops.
  ++ctr_.retransmitted_frames;
  const std::uint32_t frag = fragment_size();
  const std::uint32_t bytes = st->size_bytes();
  std::uint32_t rlen =
      bytes == 0 ? 0 : std::min<std::uint32_t>(frag, bytes - idx * frag);
  nic_.tx_cpu().run(
      model_.fw_tx_frame_cost(rlen), [this, st, idx, frag, rlen]() mutable {
        nic_.dma_transfer(
            rlen + kHeaderBytes,
            [this, st = std::move(st), idx, offset = idx * frag,
             len = rlen] {
              EmpHeader hh;
              hh.kind = FrameKind::kData;
              hh.src_node = self_;
              hh.dst_node = st->dst;
              hh.tag = st->tag;
              hh.msg_id = st->msg_id;
              hh.frame_index = static_cast<std::uint16_t>(idx);
              hh.total_frames = st->total_frames;
              hh.msg_bytes = st->size_bytes();
              ++ctr_.data_frames_tx;
              nic_.mac_send(make_data_frame(st, hh, offset, len));
            });
      });
}

}  // namespace ulsocks::emp
