// Simulated-time types and literals.
//
// All simulated time in ulsocks is an unsigned count of nanoseconds from the
// start of the run.  Nanosecond granularity is fine enough to express every
// cost in the paper (the smallest is the 550 ns per-descriptor tag-matching
// walk on the NIC) and a 64-bit count overflows after ~584 simulated years.
#pragma once

#include <cstdint>

namespace ulsocks::sim {

/// Absolute simulated time, in nanoseconds since the start of the run.
using Time = std::uint64_t;

/// A span of simulated time, in nanoseconds.
using Duration = std::uint64_t;

inline namespace time_literals {

constexpr Duration operator""_ns(unsigned long long v) { return v; }
constexpr Duration operator""_us(unsigned long long v) { return v * 1'000ull; }
constexpr Duration operator""_ms(unsigned long long v) {
  return v * 1'000'000ull;
}
constexpr Duration operator""_s(unsigned long long v) {
  return v * 1'000'000'000ull;
}

}  // namespace time_literals

/// Conversions for reporting.
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_sec(Duration d) { return static_cast<double>(d) / 1e9; }

/// Duration needed to serialize `bytes` at `bits_per_sec` on a wire.
constexpr Duration serialization_ns(std::uint64_t bytes,
                                    std::uint64_t bits_per_sec) {
  // bytes * 8 bits / (bits/s) in ns = bytes * 8e9 / bps.
  return bytes * 8ull * 1'000'000'000ull / bits_per_sec;
}

/// Duration needed to move `bytes` at a bandwidth given in bytes per
/// microsecond (convenient for memory/DMA bandwidths).
constexpr Duration copy_ns(std::uint64_t bytes, double bytes_per_us) {
  return static_cast<Duration>(static_cast<double>(bytes) * 1e3 /
                               bytes_per_us);
}

}  // namespace ulsocks::sim
