#include "sim/trace.hpp"

#include <cstdio>
#include <cstdlib>

namespace ulsocks::sim::trace {

namespace {
Level g_level = Level::kOff;
bool g_env_checked = false;
}  // namespace

void set_level(Level level) noexcept {
  g_level = level;
  g_env_checked = true;
}

Level level() noexcept { return g_level; }

void init_from_env() noexcept {
  if (g_env_checked) return;
  g_env_checked = true;
  // Host-side log verbosity only: the level gates diagnostic printing and
  // never feeds events, digests or wire bytes.
  if (const char* env = std::getenv("ULSOCKS_TRACE")) {  // NOLINT(ulsan-determinism)
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) g_level = static_cast<Level>(v);
  }
}

bool enabled(Level level) noexcept {
  if (!g_env_checked) init_from_env();
  return static_cast<int>(level) <= static_cast<int>(g_level);
}

void logf(Level level, Time now, const char* component, const char* fmt, ...) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "[%12.3f us] %-10s ", to_us(now), component);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace ulsocks::sim::trace
