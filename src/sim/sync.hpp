// Coroutine synchronization primitives.
//
// All primitives resume waiters *through the event queue* (at the current
// timestamp), never inline.  This keeps causality in queue order and bounds
// stack depth regardless of how many coroutines a notification wakes.
//
// Lifetime rule: a coroutine must not be destroyed while it is parked in a
// primitive's wait list; in this codebase every simulated process runs to
// completion before its Engine is torn down.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace ulsocks::sim {

/// Multi-waiter condition variable.  Use with a predicate loop, or via
/// `wait_until`.
class CondVar {
 public:
  explicit CondVar(Engine& eng) : eng_(&eng) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Awaitable: park until the next notify.
  [[nodiscard]] auto wait() {
    struct Awaiter {
      CondVar* cv;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cv->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Park until `pred()` holds (checked before every sleep and after every
  /// wake-up).
  template <class Pred>
  [[nodiscard]] Task<void> wait_until(Pred pred) {
    while (!pred()) co_await wait();
  }

  void notify_all() {
    for (auto h : waiters_) {
      eng_->schedule_at(eng_->now(), [h] { detail::resume_chain(h); });
    }
    waiters_.clear();
  }

  void notify_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.erase(waiters_.begin());
    eng_->schedule_at(eng_->now(), [h] { detail::resume_chain(h); });
  }

  [[nodiscard]] std::size_t waiter_count() const noexcept {
    return waiters_.size();
  }

  /// Point future notifies at another engine (live shard migration: the
  /// parked waiters move with their host, so wake events must land on the
  /// engine that now steps them).  Only legal between epochs.
  void rebind(Engine& eng) noexcept { eng_ = &eng; }

 private:
  Engine* eng_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// One-shot (or manually reset) event flag.
class ManualEvent {
 public:
  explicit ManualEvent(Engine& eng) : cv_(eng) {}

  [[nodiscard]] Task<void> wait() {
    while (!set_) co_await cv_.wait();
  }

  void set() {
    if (set_) return;
    set_ = true;
    cv_.notify_all();
  }

  void reset() noexcept { set_ = false; }
  [[nodiscard]] bool is_set() const noexcept { return set_; }
  void rebind(Engine& eng) noexcept { cv_.rebind(eng); }

 private:
  bool set_ = false;
  CondVar cv_;
};

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Engine& eng, std::size_t initial) : cv_(eng), count_(initial) {}

  [[nodiscard]] Task<void> acquire() {
    while (count_ == 0) co_await cv_.wait();
    --count_;
  }

  /// Non-blocking acquire; returns false if no permit is available.
  [[nodiscard]] bool try_acquire() {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release(std::size_t n = 1) {
    count_ += n;
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t available() const noexcept { return count_; }

 private:
  CondVar cv_;
  std::size_t count_;
};

/// Bounded FIFO channel between coroutines.  `recv()` returns nullopt once
/// the channel is closed and drained; `send()` on a closed channel throws.
template <class T>
class Channel {
 public:
  Channel(Engine& eng, std::size_t capacity)
      : data_cv_(eng), space_cv_(eng), capacity_(capacity) {}

  [[nodiscard]] Task<void> send(T value) {
    while (!closed_ && items_.size() >= capacity_) co_await space_cv_.wait();
    if (closed_) throw std::runtime_error("Channel::send on closed channel");
    items_.push_back(std::move(value));
    data_cv_.notify_one();
  }

  /// Non-blocking send; returns false when full or closed.
  [[nodiscard]] bool try_send(T value) {
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    data_cv_.notify_one();
    return true;
  }

  [[nodiscard]] Task<std::optional<T>> recv() {
    while (items_.empty() && !closed_) co_await data_cv_.wait();
    if (items_.empty()) co_return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    co_return std::optional<T>(std::move(v));
  }

  [[nodiscard]] std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    return std::optional<T>(std::move(v));
  }

  void close() {
    closed_ = true;
    data_cv_.notify_all();
    space_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

 private:
  CondVar data_cv_;
  CondVar space_cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace ulsocks::sim
