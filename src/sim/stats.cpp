#include "sim/stats.hpp"

#include <cstdio>
#include <sstream>

namespace ulsocks::sim {

ResultTable::ResultTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ResultTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ResultTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string ResultTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? "  " : "");
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) out << '-';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void ResultTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace ulsocks::sim
