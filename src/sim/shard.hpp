// Conservative-parallel sharded simulation (CMB-style, link-latency
// lookahead).
//
// A ShardGroup owns N independent Engines and runs them in bounded epochs.
// The epoch bound for shard i is min_{j != i}(T_j) + W, where T_j is shard
// j's next event time and W is the group lookahead — the minimum simulated
// latency of any cross-shard interaction (for an Ethernet fabric: the
// serialization time of a minimum wire frame plus propagation, see
// net::shard_lookahead()).  Any cross-shard effect produced by shard j is
// timestamped >= T_j + W >= bound_i, so every event below the bound is
// causally independent across shards and the shards can execute their
// windows on separate threads without changing results.
//
// Cross-shard events travel through per-(src, dst) mailboxes written only
// by the source shard's thread during a window and drained only at the
// single-threaded epoch barrier, sorted by (t, seq, src_shard).  The seq
// is a per-mailbox push ordinal, so the drain order — and therefore the
// destination engine's sequence numbering — is a pure function of each
// source shard's own deterministic execution, never of thread timing:
// a parallel run is byte-identical to stepping the shards serially.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "check/registry.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace ulsocks::sim {

class ShardGroup {
 public:
  /// Sentinel epoch bound meaning "run this shard to drain".
  static constexpr Time kNoBound = ~Time{0};

  /// `lookahead` must be a lower bound on the simulated latency of every
  /// cross-shard interaction; post_remote() enforces it per post.  Shard i
  /// is seeded `seed + i`, so shard 0 of a one-shard group is byte-identical
  /// to a plain `Engine(seed)`.
  ShardGroup(std::size_t shards, Duration lookahead, std::uint64_t seed = 1);
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return engines_.size(); }
  [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] Engine& shard(std::size_t i) { return *engines_[i]; }

  /// Index of `eng` within this group.  Pre: the engine belongs to it.
  [[nodiscard]] std::uint32_t index_of(const Engine& eng) const;

  /// Post `fn` to run at absolute time `t` on shard `dst`.  Must be called
  /// from shard `src`'s thread during its window (or from the barrier
  /// thread); `t` must honour the lookahead relative to src's clock.
  /// Entries are delivered at the next epoch barrier in (t, seq, src)
  /// order.
  void post_remote(std::uint32_t src, std::uint32_t dst, Time t, EventFn fn);

  /// Run all shards to completion.  `threads == 0` resolves to the
  /// hardware concurrency; anything <= 1 steps the shards serially in
  /// shard order — the determinism reference the parallel path must match
  /// byte-for-byte.  Rethrows the first (by shard index) failure.
  void run(unsigned threads = 0);

  /// Per-shard ordered digests folded in fixed shard order.  For a
  /// one-shard group this is exactly shard 0's digest.  Identical between
  /// parallel and serial-stepped runs at the same shard count.
  [[nodiscard]] std::uint64_t digest() const;

  /// Wrapping sum of the shards' order-insensitive digests — invariant
  /// across shard counts for the same workload (see Engine::causal_digest).
  [[nodiscard]] std::uint64_t causal_digest() const;

  /// Total events executed across all shards.
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Latest shard clock (the simulated end time of the run).
  [[nodiscard]] Time now() const;

  /// Epoch barriers crossed so far.
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

  /// Cross-shard events delivered so far (equals total posted when
  /// quiesced — enforced by the built-in mailbox-conservation checker).
  [[nodiscard]] std::uint64_t remote_delivered() const noexcept {
    return delivered_;
  }

  /// Group-level checkers, swept on the barrier thread while all shards
  /// are quiesced — the only safe place to read state across shards.
  /// Cross-shard conservation laws register here; per-shard protocol
  /// checkers stay on their own engine's registry.
  [[nodiscard]] check::Registry& checks() noexcept { return checks_; }

  /// Barriers between group checker sweeps (default 256; 0 disables all
  /// but the final quiesced sweep).
  void set_check_epoch_interval(std::uint64_t every_n_epochs) noexcept {
    check_epoch_interval_ = every_n_epochs;
  }

 private:
  struct MailEntry {
    Time t;
    std::uint64_t seq;  // push ordinal within the (src, dst) mailbox
    std::uint32_t src;
    EventFn fn;
  };
  // One mailbox per (src, dst) pair, cache-line aligned: during a window
  // each is written by exactly one thread (src's), and adjacent mailboxes
  // belong to different writers.
  struct alignas(64) Mailbox {
    std::vector<MailEntry> entries;
    std::uint64_t next_seq = 0;  // total ever posted through this box
  };

  [[nodiscard]] Mailbox& box(std::uint32_t src, std::uint32_t dst) {
    return mail_[static_cast<std::size_t>(src) * engines_.size() + dst];
  }

  /// Compute every shard's epoch bound from the current queues.  Returns
  /// false when all queues are drained (mailboxes are always empty here —
  /// they are drained right after each window).
  bool begin_epoch();
  /// Execute shard i's window up to bounds_[i]; failures land in
  /// errors_[i] (never thrown across a worker thread boundary).
  void run_shard(std::size_t i) noexcept;
  /// Rethrow window failures, drain mailboxes, sweep group checkers.
  void finish_epoch();
  void deliver_mailboxes();
  void run_serial();
  void run_parallel(unsigned resolved);

  Duration lookahead_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Mailbox> mail_;  // mail_[src * size() + dst]
  std::vector<Time> bounds_;   // per-shard epoch bound (kNoBound = drain)
  std::vector<std::exception_ptr> errors_;
  std::vector<MailEntry> scratch_;  // barrier-only delivery sort buffer
  check::Registry checks_;
  std::uint64_t epochs_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t check_epoch_interval_ = 256;
};

}  // namespace ulsocks::sim
