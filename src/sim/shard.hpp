// Conservative-parallel sharded simulation (CMB-style, per-edge lookahead
// distance matrix).
//
// A ShardGroup owns N independent Engines and runs them in bounded epochs.
// Cross-shard interactions are described by a per-(src, dst) lookahead
// matrix W: W[s][d] is a lower bound on the simulated latency of any
// effect shard s can impose on shard d over a direct edge (for an
// Ethernet link: serialization of a minimum wire frame plus that link's
// propagation delay — net::Link registers it when a cross-shard edge is
// created).  From W the group derives the shortest-path closure D, where
// D[j][i] is the minimum latency over *any* relay chain j -> ... -> i and
// D[i][i] is the minimum round trip i -> ... -> i.  Shard i's epoch bound
// is then
//
//   bound_i = min over all shards j of (T_j + D[j][i])
//
// (T_j = shard j's next event time), instead of the PR5-era scalar
// `global_min(T_j) + W`: a shard whose only incoming edges are long-haul
// advances in strides of the long latency while tightly-coupled pairs
// stay tight, and an idle shard (T_j = infinity) constrains nobody.  The
// closure — not the raw edge matrix — is what makes per-edge bounds sound
// under a barrier; see DESIGN.md §11 for the induction and the
// reflection-path caveat (D[i][i] is exactly the term that bounds a shard
// against echoes of its own future output).
//
// Cross-shard events travel through per-(src, dst) mailboxes written only
// by the source shard's thread during a window and drained only at the
// single-threaded epoch barrier, sorted by (t, seq, src_shard).  The seq
// is a per-mailbox push ordinal, so the drain order — and therefore the
// destination engine's sequence numbering — is a pure function of each
// source shard's own deterministic execution, never of thread timing:
// a parallel run is byte-identical to stepping the shards serially.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "check/registry.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace ulsocks::sim {

class ShardGroup {
 public:
  /// Sentinel epoch bound meaning "run this shard to drain".
  static constexpr Time kNoBound = ~Time{0};
  /// Sentinel lookahead meaning "no path": the pair never interacts, so
  /// it contributes no epoch constraint.
  static constexpr Duration kUnreachable = ~Duration{0};
  static constexpr std::size_t kNone = ~std::size_t{0};

  /// How epoch bounds are computed.  kMatrix (the default) uses the
  /// per-edge closure described above; kScalar reproduces the PR5-era
  /// single group-wide window `global_min + lookahead` — kept as the A/B
  /// baseline the epoch-count benches compare against.
  enum class LookaheadMode : std::uint8_t { kMatrix, kScalar };

  /// `lookahead` is the default lower bound on the simulated latency of
  /// every cross-shard interaction; post_remote() enforces it per post.
  /// It governs every (src, dst) pair until the first
  /// register_edge_lookahead() call switches the group to
  /// registered-edges-only (see below).  Shard i is seeded `seed + i`, so
  /// shard 0 of a one-shard group is byte-identical to a plain
  /// `Engine(seed)`.
  ShardGroup(std::size_t shards, Duration lookahead, std::uint64_t seed = 1);
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return engines_.size(); }
  [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] Engine& shard(std::size_t i) { return *engines_[i]; }

  /// Index of `eng` within this group.  Pre: the engine belongs to it.
  [[nodiscard]] std::uint32_t index_of(const Engine& eng) const;

  /// Declare a direct cross-shard edge src -> dst on which every
  /// interaction is delayed by at least `w` (>= 1 ns).  Multiple
  /// registrations for one pair keep the minimum (parallel links).
  ///
  /// The first registration on a group asserts a stronger contract than
  /// the constructor default: *all* cross-shard traffic flows over
  /// registered edges.  Unregistered pairs then become kUnreachable —
  /// they constrain no epoch bound, and post_remote() on one is an
  /// invariant violation.  net::Link is the only sanctioned caller
  /// (enforced by ulsan-shard-affinity); it registers each cross-shard
  /// link's true serialization + propagation delay as the edge forms.
  void register_edge_lookahead(std::uint32_t src, std::uint32_t dst,
                               Duration w);

  /// Direct-edge lookahead currently in force for (src, dst):
  /// the registered minimum, the constructor default while no edge has
  /// been registered group-wide, or kUnreachable.
  [[nodiscard]] Duration edge_lookahead(std::uint32_t src,
                                        std::uint32_t dst) const;

  /// Shortest-path closure entry D[src][dst]: minimum latency over any
  /// relay chain src -> ... -> dst (kUnreachable if none).  For
  /// src == dst this is the minimum round trip through at least one other
  /// shard — the reflection bound.
  [[nodiscard]] Duration path_lookahead(std::uint32_t src, std::uint32_t dst);

  void set_lookahead_mode(LookaheadMode m) noexcept { mode_ = m; }
  [[nodiscard]] LookaheadMode lookahead_mode() const noexcept {
    return mode_;
  }

  /// Post `fn` to run at absolute time `t` on shard `dst`.  Must be called
  /// from shard `src`'s thread during its window (or from the barrier
  /// thread); `t` must honour edge_lookahead(src, dst) relative to src's
  /// clock.  Entries are delivered at the next epoch barrier in
  /// (t, seq, src) order.  `domain` tags the delivered event with its
  /// owning simulation domain (the receiving host), so a later migration
  /// carries it along.
  void post_remote(std::uint32_t src, std::uint32_t dst, Time t, EventFn fn,
                   DomainId domain = kAmbientDomain);

  /// Run all shards to completion.  `threads == 0` resolves to the
  /// hardware concurrency; anything <= 1 steps the shards serially in
  /// shard order — the determinism reference the parallel path must match
  /// byte-for-byte.  Rethrows the first (by shard index) failure.
  void run(unsigned threads = 0);

  /// Per-shard ordered digests folded in fixed shard order.  For a
  /// one-shard group this is exactly shard 0's digest.  Identical between
  /// parallel and serial-stepped runs at the same shard count.
  [[nodiscard]] std::uint64_t digest() const;

  /// Wrapping sum of the shards' order-insensitive digests — invariant
  /// across shard counts for the same workload (see Engine::causal_digest).
  [[nodiscard]] std::uint64_t causal_digest() const;

  /// Total events executed across all shards.
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Per-shard executed-event counts in shard order — the load signal the
  /// rebalance policy samples and the imbalance number the hostperf JSON
  /// block reports.
  [[nodiscard]] std::vector<std::uint64_t> events_executed_per_shard() const;

  /// Events executed on behalf of domain `d`, summed across shards (a
  /// migrated domain's history spans engines).
  [[nodiscard]] std::uint64_t domain_events_executed(DomainId d) const;

  // ---- Live rebalancing (DESIGN.md §14) -----------------------------------
  //
  // A "domain" (apps::Cluster: one host) can be rehomed from one shard's
  // engine to another at an epoch barrier.  The placement map is versioned
  // in the DAOS pool_map style: every applied migration bumps the version,
  // so any cached domain -> shard resolution can be validated with one
  // integer compare instead of re-reading the map.
  //
  // Soundness (the §11 induction survives): a requested migration is only
  // APPLIED at a barrier where dst.now() < the bound src just ran to —
  // then every event the domain still owns has t >= bound_src > dst.now(),
  // so adoption cannot schedule into dst's past.  While a request is
  // pending the scheduler clamps bound_dst <= bound_src each epoch (and
  // suspends sole-runnable coalescing), so dst stops advancing and the
  // strictly-increasing global minimum eventually satisfies the condition.
  // The schedule is driven entirely by epoch/event counts, never wall
  // clock, so runs are bit-deterministic at any thread count.

  /// Declare a domain and its initial placement.  `migratable` marks
  /// domains the policy may move; apps::Cluster only marks hosts that
  /// never share a shard (and therefore never share pool-backed frames by
  /// reference) with the fabric shard 0.
  void define_domain(DomainId d, std::uint32_t shard, bool migratable);

  [[nodiscard]] std::uint32_t shard_of_domain(DomainId d) const;
  [[nodiscard]] bool domain_migratable(DomainId d) const;
  /// Placement-map version: 1 at construction, +1 per applied migration.
  [[nodiscard]] std::uint64_t placement_version() const noexcept {
    return placement_version_;
  }
  [[nodiscard]] std::uint64_t migrations_applied() const noexcept {
    return migrations_;
  }

  /// One applied migration: which domain moved where, at which barrier
  /// epoch.  The log is the auditable migration schedule — tests assert
  /// byte-equal logs between serial and parallel runs and across
  /// repetitions.
  struct MigrationRecord {
    std::uint64_t epoch;
    DomainId domain;
    std::uint32_t from;
    std::uint32_t to;
    friend bool operator==(const MigrationRecord&,
                           const MigrationRecord&) = default;
  };
  [[nodiscard]] const std::vector<MigrationRecord>& migration_log()
      const noexcept {
    return migration_log_;
  }

  /// Ask for `d` to be rehomed onto shard `to`.  Never applied mid-window:
  /// the request is queued and executed at the next epoch barrier that
  /// satisfies the soundness condition above.  Requests for a domain with
  /// one already pending, or a no-op target, are ignored.
  void request_domain_migration(DomainId d, std::uint32_t to);

  /// Hook invoked at the barrier, after a domain's events moved engines:
  /// the topology owner rebinds the host bundle (engine pointers, link
  /// endpoint, condvars, checkers) from shard `from` to `to`.
  using DomainMigrator =
      std::function<void(DomainId, std::uint32_t from, std::uint32_t to)>;
  void set_domain_migrator(DomainMigrator fn) { migrator_ = std::move(fn); }

  /// Hook invoked after migrations reset the edge matrix: the topology
  /// owner re-registers every cross-shard link's lookahead (the closure is
  /// then recomputed before the next epoch plans its bounds).
  using EdgeRefresher = std::function<void()>;
  void set_edge_refresher(EdgeRefresher fn) {
    edge_refresher_ = std::move(fn);
  }

  /// Pluggable load-balancing policy, evaluated on the barrier thread
  /// every `every_n_epochs` epochs.  The policy reads the group's load
  /// telemetry and calls request_domain_migration(); pass nullptr to turn
  /// rebalancing off (the default — placement then stays static).
  using RebalancePolicy = std::function<void(ShardGroup&)>;
  void set_rebalance_policy(RebalancePolicy fn,
                            std::uint64_t every_n_epochs = 64) {
    policy_ = std::move(fn);
    policy_epoch_interval_ = every_n_epochs == 0 ? 1 : every_n_epochs;
  }

  struct GreedyRebalanceOptions {
    /// Move only when the hottest shard carries at least this multiple of
    /// the coldest allowed shard's load (per-interval event deltas).
    double hysteresis = 1.5;
    /// Epochs to wait after an applied or requested move before proposing
    /// another (0 = none beyond the sampling interval itself).
    std::uint64_t cooldown_epochs = 0;
    /// Shards eligible to RECEIVE domains.  Empty = every shard except 0
    /// (the fabric shard: parking a host there would co-locate it with the
    /// switch and strip its migratability, see define_domain).
    std::vector<std::uint32_t> targets;
  };
  /// Greedy-by-event-rate policy: at each evaluation, if the hottest
  /// shard's load delta exceeds hysteresis x the coldest target's, move
  /// the largest migratable domain that still improves the balance
  /// (load_cold + w < load_hot) onto the coldest target.  One move per
  /// evaluation; all decisions are functions of deterministic counters.
  [[nodiscard]] static RebalancePolicy greedy_rebalance_policy(
      GreedyRebalanceOptions opt);
  [[nodiscard]] static RebalancePolicy greedy_rebalance_policy() {
    return greedy_rebalance_policy(GreedyRebalanceOptions{});
  }

  /// Latest shard clock (the simulated end time of the run).
  [[nodiscard]] Time now() const;

  /// Epoch windows executed so far (coalesced micro-epochs count
  /// individually; this is the number the epoch-count bench gate tracks).
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

  /// Epochs whose runnable set was a single shard: the adaptive scheduler
  /// runs these on the barrier thread without waking any worker, and
  /// consecutive quiet ones coalesce without re-deriving the full bound
  /// vector.  A pure function of the workload and partition — identical
  /// between serial and parallel runs.
  [[nodiscard]] std::uint64_t barrier_skips() const noexcept {
    return barrier_skips_;
  }

  /// Cross-shard events delivered so far (equals total posted when
  /// quiesced — enforced by the built-in mailbox-conservation checker).
  [[nodiscard]] std::uint64_t remote_delivered() const noexcept {
    return delivered_;
  }

  /// Group-level scheduler metrics, distinct from any shard's registry:
  /// `shard/epoch_ns` (histogram of simulated global-clock advance per
  /// epoch), `shard/epochs`, `shard/barrier_skips`, `shard/remote_events`.
  /// Flushed at the end of every run(); safe to snapshot when quiesced.
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }

  /// Group-level checkers, swept on the barrier thread while all shards
  /// are quiesced — the only safe place to read state across shards.
  /// Cross-shard conservation laws register here; per-shard protocol
  /// checkers stay on their own engine's registry.
  [[nodiscard]] check::Registry& checks() noexcept { return checks_; }

  /// Epoch windows between group checker sweeps (default 256; 0 disables
  /// all but the final quiesced sweep).
  void set_check_epoch_interval(std::uint64_t every_n_epochs) noexcept {
    check_epoch_interval_ = every_n_epochs;
  }

  /// Introspection/testing: compute the next epoch's per-shard bounds
  /// (and the runnable set, see planned_runnable()) from the current
  /// queues without executing anything.  Empty when every queue is
  /// drained.  run() recomputes from scratch, so interleaving this with
  /// runs is safe.
  [[nodiscard]] std::vector<Time> plan_bounds();

  /// The runnable flags of the most recent plan_bounds()/epoch: shard i
  /// executes this epoch iff its next event is below bounds[i].
  [[nodiscard]] const std::vector<std::uint8_t>& planned_runnable() const {
    return runnable_;
  }

 private:
  struct MailEntry {
    Time t;
    std::uint64_t seq;  // push ordinal within the (src, dst) mailbox
    std::uint32_t src;
    DomainId domain;  // owning domain of the delivered event
    EventFn fn;
  };
  // One mailbox per (src, dst) pair, cache-line aligned: during a window
  // each is written by exactly one thread (src's), and adjacent mailboxes
  // belong to different writers.
  struct alignas(64) Mailbox {
    std::vector<MailEntry> entries;
    std::uint64_t next_seq = 0;  // total ever posted through this box
  };

  [[nodiscard]] Mailbox& box(std::uint32_t src, std::uint32_t dst) {
    return mail_[static_cast<std::size_t>(src) * engines_.size() + dst];
  }

  /// a + b with kNoBound/kUnreachable as an absorbing infinity.
  [[nodiscard]] static constexpr Time sat_add(Time a, Duration b) noexcept {
    return a >= kNoBound - b ? kNoBound : a + b;
  }

  [[nodiscard]] Duration edge(std::uint32_t src, std::uint32_t dst) const {
    return any_registered_
               ? edges_[static_cast<std::size_t>(src) * engines_.size() + dst]
               : lookahead_;
  }
  [[nodiscard]] Duration dist(std::uint32_t src, std::uint32_t dst) const {
    return dist_[static_cast<std::size_t>(src) * engines_.size() + dst];
  }

  /// Recompute the shortest-path closure from the edge matrix (lazy,
  /// on registration changes).
  void refresh_dist();

  /// Compute every shard's epoch bound and runnable flag from the current
  /// queues.  Returns false when all queues are drained (mailboxes are
  /// always empty here — they are drained right after each window).
  bool begin_epoch();
  /// Index of the only runnable shard, or kNone if zero or several.
  [[nodiscard]] std::size_t single_runnable() const;
  /// True when shard `src` has posted nothing into any mailbox.
  [[nodiscard]] bool outbox_empty(std::size_t src) const;
  /// Run shard `i` through consecutive windows on the calling (barrier)
  /// thread while it stays the sole runnable shard and posts no mail,
  /// bounded by kMaxCoalesceStride.  Returns windows executed (>= 1);
  /// epochs_ advances per window.
  std::size_t coalesce_single(std::size_t i);
  /// Execute shard i's window up to bounds_[i]; failures land in
  /// errors_[i] (never thrown across a worker thread boundary).
  void run_shard(std::size_t i) noexcept;
  /// Rethrow window failures, drain mailboxes, apply any barrier-ready
  /// migrations, evaluate the rebalance policy, sweep group checkers.
  void finish_epoch();
  void deliver_mailboxes();
  /// Clamp pending-migration destinations' bounds (bound_dst <= bound_src)
  /// so the apply condition eventually holds; refreshes runnable_.
  void clamp_for_pending_migrations();
  /// Apply every pending migration whose soundness condition holds.
  void apply_migrations();
  void run_serial();
  void run_parallel(unsigned resolved);
  void flush_metrics();

  /// Windows a quiet single-shard streak may run before forcing a full
  /// barrier round-trip (bookkeeping, checker cadence, fresh bounds).
  static constexpr std::size_t kMaxCoalesceStride = 64;

  Duration lookahead_;
  LookaheadMode mode_ = LookaheadMode::kMatrix;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Mailbox> mail_;      // mail_[src * size() + dst]
  std::vector<Duration> edges_;    // direct-edge lookahead matrix W
  std::vector<Duration> dist_;     // shortest-path closure D of W
  bool any_registered_ = false;    // edges_ in force (vs. scalar default)
  bool dist_dirty_ = true;
  std::vector<Time> bounds_;       // per-shard epoch bound (kNoBound = drain)
  std::vector<Time> tnext_;        // per-shard next event time this epoch
  std::vector<std::uint8_t> runnable_;
  std::vector<std::exception_ptr> errors_;
  std::vector<MailEntry> scratch_;  // barrier-only delivery sort buffer
  check::Registry checks_;
  obs::Registry metrics_;
  obs::Histogram* epoch_ns_hist_ = nullptr;
  Time last_gmin_ = 0;
  bool have_gmin_ = false;
  std::uint64_t epochs_ = 0;
  std::uint64_t barrier_skips_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t epochs_flushed_ = 0;
  std::uint64_t skips_flushed_ = 0;
  std::uint64_t delivered_flushed_ = 0;
  std::uint64_t last_check_epoch_ = 0;
  std::uint64_t check_epoch_interval_ = 256;

  // Versioned placement map (domain -> shard), pending requests, and the
  // rebalance machinery.  All mutated on the barrier thread only.
  struct Placement {
    std::uint32_t shard = 0;
    bool defined = false;
    bool migratable = false;
  };
  struct PendingMigration {
    DomainId domain;
    std::uint32_t to;
  };
  std::vector<Placement> placement_;  // indexed by DomainId
  std::vector<PendingMigration> pending_migrations_;
  std::vector<MigrationRecord> migration_log_;
  std::uint64_t placement_version_ = 1;
  std::uint64_t migrations_ = 0;
  std::uint64_t migrations_flushed_ = 0;
  DomainMigrator migrator_;
  EdgeRefresher edge_refresher_;
  RebalancePolicy policy_;
  std::uint64_t policy_epoch_interval_ = 64;
  std::uint64_t last_policy_epoch_ = 0;
};

}  // namespace ulsocks::sim
