// Discrete-event simulation engine.
//
// The engine owns a single time-ordered event queue.  Events at equal
// timestamps fire in the order they were scheduled (a monotonically
// increasing sequence number breaks ties), which makes every run
// bit-deterministic for a fixed seed.
//
// Coroutine integration: `spawn()` adopts a detached `Task<void>` (a
// simulated process) and starts it through the queue; `delay()`, and the
// primitives in sync.hpp, suspend coroutines and resume them via scheduled
// events, never inline, so causality always follows queue order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "check/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ulsocks::sim {

/// Thrown by Engine::run() when a spawned process terminated with an
/// uncaught exception.  Carries the original message.
class ProcessError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1) : rng_(seed) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Total events executed so far (for perf accounting).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }

  /// Schedule `fn` to run at absolute time `t` (>= now()).  Scheduling in
  /// the past would break causality (and, silently, determinism), so the
  /// check is an always-on invariant rather than a compiled-out assert.
  void schedule_at(Time t, std::function<void()> fn) {
    ULSOCKS_INVARIANT(
        t >= now_,
        check::msgf("schedule_at in the past: t=%llu < now=%llu",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(now_)));
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedule `fn` to run `dt` from now.
  void schedule_after(Duration dt, std::function<void()> fn) {
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Adopt a detached simulated process.  The process is started through
  /// the event queue at the current time; uncaught exceptions stop the run
  /// and are rethrown from run().
  void spawn(Task<void> process) {
    roots_.push_back(wrap_root(std::move(process)));
    auto h = roots_.back().handle();
    schedule_at(now_, [h] { detail::resume_chain(h); });
    maybe_reap();
  }

  /// Awaitable: suspend the current coroutine for `dt` simulated time.
  [[nodiscard]] auto delay(Duration dt) {
    struct Awaiter {
      Engine* eng;
      Duration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng->schedule_after(dt, [h] { detail::resume_chain(h); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: reschedule the current coroutine at the same timestamp,
  /// after every event already queued for this instant.
  [[nodiscard]] auto yield() { return delay(0); }

  /// Run until the queue drains, `request_stop()` is called, or a spawned
  /// process fails (rethrown as ProcessError).
  void run() {
    while (!stop_ && !queue_.empty()) {
      step();
      if (root_error_) {
        auto err = root_error_;
        root_error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
  }

  /// Run until simulated time would exceed `deadline` (events at exactly
  /// `deadline` still run).  Returns true if the queue drained.
  bool run_until(Time deadline) {
    while (!stop_ && !queue_.empty() && queue_.top().t <= deadline) {
      step();
      if (root_error_) {
        auto err = root_error_;
        root_error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
    if (!queue_.empty() && queue_.top().t > deadline && now_ < deadline) {
      now_ = deadline;
    }
    return queue_.empty();
  }

  /// Stop run() after the current event.
  void request_stop() noexcept { stop_ = true; }
  void clear_stop() noexcept { stop_ = false; }

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Record a process failure (used by the root wrapper; also usable by
  /// tests to inject failures).
  void set_error(std::exception_ptr e) noexcept { root_error_ = e; }

  /// Per-run event digest: (time, sequence, count) of every executed event
  /// folded into 64 bits.  Two runs of the same seeded workload must
  /// produce identical digests — the determinism self-check the ROADMAP
  /// tier-1 gate depends on (tests/determinism_test.cpp).
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  /// Cross-layer invariant checkers (see check/registry.hpp).  Protocol
  /// objects register themselves here; the engine sweeps the registry
  /// every `check_interval()` events and lets violations propagate out of
  /// run() as check::InvariantError.
  [[nodiscard]] check::Registry& checks() noexcept { return checks_; }

  /// The run's metrics registry (see obs/metrics.hpp).  Protocol layers
  /// register Counter/Gauge/Histogram handles under "h<N>/<layer>/<name>"
  /// paths at construction; benches snapshot it after run().
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const noexcept {
    return metrics_;
  }

  /// The run's span-based timeline tracer (see obs/timeline.hpp).  Disabled
  /// by default; enable before run() to export a Chrome trace afterwards.
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }

  /// Events between checker sweeps; 0 disables sweeping entirely.  Tests
  /// set 1 to catch corruption on the very next event.
  void set_check_interval(std::uint64_t every_n_events) noexcept {
    check_interval_ = every_n_events;
  }
  [[nodiscard]] std::uint64_t check_interval() const noexcept {
    return check_interval_;
  }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  // splitmix64 finalizer: cheap, well-mixed fold for the event digest.
  static constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void step() {
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because pop() immediately removes the moved-from element.
    auto& top = const_cast<Event&>(queue_.top());
    Time t = top.t;
    std::uint64_t seq = top.seq;
    auto fn = std::move(top.fn);
    queue_.pop();
    ULSOCKS_INVARIANT(
        t >= now_,
        check::msgf("event time went backwards: t=%llu < now=%llu",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(now_)));
    now_ = t;
    ++events_executed_;
    digest_ = mix64(digest_ ^ t);
    digest_ = mix64(digest_ ^ seq);
    fn();
    if (check_interval_ != 0 && events_executed_ % check_interval_ == 0) {
      checks_.run_all();
    }
  }

  Task<void> wrap_root(Task<void> process) {
    try {
      co_await process;
    } catch (...) {
      root_error_ = std::current_exception();
      stop_ = true;
    }
  }

  void maybe_reap() {
    if (roots_.size() < 64) return;
    std::erase_if(roots_, [](const Task<void>& t) { return t.done(); });
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t digest_ = 0x243f6a8885a308d3ull;  // pi, arbitrary non-zero
  std::uint64_t check_interval_ = 1024;
  check::Registry checks_;
  obs::Registry metrics_;
  obs::Tracer tracer_;
  bool stop_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Task<void>> roots_;
  std::exception_ptr root_error_;
  Rng rng_;
};

}  // namespace ulsocks::sim
