// Discrete-event simulation engine.
//
// The engine owns a single time-ordered event queue.  Events at equal
// timestamps fire in the order they were scheduled (a monotonically
// increasing sequence number breaks ties), which makes every run
// bit-deterministic for a fixed seed.
//
// Coroutine integration: `spawn()` adopts a detached `Task<void>` (a
// simulated process) and starts it through the queue; `delay()`, and the
// primitives in sync.hpp, suspend coroutines and resume them via scheduled
// events, never inline, so causality always follows queue order.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "check/invariant.hpp"
#include "check/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/inline_function.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ulsocks::sim {

/// Thrown by Engine::run() when a spawned process terminated with an
/// uncaught exception.  Carries the original message.
class ProcessError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1) : rng_(seed) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Total events executed so far (for perf accounting).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }

  /// Schedule `fn` to run at absolute time `t` (>= now()).  Scheduling in
  /// the past would break causality (and, silently, determinism), so the
  /// check is an always-on invariant rather than a compiled-out assert.
  ///
  /// `fn` is an EventFn (sim/inline_function.hpp): move-only, and captures
  /// up to its inline capacity cost no heap allocation.
  void schedule_at(Time t, EventFn fn) {
    ULSOCKS_INVARIANT(
        t >= now_,
        check::msgf("schedule_at in the past: t=%llu < now=%llu",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(now_)));
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = slot_count_++;
      if ((slot & (kSlotPageSize - 1)) == 0) {
        slot_pages_.push_back(std::make_unique<EventFn[]>(kSlotPageSize));
      }
    }
    slot_ref(slot) = std::move(fn);
    // Two-level queue: events inside the near horizon go to the small hot
    // heap, far-future ones (retransmit timers, mostly) to the far heap.
    // The strict `t < horizon_` split keeps min(near) < horizon_ <=
    // min(far), so the near heap's top is always the global minimum and
    // the pop order — and therefore the digest — is identical to a single
    // queue's.
    if (t < horizon_) {
      heap_push(heap_, HeapItem{t, next_seq_++, slot});
    } else {
      heap_push(far_, HeapItem{t, next_seq_++, slot});
    }
  }

  /// Schedule `fn` to run `dt` from now.
  void schedule_after(Duration dt, EventFn fn) {
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Adopt a detached simulated process.  The process is started through
  /// the event queue at the current time; uncaught exceptions stop the run
  /// and are rethrown from run().
  void spawn(Task<void> process) {
    roots_.push_back(wrap_root(std::move(process)));
    auto h = roots_.back().handle();
    schedule_at(now_, [h] { detail::resume_chain(h); });
    maybe_reap();
  }

  /// Awaitable: suspend the current coroutine for `dt` simulated time.
  [[nodiscard]] auto delay(Duration dt) {
    struct Awaiter {
      Engine* eng;
      Duration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng->schedule_after(dt, [h] { detail::resume_chain(h); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: reschedule the current coroutine at the same timestamp,
  /// after every event already queued for this instant.
  [[nodiscard]] auto yield() { return delay(0); }

  /// Run until the queue drains, `request_stop()` is called, or a spawned
  /// process fails (rethrown as ProcessError).
  void run() {
    while (!stop_ && pending()) {
      step();
      if (root_error_) {
        auto err = root_error_;
        root_error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
  }

  /// Run every event with t strictly below `bound`, then return without
  /// advancing now() to the bound.  This is the epoch primitive of the
  /// sharded engine (sim/shard.hpp): leaving now() at the last executed
  /// event keeps `schedule_at(arrival >= bound)` legal for cross-shard
  /// deliveries, and an idle epoch leaves the engine byte-identical to not
  /// having run at all.  Returns true if the queue drained.
  bool run_before(Time bound) {
    while (!stop_ && pending() && next_time() < bound) {
      step();
      if (root_error_) {
        auto err = root_error_;
        root_error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
    return !pending();
  }

  /// Run until simulated time would exceed `deadline` (events at exactly
  /// `deadline` still run).  Returns true if the queue drained.
  bool run_until(Time deadline) {
    while (!stop_ && pending() && next_time() <= deadline) {
      step();
      if (root_error_) {
        auto err = root_error_;
        root_error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
    if (pending() && next_time() > deadline && now_ < deadline) {
      now_ = deadline;
    }
    return !pending();
  }

  /// Stop run() after the current event.
  void request_stop() noexcept { stop_ = true; }
  void clear_stop() noexcept { stop_ = false; }

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Record a process failure (used by the root wrapper; also usable by
  /// tests to inject failures).
  void set_error(std::exception_ptr e) noexcept { root_error_ = e; }

  /// Per-run event digest: (time, sequence, count) of every executed event
  /// folded into 64 bits.  Two runs of the same seeded workload must
  /// produce identical digests — the determinism self-check the ROADMAP
  /// tier-1 gate depends on (tests/determinism_test.cpp).
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  /// Order-insensitive companion of digest(): a wrapping sum of mix64(t)
  /// over every executed event.  Unlike digest() it does not fold the
  /// per-engine sequence numbers, so it is invariant under repartitioning
  /// the same event set across shards — the cross-shard-count identity the
  /// sharded determinism tests assert (see sim/shard.hpp).
  [[nodiscard]] std::uint64_t causal_digest() const noexcept {
    return causal_digest_;
  }

  /// Timestamp of the earliest queued event, or nothing if the queue is
  /// empty.  The shard scheduler uses this to compute each epoch's bound.
  [[nodiscard]] std::optional<Time> next_event_time() {
    if (!pending()) return std::nullopt;
    return next_time();
  }

  /// True while any event is queued.
  [[nodiscard]] bool has_pending() const noexcept { return pending(); }

  /// Cross-layer invariant checkers (see check/registry.hpp).  Protocol
  /// objects register themselves here; the engine sweeps the registry
  /// every `check_interval()` events and lets violations propagate out of
  /// run() as check::InvariantError.
  [[nodiscard]] check::Registry& checks() noexcept { return checks_; }

  /// The run's metrics registry (see obs/metrics.hpp).  Protocol layers
  /// register Counter/Gauge/Histogram handles under "h<N>/<layer>/<name>"
  /// paths at construction; benches snapshot it after run().
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const noexcept {
    return metrics_;
  }

  /// The run's span-based timeline tracer (see obs/timeline.hpp).  Disabled
  /// by default; enable before run() to export a Chrome trace afterwards.
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }

  /// Events between checker sweeps; 0 disables sweeping entirely.  Tests
  /// set 1 to catch corruption on the very next event.
  void set_check_interval(std::uint64_t every_n_events) noexcept {
    check_interval_ = every_n_events;
    check_countdown_ = every_n_events;
  }
  [[nodiscard]] std::uint64_t check_interval() const noexcept {
    return check_interval_;
  }

  // splitmix64 finalizer: cheap, well-mixed fold for the event digest.
  // Public so the shard scheduler folds per-shard digests with the same
  // mixer the per-event digest uses.
  static constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

 private:
  // The heap orders trivially-copyable 24-byte nodes; the (potentially
  // 100-byte) callable lives in a stable slot in `slots_`.  Heap sift
  // moves are then plain POD copies the compiler turns into memmoves —
  // profiling showed sifting full fat events (inline-capture relocation
  // through an indirect call per move) dominated the hot loop.
  struct HeapItem {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<HeapItem>);
  // Orders the heap so the front element is the minimum (t, seq).  (t, seq)
  // is a strict total order — seq is unique — so any valid heap over the
  // same pending set pops in exactly one order, which is why the digest is
  // insensitive to the heap's internal layout (binary vs. 4-ary, and any
  // sift implementation).
  static bool before(const HeapItem& a, const HeapItem& b) noexcept {
    return a.t < b.t || (a.t == b.t && a.seq < b.seq);
  }

  // 4-ary min-heap.  Shallower than a binary heap (log4 vs log2 levels)
  // and the four children share a cache line pair, which matters because
  // queue sifting is the simulator's single hottest loop.  Sift-up and
  // sift-down move a hole instead of swapping, so each level costs one
  // 24-byte copy.
  static void heap_push(std::vector<HeapItem>& h, HeapItem it) {
    std::size_t i = h.size();
    h.push_back(it);  // reserve the leaf; overwritten below
    while (i > 0) {
      std::size_t parent = (i - 1) >> 2;
      if (!before(it, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = it;
  }

  static HeapItem heap_pop(std::vector<HeapItem>& h) {
    HeapItem top = h[0];
    HeapItem last = h.back();
    h.pop_back();
    std::size_t n = h.size();
    if (n != 0) {
      std::size_t i = 0;
      for (;;) {
        std::size_t child = 4 * i + 1;
        if (child >= n) break;
        std::size_t best = child;
        std::size_t end = child + 4 < n ? child + 4 : n;
        for (std::size_t k = child + 1; k < end; ++k) {
          if (before(h[k], h[best])) best = k;
        }
        if (!before(h[best], last)) break;
        h[i] = h[best];
        i = best;
      }
      h[i] = last;
    }
    return top;
  }

  [[nodiscard]] bool pending() const noexcept {
    return !heap_.empty() || !far_.empty();
  }

  /// Refill the near heap from the far heap if it drained.  Advancing the
  /// horizon to (min far time + window) migrates at least one event, so
  /// the loop body runs at most once per call with a non-empty far heap.
  void refill_near() {
    while (heap_.empty() && !far_.empty()) {
      horizon_ = far_[0].t + kNearWindow;
      while (!far_.empty() && far_[0].t < horizon_) {
        heap_push(heap_, heap_pop(far_));
      }
    }
  }

  /// Timestamp of the next event to fire.  Pre: pending().
  [[nodiscard]] Time next_time() {
    refill_near();
    return heap_[0].t;
  }

  void step() {
    // Owning the heap directly (vs. std::priority_queue) lets the next
    // event be moved out of storage legitimately — no const_cast.
    refill_near();
    const HeapItem ev = heap_pop(heap_);
    ULSOCKS_INVARIANT(
        ev.t >= now_,
        check::msgf("event time went backwards: t=%llu < now=%llu",
                    static_cast<unsigned long long>(ev.t),
                    static_cast<unsigned long long>(now_)));
    now_ = ev.t;
    ++events_executed_;
    digest_ = mix64(digest_ ^ ev.t);
    digest_ = mix64(digest_ ^ ev.seq);
    causal_digest_ += mix64(ev.t);
    // Execute in place: slot pages are address-stable (the page directory
    // may grow during fn(), the pages never move), so no relocating move of
    // the inline capture is needed per event.  The slot is recycled only
    // after fn() returns, so an event scheduling new events can never be
    // handed its own still-running slot.
    EventFn& fn = slot_ref(ev.slot);
    fn();
    fn.reset();
    free_slots_.push_back(ev.slot);
    // Countdown instead of `events_executed_ % interval`: one decrement
    // and branch per event, no integer division in the hot loop.
    if (check_countdown_ != 0 && --check_countdown_ == 0) {
      checks_.run_all();
      check_countdown_ = check_interval_;
    }
  }

  Task<void> wrap_root(Task<void> process) {
    try {
      co_await process;
    } catch (...) {
      root_error_ = std::current_exception();
      stop_ = true;
    }
  }

  void maybe_reap() {
    if (roots_.size() < reap_watermark_) return;
    std::erase_if(roots_, [](const Task<void>& t) { return t.done(); });
    // Back off geometrically: the next full scan happens only once the
    // surviving set has doubled, so N spawns cost O(N) amortized scanning
    // instead of the O(N^2) of sweeping every spawn past a fixed floor.
    reap_watermark_ = std::max<std::size_t>(64, roots_.size() * 2);
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t digest_ = 0x243f6a8885a308d3ull;  // pi, arbitrary non-zero
  std::uint64_t causal_digest_ = 0;
  std::uint64_t check_interval_ = 1024;
  std::uint64_t check_countdown_ = 1024;
  check::Registry checks_;
  obs::Registry metrics_;
  obs::Tracer tracer_;
  // Callable storage: fixed-size pages so slot addresses stay stable while
  // events run (a std::vector<EventFn> could reallocate under a running
  // event that schedules).  kSlotPageSize is a power of two so slot_ref()
  // is shift+mask.
  static constexpr std::uint32_t kSlotPageSize = 1024;
  [[nodiscard]] EventFn& slot_ref(std::uint32_t s) noexcept {
    return slot_pages_[s / kSlotPageSize][s & (kSlotPageSize - 1)];
  }

  // Near/far split: the near heap holds events with t < horizon_ and stays
  // small (tens of entries), so the per-event sifts run in cache; the far
  // heap absorbs long-dated timers and is touched only on schedule and on
  // horizon advances.  The window trades near-heap size against advance
  // frequency; 64 us spans the simulator's burst activity comfortably.
  static constexpr Duration kNearWindow = 65536;

  bool stop_ = false;
  std::vector<HeapItem> heap_;  // near 4-ary min-heap keyed on (t, seq)
  std::vector<HeapItem> far_;   // far 4-ary min-heap (t >= horizon_)
  Time horizon_ = 0;            // strict upper bound on near-heap times
  std::vector<std::unique_ptr<EventFn[]>> slot_pages_;
  std::vector<std::uint32_t> free_slots_;  // recycled slot indices
  std::uint32_t slot_count_ = 0;           // slots ever created
  std::vector<Task<void>> roots_;
  std::size_t reap_watermark_ = 64;
  std::exception_ptr root_error_;
  Rng rng_;
};

}  // namespace ulsocks::sim
