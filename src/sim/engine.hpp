// Discrete-event simulation engine.
//
// The engine owns a single time-ordered event queue.  Events at equal
// timestamps fire in the order they were scheduled (a monotonically
// increasing sequence number breaks ties), which makes every run
// bit-deterministic for a fixed seed.
//
// Coroutine integration: `spawn()` adopts a detached `Task<void>` (a
// simulated process) and starts it through the queue; `delay()`, and the
// primitives in sync.hpp, suspend coroutines and resume them via scheduled
// events, never inline, so causality always follows queue order.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "check/invariant.hpp"
#include "check/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/inline_function.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ulsocks::sim {

/// Thrown by Engine::run() when a spawned process terminated with an
/// uncaught exception.  Carries the original message.
class ProcessError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Identifies the simulation "domain" an event belongs to — the unit of
/// live migration between shards (apps::Cluster uses one domain per host).
/// Domain 0 is the ambient fabric (switch, links, harness glue): never
/// migrated, and the default for everything that never opts in.
using DomainId = std::uint32_t;
inline constexpr DomainId kAmbientDomain = 0;

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1) : rng_(seed) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Total events executed so far (for perf accounting).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }

  /// Schedule `fn` to run at absolute time `t` (>= now()).  Scheduling in
  /// the past would break causality (and, silently, determinism), so the
  /// check is an always-on invariant rather than a compiled-out assert.
  ///
  /// `fn` is an EventFn (sim/inline_function.hpp): move-only, and captures
  /// up to its inline capacity cost no heap allocation.
  void schedule_at(Time t, EventFn fn) {
    schedule_in_domain(t, current_domain_, std::move(fn));
  }

  /// schedule_at with an explicit domain tag, for the boundary crossings
  /// where the scheduling context is not the owning domain: link delivery
  /// (the transmit runs in the sender's domain, the arrival belongs to the
  /// receiver's) and cross-shard mailbox drains.  Everything scheduled from
  /// inside an event inherits that event's domain automatically.
  void schedule_in_domain(Time t, DomainId domain, EventFn fn) {
    ULSOCKS_INVARIANT(
        t >= now_,
        check::msgf("schedule_at in the past: t=%llu < now=%llu",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(now_)));
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = slot_count_++;
      if ((slot & (kSlotPageSize - 1)) == 0) {
        slot_pages_.push_back(std::make_unique<EventFn[]>(kSlotPageSize));
      }
    }
    slot_ref(slot) = std::move(fn);
    // Two-level queue: events inside the near horizon go to the small hot
    // heap, far-future ones (retransmit timers, mostly) to the far heap.
    // The strict `t < horizon_` split keeps min(near) < horizon_ <=
    // min(far), so the near heap's top is always the global minimum and
    // the pop order — and therefore the digest — is identical to a single
    // queue's.
    if (t < horizon_) {
      heap_push(heap_, HeapItem{t, next_seq_++, slot, domain});
    } else {
      heap_push(far_, HeapItem{t, next_seq_++, slot, domain});
    }
  }

  /// Schedule `fn` to run `dt` from now.
  void schedule_after(Duration dt, EventFn fn) {
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Adopt a detached simulated process.  The process is started through
  /// the event queue at the current time; uncaught exceptions stop the run
  /// and are rethrown from run().
  void spawn(Task<void> process) {
    roots_.push_back(RootEntry{wrap_root(std::move(process)),
                               current_domain_});
    auto h = roots_.back().task.handle();
    schedule_at(now_, [h] { detail::resume_chain(h); });
    maybe_reap();
  }

  /// Awaitable: suspend the current coroutine for `dt` simulated time.
  [[nodiscard]] auto delay(Duration dt) {
    struct Awaiter {
      Engine* eng;
      Duration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng->schedule_after(dt, [h] { detail::resume_chain(h); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: reschedule the current coroutine at the same timestamp,
  /// after every event already queued for this instant.
  [[nodiscard]] auto yield() { return delay(0); }

  /// Run until the queue drains, `request_stop()` is called, or a spawned
  /// process fails (rethrown as ProcessError).
  void run() {
    while (!stop_ && pending()) {
      step();
      if (root_error_) {
        auto err = root_error_;
        root_error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
  }

  /// Run every event with t strictly below `bound`, then return without
  /// advancing now() to the bound.  This is the epoch primitive of the
  /// sharded engine (sim/shard.hpp): leaving now() at the last executed
  /// event keeps `schedule_at(arrival >= bound)` legal for cross-shard
  /// deliveries, and an idle epoch leaves the engine byte-identical to not
  /// having run at all.  Returns true if the queue drained.
  bool run_before(Time bound) {
    while (!stop_ && pending() && next_time() < bound) {
      step();
      if (root_error_) {
        auto err = root_error_;
        root_error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
    return !pending();
  }

  /// Run until simulated time would exceed `deadline` (events at exactly
  /// `deadline` still run).  Returns true if the queue drained.
  bool run_until(Time deadline) {
    while (!stop_ && pending() && next_time() <= deadline) {
      step();
      if (root_error_) {
        auto err = root_error_;
        root_error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
    if (pending() && next_time() > deadline && now_ < deadline) {
      now_ = deadline;
    }
    return !pending();
  }

  /// Stop run() after the current event.
  void request_stop() noexcept { stop_ = true; }
  void clear_stop() noexcept { stop_ = false; }

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Record a process failure (used by the root wrapper; also usable by
  /// tests to inject failures).
  void set_error(std::exception_ptr e) noexcept { root_error_ = e; }

  /// Per-run event digest: (time, sequence, count) of every executed event
  /// folded into 64 bits.  Two runs of the same seeded workload must
  /// produce identical digests — the determinism self-check the ROADMAP
  /// tier-1 gate depends on (tests/determinism_test.cpp).
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  /// Order-insensitive companion of digest(): a wrapping sum of mix64(t)
  /// over every executed event.  Unlike digest() it does not fold the
  /// per-engine sequence numbers, so it is invariant under repartitioning
  /// the same event set across shards — the cross-shard-count identity the
  /// sharded determinism tests assert (see sim/shard.hpp).
  [[nodiscard]] std::uint64_t causal_digest() const noexcept {
    return causal_digest_;
  }

  /// Timestamp of the earliest queued event, or nothing if the queue is
  /// empty.  The shard scheduler uses this to compute each epoch's bound.
  [[nodiscard]] std::optional<Time> next_event_time() {
    if (!pending()) return std::nullopt;
    return next_time();
  }

  // ---- Domains and live migration ----------------------------------------
  //
  // Every queued event and every spawned root carries a DomainId.  Events
  // inherit the domain of the event that scheduled them (step() keeps the
  // executing event's tag current), so once a host's construction and
  // spawns run under a DomainScope the whole causal cone of that host stays
  // tagged — which is what lets ShardGroup lift a host out of one engine
  // and drop it into another at an epoch barrier (see sim/shard.hpp and
  // DESIGN.md §14).

  /// The domain tag new events are born with right now.
  [[nodiscard]] DomainId current_domain() const noexcept {
    return current_domain_;
  }
  void set_current_domain(DomainId d) noexcept { current_domain_ = d; }

  /// RAII domain tag: construction (and coroutine spawns) inside the scope
  /// are attributed to `d`.
  class DomainScope {
   public:
    DomainScope(Engine& eng, DomainId d) noexcept
        : eng_(&eng), prev_(eng.current_domain()) {
      eng.set_current_domain(d);
    }
    ~DomainScope() { eng_->set_current_domain(prev_); }
    DomainScope(const DomainScope&) = delete;
    DomainScope& operator=(const DomainScope&) = delete;

   private:
    Engine* eng_;
    DomainId prev_;
  };

  /// Events executed so far on behalf of domain `d` — the load signal the
  /// rebalance policy samples.
  [[nodiscard]] std::uint64_t domain_events_executed(DomainId d) const
      noexcept {
    return d < domain_events_.size() ? domain_events_[d] : 0;
  }

  /// A domain lifted out of an engine: its pending events in (t, seq)
  /// order plus the root coroutines spawned under it.  Only ShardGroup's
  /// barrier-phase migration may call extract/adopt — moving live events
  /// anywhere else is unsound (ulsan-shard-affinity enforces this).
  struct MigratedEvent {
    Time t;
    EventFn fn;
  };
  struct MigratedDomain {
    DomainId domain = kAmbientDomain;
    std::vector<MigratedEvent> events;  // sorted by source (t, seq)
    std::vector<Task<void>> roots;
  };

  /// Remove every queued event and root tagged `d` from this engine.
  /// Events come back in their (t, seq) pop order, so adopt_domain can
  /// re-sequence them without reordering the domain's own causality.
  [[nodiscard]] MigratedDomain extract_domain(DomainId d) {
    MigratedDomain out;
    out.domain = d;
    std::vector<HeapItem> taken;
    auto strip = [&](std::vector<HeapItem>& heap) {
      std::vector<HeapItem> keep;
      keep.reserve(heap.size());
      for (const HeapItem& it : heap) {
        (it.domain == d ? taken : keep).push_back(it);
      }
      heap.clear();
      for (const HeapItem& it : keep) heap_push(heap, it);
    };
    strip(heap_);
    strip(far_);
    std::sort(taken.begin(), taken.end(), [](const HeapItem& a,
                                             const HeapItem& b) {
      return before(a, b);
    });
    out.events.reserve(taken.size());
    for (const HeapItem& it : taken) {
      EventFn& fn = slot_ref(it.slot);
      out.events.push_back(MigratedEvent{it.t, std::move(fn)});
      fn.reset();
      free_slots_.push_back(it.slot);
    }
    for (RootEntry& r : roots_) {
      if (r.domain == d) out.roots.push_back(std::move(r.task));
    }
    std::erase_if(roots_, [](const RootEntry& r) { return !r.task.handle(); });
    return out;
  }

  /// Adopt a domain extracted from another engine.  Pre: every event time
  /// is >= now() (the shard barrier protocol guarantees this before it
  /// applies a migration).  Events are re-sequenced in their original
  /// order, so the domain's same-timestamp causality is preserved.
  void adopt_domain(MigratedDomain&& m) {
    for (MigratedEvent& ev : m.events) {
      schedule_in_domain(ev.t, m.domain, std::move(ev.fn));
    }
    for (Task<void>& t : m.roots) {
      roots_.push_back(RootEntry{std::move(t), m.domain});
    }
    m.events.clear();
    m.roots.clear();
  }

  /// True while any event is queued.
  [[nodiscard]] bool has_pending() const noexcept { return pending(); }

  /// Cross-layer invariant checkers (see check/registry.hpp).  Protocol
  /// objects register themselves here; the engine sweeps the registry
  /// every `check_interval()` events and lets violations propagate out of
  /// run() as check::InvariantError.
  [[nodiscard]] check::Registry& checks() noexcept { return checks_; }

  /// The run's metrics registry (see obs/metrics.hpp).  Protocol layers
  /// register Counter/Gauge/Histogram handles under "h<N>/<layer>/<name>"
  /// paths at construction; benches snapshot it after run().
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const noexcept {
    return metrics_;
  }

  /// The run's span-based timeline tracer (see obs/timeline.hpp).  Disabled
  /// by default; enable before run() to export a Chrome trace afterwards.
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }

  /// Events between checker sweeps; 0 disables sweeping entirely.  Tests
  /// set 1 to catch corruption on the very next event.
  void set_check_interval(std::uint64_t every_n_events) noexcept {
    check_interval_ = every_n_events;
    check_countdown_ = every_n_events;
  }
  [[nodiscard]] std::uint64_t check_interval() const noexcept {
    return check_interval_;
  }

  // splitmix64 finalizer: cheap, well-mixed fold for the event digest.
  // Public so the shard scheduler folds per-shard digests with the same
  // mixer the per-event digest uses.
  static constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

 private:
  // The heap orders trivially-copyable 24-byte nodes; the (potentially
  // 100-byte) callable lives in a stable slot in `slots_`.  Heap sift
  // moves are then plain POD copies the compiler turns into memmoves —
  // profiling showed sifting full fat events (inline-capture relocation
  // through an indirect call per move) dominated the hot loop.
  struct HeapItem {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    DomainId domain;  // fills what used to be padding: still 24 bytes
  };
  static_assert(std::is_trivially_copyable_v<HeapItem>);
  static_assert(sizeof(HeapItem) == 24);
  // Orders the heap so the front element is the minimum (t, seq).  (t, seq)
  // is a strict total order — seq is unique — so any valid heap over the
  // same pending set pops in exactly one order, which is why the digest is
  // insensitive to the heap's internal layout (binary vs. 4-ary, and any
  // sift implementation).
  static bool before(const HeapItem& a, const HeapItem& b) noexcept {
    return a.t < b.t || (a.t == b.t && a.seq < b.seq);
  }

  // 4-ary min-heap.  Shallower than a binary heap (log4 vs log2 levels)
  // and the four children share a cache line pair, which matters because
  // queue sifting is the simulator's single hottest loop.  Sift-up and
  // sift-down move a hole instead of swapping, so each level costs one
  // 24-byte copy.
  static void heap_push(std::vector<HeapItem>& h, HeapItem it) {
    std::size_t i = h.size();
    h.push_back(it);  // reserve the leaf; overwritten below
    while (i > 0) {
      std::size_t parent = (i - 1) >> 2;
      if (!before(it, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = it;
  }

  static HeapItem heap_pop(std::vector<HeapItem>& h) {
    HeapItem top = h[0];
    HeapItem last = h.back();
    h.pop_back();
    std::size_t n = h.size();
    if (n != 0) {
      std::size_t i = 0;
      for (;;) {
        std::size_t child = 4 * i + 1;
        if (child >= n) break;
        std::size_t best = child;
        std::size_t end = child + 4 < n ? child + 4 : n;
        for (std::size_t k = child + 1; k < end; ++k) {
          if (before(h[k], h[best])) best = k;
        }
        if (!before(h[best], last)) break;
        h[i] = h[best];
        i = best;
      }
      h[i] = last;
    }
    return top;
  }

  [[nodiscard]] bool pending() const noexcept {
    return !heap_.empty() || !far_.empty();
  }

  /// Refill the near heap from the far heap if it drained.  Advancing the
  /// horizon to (min far time + window) migrates at least one event, so
  /// the loop body runs at most once per call with a non-empty far heap.
  void refill_near() {
    while (heap_.empty() && !far_.empty()) {
      horizon_ = far_[0].t + kNearWindow;
      while (!far_.empty() && far_[0].t < horizon_) {
        heap_push(heap_, heap_pop(far_));
      }
    }
  }

  /// Timestamp of the next event to fire.  Pre: pending().
  [[nodiscard]] Time next_time() {
    refill_near();
    return heap_[0].t;
  }

  void step() {
    // Owning the heap directly (vs. std::priority_queue) lets the next
    // event be moved out of storage legitimately — no const_cast.
    refill_near();
    const HeapItem ev = heap_pop(heap_);
    ULSOCKS_INVARIANT(
        ev.t >= now_,
        check::msgf("event time went backwards: t=%llu < now=%llu",
                    static_cast<unsigned long long>(ev.t),
                    static_cast<unsigned long long>(now_)));
    now_ = ev.t;
    ++events_executed_;
    digest_ = mix64(digest_ ^ ev.t);
    digest_ = mix64(digest_ ^ ev.seq);
    causal_digest_ += mix64(ev.t);
    // The executing event's domain becomes the ambient tag: everything it
    // schedules or spawns inherits it.  current_engine_ routes root-frame
    // error reporting to the engine actually stepping the coroutine, which
    // after a migration is not the engine that spawned it.
    current_domain_ = ev.domain;
    current_engine_ = this;
    if (ev.domain != kAmbientDomain) {
      if (ev.domain >= domain_events_.size()) {
        domain_events_.resize(ev.domain + 1, 0);
      }
      ++domain_events_[ev.domain];
    }
    // Execute in place: slot pages are address-stable (the page directory
    // may grow during fn(), the pages never move), so no relocating move of
    // the inline capture is needed per event.  The slot is recycled only
    // after fn() returns, so an event scheduling new events can never be
    // handed its own still-running slot.
    EventFn& fn = slot_ref(ev.slot);
    fn();
    fn.reset();
    free_slots_.push_back(ev.slot);
    // Countdown instead of `events_executed_ % interval`: one decrement
    // and branch per event, no integer division in the hot loop.
    if (check_countdown_ != 0 && --check_countdown_ == 0) {
      checks_.run_all();
      check_countdown_ = check_interval_;
    }
  }

  // Static on purpose: a member coroutine would capture the engine that
  // SPAWNED the root, but a migrated root finishes on the engine that now
  // steps it.  current_engine_ (set by step()) is always the stepping
  // engine — roots only ever resume inside events.
  static Task<void> wrap_root(Task<void> process) {
    try {
      co_await process;
    } catch (...) {
      if (current_engine_ != nullptr) {
        current_engine_->root_error_ = std::current_exception();
        current_engine_->stop_ = true;
      }
    }
  }

  void maybe_reap() {
    if (roots_.size() < reap_watermark_) return;
    std::erase_if(roots_, [](const RootEntry& r) { return r.task.done(); });
    // Back off geometrically: the next full scan happens only once the
    // surviving set has doubled, so N spawns cost O(N) amortized scanning
    // instead of the O(N^2) of sweeping every spawn past a fixed floor.
    reap_watermark_ = std::max<std::size_t>(64, roots_.size() * 2);
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t digest_ = 0x243f6a8885a308d3ull;  // pi, arbitrary non-zero
  std::uint64_t causal_digest_ = 0;
  std::uint64_t check_interval_ = 1024;
  std::uint64_t check_countdown_ = 1024;
  check::Registry checks_;
  obs::Registry metrics_;
  obs::Tracer tracer_;
  // Callable storage: fixed-size pages so slot addresses stay stable while
  // events run (a std::vector<EventFn> could reallocate under a running
  // event that schedules).  kSlotPageSize is a power of two so slot_ref()
  // is shift+mask.
  static constexpr std::uint32_t kSlotPageSize = 1024;
  [[nodiscard]] EventFn& slot_ref(std::uint32_t s) noexcept {
    return slot_pages_[s / kSlotPageSize][s & (kSlotPageSize - 1)];
  }

  // Near/far split: the near heap holds events with t < horizon_ and stays
  // small (tens of entries), so the per-event sifts run in cache; the far
  // heap absorbs long-dated timers and is touched only on schedule and on
  // horizon advances.  The window trades near-heap size against advance
  // frequency; 64 us spans the simulator's burst activity comfortably.
  static constexpr Duration kNearWindow = 65536;

  bool stop_ = false;
  std::vector<HeapItem> heap_;  // near 4-ary min-heap keyed on (t, seq)
  std::vector<HeapItem> far_;   // far 4-ary min-heap (t >= horizon_)
  Time horizon_ = 0;            // strict upper bound on near-heap times
  std::vector<std::unique_ptr<EventFn[]>> slot_pages_;
  std::vector<std::uint32_t> free_slots_;  // recycled slot indices
  std::uint32_t slot_count_ = 0;           // slots ever created
  struct RootEntry {
    Task<void> task;
    DomainId domain;
  };
  std::vector<RootEntry> roots_;
  std::size_t reap_watermark_ = 64;
  std::exception_ptr root_error_;
  DomainId current_domain_ = kAmbientDomain;
  std::vector<std::uint64_t> domain_events_;  // executed, indexed by domain
  // The engine currently inside step() on this thread (workers each step
  // their own shard, so thread-local is exact).
  inline static thread_local Engine* current_engine_ = nullptr;
  Rng rng_;
};

}  // namespace ulsocks::sim
