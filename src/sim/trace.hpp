// Lightweight component-tagged tracing.
//
// Off by default; enable with `trace::set_level(trace::Level::kDebug)` or
// the ULSOCKS_TRACE environment variable (0..3).  Tracing is for debugging
// protocol interleavings; benches and tests run with it off.
#pragma once

#include <cstdarg>
#include <cstdint>

#include "sim/time.hpp"

namespace ulsocks::sim::trace {

enum class Level : std::uint8_t { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

void set_level(Level level) noexcept;
[[nodiscard]] Level level() noexcept;
[[nodiscard]] bool enabled(Level level) noexcept;

/// Read ULSOCKS_TRACE from the environment (called lazily on first log).
void init_from_env() noexcept;

/// printf-style trace line, prefixed with simulated time and component tag.
void logf(Level level, Time now, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace ulsocks::sim::trace

// Convenience macros: cheap when tracing is off (single branch).
#define ULS_TRACE(eng, component, ...)                                     \
  do {                                                                     \
    if (::ulsocks::sim::trace::enabled(::ulsocks::sim::trace::Level::kDebug)) \
      ::ulsocks::sim::trace::logf(::ulsocks::sim::trace::Level::kDebug,    \
                                  (eng).now(), component, __VA_ARGS__);    \
  } while (0)

#define ULS_INFO(eng, component, ...)                                      \
  do {                                                                     \
    if (::ulsocks::sim::trace::enabled(::ulsocks::sim::trace::Level::kInfo))  \
      ::ulsocks::sim::trace::logf(::ulsocks::sim::trace::Level::kInfo,     \
                                  (eng).now(), component, __VA_ARGS__);    \
  } while (0)
