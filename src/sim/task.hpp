// Lazily-started coroutine task for simulated processes.
//
// A `Task<T>` is the return type of every coroutine in the simulation:
// application processes, protocol handlers, NIC firmware loops.  Tasks are
// lazy (they do not run until awaited or spawned on the Engine), support
// symmetric transfer so arbitrarily deep call chains use O(1) stack, and
// propagate exceptions to their awaiter.
//
// The whole simulation is single-threaded; no synchronization is needed.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

namespace ulsocks::sim {

template <class T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      // Resume whoever was awaiting us; if detached, park forever (the
      // owning Task destroys the frame).
      if (auto cont = h.promise().continuation) return cont;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <class T>
struct Promise final : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  template <class U>
  void return_value(U&& v) {
    value.emplace(std::forward<U>(v));
  }
};

template <>
struct Promise<void> final : PromiseBase {
  Task<void> get_return_object();
  void return_void() const noexcept {}
};

}  // namespace detail

/// An owning handle to a lazily-started coroutine.  Move-only.
template <class T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return bool(handle_); }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }

  /// Release ownership of the coroutine frame (caller must destroy it).
  Handle release() noexcept { return std::exchange(handle_, {}); }
  Handle handle() const noexcept { return handle_; }

  /// Awaiting a task starts it; the awaiter resumes when it completes.
  auto operator co_await() const& noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer: run the child now
      }
      T await_resume() const {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        if constexpr (!std::is_void_v<T>) return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

namespace detail {

template <class T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace ulsocks::sim
