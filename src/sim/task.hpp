// Lazily-started coroutine task for simulated processes.
//
// A `Task<T>` is the return type of every coroutine in the simulation:
// application processes, protocol handlers, NIC firmware loops.  Tasks are
// lazy (they do not run until awaited or spawned on the Engine), run
// arbitrarily deep call chains in O(1) native stack via the resume
// trampoline below, and propagate exceptions to their awaiter.
//
// The whole simulation is single-threaded; no synchronization is needed.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

namespace ulsocks::sim {

template <class T>
class Task;

namespace detail {

// Stack-safe resume loop ("trampoline").  Classic symmetric transfer —
// returning the next coroutine's handle from await_suspend — is only O(1)
// stack if the compiler turns the transfer into a genuine tail call, and
// GCC does not under -fsanitize=address, so a deep task chain would
// overflow the native stack in exactly the sanitized builds the pre-merge
// gate runs.  Instead awaiters *post* the next coroutine to the innermost
// active chain slot and this loop resumes it, making stack safety a
// runtime property rather than an optimizer one.
inline thread_local std::coroutine_handle<>* active_chain = nullptr;

inline void resume_chain(std::coroutine_handle<> first) {
  std::coroutine_handle<> next{};
  auto* const saved = active_chain;
  active_chain = &next;
  try {
    auto h = first;
    while (h) {
      next = {};
      h.resume();
      h = next;  // whatever the slice's suspension posted, if anything
    }
  } catch (...) {
    active_chain = saved;
    throw;
  }
  active_chain = saved;
}

// Hand `h` to the innermost running chain loop; a raw `.resume()` from
// outside the engine has no active loop, so start one here.
inline void post_next(std::coroutine_handle<> h) {
  if (active_chain) {
    *active_chain = h;
  } else {
    resume_chain(h);
  }
}

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class P>
    void await_suspend(std::coroutine_handle<P> h) noexcept {
      // Resume whoever was awaiting us; if detached, park forever (the
      // owning Task destroys the frame).
      if (auto cont = h.promise().continuation) post_next(cont);
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <class T>
struct Promise final : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  template <class U>
  void return_value(U&& v) {
    value.emplace(std::forward<U>(v));
  }
};

template <>
struct Promise<void> final : PromiseBase {
  Task<void> get_return_object();
  void return_void() const noexcept {}
};

}  // namespace detail

/// An owning handle to a lazily-started coroutine.  Move-only.
template <class T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return bool(handle_); }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }

  /// Release ownership of the coroutine frame (caller must destroy it).
  Handle release() noexcept { return std::exchange(handle_, {}); }
  Handle handle() const noexcept { return handle_; }

  /// Awaiting a task starts it; the awaiter resumes when it completes.
  auto operator co_await() const& noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      void await_suspend(std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        detail::post_next(h);  // run the child now, via the trampoline
      }
      T await_resume() const {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        if constexpr (!std::is_void_v<T>) return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

namespace detail {

template <class T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace ulsocks::sim
