// A serially-occupied hardware resource (a firmware CPU, a DMA engine, a
// host CPU).  Work is FIFO: each job begins when all earlier jobs finish,
// occupies the resource for its cost, then runs its completion action.
// Utilization accounting feeds the CPU-availability results the paper
// argues for (NIC-based protocol processing frees the host CPU).
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ulsocks::sim {

class SerialResource {
 public:
  SerialResource(Engine& eng, std::string name)
      : eng_(&eng), name_(std::move(name)) {}
  SerialResource(const SerialResource&) = delete;
  SerialResource& operator=(const SerialResource&) = delete;

  /// Schedule future completions on another engine (live shard migration).
  /// Only legal between epochs, with no job completion event in flight on
  /// the old engine that the migration protocol has not already moved.
  void rebind(Engine& eng) noexcept { eng_ = &eng; }

  /// Enqueue a job costing `cost`; `done` (optional) runs at completion.
  /// Returns the completion time.
  Time run(Duration cost, EventFn done = {}) {
    Time start = busy_until_ > eng_->now() ? busy_until_ : eng_->now();
    busy_until_ = start + cost;
    busy_total_ += cost;
    ++jobs_;
    if (done) eng_->schedule_at(busy_until_, std::move(done));
    return busy_until_;
  }

  /// Coroutine flavour: occupy the resource for `cost`, resuming the caller
  /// at completion.
  [[nodiscard]] Task<void> use(Duration cost) {
    Time end = run(cost);
    co_await eng_->delay(end - eng_->now());
  }

  [[nodiscard]] Time busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] bool idle() const noexcept { return busy_until_ <= eng_->now(); }
  [[nodiscard]] Duration busy_total() const noexcept { return busy_total_; }
  [[nodiscard]] std::uint64_t jobs() const noexcept { return jobs_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Fraction of `window` this resource was occupied (window typically
  /// the whole run).
  [[nodiscard]] double utilization(Duration window) const {
    return window ? static_cast<double>(busy_total_) /
                        static_cast<double>(window)
                  : 0.0;
  }

 private:
  Engine* eng_;
  std::string name_;
  Time busy_until_ = 0;
  Duration busy_total_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace ulsocks::sim
