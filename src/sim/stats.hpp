// Measurement accumulators and result-table formatting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ulsocks::sim {

/// Streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void reset() { *this = OnlineStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample-retaining series with percentile queries (micro-benchmarks keep
/// every iteration; sizes are small).
class Series {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  /// p in [0,1]; nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> v = samples_;
    std::sort(v.begin(), v.end());
    auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) +
                                        0.5);
    return v[std::min(idx, v.size() - 1)];
  }

  [[nodiscard]] double median() const { return percentile(0.5); }

  [[nodiscard]] double min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  [[nodiscard]] double max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  void reset() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

/// Fixed-width text table used by the figure-reproduction benches so every
/// harness prints paper-style rows the same way.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render to a string (also used by tests to check harness output).
  [[nodiscard]] std::string to_string() const;

  /// Print to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ulsocks::sim
