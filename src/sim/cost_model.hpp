// Calibrated cost model for the simulated testbed.
//
// The paper's testbed: 4x Pentium III 700 MHz quads, 1 MB cache, 1 GB RAM,
// Alteon (Tigon2) Gigabit Ethernet NICs, Packet Engines switch, Linux
// 2.4.18.  Every constant below is charged by exactly one model component;
// the comment on each gives its provenance:
//   [paper]   stated directly in Balaji et al., Cluster 2002
//   [emp]     from the EMP papers (Shivam et al., SC'01 / IPDPS'02)
//   [era]     typical for PIII-700 / Linux 2.4 / 32-64 bit PCI hardware
//   [fit]     chosen so the reproduced figures match the paper's shape;
//             see EXPERIMENTS.md for the calibration targets.
//
// Changing a constant changes timing only — protocol correctness never
// depends on these values, and the test suite runs with several distorted
// models to prove it.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace ulsocks::sim {

/// Host CPU / OS costs (charged by src/oskernel).
struct HostCosts {
  /// Entering + leaving the kernel for one system call. [era]
  Duration syscall_ns = 700;
  /// Full context switch (schedule another process/thread). [era]
  Duration context_switch_ns = 5'000;
  /// OS scheduler timeslice granularity; a thread that blocks (rather than
  /// polls) observes wake-up latency of this order.  The paper cites
  /// "order of milliseconds" for the blocking-thread alternative. [paper]
  Duration sched_granularity_ns = 4'000'000;
  /// Synchronization cost between two polling threads sharing a CPU; the
  /// paper measured ~20 us for the communication-thread alternative. [paper]
  Duration thread_sync_ns = 20'000;
  /// memcpy: fixed call overhead plus per-byte cost.  ~800 MB/s warm-cache
  /// copy bandwidth on PIII-700 SDRAM. [era]
  Duration memcpy_setup_ns = 150;
  double memcpy_bytes_per_us = 800.0;
  /// Pinning + virtual->physical translation of a buffer (one syscall doing
  /// both, first touch only; later hits come from the translation cache).
  /// [emp]
  Duration pin_region_ns = 9'000;
  /// Translation-cache hit (pure user-space lookup). [emp]
  Duration pin_cache_hit_ns = 120;
  /// Uncontended user-space poll iteration on a completion queue. [fit]
  Duration poll_iteration_ns = 80;
  /// Building one descriptor in user space before posting it. [fit]
  Duration desc_build_ns = 300;
  /// Filesystem call overhead (VFS + RAM-disk block management) and
  /// filesystem data bandwidth; tuned so ftp is filesystem-limited below
  /// the socket peak, as the paper observes (§7.3). [fit]
  Duration fs_op_ns = 18'000;
  double fs_bytes_per_us = 100.0;
  /// Dense floating-point throughput of the PIII-700 running a naive
  /// matmul kernel (~2 flops per inner iteration). [era]
  double flops_per_us = 120.0;
};

/// Alteon Tigon2 NIC costs (charged by src/nic and src/emp).
struct NicCosts {
  /// Host MMIO write to the NIC mailbox (posting a descriptor). [era]
  Duration mailbox_post_ns = 700;
  /// Firmware handling of one freshly posted tx descriptor (fetch, build
  /// transmission record). [fit: EMP small-message latency]
  Duration fw_tx_post_ns = 4'500;
  /// Firmware filing of one freshly posted rx descriptor. [fit]
  Duration fw_rx_post_ns = 2'500;
  /// Firmware per-frame work: a fixed part (descriptor and reliability
  /// bookkeeping) plus a per-byte part (header/DMA programming touches the
  /// data length).  The 88 MHz Tigon cores are the protocol bottleneck:
  /// the full-frame transmit cost (~13.4 us) sets EMP's ~880 Mb/s peak,
  /// and transmit is deliberately >= effective receive cost so a sender
  /// can never build an unbounded backlog in the receiving NIC. [fit]
  Duration fw_tx_frame_ns = 6'500;
  double fw_tx_frame_per_byte_ns = 4.7;
  Duration fw_rx_frame_ns = 7'500;
  double fw_rx_frame_per_byte_ns = 3.5;
  /// Walking one pre-posted descriptor during tag matching. [paper: 550 ns]
  Duration tag_match_per_desc_ns = 550;
  /// Building/sending one ack frame (receive side) and absorbing one ack
  /// frame (transmit side). [fit]
  Duration fw_ack_tx_ns = 2'600;
  Duration fw_ack_rx_ns = 2'200;
  /// DMA engine: per-transfer setup plus per-byte cost over the host bus.
  /// 64-bit/33 MHz PCI moves ~2 bytes/ns peak; ~1.6 sustained. [era]
  Duration dma_setup_ns = 800;
  double dma_bytes_per_us = 1'600.0;
  /// Writing a completion entry to host memory. [fit]
  Duration completion_write_ns = 500;
};

/// Wire and switch characteristics (charged by src/net).
struct WireCosts {
  /// Gigabit Ethernet line rate. [paper]
  std::uint64_t link_bps = 1'000'000'000ull;
  /// Cable propagation (a few tens of metres of copper). [era]
  Duration propagation_ns = 300;
  /// Packet Engines switch: store-and-forward lookup/forwarding latency
  /// in addition to the store (serialization) time. [era]
  Duration switch_latency_ns = 2'200;
  /// Ethernet MTU payload. [paper]
  std::uint32_t mtu = 1500;
  /// Per-port output buffering in the switch. [era]
  std::uint32_t switch_port_buffer_bytes = 262'144;
};

/// Kernel TCP/IP path costs (charged by src/tcp).  These reproduce the
/// baseline: ~120 us 4-byte one-way latency, ~340 Mb/s with the default
/// 16 KB socket buffers and ~550 Mb/s with tuned buffers. [paper]
struct TcpCosts {
  /// tcp_sendmsg/tcp_recvmsg protocol processing per segment. [era]
  Duration tx_segment_ns = 8'500;
  Duration rx_segment_ns = 10'000;
  /// IP + driver (acenic) output path per packet. [era]
  Duration driver_tx_ns = 4'500;
  /// Hard IRQ entry/exit + acenic rx handling per interrupt. [era]
  Duration interrupt_ns = 9'000;
  /// Interrupt mitigation on the stock acenic driver: received frames are
  /// held up to this long before an rx interrupt fires.  Dominates the
  /// kernel path's small-message latency. [era: acenic default coalescing]
  Duration rx_coalesce_ns = 85'000;
  /// Frames arriving within the window share one interrupt.
  std::uint32_t rx_coalesce_frames = 16;
  /// Waking a process blocked in recv() (softirq -> schedule). [era]
  Duration wakeup_ns = 13'000;
  /// Standard (non-EMP) NIC firmware store-and-forward per frame, each
  /// direction; the stock firmware is much leaner than EMP's. [era]
  Duration nic_frame_ns = 2'000;
  /// Default socket buffers (kernel memory for the NIC to use).  Linux
  /// 2.4 defaults: 16 KB send, ~43 KB receive — the paper's 340 Mb/s
  /// default case is send-buffer-limited. [paper/era]
  std::uint32_t default_sndbuf_bytes = 16'384;
  std::uint32_t default_rcvbuf_bytes = 43'689;
  /// TCP connection establishment also pays listen-queue + process wakeup
  /// work beyond the 3 segments; the paper cites 200-250 us total. [paper]
  Duration accept_overhead_ns = 35'000;
};

/// The complete machine model handed to every component.
struct CostModel {
  HostCosts host{};
  NicCosts nic{};
  WireCosts wire{};
  TcpCosts tcp{};

  /// Cost of copying `bytes` with the host CPU.
  [[nodiscard]] Duration memcpy_cost(std::uint64_t bytes) const {
    return host.memcpy_setup_ns + copy_ns(bytes, host.memcpy_bytes_per_us);
  }

  /// Cost of one DMA transfer of `bytes` between host and NIC.
  [[nodiscard]] Duration dma_cost(std::uint64_t bytes) const {
    return nic.dma_setup_ns + copy_ns(bytes, nic.dma_bytes_per_us);
  }

  /// Firmware time to transmit / receive one frame carrying `bytes`.
  [[nodiscard]] Duration fw_tx_frame_cost(std::uint64_t bytes) const {
    return nic.fw_tx_frame_ns +
           static_cast<Duration>(static_cast<double>(bytes) *
                                 nic.fw_tx_frame_per_byte_ns);
  }
  [[nodiscard]] Duration fw_rx_frame_cost(std::uint64_t bytes) const {
    return nic.fw_rx_frame_ns +
           static_cast<Duration>(static_cast<double>(bytes) *
                                 nic.fw_rx_frame_per_byte_ns);
  }
};

/// The default, calibrated model (see EXPERIMENTS.md for target numbers).
[[nodiscard]] inline CostModel calibrated_cost_model() { return CostModel{}; }

}  // namespace ulsocks::sim
