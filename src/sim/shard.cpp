#include "sim/shard.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "check/invariant.hpp"

namespace ulsocks::sim {

ShardGroup::ShardGroup(std::size_t shards, Duration lookahead,
                       std::uint64_t seed)
    : lookahead_(lookahead) {
  ULSOCKS_INVARIANT(shards >= 1, "ShardGroup needs at least one shard");
  ULSOCKS_INVARIANT(lookahead >= 1,
                    "zero lookahead admits same-instant cross-shard "
                    "causality; epochs would never make progress");
  engines_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    engines_.push_back(std::make_unique<Engine>(seed + i));
  }
  mail_.resize(shards * shards);
  bounds_.assign(shards, kNoBound);
  errors_.assign(shards, nullptr);
  checks_.add("sim.shard.mailbox_conservation", [this] {
    std::uint64_t posted = 0;
    for (const Mailbox& b : mail_) posted += b.next_seq;
    ULSOCKS_INVARIANT(
        posted == delivered_,
        check::msgf("cross-shard mailboxes leaked events: posted=%llu "
                    "delivered=%llu",
                    static_cast<unsigned long long>(posted),
                    static_cast<unsigned long long>(delivered_)));
  });
}

std::uint32_t ShardGroup::index_of(const Engine& eng) const {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (engines_[i].get() == &eng) return static_cast<std::uint32_t>(i);
  }
  ULSOCKS_INVARIANT(false, "engine does not belong to this ShardGroup");
  return 0;  // unreachable
}

void ShardGroup::post_remote(std::uint32_t src, std::uint32_t dst, Time t,
                             EventFn fn) {
  const std::size_t n = engines_.size();
  ULSOCKS_INVARIANT(src < n && dst < n && src != dst,
                    "post_remote: bad shard pair");
  // The conservative guarantee everything rests on: a cross-shard effect
  // can never land closer than the lookahead ahead of its source's clock.
  ULSOCKS_INVARIANT(
      t >= engines_[src]->now() + lookahead_,
      check::msgf("cross-shard post violates lookahead: t=%llu < "
                  "src_now=%llu + W=%llu",
                  static_cast<unsigned long long>(t),
                  static_cast<unsigned long long>(engines_[src]->now()),
                  static_cast<unsigned long long>(lookahead_)));
  Mailbox& b = box(src, dst);
  b.entries.push_back(MailEntry{t, b.next_seq++, src, std::move(fn)});
}

bool ShardGroup::begin_epoch() {
  // Bounded-lag window: every shard shares the bound G + W, where G is the
  // GLOBAL minimum next-event time — including each shard's own clock.
  //
  // Why self must be included: it is tempting to give shard i the classic
  // per-pair CMB bound min_{j!=i}(T_j) + W, which is one-hop safe — but in
  // a barrier-synchronous scheme it breaks on multi-hop reflection.  If
  // every peer of i is idle or far in the future, i runs far ahead; i's own
  // posts then wake an idle hub shard (the switch) in a LATER epoch, and
  // the hub's relayed frames land in i's past.  Per-pair bounds are only
  // sound when channel clocks propagate transitively (null messages),
  // which a barrier does not do.
  //
  // The shared window is sound by induction: every event executed this
  // epoch has t in [G, G + W), so every cross-shard post carries
  // t >= G + W, strictly beyond every shard's clock at the barrier.  And
  // it makes progress: the shard owning G always executes at least one
  // event, so epochs never deadlock.
  const std::size_t n = engines_.size();
  Time gmin = kNoBound;
  for (std::size_t i = 0; i < n; ++i) {
    const std::optional<Time> t = engines_[i]->next_event_time();
    if (t && *t < gmin) gmin = *t;
  }
  if (gmin == kNoBound) return false;
  if (n == 1) {
    // No cross-shard causality exists; the single shard runs to drain.
    bounds_[0] = kNoBound;
    return true;
  }
  const Time bound = gmin + lookahead_;
  for (std::size_t i = 0; i < n; ++i) bounds_[i] = bound;
  return true;
}

void ShardGroup::run_shard(std::size_t i) noexcept {
  try {
    if (bounds_[i] == kNoBound) {
      // Only a one-shard group (or an idle shard) gets here: run to drain.
      engines_[i]->run();
    } else {
      engines_[i]->run_before(bounds_[i]);
    }
  } catch (...) {
    errors_[i] = std::current_exception();
  }
}

void ShardGroup::finish_epoch() {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (errors_[i]) {
      std::exception_ptr e = errors_[i];
      errors_[i] = nullptr;
      std::rethrow_exception(e);
    }
  }
  deliver_mailboxes();
  ++epochs_;
  if (check_epoch_interval_ != 0 && epochs_ % check_epoch_interval_ == 0) {
    checks_.run_all();
  }
}

void ShardGroup::deliver_mailboxes() {
  const std::size_t n = engines_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    scratch_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      Mailbox& b = box(static_cast<std::uint32_t>(src),
                       static_cast<std::uint32_t>(dst));
      for (MailEntry& e : b.entries) scratch_.push_back(std::move(e));
      b.entries.clear();
    }
    if (scratch_.empty()) continue;
    // (t, seq, src) is a strict total order — seq is unique per (src, dst)
    // box — so the destination engine numbers these events identically no
    // matter how the window's execution interleaved across threads.
    std::sort(scratch_.begin(), scratch_.end(),
              [](const MailEntry& a, const MailEntry& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.seq != b.seq) return a.seq < b.seq;
                return a.src < b.src;
              });
    for (MailEntry& e : scratch_) {
      engines_[dst]->schedule_at(e.t, std::move(e.fn));
      ++delivered_;
    }
    scratch_.clear();
  }
}

void ShardGroup::run_serial() {
  while (begin_epoch()) {
    for (std::size_t i = 0; i < engines_.size(); ++i) run_shard(i);
    finish_epoch();
  }
}

void ShardGroup::run_parallel(unsigned resolved) {
  // Persistent workers with a spin-then-yield epoch barrier: epochs are on
  // the order of the lookahead (~1 us simulated, often far less host time),
  // so per-epoch thread churn or futex round-trips would dominate.  Main
  // acts as worker 0; shard i belongs to worker i % resolved, so a shard
  // is stepped by the same thread every epoch.
  const std::size_t n = engines_.size();
  std::atomic<std::uint64_t> go{0};
  std::atomic<unsigned> done{0};
  std::atomic<bool> quit{false};
  std::vector<std::thread> pool;
  pool.reserve(resolved - 1);
  for (unsigned w = 1; w < resolved; ++w) {
    pool.emplace_back([this, w, resolved, n, &go, &done, &quit] {
      std::uint64_t seen = 0;
      for (;;) {
        std::uint32_t spins = 0;
        while (go.load(std::memory_order_acquire) == seen &&
               !quit.load(std::memory_order_acquire)) {
          if ((++spins & 1023u) == 0) std::this_thread::yield();
        }
        if (quit.load(std::memory_order_acquire)) break;
        seen = go.load(std::memory_order_acquire);
        for (std::size_t i = w; i < n; i += resolved) run_shard(i);
        done.fetch_add(1, std::memory_order_release);
      }
    });
  }
  std::exception_ptr failure;
  try {
    while (begin_epoch()) {
      done.store(0, std::memory_order_relaxed);
      go.fetch_add(1, std::memory_order_release);
      for (std::size_t i = 0; i < n; i += resolved) run_shard(i);
      std::uint32_t spins = 0;
      while (done.load(std::memory_order_acquire) != resolved - 1) {
        if ((++spins & 1023u) == 0) std::this_thread::yield();
      }
      finish_epoch();
    }
  } catch (...) {
    failure = std::current_exception();
  }
  quit.store(true, std::memory_order_release);
  for (std::thread& th : pool) th.join();
  if (failure) std::rethrow_exception(failure);
}

void ShardGroup::run(unsigned threads) {
  unsigned resolved =
      threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (resolved == 0) resolved = 1;
  resolved = static_cast<unsigned>(
      std::min<std::size_t>(resolved, engines_.size()));
  if (resolved <= 1) {
    run_serial();
  } else {
    run_parallel(resolved);
  }
  // Quiesced: every queue drained, every mailbox delivered.
  checks_.run_all();
}

std::uint64_t ShardGroup::digest() const {
  std::uint64_t d = engines_[0]->digest();
  for (std::size_t i = 1; i < engines_.size(); ++i) {
    d = Engine::mix64(d ^ engines_[i]->digest());
  }
  return d;
}

std::uint64_t ShardGroup::causal_digest() const {
  std::uint64_t d = 0;
  for (const auto& e : engines_) d += e->causal_digest();
  return d;
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->events_executed();
  return n;
}

Time ShardGroup::now() const {
  Time t = 0;
  for (const auto& e : engines_) t = std::max(t, e->now());
  return t;
}

}  // namespace ulsocks::sim
