#include "sim/shard.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "check/invariant.hpp"

namespace ulsocks::sim {

ShardGroup::ShardGroup(std::size_t shards, Duration lookahead,
                       std::uint64_t seed)
    : lookahead_(lookahead) {
  ULSOCKS_INVARIANT(shards >= 1, "ShardGroup needs at least one shard");
  ULSOCKS_INVARIANT(lookahead >= 1,
                    "zero lookahead admits same-instant cross-shard "
                    "causality; epochs would never make progress");
  engines_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    engines_.push_back(std::make_unique<Engine>(seed + i));
  }
  mail_.resize(shards * shards);
  edges_.assign(shards * shards, kUnreachable);
  dist_.assign(shards * shards, kUnreachable);
  bounds_.assign(shards, kNoBound);
  tnext_.assign(shards, kNoBound);
  runnable_.assign(shards, 0);
  errors_.assign(shards, nullptr);
  // Register the scheduler instruments up front so quiesced snapshots carry
  // them (as zeros) even for runs that never cross a barrier.
  epoch_ns_hist_ = &metrics_.histogram("shard/epoch_ns");
  (void)metrics_.counter("shard/epochs");
  (void)metrics_.counter("shard/barrier_skips");
  (void)metrics_.counter("shard/remote_events");
  checks_.add("sim.shard.mailbox_conservation", [this] {
    std::uint64_t posted = 0;
    for (const Mailbox& b : mail_) posted += b.next_seq;
    ULSOCKS_INVARIANT(
        posted == delivered_,
        check::msgf("cross-shard mailboxes leaked events: posted=%llu "
                    "delivered=%llu",
                    static_cast<unsigned long long>(posted),
                    static_cast<unsigned long long>(delivered_)));
  });
}

std::uint32_t ShardGroup::index_of(const Engine& eng) const {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (engines_[i].get() == &eng) return static_cast<std::uint32_t>(i);
  }
  ULSOCKS_INVARIANT(false, "engine does not belong to this ShardGroup");
  return 0;  // unreachable
}

void ShardGroup::register_edge_lookahead(std::uint32_t src, std::uint32_t dst,
                                         Duration w) {
  const std::size_t n = engines_.size();
  ULSOCKS_INVARIANT(src < n && dst < n && src != dst,
                    "register_edge_lookahead: bad shard pair");
  ULSOCKS_INVARIANT(w >= 1,
                    "zero edge lookahead admits same-instant cross-shard "
                    "causality on this edge");
  if (!any_registered_) {
    // First registration flips the group from the all-pairs constructor
    // default to registered-edges-only: pairs nobody declares are
    // unreachable and constrain no bound.
    std::fill(edges_.begin(), edges_.end(), kUnreachable);
    any_registered_ = true;
    dist_dirty_ = true;
  }
  Duration& cell = edges_[static_cast<std::size_t>(src) * n + dst];
  if (w < cell) {
    cell = w;
    dist_dirty_ = true;
  }
}

Duration ShardGroup::edge_lookahead(std::uint32_t src,
                                    std::uint32_t dst) const {
  const std::size_t n = engines_.size();
  ULSOCKS_INVARIANT(src < n && dst < n, "edge_lookahead: bad shard pair");
  if (src == dst) return kUnreachable;
  return edge(src, dst);
}

Duration ShardGroup::path_lookahead(std::uint32_t src, std::uint32_t dst) {
  const std::size_t n = engines_.size();
  ULSOCKS_INVARIANT(src < n && dst < n, "path_lookahead: bad shard pair");
  if (dist_dirty_) refresh_dist();
  return dist(src, dst);
}

void ShardGroup::refresh_dist() {
  // Floyd–Warshall over the effective edge matrix, with the diagonal
  // seeded unreachable so D[i][i] converges to the minimum directed cycle
  // through i — the reflection bound.  All weights are >= 1 ns, so the
  // closure is well defined and every finite entry is positive.  n is the
  // shard count (single digits), so the cubic sweep is noise; it reruns
  // only when a registration actually changes an edge.
  const std::size_t n = engines_.size();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      dist_[s * n + d] =
          s == d ? kUnreachable
                 : (any_registered_ ? edges_[s * n + d] : lookahead_);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t s = 0; s < n; ++s) {
      const Duration sk = dist_[s * n + k];
      if (sk == kUnreachable) continue;
      for (std::size_t d = 0; d < n; ++d) {
        const Duration kd = dist_[k * n + d];
        if (kd == kUnreachable) continue;
        const Duration via =
            sk >= kUnreachable - kd ? kUnreachable : sk + kd;
        if (via < dist_[s * n + d]) dist_[s * n + d] = via;
      }
    }
  }
  dist_dirty_ = false;
}

void ShardGroup::post_remote(std::uint32_t src, std::uint32_t dst, Time t,
                             EventFn fn) {
  const std::size_t n = engines_.size();
  ULSOCKS_INVARIANT(src < n && dst < n && src != dst,
                    "post_remote: bad shard pair");
  const Duration w = edge(src, dst);
  ULSOCKS_INVARIANT(
      w != kUnreachable,
      check::msgf("post_remote on unregistered edge %u -> %u: every "
                  "cross-shard path must register_edge_lookahead first",
                  src, dst));
  // The conservative guarantee everything rests on: a cross-shard effect
  // can never land closer than this edge's lookahead ahead of its
  // source's clock.
  ULSOCKS_INVARIANT(
      t >= engines_[src]->now() + w,
      check::msgf("cross-shard post violates lookahead: t=%llu < "
                  "src_now=%llu + W[%u][%u]=%llu",
                  static_cast<unsigned long long>(t),
                  static_cast<unsigned long long>(engines_[src]->now()), src,
                  dst, static_cast<unsigned long long>(w)));
  Mailbox& b = box(src, dst);
  b.entries.push_back(MailEntry{t, b.next_seq++, src, std::move(fn)});
}

bool ShardGroup::begin_epoch() {
  // Per-shard windows from the lookahead closure D:
  //
  //   bound_i = min over all shards j of (T_j + D[j][i])
  //
  // where T_j is shard j's next event time (infinity when drained).  The
  // j == i term uses D[i][i], the minimum round trip back to i — it is
  // what stops a shard whose peers are all idle from running past the
  // earliest possible echo of its own output.  The closure (not the raw
  // edge matrix) is essential: the classic per-pair CMB bound
  // min_{j!=i}(T_j + W[j][i]) is one-hop safe but breaks under a barrier
  // on multi-hop relays — an idle hub (the switch shard) woken by i's own
  // posts would relay frames into i's past.  Taking the min over shortest
  // *paths* folds every relay chain, and the cycle diagonal folds
  // reflection; DESIGN.md §11 has the induction.
  //
  // Soundness: every event executed this epoch on shard j has t < bound_j
  // <= T_j' for any later T_j', and every post it makes toward i carries
  // t >= now_j + W[j][i] >= T_j + D[j][i] >= bound_i — strictly beyond
  // everything i executes this epoch (the debug check in
  // deliver_mailboxes() pins this per delivery).  Progress: all D entries
  // are >= 1, so the shard owning the global minimum always has
  // bound > T and executes at least one event.
  const std::size_t n = engines_.size();
  if (dist_dirty_) refresh_dist();
  Time gmin = kNoBound;
  for (std::size_t i = 0; i < n; ++i) {
    const std::optional<Time> t = engines_[i]->next_event_time();
    tnext_[i] = t ? *t : kNoBound;
    if (tnext_[i] < gmin) gmin = tnext_[i];
  }
  if (gmin == kNoBound) return false;
  // Simulated global-clock advance per barrier round; gmin strictly
  // increases between rounds (every executed window moves its shard's T
  // past the old gmin, and delivered mail honours the edge lookahead).
  if (have_gmin_) epoch_ns_hist_->observe(gmin - last_gmin_);
  last_gmin_ = gmin;
  have_gmin_ = true;
  if (n == 1) {
    // No cross-shard causality exists; the single shard runs to drain.
    bounds_[0] = kNoBound;
    runnable_[0] = 1;
    return true;
  }
  if (mode_ == LookaheadMode::kScalar) {
    // A/B baseline: the PR5-era shared window global_min + W.
    const Time bound = sat_add(gmin, lookahead_);
    for (std::size_t i = 0; i < n; ++i) bounds_[i] = bound;
  } else {
    for (std::size_t dst = 0; dst < n; ++dst) {
      Time b = kNoBound;
      for (std::size_t src = 0; src < n; ++src) {
        const Time via = sat_add(tnext_[src], dist_[src * n + dst]);
        if (via < b) b = via;
      }
      bounds_[dst] = b;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    runnable_[i] = tnext_[i] < bounds_[i] ? 1 : 0;
  }
  return true;
}

std::vector<Time> ShardGroup::plan_bounds() {
  if (!begin_epoch()) return {};
  return bounds_;
}

std::size_t ShardGroup::single_runnable() const {
  std::size_t lone = kNone;
  for (std::size_t i = 0; i < runnable_.size(); ++i) {
    if (!runnable_[i]) continue;
    if (lone != kNone) return kNone;
    lone = i;
  }
  return lone;
}

bool ShardGroup::outbox_empty(std::size_t src) const {
  const std::size_t n = engines_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    if (!mail_[src * n + dst].entries.empty()) return false;
  }
  return true;
}

std::size_t ShardGroup::coalesce_single(std::size_t i) {
  // Sole-runnable streak: every other shard stays non-runnable while only
  // T_i advances (their bounds are monotone in T_i), so the next window's
  // bound for i needs no full replan — the contributions from the others,
  //
  //   other_min = min_{j != i} (T_j + D[j][i]),
  //
  // are frozen, and only i's own reflection term T_i' + D[i][i] moves.
  // Each micro-window here is exactly the window a full barrier replan
  // would have produced, so epochs() stays a pure function of the
  // workload; what the streak skips is the O(n^2) replan and (in parallel
  // runs) the worker wake — not any window the schedule owes.  The streak
  // breaks as soon as i posts cross-shard mail (delivery needs the
  // barrier), fails, drains, stops being the constraint, or exhausts the
  // stride cap that keeps checker cadence and mailbox latency bounded.
  const std::size_t n = engines_.size();
  const bool scalar = mode_ == LookaheadMode::kScalar;
  const Duration self =
      n == 1 ? kUnreachable : (scalar ? lookahead_ : dist(i, i));
  Time other_min = kNoBound;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    const Time via = sat_add(tnext_[j], scalar ? lookahead_ : dist(j, i));
    if (via < other_min) other_min = via;
  }
  std::size_t strides = 0;
  for (;;) {
    run_shard(i);
    ++strides;
    ++epochs_;
    if (errors_[i] || !outbox_empty(i) || strides >= kMaxCoalesceStride) {
      break;
    }
    const std::optional<Time> t = engines_[i]->next_event_time();
    if (!t) break;  // drained
    const Time nb = std::min(other_min, sat_add(*t, self));
    if (*t >= nb) break;  // no longer the sole constraint
    bounds_[i] = nb;
  }
  return strides;
}

void ShardGroup::run_shard(std::size_t i) noexcept {
  try {
    if (bounds_[i] == kNoBound) {
      // One-shard groups and shards no reachable peer can affect: run to
      // drain (their posts, if any, still wait for the barrier).
      engines_[i]->run();
    } else {
      engines_[i]->run_before(bounds_[i]);
    }
  } catch (...) {
    errors_[i] = std::current_exception();
  }
}

void ShardGroup::finish_epoch() {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (errors_[i]) {
      std::exception_ptr e = errors_[i];
      errors_[i] = nullptr;
      std::rethrow_exception(e);
    }
  }
  deliver_mailboxes();
  // Coalesced streaks advance epochs_ by more than one between barriers;
  // compare against the last sweep instead of a modulus.
  if (check_epoch_interval_ != 0 &&
      epochs_ - last_check_epoch_ >= check_epoch_interval_) {
    last_check_epoch_ = epochs_;
    checks_.run_all();
  }
}

void ShardGroup::deliver_mailboxes() {
  const std::size_t n = engines_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    scratch_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      Mailbox& b = box(static_cast<std::uint32_t>(src),
                       static_cast<std::uint32_t>(dst));
      for (MailEntry& e : b.entries) scratch_.push_back(std::move(e));
      b.entries.clear();
    }
    if (scratch_.empty()) continue;
    // (t, seq, src) is a strict total order — seq is unique per (src, dst)
    // box — so the destination engine numbers these events identically no
    // matter how the window's execution interleaved across threads.
    std::sort(scratch_.begin(), scratch_.end(),
              [](const MailEntry& a, const MailEntry& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.seq != b.seq) return a.seq < b.seq;
                return a.src < b.src;
              });
    for (MailEntry& e : scratch_) {
#ifndef NDEBUG
      // The matrix-soundness induction, checked per delivery: nothing may
      // land inside the window its destination just executed.
      ULSOCKS_INVARIANT(
          bounds_[dst] == kNoBound || e.t >= bounds_[dst],
          check::msgf("delivered mailbox entry violates W[src][dst]: "
                      "t=%llu < bound[%llu]=%llu (src=%u)",
                      static_cast<unsigned long long>(e.t),
                      static_cast<unsigned long long>(dst),
                      static_cast<unsigned long long>(bounds_[dst]), e.src));
#endif
      engines_[dst]->schedule_at(e.t, std::move(e.fn));
      ++delivered_;
    }
    scratch_.clear();
  }
}

void ShardGroup::run_serial() {
  while (begin_epoch()) {
    const std::size_t lone = single_runnable();
    if (lone != kNone) {
      barrier_skips_ += coalesce_single(lone);
    } else {
      for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (runnable_[i]) run_shard(i);
      }
      ++epochs_;
    }
    finish_epoch();
  }
}

void ShardGroup::run_parallel(unsigned resolved) {
  // Persistent workers with a spin-then-yield epoch barrier: epochs are on
  // the order of the lookahead (~1 us simulated, often far less host time),
  // so per-epoch thread churn or futex round-trips would dominate.  Main
  // acts as worker 0; shard i belongs to worker i % resolved, so a shard
  // is stepped by the same thread every epoch.
  //
  // Each worker has its own padded go counter, and an epoch wakes only the
  // workers owning a runnable shard: the others keep spinning on their own
  // line and never touch shared scheduler state, so a sole-runnable streak
  // (coalesce_single on this thread) proceeds with zero worker traffic.
  // Happens-before is the per-worker go release/acquire edge out and the
  // shared done release/acquire edge back.
  const std::size_t n = engines_.size();
  struct alignas(64) WorkerSignal {
    std::atomic<std::uint64_t> go{0};
  };
  std::vector<WorkerSignal> sig(resolved);
  std::atomic<unsigned> done{0};
  std::atomic<bool> quit{false};
  std::vector<std::thread> pool;
  pool.reserve(resolved - 1);
  for (unsigned w = 1; w < resolved; ++w) {
    pool.emplace_back([this, w, resolved, n, &sig, &done, &quit] {
      std::uint64_t seen = 0;
      for (;;) {
        std::uint32_t spins = 0;
        while (sig[w].go.load(std::memory_order_acquire) == seen &&
               !quit.load(std::memory_order_acquire)) {
          if ((++spins & 1023u) == 0) std::this_thread::yield();
        }
        if (sig[w].go.load(std::memory_order_acquire) == seen) break;  // quit
        seen = sig[w].go.load(std::memory_order_acquire);
        for (std::size_t i = w; i < n; i += resolved) {
          if (runnable_[i]) run_shard(i);
        }
        done.fetch_add(1, std::memory_order_release);
      }
    });
  }
  std::exception_ptr failure;
  try {
    while (begin_epoch()) {
      const std::size_t lone = single_runnable();
      if (lone != kNone) {
        // Scheduling decisions live on group state only, so serial and
        // parallel runs take identical streaks — epochs() and
        // barrier_skips() never depend on the thread count.
        barrier_skips_ += coalesce_single(lone);
        finish_epoch();
        continue;
      }
      done.store(0, std::memory_order_relaxed);
      unsigned woken = 0;
      for (unsigned w = 1; w < resolved; ++w) {
        bool any = false;
        for (std::size_t i = w; i < n && !any; i += resolved) {
          any = runnable_[i] != 0;
        }
        if (any) {
          sig[w].go.fetch_add(1, std::memory_order_release);
          ++woken;
        }
      }
      for (std::size_t i = 0; i < n; i += resolved) {
        if (runnable_[i]) run_shard(i);
      }
      std::uint32_t spins = 0;
      while (done.load(std::memory_order_acquire) != woken) {
        if ((++spins & 1023u) == 0) std::this_thread::yield();
      }
      ++epochs_;
      finish_epoch();
    }
  } catch (...) {
    failure = std::current_exception();
  }
  quit.store(true, std::memory_order_release);
  for (std::thread& th : pool) th.join();
  if (failure) std::rethrow_exception(failure);
}

void ShardGroup::run(unsigned threads) {
  unsigned resolved =
      threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (resolved == 0) resolved = 1;
  resolved = static_cast<unsigned>(
      std::min<std::size_t>(resolved, engines_.size()));
  if (resolved <= 1) {
    run_serial();
  } else {
    run_parallel(resolved);
  }
  // Quiesced: every queue drained, every mailbox delivered.
  checks_.run_all();
  flush_metrics();
}

void ShardGroup::flush_metrics() {
  metrics_.counter("shard/epochs").inc(epochs_ - epochs_flushed_);
  epochs_flushed_ = epochs_;
  metrics_.counter("shard/barrier_skips").inc(barrier_skips_ - skips_flushed_);
  skips_flushed_ = barrier_skips_;
  metrics_.counter("shard/remote_events")
      .inc(delivered_ - delivered_flushed_);
  delivered_flushed_ = delivered_;
}

std::uint64_t ShardGroup::digest() const {
  std::uint64_t d = engines_[0]->digest();
  for (std::size_t i = 1; i < engines_.size(); ++i) {
    d = Engine::mix64(d ^ engines_[i]->digest());
  }
  return d;
}

std::uint64_t ShardGroup::causal_digest() const {
  std::uint64_t d = 0;
  for (const auto& e : engines_) d += e->causal_digest();
  return d;
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->events_executed();
  return n;
}

Time ShardGroup::now() const {
  Time t = 0;
  for (const auto& e : engines_) t = std::max(t, e->now());
  return t;
}

}  // namespace ulsocks::sim
