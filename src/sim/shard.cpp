#include "sim/shard.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "check/invariant.hpp"

namespace ulsocks::sim {

ShardGroup::ShardGroup(std::size_t shards, Duration lookahead,
                       std::uint64_t seed)
    : lookahead_(lookahead) {
  ULSOCKS_INVARIANT(shards >= 1, "ShardGroup needs at least one shard");
  ULSOCKS_INVARIANT(lookahead >= 1,
                    "zero lookahead admits same-instant cross-shard "
                    "causality; epochs would never make progress");
  engines_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    engines_.push_back(std::make_unique<Engine>(seed + i));
  }
  mail_.resize(shards * shards);
  edges_.assign(shards * shards, kUnreachable);
  dist_.assign(shards * shards, kUnreachable);
  bounds_.assign(shards, kNoBound);
  tnext_.assign(shards, kNoBound);
  runnable_.assign(shards, 0);
  errors_.assign(shards, nullptr);
  // Register the scheduler instruments up front so quiesced snapshots carry
  // them (as zeros) even for runs that never cross a barrier.
  epoch_ns_hist_ = &metrics_.histogram("shard/epoch_ns");
  (void)metrics_.counter("shard/epochs");
  (void)metrics_.counter("shard/barrier_skips");
  (void)metrics_.counter("shard/remote_events");
  (void)metrics_.counter("shard/migrations");
  (void)metrics_.gauge("shard/imbalance");
  checks_.add("sim.shard.mailbox_conservation", [this] {
    std::uint64_t posted = 0;
    for (const Mailbox& b : mail_) posted += b.next_seq;
    ULSOCKS_INVARIANT(
        posted == delivered_,
        check::msgf("cross-shard mailboxes leaked events: posted=%llu "
                    "delivered=%llu",
                    static_cast<unsigned long long>(posted),
                    static_cast<unsigned long long>(delivered_)));
  });
}

std::uint32_t ShardGroup::index_of(const Engine& eng) const {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (engines_[i].get() == &eng) return static_cast<std::uint32_t>(i);
  }
  ULSOCKS_INVARIANT(false, "engine does not belong to this ShardGroup");
  return 0;  // unreachable
}

void ShardGroup::register_edge_lookahead(std::uint32_t src, std::uint32_t dst,
                                         Duration w) {
  const std::size_t n = engines_.size();
  ULSOCKS_INVARIANT(src < n && dst < n && src != dst,
                    "register_edge_lookahead: bad shard pair");
  ULSOCKS_INVARIANT(w >= 1,
                    "zero edge lookahead admits same-instant cross-shard "
                    "causality on this edge");
  if (!any_registered_) {
    // First registration flips the group from the all-pairs constructor
    // default to registered-edges-only: pairs nobody declares are
    // unreachable and constrain no bound.
    std::fill(edges_.begin(), edges_.end(), kUnreachable);
    any_registered_ = true;
    dist_dirty_ = true;
  }
  Duration& cell = edges_[static_cast<std::size_t>(src) * n + dst];
  if (w < cell) {
    cell = w;
    dist_dirty_ = true;
  }
}

Duration ShardGroup::edge_lookahead(std::uint32_t src,
                                    std::uint32_t dst) const {
  const std::size_t n = engines_.size();
  ULSOCKS_INVARIANT(src < n && dst < n, "edge_lookahead: bad shard pair");
  if (src == dst) return kUnreachable;
  return edge(src, dst);
}

Duration ShardGroup::path_lookahead(std::uint32_t src, std::uint32_t dst) {
  const std::size_t n = engines_.size();
  ULSOCKS_INVARIANT(src < n && dst < n, "path_lookahead: bad shard pair");
  if (dist_dirty_) refresh_dist();
  return dist(src, dst);
}

void ShardGroup::refresh_dist() {
  // Floyd–Warshall over the effective edge matrix, with the diagonal
  // seeded unreachable so D[i][i] converges to the minimum directed cycle
  // through i — the reflection bound.  All weights are >= 1 ns, so the
  // closure is well defined and every finite entry is positive.  n is the
  // shard count (single digits), so the cubic sweep is noise; it reruns
  // only when a registration actually changes an edge.
  const std::size_t n = engines_.size();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      dist_[s * n + d] =
          s == d ? kUnreachable
                 : (any_registered_ ? edges_[s * n + d] : lookahead_);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t s = 0; s < n; ++s) {
      const Duration sk = dist_[s * n + k];
      if (sk == kUnreachable) continue;
      for (std::size_t d = 0; d < n; ++d) {
        const Duration kd = dist_[k * n + d];
        if (kd == kUnreachable) continue;
        const Duration via =
            sk >= kUnreachable - kd ? kUnreachable : sk + kd;
        if (via < dist_[s * n + d]) dist_[s * n + d] = via;
      }
    }
  }
  dist_dirty_ = false;
}

void ShardGroup::post_remote(std::uint32_t src, std::uint32_t dst, Time t,
                             EventFn fn, DomainId domain) {
  const std::size_t n = engines_.size();
  ULSOCKS_INVARIANT(src < n && dst < n && src != dst,
                    "post_remote: bad shard pair");
  const Duration w = edge(src, dst);
  ULSOCKS_INVARIANT(
      w != kUnreachable,
      check::msgf("post_remote on unregistered edge %u -> %u: every "
                  "cross-shard path must register_edge_lookahead first",
                  src, dst));
  // The conservative guarantee everything rests on: a cross-shard effect
  // can never land closer than this edge's lookahead ahead of its
  // source's clock.
  ULSOCKS_INVARIANT(
      t >= engines_[src]->now() + w,
      check::msgf("cross-shard post violates lookahead: t=%llu < "
                  "src_now=%llu + W[%u][%u]=%llu",
                  static_cast<unsigned long long>(t),
                  static_cast<unsigned long long>(engines_[src]->now()), src,
                  dst, static_cast<unsigned long long>(w)));
  Mailbox& b = box(src, dst);
  b.entries.push_back(MailEntry{t, b.next_seq++, src, domain, std::move(fn)});
}

bool ShardGroup::begin_epoch() {
  // Per-shard windows from the lookahead closure D:
  //
  //   bound_i = min over all shards j of (T_j + D[j][i])
  //
  // where T_j is shard j's next event time (infinity when drained).  The
  // j == i term uses D[i][i], the minimum round trip back to i — it is
  // what stops a shard whose peers are all idle from running past the
  // earliest possible echo of its own output.  The closure (not the raw
  // edge matrix) is essential: the classic per-pair CMB bound
  // min_{j!=i}(T_j + W[j][i]) is one-hop safe but breaks under a barrier
  // on multi-hop relays — an idle hub (the switch shard) woken by i's own
  // posts would relay frames into i's past.  Taking the min over shortest
  // *paths* folds every relay chain, and the cycle diagonal folds
  // reflection; DESIGN.md §11 has the induction.
  //
  // Soundness: every event executed this epoch on shard j has t < bound_j
  // <= T_j' for any later T_j', and every post it makes toward i carries
  // t >= now_j + W[j][i] >= T_j + D[j][i] >= bound_i — strictly beyond
  // everything i executes this epoch (the debug check in
  // deliver_mailboxes() pins this per delivery).  Progress: all D entries
  // are >= 1, so the shard owning the global minimum always has
  // bound > T and executes at least one event.
  const std::size_t n = engines_.size();
  if (dist_dirty_) refresh_dist();
  Time gmin = kNoBound;
  for (std::size_t i = 0; i < n; ++i) {
    const std::optional<Time> t = engines_[i]->next_event_time();
    tnext_[i] = t ? *t : kNoBound;
    if (tnext_[i] < gmin) gmin = tnext_[i];
  }
  if (gmin == kNoBound) return false;
  // Simulated global-clock advance per barrier round; gmin strictly
  // increases between rounds (every executed window moves its shard's T
  // past the old gmin, and delivered mail honours the edge lookahead).
  if (have_gmin_) epoch_ns_hist_->observe(gmin - last_gmin_);
  last_gmin_ = gmin;
  have_gmin_ = true;
  if (n == 1) {
    // No cross-shard causality exists; the single shard runs to drain.
    bounds_[0] = kNoBound;
    runnable_[0] = 1;
    return true;
  }
  if (mode_ == LookaheadMode::kScalar) {
    // A/B baseline: the PR5-era shared window global_min + W.
    const Time bound = sat_add(gmin, lookahead_);
    for (std::size_t i = 0; i < n; ++i) bounds_[i] = bound;
  } else {
    for (std::size_t dst = 0; dst < n; ++dst) {
      Time b = kNoBound;
      for (std::size_t src = 0; src < n; ++src) {
        const Time via = sat_add(tnext_[src], dist_[src * n + dst]);
        if (via < b) b = via;
      }
      bounds_[dst] = b;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    runnable_[i] = tnext_[i] < bounds_[i] ? 1 : 0;
  }
  clamp_for_pending_migrations();
  return true;
}

void ShardGroup::clamp_for_pending_migrations() {
  // While a migration (domain d: from -> to) waits for its barrier, cap
  // the destination's window at the source's: dst then never executes an
  // event at or past bound_src, so once src has run a window to bound_src
  // every event the domain still owns (all t >= bound_src) is strictly in
  // dst's future and apply_migrations() can adopt them.  Lowering a bound
  // is always conservative, so soundness is untouched; progress holds
  // because the global minimum — and with it bound_src — strictly
  // increases every epoch while a clamped dst's clock is frozen at or
  // below it.
  if (pending_migrations_.empty()) return;
  for (const PendingMigration& m : pending_migrations_) {
    const std::uint32_t from = placement_[m.domain].shard;
    if (from == m.to) continue;
    if (bounds_[from] < bounds_[m.to]) bounds_[m.to] = bounds_[from];
  }
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    runnable_[i] = tnext_[i] < bounds_[i] ? 1 : 0;
  }
}

std::vector<Time> ShardGroup::plan_bounds() {
  if (!begin_epoch()) return {};
  return bounds_;
}

std::size_t ShardGroup::single_runnable() const {
  std::size_t lone = kNone;
  for (std::size_t i = 0; i < runnable_.size(); ++i) {
    if (!runnable_[i]) continue;
    if (lone != kNone) return kNone;
    lone = i;
  }
  return lone;
}

bool ShardGroup::outbox_empty(std::size_t src) const {
  const std::size_t n = engines_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    if (!mail_[src * n + dst].entries.empty()) return false;
  }
  return true;
}

std::size_t ShardGroup::coalesce_single(std::size_t i) {
  // Sole-runnable streak: every other shard stays non-runnable while only
  // T_i advances (their bounds are monotone in T_i), so the next window's
  // bound for i needs no full replan — the contributions from the others,
  //
  //   other_min = min_{j != i} (T_j + D[j][i]),
  //
  // are frozen, and only i's own reflection term T_i' + D[i][i] moves.
  // Each micro-window here is exactly the window a full barrier replan
  // would have produced, so epochs() stays a pure function of the
  // workload; what the streak skips is the O(n^2) replan and (in parallel
  // runs) the worker wake — not any window the schedule owes.  The streak
  // breaks as soon as i posts cross-shard mail (delivery needs the
  // barrier), fails, drains, stops being the constraint, or exhausts the
  // stride cap that keeps checker cadence and mailbox latency bounded.
  const std::size_t n = engines_.size();
  const bool scalar = mode_ == LookaheadMode::kScalar;
  const Duration self =
      n == 1 ? kUnreachable : (scalar ? lookahead_ : dist(i, i));
  Time other_min = kNoBound;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    const Time via = sat_add(tnext_[j], scalar ? lookahead_ : dist(j, i));
    if (via < other_min) other_min = via;
  }
  std::size_t strides = 0;
  for (;;) {
    run_shard(i);
    ++strides;
    ++epochs_;
    if (errors_[i] || !outbox_empty(i) || strides >= kMaxCoalesceStride) {
      break;
    }
    const std::optional<Time> t = engines_[i]->next_event_time();
    if (!t) break;  // drained
    const Time nb = std::min(other_min, sat_add(*t, self));
    if (*t >= nb) break;  // no longer the sole constraint
    bounds_[i] = nb;
  }
  return strides;
}

void ShardGroup::run_shard(std::size_t i) noexcept {
  try {
    if (bounds_[i] == kNoBound) {
      // One-shard groups and shards no reachable peer can affect: run to
      // drain (their posts, if any, still wait for the barrier).
      engines_[i]->run();
    } else {
      engines_[i]->run_before(bounds_[i]);
    }
  } catch (...) {
    errors_[i] = std::current_exception();
  }
}

void ShardGroup::finish_epoch() {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (errors_[i]) {
      std::exception_ptr e = errors_[i];
      errors_[i] = nullptr;
      std::rethrow_exception(e);
    }
  }
  deliver_mailboxes();
  // Apply after the drain: a mailbox entry delivered to the source this
  // barrier honours bound_src (the per-delivery debug check above), so it
  // also satisfies the migration condition and moves with the domain.
  apply_migrations();
  // Policy cadence in epochs, not wall clock: the proposal schedule is a
  // pure function of the workload, so migration-on runs are deterministic
  // at any thread count.
  if (policy_ && epochs_ - last_policy_epoch_ >= policy_epoch_interval_) {
    last_policy_epoch_ = epochs_;
    policy_(*this);
  }
  // Coalesced streaks advance epochs_ by more than one between barriers;
  // compare against the last sweep instead of a modulus.
  if (check_epoch_interval_ != 0 &&
      epochs_ - last_check_epoch_ >= check_epoch_interval_) {
    last_check_epoch_ = epochs_;
    checks_.run_all();
  }
}

void ShardGroup::apply_migrations() {
  if (pending_migrations_.empty()) return;
  std::vector<PendingMigration> defer;
  bool moved_any = false;
  for (const PendingMigration& m : pending_migrations_) {
    const std::uint32_t from = placement_[m.domain].shard;
    if (from == m.to) continue;  // raced with a manual move; nothing to do
    // Soundness condition: everything the domain still owns has
    // t >= bound_src (the source just ran a window to that bound, or was
    // not runnable with T_src >= bound_src, or drained with nothing left),
    // so adopting is legal iff dst's clock is strictly below it.
    const Time b = bounds_[from];
    if (!(b == kNoBound || engines_[m.to]->now() < b)) {
      defer.push_back(m);
      continue;
    }
    Engine::MigratedDomain dom = engines_[from]->extract_domain(m.domain);
    engines_[m.to]->adopt_domain(std::move(dom));
    placement_[m.domain].shard = m.to;
    ++placement_version_;
    ++migrations_;
    migration_log_.push_back(MigrationRecord{epochs_, m.domain, from, m.to});
    // The host bundle (engine pointers, link endpoint, condvars,
    // checkers) rebinds after its events moved, before anything runs.
    if (migrator_) migrator_(m.domain, from, m.to);
    moved_any = true;
  }
  pending_migrations_ = std::move(defer);
  if (moved_any) {
    // The cross-shard edge set changed with the endpoints: drop every
    // registered edge and let the links re-declare their true costs, then
    // reclose before the next epoch plans bounds.
    if (any_registered_) {
      std::fill(edges_.begin(), edges_.end(), kUnreachable);
      if (edge_refresher_) edge_refresher_();
    }
    dist_dirty_ = true;
  }
}

void ShardGroup::deliver_mailboxes() {
  const std::size_t n = engines_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    scratch_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      Mailbox& b = box(static_cast<std::uint32_t>(src),
                       static_cast<std::uint32_t>(dst));
      for (MailEntry& e : b.entries) scratch_.push_back(std::move(e));
      b.entries.clear();
    }
    if (scratch_.empty()) continue;
    // (t, seq, src) is a strict total order — seq is unique per (src, dst)
    // box — so the destination engine numbers these events identically no
    // matter how the window's execution interleaved across threads.
    std::sort(scratch_.begin(), scratch_.end(),
              [](const MailEntry& a, const MailEntry& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.seq != b.seq) return a.seq < b.seq;
                return a.src < b.src;
              });
    for (MailEntry& e : scratch_) {
#ifndef NDEBUG
      // The matrix-soundness induction, checked per delivery: nothing may
      // land inside the window its destination just executed.
      ULSOCKS_INVARIANT(
          bounds_[dst] == kNoBound || e.t >= bounds_[dst],
          check::msgf("delivered mailbox entry violates W[src][dst]: "
                      "t=%llu < bound[%llu]=%llu (src=%u)",
                      static_cast<unsigned long long>(e.t),
                      static_cast<unsigned long long>(dst),
                      static_cast<unsigned long long>(bounds_[dst]), e.src));
#endif
      engines_[dst]->schedule_in_domain(e.t, e.domain, std::move(e.fn));
      ++delivered_;
    }
    scratch_.clear();
  }
}

void ShardGroup::run_serial() {
  while (begin_epoch()) {
    // A coalesced streak skips barriers, but pending migrations need the
    // per-epoch clamp + apply check a barrier provides — suspend
    // coalescing until the pending set drains.  Each micro-window equals
    // the window a full barrier replan would produce, so suspending
    // changes no schedule, only the bookkeeping pace.
    const std::size_t lone =
        pending_migrations_.empty() ? single_runnable() : kNone;
    if (lone != kNone) {
      barrier_skips_ += coalesce_single(lone);
    } else {
      for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (runnable_[i]) run_shard(i);
      }
      ++epochs_;
    }
    finish_epoch();
  }
}

void ShardGroup::run_parallel(unsigned resolved) {
  // Persistent workers with a spin-then-yield epoch barrier: epochs are on
  // the order of the lookahead (~1 us simulated, often far less host time),
  // so per-epoch thread churn or futex round-trips would dominate.  Main
  // acts as worker 0; shard i belongs to worker i % resolved, so a shard
  // is stepped by the same thread every epoch.
  //
  // Each worker has its own padded go counter, and an epoch wakes only the
  // workers owning a runnable shard: the others keep spinning on their own
  // line and never touch shared scheduler state, so a sole-runnable streak
  // (coalesce_single on this thread) proceeds with zero worker traffic.
  // Happens-before is the per-worker go release/acquire edge out and the
  // shared done release/acquire edge back.
  const std::size_t n = engines_.size();
  struct alignas(64) WorkerSignal {
    std::atomic<std::uint64_t> go{0};
  };
  std::vector<WorkerSignal> sig(resolved);
  std::atomic<unsigned> done{0};
  std::atomic<bool> quit{false};
  std::vector<std::thread> pool;
  pool.reserve(resolved - 1);
  for (unsigned w = 1; w < resolved; ++w) {
    pool.emplace_back([this, w, resolved, n, &sig, &done, &quit] {
      std::uint64_t seen = 0;
      for (;;) {
        std::uint32_t spins = 0;
        while (sig[w].go.load(std::memory_order_acquire) == seen &&
               !quit.load(std::memory_order_acquire)) {
          if ((++spins & 1023u) == 0) std::this_thread::yield();
        }
        if (sig[w].go.load(std::memory_order_acquire) == seen) break;  // quit
        seen = sig[w].go.load(std::memory_order_acquire);
        for (std::size_t i = w; i < n; i += resolved) {
          if (runnable_[i]) run_shard(i);
        }
        done.fetch_add(1, std::memory_order_release);
      }
    });
  }
  std::exception_ptr failure;
  try {
    while (begin_epoch()) {
      const std::size_t lone =
          pending_migrations_.empty() ? single_runnable() : kNone;
      if (lone != kNone) {
        // Scheduling decisions live on group state only, so serial and
        // parallel runs take identical streaks — epochs() and
        // barrier_skips() never depend on the thread count.
        barrier_skips_ += coalesce_single(lone);
        finish_epoch();
        continue;
      }
      done.store(0, std::memory_order_relaxed);
      unsigned woken = 0;
      for (unsigned w = 1; w < resolved; ++w) {
        bool any = false;
        for (std::size_t i = w; i < n && !any; i += resolved) {
          any = runnable_[i] != 0;
        }
        if (any) {
          sig[w].go.fetch_add(1, std::memory_order_release);
          ++woken;
        }
      }
      for (std::size_t i = 0; i < n; i += resolved) {
        if (runnable_[i]) run_shard(i);
      }
      std::uint32_t spins = 0;
      while (done.load(std::memory_order_acquire) != woken) {
        if ((++spins & 1023u) == 0) std::this_thread::yield();
      }
      ++epochs_;
      finish_epoch();
    }
  } catch (...) {
    failure = std::current_exception();
  }
  quit.store(true, std::memory_order_release);
  for (std::thread& th : pool) th.join();
  if (failure) std::rethrow_exception(failure);
}

void ShardGroup::run(unsigned threads) {
  unsigned resolved =
      threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (resolved == 0) resolved = 1;
  resolved = static_cast<unsigned>(
      std::min<std::size_t>(resolved, engines_.size()));
  if (resolved <= 1) {
    run_serial();
  } else {
    run_parallel(resolved);
  }
  // Quiesced: every queue drained, every mailbox delivered.
  checks_.run_all();
  flush_metrics();
}

void ShardGroup::flush_metrics() {
  metrics_.counter("shard/epochs").inc(epochs_ - epochs_flushed_);
  epochs_flushed_ = epochs_;
  metrics_.counter("shard/barrier_skips").inc(barrier_skips_ - skips_flushed_);
  skips_flushed_ = barrier_skips_;
  metrics_.counter("shard/remote_events")
      .inc(delivered_ - delivered_flushed_);
  delivered_flushed_ = delivered_;
  metrics_.counter("shard/migrations").inc(migrations_ - migrations_flushed_);
  migrations_flushed_ = migrations_;
  // Final-placement load skew: max/min per-shard executed events, in
  // permille (1000 = perfectly balanced).  The quantity the hostperf
  // imbalance gate compares between rebalance-on and rebalance-off runs.
  std::uint64_t lo = ~std::uint64_t{0};
  std::uint64_t hi = 0;
  for (const auto& e : engines_) {
    lo = std::min(lo, e->events_executed());
    hi = std::max(hi, e->events_executed());
  }
  if (lo == 0) lo = 1;  // an entirely idle shard reads as maximal skew
  metrics_.gauge("shard/imbalance").set(static_cast<std::int64_t>(
      hi * 1000 / lo));
}

std::uint64_t ShardGroup::digest() const {
  std::uint64_t d = engines_[0]->digest();
  for (std::size_t i = 1; i < engines_.size(); ++i) {
    d = Engine::mix64(d ^ engines_[i]->digest());
  }
  return d;
}

std::uint64_t ShardGroup::causal_digest() const {
  std::uint64_t d = 0;
  for (const auto& e : engines_) d += e->causal_digest();
  return d;
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->events_executed();
  return n;
}

std::vector<std::uint64_t> ShardGroup::events_executed_per_shard() const {
  std::vector<std::uint64_t> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) out.push_back(e->events_executed());
  return out;
}

std::uint64_t ShardGroup::domain_events_executed(DomainId d) const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->domain_events_executed(d);
  return n;
}

void ShardGroup::define_domain(DomainId d, std::uint32_t shard,
                               bool migratable) {
  ULSOCKS_INVARIANT(shard < engines_.size(), "define_domain: bad shard");
  ULSOCKS_INVARIANT(d != kAmbientDomain,
                    "the ambient domain is the fabric; it has no single "
                    "placement and never migrates");
  if (d >= placement_.size()) placement_.resize(d + 1);
  ULSOCKS_INVARIANT(!placement_[d].defined,
                    "define_domain: domain already defined");
  placement_[d] = Placement{shard, true, migratable};
}

std::uint32_t ShardGroup::shard_of_domain(DomainId d) const {
  ULSOCKS_INVARIANT(d < placement_.size() && placement_[d].defined,
                    "shard_of_domain: undefined domain");
  return placement_[d].shard;
}

bool ShardGroup::domain_migratable(DomainId d) const {
  return d < placement_.size() && placement_[d].defined &&
         placement_[d].migratable;
}

void ShardGroup::request_domain_migration(DomainId d, std::uint32_t to) {
  ULSOCKS_INVARIANT(to < engines_.size(),
                    "request_domain_migration: bad target shard");
  ULSOCKS_INVARIANT(d < placement_.size() && placement_[d].defined,
                    "request_domain_migration: undefined domain");
  ULSOCKS_INVARIANT(placement_[d].migratable,
                    "request_domain_migration: domain is not migratable");
  if (placement_[d].shard == to) return;
  for (const PendingMigration& m : pending_migrations_) {
    if (m.domain == d) return;  // first request wins until it applies
  }
  pending_migrations_.push_back(PendingMigration{d, to});
}

ShardGroup::RebalancePolicy ShardGroup::greedy_rebalance_policy(
    GreedyRebalanceOptions opt) {
  struct State {
    std::vector<std::uint64_t> last_shard;
    std::vector<std::uint64_t> last_domain;
    std::uint64_t cooldown_left = 0;
  };
  auto st = std::make_shared<State>();
  return [opt, st](ShardGroup& g) {
    const std::size_t n = g.size();
    std::vector<std::uint64_t> totals = g.events_executed_per_shard();
    if (st->last_shard.size() != n) st->last_shard.assign(n, 0);
    std::vector<std::uint64_t> load(n);
    for (std::size_t i = 0; i < n; ++i) {
      load[i] = totals[i] - st->last_shard[i];
    }
    st->last_shard = std::move(totals);
    // Per-domain interval deltas: the weight of a domain must be windowed
    // like the shard loads are, or a long-resident domain's cumulative
    // count dwarfs every interval load and no move ever looks improving.
    const std::size_t nd = g.placement_.size();
    if (st->last_domain.size() < nd) st->last_domain.resize(nd, 0);
    std::vector<std::uint64_t> dload(nd, 0);
    for (DomainId d = 1; d < nd; ++d) {
      const std::uint64_t tot = g.domain_events_executed(d);
      dload[d] = tot - st->last_domain[d];
      st->last_domain[d] = tot;
    }
    if (st->cooldown_left > 0) {
      --st->cooldown_left;
      return;
    }
    std::vector<std::uint32_t> targets = opt.targets;
    if (targets.empty()) {
      for (std::uint32_t i = 1; i < n; ++i) targets.push_back(i);
    }
    if (targets.empty()) return;
    // Hottest shard overall vs coldest shard allowed to receive (ties to
    // the lowest index keep the choice deterministic).
    std::size_t hot = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (load[i] > load[hot]) hot = i;
    }
    std::uint32_t cold = targets[0];
    for (std::uint32_t t : targets) {
      if (load[t] < load[cold]) cold = t;
    }
    if (cold == hot) return;
    // Hysteresis: integer compare (load_hot * den >= load_cold * num for
    // num/den = hysteresis) would demand a rational; doubles are exact
    // enough for a threshold and identical on every run of the same
    // counters.
    const double floor_load = static_cast<double>(
        load[cold] == 0 ? 1 : load[cold]);
    if (static_cast<double>(load[hot]) < opt.hysteresis * floor_load) {
      return;
    }
    // Largest migratable domain on the hot shard that still improves the
    // balance: moving weight w helps iff load_cold + w < load_hot (both
    // resulting sides then sit below the old maximum).  This naturally
    // refuses to move a domain heavier than the gap — the hot server
    // itself never thrashes between shards.
    DomainId best = kAmbientDomain;
    std::uint64_t best_w = 0;
    for (DomainId d = 1; d < nd; ++d) {
      if (!g.placement_[d].defined || !g.placement_[d].migratable) continue;
      if (g.placement_[d].shard != hot) continue;
      const std::uint64_t w = dload[d];
      if (w == 0) continue;
      if (load[cold] + w >= load[hot]) continue;
      if (w > best_w) {
        best_w = w;
        best = d;
      }
    }
    if (best == kAmbientDomain) return;
    g.request_domain_migration(best, cold);
    st->cooldown_left = opt.cooldown_epochs;
  };
}

Time ShardGroup::now() const {
  Time t = 0;
  for (const auto& e : engines_) t = std::max(t, e->now());
  return t;
}

}  // namespace ulsocks::sim
