// Small-buffer-optimized, move-only callable for the simulation hot path.
//
// Every event the engine executes used to be a `std::function<void()>`,
// which heap-allocates for any capture list larger than libstdc++'s
// 16-byte inline buffer — i.e. for nearly every protocol lambda in this
// codebase ([this, st, idx, total, offset, len] is already 40 bytes).  At
// millions of events per second that allocation *is* the simulator's
// profile.  InlineFunction stores captures up to `Capacity` bytes inline
// in the event object itself; bigger ("spilled") captures are carved from
// a per-thread freelist of fixed-size blocks, so even the overflow path is
// allocation-free at steady state.
//
// Unlike std::function, InlineFunction is move-only and accepts move-only
// captures.  That is a feature: frames and payload vectors can be moved
// through an event chain (NIC -> link -> switch -> NIC) instead of being
// wrapped in shared_ptr or copied per hop just to satisfy copyability.
//
// Thread model: the freelist is thread_local, matching the engine's "one
// engine per thread" discipline (bench/harness.cpp run_points).  Blocks
// never migrate between threads because events never leave their engine.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ulsocks::sim {

namespace detail_ifn {

/// Spill blocks are one fixed size so freed blocks can serve any later
/// spilled capture without bookkeeping; captures beyond kSpillBlockBytes
/// (rare: a whole struct by value) fall through to plain operator new.
inline constexpr std::size_t kSpillBlockBytes = 256;
inline constexpr std::size_t kSpillFreeMax = 4096;  // blocks kept per thread

struct SpillBlock {
  SpillBlock* next;
};

struct SpillFreeList {
  SpillBlock* head = nullptr;
  std::size_t count = 0;
  ~SpillFreeList() {
    while (head != nullptr) {
      SpillBlock* b = head;
      head = b->next;
      ::operator delete(static_cast<void*>(b));
    }
  }
};

inline thread_local SpillFreeList spill_free_list;

inline void* spill_alloc(std::size_t bytes) {
  if (bytes <= kSpillBlockBytes) {
    SpillFreeList& fl = spill_free_list;
    if (fl.head != nullptr) {
      SpillBlock* b = fl.head;
      fl.head = b->next;
      --fl.count;
      return b;
    }
    return ::operator new(kSpillBlockBytes);
  }
  return ::operator new(bytes);
}

inline void spill_free(void* p, std::size_t bytes) noexcept {
  if (bytes <= kSpillBlockBytes) {
    SpillFreeList& fl = spill_free_list;
    if (fl.count < kSpillFreeMax) {
      auto* b = static_cast<SpillBlock*>(p);
      b->next = fl.head;
      fl.head = b;
      ++fl.count;
      return;
    }
  }
  ::operator delete(p);
}

}  // namespace detail_ifn

template <std::size_t Capacity = 88, std::size_t Align = 16>
class InlineFunction {
 public:
  InlineFunction() noexcept = default;
  // Suppression lists are shared, namespaced per tool (DESIGN.md §12):
  // google-*/bugprone-* tokens belong to clang-tidy, ulsan-* tokens to
  // ulsan; each tool ignores the other's.  The implicit conversions
  // below are the std::function-compatible contract.
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() { ops_->call(obj_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(obj_);
      ops_ = nullptr;
    }
  }

  /// True when the wrapped callable lives in the inline buffer (tests).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && obj_ == static_cast<const void*>(buf_);
  }

 private:
  struct Ops {
    void (*call)(void*);
    // Move-construct into dst and destroy src.  Null for spilled callables,
    // which relocate by pointer swap instead.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <class F>
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(alignof(Fn) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "over-aligned captures are not supported");
    if constexpr (sizeof(Fn) <= Capacity && alignof(Fn) <= Align &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      static constexpr Ops ops{
          [](void* o) { (*static_cast<Fn*>(o))(); },
          [](void* dst, void* src) {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
          },
          [](void* o) { static_cast<Fn*>(o)->~Fn(); },
      };
      obj_ = ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &ops;
    } else {
      static constexpr Ops ops{
          [](void* o) { (*static_cast<Fn*>(o))(); },
          nullptr,
          [](void* o) {
            static_cast<Fn*>(o)->~Fn();
            detail_ifn::spill_free(o, sizeof(Fn));
          },
      };
      void* p = detail_ifn::spill_alloc(sizeof(Fn));
      try {
        obj_ = ::new (p) Fn(std::forward<F>(f));
      } catch (...) {
        detail_ifn::spill_free(p, sizeof(Fn));
        throw;
      }
      ops_ = &ops;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->relocate != nullptr) {
      ops_->relocate(buf_, other.obj_);
      obj_ = buf_;
    } else {
      obj_ = other.obj_;  // spilled: steal the block
    }
    other.ops_ = nullptr;
  }

  void* obj_ = nullptr;
  const Ops* ops_ = nullptr;
  alignas(Align) std::byte buf_[Capacity];
};

/// The engine's event callable.  88 bytes of inline capture covers every
/// hot-path lambda in the protocol stacks (the largest, EMP fragment
/// delivery, captures this + Binding + EmpHeader + FramePtr = 64 bytes).
using EventFn = InlineFunction<>;

}  // namespace ulsocks::sim
