// Deterministic random number utilities.
//
// Every stochastic choice in the simulation (loss injection, workload
// generation, jitter) draws from an explicitly seeded engine so that runs
// are reproducible and failures can be replayed from a seed.
#pragma once

#include <cstdint>
#include <random>

#include "check/invariant.hpp"

namespace ulsocks::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}

  void reseed(std::uint64_t seed) { gen_.seed(seed); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    ULSOCKS_INVARIANT(lo <= hi, "uniform(): empty range");
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed duration with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  /// Fill a buffer with pseudo-random bytes (payload generation).
  template <class Container>
  void fill_bytes(Container& c) {
    for (auto& b : c) {
      b = static_cast<typename Container::value_type>(gen_() & 0xff);
    }
  }

  std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace ulsocks::sim
