// Head-indexed byte FIFO for the TCP send/receive buffers.
//
// The stack trims acked bytes off the front of snd_buf and drains delivered
// bytes off the front of rcv_buf on every segment; std::deque (and a naive
// vector erase-from-front) make each trim O(live bytes), which turns a
// streamed transfer into O(n^2) total byte moves.  ByteRing keeps the live
// bytes contiguous in a vector after a head index and makes pop_front a
// pointer bump, compacting only when the dead prefix is at least as large
// as the live region.  That policy bounds total bytes ever moved by total
// bytes ever appended: a compaction moving L live bytes only happens after
// at least L bytes were popped since the last compaction, so each popped
// byte pays for at most one move.  The moved()/appended() counters expose
// the invariant for the no-quadratic-blowup regression test.
//
// Data is always contiguous (this is a sliding window, not a circular
// buffer), so callers can take (data(), size()) views for segment slicing
// without worrying about wrap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace ulsocks::tcp {

class ByteRing {
 public:
  [[nodiscard]] std::size_t size() const noexcept {
    return buf_.size() - head_;
  }
  [[nodiscard]] bool empty() const noexcept { return head_ == buf_.size(); }

  /// Contiguous view of the live bytes (front of the FIFO first).
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return buf_.data() + head_;
  }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return {data(), size()};
  }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const noexcept {
    return buf_[head_ + i];
  }

  void append(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    appended_ += bytes.size();
  }

  /// Drop `n` bytes from the front; n must be <= size().
  void pop_front(std::size_t n) {
    head_ += n;
    const std::size_t live = buf_.size() - head_;
    if (head_ >= live) {  // dead prefix >= live bytes: amortized-safe compact
      if (live > 0) {
        std::memmove(buf_.data(), buf_.data() + head_, live);
        moved_ += live;
      }
      buf_.resize(live);
      head_ = 0;
    }
  }

  void clear() noexcept {
    buf_.clear();
    head_ = 0;
  }

  /// Lifetime byte-move accounting for the quadratic-blowup regression
  /// test: the compaction policy guarantees moved() <= appended().
  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }
  [[nodiscard]] std::uint64_t moved() const noexcept { return moved_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t moved_ = 0;
};

}  // namespace ulsocks::tcp
