#include "tcp/segment.hpp"

namespace ulsocks::tcp {

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v));
  put16(out, static_cast<std::uint16_t>(v >> 16));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v));
  put32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(
      in[at] | (static_cast<std::uint16_t>(in[at + 1]) << 8));
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint32_t>(get16(in, at)) |
         (static_cast<std::uint32_t>(get16(in, at + 2)) << 16);
}

std::uint64_t get64(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint64_t>(get32(in, at)) |
         (static_cast<std::uint64_t>(get32(in, at + 4)) << 32);
}

}  // namespace

std::vector<std::uint8_t> encode_segment(const Segment& s) {
  std::vector<std::uint8_t> out;
  out.reserve(kSegmentHeaderBytes + s.payload.size());
  put16(out, s.src_node);
  put16(out, s.dst_node);
  put16(out, s.src_port);
  put16(out, s.dst_port);
  put64(out, s.seq);
  put64(out, s.ack);
  put32(out, s.window);
  std::uint8_t flags = 0;
  if (s.flags.syn) flags |= 1;
  if (s.flags.ack) flags |= 2;
  if (s.flags.fin) flags |= 4;
  if (s.flags.rst) flags |= 8;
  out.push_back(flags);
  // Pad to the nominal IP+TCP header size so wire timing is honest.
  while (out.size() < kSegmentHeaderBytes) out.push_back(0);
  out.insert(out.end(), s.payload.begin(), s.payload.end());
  return out;
}

std::optional<Segment> decode_segment(std::span<const std::uint8_t> p) {
  if (p.size() < kSegmentHeaderBytes) return std::nullopt;
  Segment s;
  s.src_node = get16(p, 0);
  s.dst_node = get16(p, 2);
  s.src_port = get16(p, 4);
  s.dst_port = get16(p, 6);
  s.seq = get64(p, 8);
  s.ack = get64(p, 16);
  s.window = get32(p, 24);
  std::uint8_t flags = p[28];
  s.flags.syn = flags & 1;
  s.flags.ack = flags & 2;
  s.flags.fin = flags & 4;
  s.flags.rst = flags & 8;
  s.payload.assign(p.begin() + kSegmentHeaderBytes, p.end());
  return s;
}

}  // namespace ulsocks::tcp
