#include "tcp/segment.hpp"

#include <algorithm>

namespace ulsocks::tcp {

namespace {

void store16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void store32(std::uint8_t* p, std::uint32_t v) {
  store16(p, static_cast<std::uint16_t>(v));
  store16(p + 2, static_cast<std::uint16_t>(v >> 16));
}

void store64(std::uint8_t* p, std::uint64_t v) {
  store32(p, static_cast<std::uint32_t>(v));
  store32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(
      in[at] | (static_cast<std::uint16_t>(in[at + 1]) << 8));
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint32_t>(get16(in, at)) |
         (static_cast<std::uint32_t>(get16(in, at + 2)) << 16);
}

std::uint64_t get64(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint64_t>(get32(in, at)) |
         (static_cast<std::uint64_t>(get32(in, at + 4)) << 32);
}

void build_header(const Segment& s, std::uint8_t* hdr) {
  // Zero-fill first so the pad to the nominal IP+TCP header size (honest
  // wire timing) needs no trailing loop.
  std::fill_n(hdr, kSegmentHeaderBytes, std::uint8_t{0});
  store16(hdr + 0, s.src_node);
  store16(hdr + 2, s.dst_node);
  store16(hdr + 4, s.src_port);
  store16(hdr + 6, s.dst_port);
  store64(hdr + 8, s.seq);
  store64(hdr + 16, s.ack);
  store32(hdr + 24, s.window);
  std::uint8_t flags = 0;
  if (s.flags.syn) flags |= 1;
  if (s.flags.ack) flags |= 2;
  if (s.flags.fin) flags |= 4;
  if (s.flags.rst) flags |= 8;
  hdr[28] = flags;
}

}  // namespace

std::vector<std::uint8_t> encode_segment(const Segment& s) {
  std::vector<std::uint8_t> out;
  encode_segment_into(s, out);
  return out;
}

void encode_segment_into(const Segment& s, std::vector<std::uint8_t>& out) {
  // Assemble the header on the stack, then append header and payload as
  // two bulk ranges: one capacity check per range instead of one per byte.
  std::uint8_t hdr[kSegmentHeaderBytes];
  build_header(s, hdr);
  out.clear();
  out.reserve(kSegmentHeaderBytes + s.payload.size());
  out.insert(out.end(), hdr, hdr + kSegmentHeaderBytes);
  out.insert(out.end(), s.payload.begin(), s.payload.end());
}

void encode_segment_header_into(const Segment& s,
                                std::vector<std::uint8_t>& out) {
  std::uint8_t hdr[kSegmentHeaderBytes];
  build_header(s, hdr);
  out.clear();
  out.insert(out.end(), hdr, hdr + kSegmentHeaderBytes);
}

std::optional<Segment> decode_segment(std::span<const std::uint8_t> p) {
  if (p.size() < kSegmentHeaderBytes) return std::nullopt;
  Segment s;
  s.src_node = get16(p, 0);
  s.dst_node = get16(p, 2);
  s.src_port = get16(p, 4);
  s.dst_port = get16(p, 6);
  s.seq = get64(p, 8);
  s.ack = get64(p, 16);
  s.window = get32(p, 24);
  std::uint8_t flags = p[28];
  s.flags.syn = flags & 1;
  s.flags.ack = flags & 2;
  s.flags.fin = flags & 4;
  s.flags.rst = flags & 8;
  s.payload.assign(p.begin() + kSegmentHeaderBytes, p.end());
  return s;
}

std::optional<Segment> decode_segment_frame(const net::Frame& f) {
  // The header is always in the inline region (sliced frames carry exactly
  // the 40 header bytes there); the payload may be inline, sliced, or both.
  if (f.payload.size() < kSegmentHeaderBytes) return std::nullopt;
  auto s = decode_segment(
      std::span<const std::uint8_t>(f.payload.data(), kSegmentHeaderBytes));
  if (!s) return std::nullopt;
  const std::size_t body = f.payload_bytes() - kSegmentHeaderBytes;
  s->payload.resize(body);
  if (body > 0) {
    f.copy_payload(kSegmentHeaderBytes,
                   std::span<std::uint8_t>(s->payload.data(), body));
  }
  return s;
}

}  // namespace ulsocks::tcp
