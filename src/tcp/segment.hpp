// TCP-lite segment wire format, carried in EtherType::kIpv4 frames.
//
// The simulated kernel stack needs real sequence/ack/window semantics (the
// paper's TCP baseline numbers are produced by exactly those mechanisms),
// but not the full RFC 793 option machinery.  Sequence numbers are 64-bit
// internally to sidestep wrap handling; the simplification is harmless for
// simulation-scale transfers and documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/frame.hpp"

namespace ulsocks::tcp {

struct Flags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  friend bool operator==(const Flags&, const Flags&) = default;
};
static_assert(sizeof(Flags) == 4,
              "Flags grew: each flag packs into one bit of the single "
              "wire flags byte — extend build_header/decode_segment "
              "before adding one");

struct Segment {
  std::uint16_t src_node = 0;
  std::uint16_t dst_node = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint32_t window = 0;  // receive window advertisement, bytes
  Flags flags;
  std::vector<std::uint8_t> payload;
};

inline constexpr std::size_t kSegmentHeaderBytes = 40;  // ~IP(20)+TCP(20)

// Layout pin: the encoder lays the address quad, seq/ack, window and one
// flags byte into the zero-padded nominal IP+TCP header.  A new Segment
// field must fail here until build_header/decode_segment and (if the
// nominal size grows) kSegmentHeaderBytes are revised together.
static_assert(sizeof(Segment::src_node) + sizeof(Segment::dst_node) +
                      sizeof(Segment::src_port) + sizeof(Segment::dst_port) +
                      sizeof(Segment::seq) + sizeof(Segment::ack) +
                      sizeof(Segment::window) + 1 /* flags byte */ ==
                  29,
              "Segment wire fields drifted from the 29 bytes build_header "
              "serializes into the 40-byte padded header");

/// Standard Ethernet MSS for a 1500-byte MTU.
inline constexpr std::uint32_t kMss = 1460;

[[nodiscard]] std::vector<std::uint8_t> encode_segment(const Segment& s);
/// Same, but into `out` (cleared first) — reuses pooled frame payload
/// capacity.
void encode_segment_into(const Segment& s, std::vector<std::uint8_t>& out);
/// Zero-copy encode: only the 40-byte header goes into `out` (cleared
/// first); the payload rides as a frame slice instead of inline bytes.
void encode_segment_header_into(const Segment& s,
                                std::vector<std::uint8_t>& out);
[[nodiscard]] std::optional<Segment> decode_segment(
    std::span<const std::uint8_t> payload);
/// Decode from a wire frame, gathering the payload across the inline
/// region and any scatter-gather slices.  Works identically for legacy
/// (all-inline) and sliced frames, so the receive path has one code path
/// and the A/B digest cannot diverge.
[[nodiscard]] std::optional<Segment> decode_segment_frame(
    const net::Frame& f);

}  // namespace ulsocks::tcp
