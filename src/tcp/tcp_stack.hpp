// Kernel-path TCP stack (the paper's baseline).
//
// Implements enough of TCP to generate the baseline behaviour the paper
// measures: three-way handshake and FIN teardown, MSS segmentation, a
// sliding window bounded by SO_SNDBUF/SO_RCVBUF, cumulative + delayed
// acknowledgments, Nagle (switchable with TCP_NODELAY), slow-start
// congestion window, fixed-RTO retransmission and zero-window probing.
//
// Equally important is *where the time goes*: every send charges a system
// call and a user-to-kernel copy on the host CPU, every segment charges
// tcp/ip/driver processing, and receives pay interrupt-coalescing delay,
// interrupt cost, softirq processing, a wake-up and a kernel-to-user copy.
// These costs are what the sockets-over-EMP substrate removes.
//
// Documented simplifications (timing-neutral): 64-bit sequence numbers (no
// wrap), no TIME_WAIT port reuse rules, no SACK, receive trims but never
// refuses in-window data.  Advertised window is half the receive buffer,
// modelling Linux 2.4's skb overhead accounting.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/payload_slice.hpp"
#include "nic/nic_device.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "oskernel/host.hpp"
#include "oskernel/socket_api.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "tcp/byte_ring.hpp"
#include "tcp/segment.hpp"

namespace ulsocks::tcp {

struct TcpTunables {
  sim::Duration rto = 5'000'000;            // 5 ms fixed retransmission timer
  sim::Duration delayed_ack = 40'000'000;   // 40 ms (Linux 2.4 minimum)
  sim::Duration gc_linger = 2'000'000;      // reclaim closed conns after 2 ms
  std::uint32_t max_retries = 15;
  std::uint16_t ephemeral_base = 32'768;
};

/// Typed view over the "h<N>/tcp/*" registry counters (obs/metrics.hpp).
/// The registry is the canonical store; stats() materializes this struct so
/// existing call sites keep compiling unchanged.
struct TcpStats {
  std::uint64_t segments_tx = 0;
  std::uint64_t segments_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t pure_acks_tx = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t rst_tx = 0;
  std::uint64_t window_probes = 0;
};

class TcpStack final : public os::SocketApi {
 public:
  TcpStack(sim::Engine& eng, const sim::CostModel& model, os::Host& host,
           nic::NicDevice& nic,
           std::function<net::MacAddress(std::uint16_t)> resolve,
           TcpTunables tunables = {});

  // SocketApi.
  sim::Task<int> socket() override;
  sim::Task<void> bind(int sd, os::SockAddr local) override;
  sim::Task<void> listen(int sd, int backlog) override;
  sim::Task<int> accept(int sd, os::SockAddr* peer) override;
  sim::Task<void> connect(int sd, os::SockAddr remote) override;
  sim::Task<std::size_t> read(int sd, std::span<std::uint8_t> out) override;
  sim::Task<std::size_t> write(int sd,
                               std::span<const std::uint8_t> in) override;
  sim::Task<void> close(int sd) override;
  sim::Task<void> set_option(int sd, os::SockOpt opt, int value) override;
  sim::Task<int> get_option(int sd, os::SockOpt opt) override;
  [[nodiscard]] bool readable(int sd) const override;
  [[nodiscard]] bool writable(int sd) const override;
  [[nodiscard]] sim::CondVar& activity() override { return activity_; }

  /// Materialize the typed stats view from the registry counters.
  [[nodiscard]] TcpStats stats() const noexcept;
  [[nodiscard]] std::size_t live_socket_count() const {
    return conns_by_sd_.size();
  }
  [[nodiscard]] std::uint16_t node() const noexcept { return node_; }

  /// Live shard migration: retarget timers and wakeups at the new engine
  /// and move the engine-wide copy tallies to its registry (summed across
  /// shards in reports, so totals survive the move).  Host and NIC are
  /// rebound by their owners.  Barrier-only.
  void rebind(sim::Engine& eng) noexcept {
    eng_ = &eng;
    activity_.rebind(eng);
    bytes_copied_ = &eng.metrics().counter("host/bytes_copied");
    recv_scratch_hwm_ = &eng.metrics().gauge("host/recv_scratch_hwm");
  }

 private:
  enum class State : std::uint8_t {
    kClosed,
    kListen,
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait1,   // our FIN sent, not acked
    kFinWait2,   // our FIN acked, waiting for peer FIN
    kCloseWait,  // peer FIN received, we have not closed
    kLastAck,    // peer FIN received and our FIN sent
    kDone,       // both directions closed
  };

  struct Conn {
    State state = State::kClosed;
    os::SockAddr local{};
    os::SockAddr remote{};
    bool bound = false;
    // Send side.  snd_buf holds stream bytes from snd_una onward; the
    // prefix [snd_una, snd_nxt) is in flight.  ByteRing, not deque: acks
    // trim the front on every segment, and a front-erase that moves the
    // live bytes each time is O(n^2) over a transfer.
    ByteRing snd_buf;
    std::uint64_t snd_una = 0;
    std::uint64_t snd_nxt = 0;
    std::uint32_t snd_buf_limit = 0;
    std::uint32_t peer_window = kMss;
    std::uint64_t cwnd = 2 * kMss;
    bool nodelay = false;
    bool fin_queued = false;
    bool fin_sent = false;
    std::uint64_t fin_seq = 0;
    bool fin_acked = false;
    // Receive side.
    ByteRing rcv_buf;
    std::uint64_t rcv_nxt = 0;
    std::map<std::uint64_t, std::vector<std::uint8_t>> ooo;
    std::size_t ooo_bytes = 0;
    std::uint32_t rcv_buf_limit = 0;
    std::uint32_t last_advertised = 0;
    bool peer_fin = false;
    bool reset = false;
    // Ack management.
    std::uint32_t pending_ack_segments = 0;
    bool delack_armed = false;
    // Retransmission.
    bool rto_armed = false;
    std::uint32_t retries = 0;
    // Listener.
    int backlog = 0;
    std::uint32_t synrcvd_count = 0;  // embryonic children, counted in backlog
    std::deque<int> accept_queue;
    bool closing = false;  // close() called by the application
    bool gc_scheduled = false;
    int sd = -1;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  static std::uint64_t conn_key(std::uint16_t local_port,
                                std::uint16_t remote_node,
                                std::uint16_t remote_port) {
    return (static_cast<std::uint64_t>(local_port) << 32) |
           (static_cast<std::uint64_t>(remote_node) << 16) | remote_port;
  }

  ConnPtr& conn(int sd);
  const ConnPtr* find_conn(int sd) const;

  // Datapath.
  void on_frame(net::FramePtr frame);
  void schedule_interrupt();
  void process_segment(Segment seg);
  void established_input(const ConnPtr& c, Segment& seg);
  void handle_ack_advance(const ConnPtr& c, const Segment& seg);
  void try_output(const ConnPtr& c);
  void emit(const ConnPtr& c, Flags flags, std::uint64_t seq,
            std::vector<std::uint8_t> payload, bool retransmit = false);
  void send_pure_ack(const ConnPtr& c);
  void send_rst(const Segment& to);
  void maybe_send_window_update(const ConnPtr& c);
  void arm_rto(const ConnPtr& c);
  void arm_delack(const ConnPtr& c);
  void rto_fire(const ConnPtr& c);
  [[nodiscard]] std::uint32_t advertised_window(const Conn& c) const;
  [[nodiscard]] std::uint64_t in_flight(const Conn& c) const {
    return c.snd_nxt - c.snd_una;
  }
  void fail_conn(const ConnPtr& c);
  void release_synrcvd(const ConnPtr& child);
  void maybe_schedule_gc(const ConnPtr& c);
  void notify() { activity_.notify_all(); }


  /// Registry-backed counter handles under "h<N>/tcp/".
  struct Instruments {
    obs::Counter& segments_tx;
    obs::Counter& segments_rx;
    obs::Counter& bytes_tx;
    obs::Counter& retransmits;
    obs::Counter& pure_acks_tx;
    obs::Counter& interrupts;
    obs::Counter& rst_tx;
    obs::Counter& window_probes;
    explicit Instruments(obs::Scope scope);
  };

  sim::Engine* eng_;
  sim::CostModel model_;
  os::Host& host_;
  nic::NicDevice& nic_;
  std::function<net::MacAddress(std::uint16_t)> resolve_;
  TcpTunables tun_;
  std::uint16_t node_;
  sim::CondVar activity_;
  Instruments ctr_;
  obs::Counter* bytes_copied_;  // global host/bytes_copied tally
  obs::Gauge* recv_scratch_hwm_;  // global "host/recv_scratch_hwm" HWM

  // SocketApi hook: the default read_view() reports its scratch size here.
  void note_recv_scratch(std::size_t bytes) override {
    if (static_cast<std::int64_t>(bytes) > recv_scratch_hwm_->value()) {
      recv_scratch_hwm_->set(static_cast<std::int64_t>(bytes));
    }
  }
  obs::Tracer& tracer_;
  std::uint32_t trk_;  // ("h<N>", "tcp") timeline track

  int next_sd_ = 1;
  std::uint16_t next_ephemeral_;
  std::unordered_map<int, ConnPtr> conns_by_sd_;
  std::unordered_map<int, int> sd_of_conn_;  // reverse: not needed; kept out
  std::map<std::uint16_t, int> listeners_;   // port -> listening sd
  std::map<std::uint64_t, int> by_tuple_;    // (lport,rnode,rport) -> sd

  // Interrupt coalescing.
  std::deque<Segment> pending_rx_;
  bool irq_scheduled_ = false;
};

}  // namespace ulsocks::tcp
