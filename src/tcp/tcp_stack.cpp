#include "tcp/tcp_stack.hpp"

#include <algorithm>
#include <cassert>

namespace ulsocks::tcp {

using os::SockAddr;
using os::SockErr;
using os::SocketError;

namespace {
constexpr std::uint64_t kCwndCap = 1 << 20;  // 1 MB: plenty for a LAN
}

TcpStack::Instruments::Instruments(obs::Scope scope)
    : segments_tx(scope.counter("segments_tx")),
      segments_rx(scope.counter("segments_rx")),
      bytes_tx(scope.counter("bytes_tx")),
      retransmits(scope.counter("retransmits")),
      pure_acks_tx(scope.counter("pure_acks_tx")),
      interrupts(scope.counter("interrupts")),
      rst_tx(scope.counter("rst_tx")),
      window_probes(scope.counter("window_probes")) {}

TcpStack::TcpStack(sim::Engine& eng, const sim::CostModel& model,
                   os::Host& host, nic::NicDevice& nic,
                   std::function<net::MacAddress(std::uint16_t)> resolve,
                   TcpTunables tunables)
    : eng_(&eng),
      model_(model),
      host_(host),
      nic_(nic),
      resolve_(std::move(resolve)),
      tun_(tunables),
      node_(host.id()),
      activity_(eng),
      ctr_(obs::Scope(eng.metrics(),
                      "h" + std::to_string(host.id()) + "/tcp")),
      bytes_copied_(&eng.metrics().counter("host/bytes_copied")),
      recv_scratch_hwm_(&eng.metrics().gauge("host/recv_scratch_hwm")),
      tracer_(eng.tracer()),
      trk_(eng.tracer().track("h" + std::to_string(host.id()), "tcp")),
      next_ephemeral_(tunables.ephemeral_base) {
  nic_.set_rx_handler(net::EtherType::kIpv4,
                      [this](net::FramePtr f) { on_frame(std::move(f)); });
}

TcpStats TcpStack::stats() const noexcept {
  TcpStats s;
  s.segments_tx = ctr_.segments_tx.value();
  s.segments_rx = ctr_.segments_rx.value();
  s.bytes_tx = ctr_.bytes_tx.value();
  s.retransmits = ctr_.retransmits.value();
  s.pure_acks_tx = ctr_.pure_acks_tx.value();
  s.interrupts = ctr_.interrupts.value();
  s.rst_tx = ctr_.rst_tx.value();
  s.window_probes = ctr_.window_probes.value();
  return s;
}

TcpStack::ConnPtr& TcpStack::conn(int sd) {
  auto it = conns_by_sd_.find(sd);
  if (it == conns_by_sd_.end()) {
    throw SocketError(SockErr::kInvalid, "bad socket descriptor");
  }
  return it->second;
}

const TcpStack::ConnPtr* TcpStack::find_conn(int sd) const {
  auto it = conns_by_sd_.find(sd);
  return it == conns_by_sd_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// SocketApi surface
// ---------------------------------------------------------------------------

sim::Task<int> TcpStack::socket() {
  co_await host_.syscall();
  auto c = std::make_shared<Conn>();
  c->snd_buf_limit = model_.tcp.default_sndbuf_bytes;
  c->rcv_buf_limit = model_.tcp.default_rcvbuf_bytes;
  int sd = next_sd_++;
  c->sd = sd;
  conns_by_sd_[sd] = std::move(c);
  co_return sd;
}

sim::Task<void> TcpStack::bind(int sd, SockAddr local) {
  co_await host_.syscall();
  auto& c = conn(sd);
  if (listeners_.count(local.port)) {
    throw SocketError(SockErr::kInUse, "port already bound");
  }
  c->local = SockAddr{node_, local.port};
  c->bound = true;
}

sim::Task<void> TcpStack::listen(int sd, int backlog) {
  co_await host_.syscall();
  auto& c = conn(sd);
  if (!c->bound) {
    throw SocketError(SockErr::kInvalid, "listen on unbound socket");
  }
  c->state = State::kListen;
  c->backlog = std::max(1, backlog);
  listeners_[c->local.port] = sd;
}

sim::Task<int> TcpStack::accept(int sd, SockAddr* peer) {
  co_await host_.syscall();
  auto listener = conn(sd);
  while (listener->accept_queue.empty() && !listener->closing) {
    co_await activity_.wait();
  }
  if (listener->accept_queue.empty()) {
    throw SocketError(SockErr::kClosed, "listener closed");
  }
  int child_sd = listener->accept_queue.front();
  listener->accept_queue.pop_front();
  auto& child = conn(child_sd);
  if (peer != nullptr) *peer = child->remote;
  co_return child_sd;
}

sim::Task<void> TcpStack::connect(int sd, SockAddr remote) {
  co_await host_.syscall();
  auto c = conn(sd);
  if (c->state != State::kClosed) {
    throw SocketError(SockErr::kInvalid, "connect on active socket");
  }
  if (!c->bound) {
    c->local = SockAddr{node_, next_ephemeral_++};
    c->bound = true;
  }
  c->remote = remote;
  by_tuple_[conn_key(c->local.port, remote.node, remote.port)] = sd;
  c->state = State::kSynSent;
  c->snd_una = 0;
  c->snd_nxt = 1;  // SYN consumes sequence 0
  emit(c, Flags{.syn = true}, 0, {});
  arm_rto(c);
  while (c->state == State::kSynSent) co_await activity_.wait();
  if (c->reset || c->state != State::kEstablished) {
    throw SocketError(SockErr::kRefused, "connection refused");
  }
}

sim::Task<std::size_t> TcpStack::read(int sd, std::span<std::uint8_t> out) {
  const sim::Time t0 = eng_->now();
  co_await host_.syscall();
  auto c = conn(sd);
  while (c->rcv_buf.empty() && !c->peer_fin && !c->reset) {
    co_await activity_.wait();
  }
  if (c->reset) throw SocketError(SockErr::kClosed, "connection reset");
  if (c->rcv_buf.empty()) co_return 0;  // orderly EOF
  std::size_t n = std::min(out.size(), c->rcv_buf.size());
  // Kernel-to-user copy: the cost the paper's substrate eliminates.
  co_await host_.copy(n);
  std::copy_n(c->rcv_buf.data(), n, out.begin());
  *bytes_copied_ += n;
  c->rcv_buf.pop_front(n);
  maybe_send_window_update(c);
  if (tracer_.enabled()) {
    tracer_.complete(trk_, t0, eng_->now() - t0, "read",
                     "\"sd\":" + std::to_string(sd) +
                         ",\"bytes\":" + std::to_string(n));
  }
  co_return n;
}

sim::Task<std::size_t> TcpStack::write(int sd,
                                       std::span<const std::uint8_t> in) {
  const sim::Time t0 = eng_->now();
  co_await host_.syscall();
  auto c = conn(sd);
  if (in.empty()) co_return 0;
  for (;;) {
    if (c->reset || c->fin_queued) {
      throw SocketError(SockErr::kClosed, "write on closed connection");
    }
    if (c->state != State::kEstablished && c->state != State::kCloseWait) {
      throw SocketError(SockErr::kInvalid, "write on non-connected socket");
    }
    if (c->snd_buf.size() < c->snd_buf_limit) break;
    co_await activity_.wait();
  }
  std::size_t space = c->snd_buf_limit - c->snd_buf.size();
  std::size_t n = std::min(space, in.size());
  // User-to-kernel copy.
  co_await host_.copy(n);
  c->snd_buf.append(in.first(n));
  *bytes_copied_ += n;
  try_output(c);
  if (tracer_.enabled()) {
    tracer_.complete(trk_, t0, eng_->now() - t0, "write",
                     "\"sd\":" + std::to_string(sd) +
                         ",\"bytes\":" + std::to_string(n));
  }
  co_return n;
}

sim::Task<void> TcpStack::close(int sd) {
  co_await host_.syscall();
  auto c = conn(sd);
  c->closing = true;
  if (c->state == State::kListen) {
    listeners_.erase(c->local.port);
    // Un-accepted children are torn down gracefully.
    while (!c->accept_queue.empty()) {
      int child_sd = c->accept_queue.front();
      c->accept_queue.pop_front();
      auto& child = conn(child_sd);
      child->closing = true;
      child->fin_queued = true;
      try_output(child);
    }
    conns_by_sd_.erase(sd);
    notify();
    co_return;
  }
  if (c->state == State::kClosed || c->state == State::kSynSent ||
      c->state == State::kDone || c->reset) {
    if (c->bound) {
      by_tuple_.erase(conn_key(c->local.port, c->remote.node,
                               c->remote.port));
    }
    conns_by_sd_.erase(sd);
    notify();
    co_return;
  }
  if (!c->fin_queued) {
    c->fin_queued = true;
    try_output(c);
  }
  maybe_schedule_gc(c);
  notify();
}

sim::Task<void> TcpStack::set_option(int sd, os::SockOpt opt, int value) {
  co_await host_.syscall();
  auto& c = conn(sd);
  switch (opt) {
    case os::SockOpt::kSndBuf:
      c->snd_buf_limit = static_cast<std::uint32_t>(std::max(value, 2048));
      break;
    case os::SockOpt::kRcvBuf:
      c->rcv_buf_limit = static_cast<std::uint32_t>(std::max(value, 2048));
      break;
    case os::SockOpt::kNoDelay:
      c->nodelay = value != 0;
      break;
    default:
      break;  // substrate-only options are ignored by the kernel stack
  }
}

sim::Task<int> TcpStack::get_option(int sd, os::SockOpt opt) {
  co_await host_.syscall();
  auto& c = conn(sd);
  switch (opt) {
    case os::SockOpt::kSndBuf:
      co_return static_cast<int>(c->snd_buf_limit);
    case os::SockOpt::kRcvBuf:
      co_return static_cast<int>(c->rcv_buf_limit);
    case os::SockOpt::kNoDelay:
      co_return c->nodelay ? 1 : 0;
    default:
      co_return 0;  // substrate-only options (see socket_api.hpp)
  }
}

bool TcpStack::readable(int sd) const {
  const ConnPtr* c = find_conn(sd);
  if (c == nullptr) return false;
  const Conn& conn = **c;
  if (conn.state == State::kListen) return !conn.accept_queue.empty();
  return !conn.rcv_buf.empty() || conn.peer_fin || conn.reset;
}

bool TcpStack::writable(int sd) const {
  const ConnPtr* c = find_conn(sd);
  if (c == nullptr) return false;
  const Conn& conn = **c;
  if (conn.reset || conn.fin_queued ||
      (conn.state != State::kEstablished && conn.state != State::kCloseWait)) {
    // write() throws immediately (kClosed / kInvalid): ready in the
    // select() sense so the caller collects the error from the call.
    return true;
  }
  return conn.snd_buf.size() < conn.snd_buf_limit;
}

// ---------------------------------------------------------------------------
// Output path
// ---------------------------------------------------------------------------

std::uint32_t TcpStack::advertised_window(const Conn& c) const {
  // Three quarters of the receive buffer is usable window: Linux 2.4
  // reserves the rest for skb overhead (tcp_adv_win_scale=2); this is what
  // makes the default 16 KB buffer the paper's 340 Mb/s bottleneck.
  std::uint64_t usable = c.rcv_buf_limit / 4 * 3;
  std::uint64_t used = c.rcv_buf.size() + c.ooo_bytes;
  return usable > used ? static_cast<std::uint32_t>(usable - used) : 0;
}

void TcpStack::emit(const ConnPtr& c, Flags flags, std::uint64_t seq,
                    std::vector<std::uint8_t> payload, bool retransmit) {
  Segment seg;
  seg.src_node = c->local.node;
  seg.dst_node = c->remote.node;
  seg.src_port = c->local.port;
  seg.dst_port = c->remote.port;
  seg.seq = seq;
  seg.ack = c->rcv_nxt;
  seg.window = advertised_window(*c);
  seg.flags = flags;
  seg.payload = std::move(payload);

  ++ctr_.segments_tx;
  ctr_.bytes_tx += seg.payload.size();
  if (retransmit) ++ctr_.retransmits;
  if (flags.ack && seg.payload.empty() && !flags.syn && !flags.fin) {
    ++ctr_.pure_acks_tx;
  }
  if (flags.ack) {
    c->pending_ack_segments = 0;  // this segment carries the ack
    c->last_advertised = seg.window;
  }

  // Kernel output processing, then the stock NIC firmware path.  The
  // pooled frame is encoded once here and moved stage to stage — the old
  // std::function chain copied the byte vector at every hop.
  std::uint64_t wire_bytes = seg.payload.size() + kSegmentHeaderBytes;
  net::FramePtr frame = nic_.frame_pool().acquire();
  frame->dst = resolve_(seg.dst_node);
  frame->src = nic_.mac();
  frame->type = net::EtherType::kIpv4;
  if (net::SlicePool::slicing_enabled() && !seg.payload.empty()) {
    // Zero-copy: 40 header bytes inline, payload handed off as a slice.
    encode_segment_header_into(seg, frame->payload);
    frame->slices.push_back(net::PayloadSlice::adopt(std::move(seg.payload)));
  } else {
    encode_segment_into(seg, frame->payload);
    *bytes_copied_ += seg.payload.size();
  }
  host_.cpu().run(
      model_.tcp.tx_segment_ns + model_.tcp.driver_tx_ns,
      [this, f = std::move(frame), wire_bytes]() mutable {
        nic_.fw_tx(model_.tcp.nic_frame_ns,
                   [this, f = std::move(f), wire_bytes]() mutable {
                     nic_.dma_transfer(wire_bytes,
                                       [this, f = std::move(f)]() mutable {
                                         nic_.mac_send(std::move(f));
                                       });
                   });
      });
}

void TcpStack::send_pure_ack(const ConnPtr& c) {
  emit(c, Flags{.ack = true}, c->snd_nxt, {});
}

void TcpStack::send_rst(const Segment& to) {
  ++ctr_.rst_tx;
  Segment seg;
  seg.src_node = node_;
  seg.dst_node = to.src_node;
  seg.src_port = to.dst_port;
  seg.dst_port = to.src_port;
  seg.seq = to.ack;
  seg.ack = to.seq + 1;
  seg.flags = Flags{.ack = true, .rst = true};
  net::FramePtr frame = nic_.frame_pool().acquire();
  frame->dst = resolve_(seg.dst_node);
  frame->src = nic_.mac();
  frame->type = net::EtherType::kIpv4;
  encode_segment_into(seg, frame->payload);
  host_.cpu().run(model_.tcp.tx_segment_ns + model_.tcp.driver_tx_ns,
                  [this, f = std::move(frame)]() mutable {
                    nic_.fw_tx(model_.tcp.nic_frame_ns,
                               [this, f = std::move(f)]() mutable {
                                 nic_.dma_transfer(
                                     kSegmentHeaderBytes,
                                     [this, f = std::move(f)]() mutable {
                                       nic_.mac_send(std::move(f));
                                     });
                               });
                  });
}

void TcpStack::try_output(const ConnPtr& c) {
  if (c->state != State::kEstablished && c->state != State::kCloseWait &&
      c->state != State::kFinWait1 && c->state != State::kLastAck) {
    return;
  }
  std::uint64_t wnd = std::min<std::uint64_t>(c->cwnd, c->peer_window);
  for (;;) {
    std::uint64_t inflight = in_flight(*c);
    std::uint64_t sendable_data = c->snd_buf.size() > inflight
                                      ? c->snd_buf.size() - inflight
                                      : 0;
    if (sendable_data == 0) break;
    if (inflight >= wnd) break;
    std::uint64_t len =
        std::min<std::uint64_t>({sendable_data, kMss, wnd - inflight});
    // Nagle: hold sub-MSS segments while data is in flight.
    if (len < kMss && !c->nodelay && inflight > 0 && !c->fin_queued) break;
    const std::uint8_t* base = c->snd_buf.data() + inflight;
    std::vector<std::uint8_t> payload(base, base + len);
    *bytes_copied_ += len;
    emit(c, Flags{.ack = true}, c->snd_nxt, std::move(payload));
    c->snd_nxt += len;
    arm_rto(c);
  }
  // FIN goes out once all data is sent.
  if (c->fin_queued && !c->fin_sent && in_flight(*c) == c->snd_buf.size()) {
    c->fin_seq = c->snd_nxt;
    emit(c, Flags{.ack = true, .fin = true}, c->snd_nxt, {});
    c->snd_nxt += 1;
    c->fin_sent = true;
    if (c->state == State::kEstablished) c->state = State::kFinWait1;
    if (c->state == State::kCloseWait) c->state = State::kLastAck;
    arm_rto(c);
  }
}

void TcpStack::maybe_send_window_update(const ConnPtr& c) {

  if (c->state != State::kEstablished && c->state != State::kFinWait1 &&
      c->state != State::kFinWait2) {
    return;
  }
  std::uint32_t adv = advertised_window(*c);
  std::uint32_t threshold =
      std::min<std::uint32_t>(2 * kMss, c->rcv_buf_limit / 4);
  if (adv > c->last_advertised && adv - c->last_advertised >= threshold) {
    send_pure_ack(c);
  }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void TcpStack::arm_rto(const ConnPtr& c) {
  if (c->rto_armed) return;
  c->rto_armed = true;
  eng_->schedule_after(tun_.rto, [this, c] {
    c->rto_armed = false;
    rto_fire(c);
  });
}

void TcpStack::rto_fire(const ConnPtr& c) {
  if (c->reset || c->state == State::kDone || c->state == State::kClosed) {
    return;
  }
  bool unacked = c->snd_nxt > c->snd_una;
  bool zero_window_blocked =
      c->peer_window == 0 && !c->snd_buf.empty() && !unacked;
  if (!unacked && !zero_window_blocked) return;  // everything acked

  // Zero-window probes do not count toward the give-up limit: a peer that
  // simply isn't reading (compute phase, slow disk) must not get reset, as
  // in real TCP's persist timer.
  if (unacked && ++c->retries > tun_.max_retries) {
    fail_conn(c);
    return;
  }

  if (c->state == State::kSynSent) {
    emit(c, Flags{.syn = true}, 0, {}, /*retransmit=*/true);
  } else if (c->state == State::kSynRcvd) {
    emit(c, Flags{.syn = true, .ack = true}, 0, {}, /*retransmit=*/true);
  } else if (unacked) {
    if (c->fin_sent && c->snd_una == c->fin_seq) {
      emit(c, Flags{.ack = true, .fin = true}, c->fin_seq, {},
           /*retransmit=*/true);
    } else {
      std::uint64_t len = std::min<std::uint64_t>(
          {kMss, c->snd_buf.size(), c->snd_nxt - c->snd_una});
      if (len > 0) {
        std::vector<std::uint8_t> payload(c->snd_buf.data(),
                                          c->snd_buf.data() + len);
        *bytes_copied_ += len;
        emit(c, Flags{.ack = true}, c->snd_una, std::move(payload),
             /*retransmit=*/true);
      }
    }
  } else {
    // Zero-window probe: push the first unsent byte past the window.
    ++ctr_.window_probes;
    std::vector<std::uint8_t> probe{c->snd_buf[in_flight(*c)]};
    emit(c, Flags{.ack = true}, c->snd_nxt, std::move(probe));
    c->snd_nxt += 1;
  }
  arm_rto(c);
}

void TcpStack::arm_delack(const ConnPtr& c) {
  if (c->delack_armed) return;
  c->delack_armed = true;
  eng_->schedule_after(tun_.delayed_ack, [this, c] {
    c->delack_armed = false;
    if (c->pending_ack_segments > 0 && !c->reset &&
        c->state != State::kDone) {
      send_pure_ack(c);
    }
  });
}

void TcpStack::release_synrcvd(const ConnPtr& child) {
  auto lst = listeners_.find(child->local.port);
  if (lst == listeners_.end()) return;
  auto& listener = conn(lst->second);
  if (listener->synrcvd_count > 0) --listener->synrcvd_count;
}

void TcpStack::fail_conn(const ConnPtr& c) {
  if (c->state == State::kSynRcvd) release_synrcvd(c);
  c->reset = true;
  c->state = State::kDone;
  maybe_schedule_gc(c);
  notify();
}

void TcpStack::maybe_schedule_gc(const ConnPtr& c) {
  // Event-driven reclamation: schedule exactly one linger timer once the
  // application has closed AND both directions have shut down.
  if (!c->closing || c->gc_scheduled) return;
  bool done = c->state == State::kDone || c->reset ||
              (c->fin_acked && c->peer_fin);
  if (!done) return;
  c->gc_scheduled = true;
  eng_->schedule_after(tun_.gc_linger, [this, c] {
    by_tuple_.erase(conn_key(c->local.port, c->remote.node, c->remote.port));
    conns_by_sd_.erase(c->sd);
  });
}

// ---------------------------------------------------------------------------
// Input path
// ---------------------------------------------------------------------------

void TcpStack::on_frame(net::FramePtr frame) {
  // Gather-decode handles inline and sliced payloads through one code
  // path (the DMA into the kernel ring exists in both A/B modes).
  auto seg = decode_segment_frame(*frame);
  if (!seg) return;
  *bytes_copied_ += seg->payload.size();
  // Stock firmware receive handling, DMA into the kernel ring, then the
  // interrupt-coalescing window.  The segment moves through the event
  // chain; the wire frame returns to its pool as soon as it is decoded.
  nic_.fw_rx(model_.tcp.nic_frame_ns, [this, s = std::move(*seg)]() mutable {
    std::uint64_t bytes = s.payload.size() + kSegmentHeaderBytes;
    nic_.dma_transfer(bytes, [this, s = std::move(s)]() mutable {
      pending_rx_.push_back(std::move(s));
      schedule_interrupt();
    });
  });
}

void TcpStack::schedule_interrupt() {
  bool fire_now =
      pending_rx_.size() >= model_.tcp.rx_coalesce_frames;
  if (irq_scheduled_ && !fire_now) return;
  sim::Duration delay = fire_now ? 0 : model_.tcp.rx_coalesce_ns;
  irq_scheduled_ = true;
  eng_->schedule_after(delay, [this] {
    if (!irq_scheduled_) return;
    irq_scheduled_ = false;
    if (pending_rx_.empty()) return;
    ++ctr_.interrupts;
    if (tracer_.enabled()) tracer_.instant(trk_, eng_->now(), "interrupt");
    host_.cpu().run(model_.tcp.interrupt_ns, [this] {
      // Softirq: process everything coalesced into this interrupt.
      std::deque<Segment> batch;
      batch.swap(pending_rx_);
      for (auto& seg : batch) {
        host_.cpu().run(model_.tcp.rx_segment_ns,
                        [this, seg = std::move(seg)]() mutable {
                          process_segment(std::move(seg));
                        });
      }
    });
  });
}

void TcpStack::process_segment(Segment seg) {
  ++ctr_.segments_rx;
  auto tup = by_tuple_.find(conn_key(seg.dst_port, seg.src_node,
                                     seg.src_port));
  if (tup == by_tuple_.end()) {
    // New connection request?
    auto lst = listeners_.find(seg.dst_port);
    if (lst != listeners_.end() && seg.flags.syn && !seg.flags.ack) {
      auto listener = conn(lst->second);
      // Embryonic (SYN_RCVD) connections count against the backlog, as in
      // real TCP: a burst of requests beyond it is refused.
      std::size_t waiting =
          listener->accept_queue.size() + listener->synrcvd_count;
      if (waiting >= static_cast<std::size_t>(listener->backlog)) {
        send_rst(seg);
        return;
      }
      ++listener->synrcvd_count;
      auto child = std::make_shared<Conn>();
      child->snd_buf_limit = model_.tcp.default_sndbuf_bytes;
      child->rcv_buf_limit = model_.tcp.default_rcvbuf_bytes;
      child->local = SockAddr{node_, seg.dst_port};
      child->remote = SockAddr{seg.src_node, seg.src_port};
      child->bound = true;
      child->state = State::kSynRcvd;
      child->rcv_nxt = seg.seq + 1;
      child->snd_una = 0;
      child->snd_nxt = 1;
      int child_sd = next_sd_++;
      child->sd = child_sd;
      conns_by_sd_[child_sd] = child;
      by_tuple_[conn_key(seg.dst_port, seg.src_node, seg.src_port)] =
          child_sd;
      // Listen-queue handling beyond the three segments (paper: TCP
      // connection time is 200-250 us in total).
      host_.cpu().run(model_.tcp.accept_overhead_ns, [] {});
      emit(child, Flags{.syn = true, .ack = true}, 0, {});
      arm_rto(child);
      return;
    }
    if (!seg.flags.rst) send_rst(seg);
    return;
  }

  auto c = conn(tup->second);
  int sd = tup->second;

  if (seg.flags.rst) {
    if (c->state == State::kSynRcvd) release_synrcvd(c);
    c->reset = true;
    c->state = State::kDone;
    maybe_schedule_gc(c);
    notify();
    return;
  }

  switch (c->state) {
    case State::kSynSent:
      if (seg.flags.syn && seg.flags.ack && seg.ack == 1) {
        c->snd_una = 1;
        c->rcv_nxt = seg.seq + 1;
        c->peer_window = seg.window;
        c->state = State::kEstablished;
        send_pure_ack(c);
        notify();
      }
      return;
    case State::kSynRcvd:
      if (seg.flags.ack && seg.ack >= 1) {
        c->snd_una = 1;
        c->peer_window = seg.window;
        c->state = State::kEstablished;
        release_synrcvd(c);
        // Hand the connection to accept().
        auto lst = listeners_.find(c->local.port);
        if (lst != listeners_.end()) {
          conn(lst->second)->accept_queue.push_back(sd);
        }
        notify();
        // A piggybacked payload (rare but legal) falls through below.
        if (!seg.payload.empty() || seg.flags.fin) {
          established_input(c, seg);
        }
      }
      return;
    default:
      break;
  }

  established_input(c, seg);
}

void TcpStack::handle_ack_advance(const ConnPtr& c, const Segment& seg) {
  c->peer_window = seg.window;
  if (seg.ack <= c->snd_una) {
    // A pure window update can unblock a sender stalled on a closed
    // window: re-attempt output even though the ack did not advance.
    try_output(c);
    return;
  }
  std::uint64_t new_una = std::min(seg.ack, c->snd_nxt);
  std::uint64_t data_end = c->snd_una + c->snd_buf.size();
  std::uint64_t data_acked = std::min(new_una, data_end) - c->snd_una;
  c->snd_buf.pop_front(static_cast<std::size_t>(data_acked));
  c->snd_una = new_una;
  c->retries = 0;
  c->cwnd = std::min<std::uint64_t>(c->cwnd + kMss, kCwndCap);
  if (c->fin_sent && c->snd_una > c->fin_seq) {
    c->fin_acked = true;
    if (c->state == State::kFinWait1) c->state = State::kFinWait2;
    if (c->state == State::kLastAck) c->state = State::kDone;
    maybe_schedule_gc(c);
  }
  notify();  // writers waiting for buffer space
  try_output(c);
}

void TcpStack::established_input(const ConnPtr& c, Segment& seg) {
  if (seg.flags.ack) handle_ack_advance(c, seg);

  bool advanced = false;
  if (!seg.payload.empty()) {
    std::uint64_t seq = seg.seq;
    std::uint64_t end = seq + seg.payload.size();
    if (end <= c->rcv_nxt) {
      // Entirely duplicate: re-ack so the sender moves on.
      send_pure_ack(c);
    } else if (seq > c->rcv_nxt) {
      // Out of order: stash and send a duplicate ack for the gap.
      if (!c->ooo.count(seq)) {
        c->ooo_bytes += seg.payload.size();
        c->ooo[seq] = std::move(seg.payload);
      }
      send_pure_ack(c);
    } else {
      // In-order (possibly partially duplicate): deliver the new suffix.
      std::size_t skip = static_cast<std::size_t>(c->rcv_nxt - seq);
      c->rcv_buf.append(
          std::span<const std::uint8_t>(seg.payload).subspan(skip));
      *bytes_copied_ += seg.payload.size() - skip;
      c->rcv_nxt = end;
      advanced = true;
      // Drain any now-contiguous out-of-order segments.
      for (auto it = c->ooo.begin();
           it != c->ooo.end() && it->first <= c->rcv_nxt;) {
        std::uint64_t oseq = it->first;
        auto& data = it->second;
        if (oseq + data.size() > c->rcv_nxt) {
          std::size_t oskip = static_cast<std::size_t>(c->rcv_nxt - oseq);
          c->rcv_buf.append(
              std::span<const std::uint8_t>(data).subspan(oskip));
          *bytes_copied_ += data.size() - oskip;
          c->rcv_nxt = oseq + data.size();
        }
        c->ooo_bytes -= data.size();
        it = c->ooo.erase(it);
      }
    }
  }

  if (seg.flags.fin && seg.seq <= c->rcv_nxt && !c->peer_fin) {
    // FIN in order (any data before it has been delivered).
    if (seg.seq + seg.payload.size() == c->rcv_nxt) {
      c->peer_fin = true;
      c->rcv_nxt += 1;
      if (c->state == State::kEstablished) c->state = State::kCloseWait;
      if (c->state == State::kFinWait2 ||
          (c->state == State::kFinWait1 && c->fin_acked)) {
        c->state = State::kDone;
      }
      send_pure_ack(c);
      advanced = false;  // already acked
      maybe_schedule_gc(c);
      notify();
    }
  }

  if (advanced) {
    ++c->pending_ack_segments;
    if (c->pending_ack_segments >= 2) {
      send_pure_ack(c);
    } else {
      arm_delack(c);
    }
    notify();
  }
}

}  // namespace ulsocks::tcp
