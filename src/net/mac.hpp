// Ethernet MAC addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace ulsocks::net {

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  /// Deterministic locally-administered address for simulated host `n`.
  static constexpr MacAddress for_host(std::uint32_t n) {
    return MacAddress{{0x02, 0x00, static_cast<std::uint8_t>(n >> 24),
                       static_cast<std::uint8_t>(n >> 16),
                       static_cast<std::uint8_t>(n >> 8),
                       static_cast<std::uint8_t>(n)}};
  }

  static constexpr MacAddress broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  /// Inverse of for_host(): the simulated host index this address encodes.
  [[nodiscard]] constexpr std::uint32_t host_index() const {
    return (static_cast<std::uint32_t>(octets[2]) << 24) |
           (static_cast<std::uint32_t>(octets[3]) << 16) |
           (static_cast<std::uint32_t>(octets[4]) << 8) |
           static_cast<std::uint32_t>(octets[5]);
  }

  [[nodiscard]] constexpr bool is_broadcast() const {
    for (auto o : octets) {
      if (o != 0xff) return false;
    }
    return true;
  }

  friend auto operator<=>(const MacAddress&, const MacAddress&) = default;

  [[nodiscard]] std::string to_string() const {
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                  octets[1], octets[2], octets[3], octets[4], octets[5]);
    return buf;
  }
};

}  // namespace ulsocks::net

template <>
struct std::hash<ulsocks::net::MacAddress> {
  std::size_t operator()(const ulsocks::net::MacAddress& m) const noexcept {
    std::size_t h = 0;
    for (auto o : m.octets) h = h * 131 + o;
    return h;
  }
};
