#include "net/switch.hpp"

#include "check/invariant.hpp"

namespace ulsocks::net {

EthernetSwitch::EthernetSwitch(sim::Engine& eng, const sim::WireCosts& wire,
                               std::size_t port_count)
    : eng_(eng),
      wire_(wire),
      scope_(eng.metrics(), "net/switch"),
      forwarded_(scope_.counter("frames_forwarded")),
      flooded_(scope_.counter("frames_flooded")),
      dropped_(scope_.counter("frames_dropped")),
      bytes_copied_(eng.metrics().counter("host/bytes_copied")),
      tracer_(eng.tracer()),
      trk_(eng.tracer().track("net", "switch")),
      inv_check_(eng.checks(), "net.switch",
                 [this] { check_invariants(); }) {
  pool_.bind_hwm_gauge(scope_.gauge("frame_pool_hwm"));
  ports_.reserve(port_count);
  for (std::size_t i = 0; i < port_count; ++i) {
    auto port = std::make_unique<Port>();
    port->sink.owner = this;
    port->sink.port = i;
    ports_.push_back(std::move(port));
  }
}

void EthernetSwitch::check_invariants() const {
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    const Port& port = *ports_[p];
    std::uint64_t bytes = 0;
    for (const auto& f : port.queue) bytes += f->wire_bytes();
    ULSOCKS_INVARIANT(
        bytes == port.queued_bytes,
        check::msgf("port %zu queue accounting diverged: counted=%llu "
                    "recorded=%llu",
                    p, static_cast<unsigned long long>(bytes),
                    static_cast<unsigned long long>(port.queued_bytes)));
    ULSOCKS_INVARIANT(
        port.queued_bytes <= wire_.switch_port_buffer_bytes,
        check::msgf("port %zu egress buffer over bound: %llu > %llu", p,
                    static_cast<unsigned long long>(port.queued_bytes),
                    static_cast<unsigned long long>(
                        wire_.switch_port_buffer_bytes)));
  }
  // Order-insensitive sweep: per-entry range check only, mutates nothing.
  for (const auto& [mac, port] : table_) {  // NOLINT(ulsan-determinism)
    ULSOCKS_INVARIANT(
        port < ports_.size(),
        check::msgf("learning table names port %zu of %zu", port,
                    ports_.size()));
  }
}

void EthernetSwitch::connect(std::size_t port, Link& link, Link::Side side) {
  ULSOCKS_INVARIANT(port < ports_.size(),
                    check::msgf("connect to port %zu of %zu", port,
                                ports_.size()));
  ports_[port]->link = &link;
  ports_[port]->side = side;
  link.attach(side, &ports_[port]->sink, eng_);
}

void EthernetSwitch::ingress(std::size_t port, FramePtr frame) {
  // Learn the source address.  Skip the table write when this port's last
  // learned source is unchanged — the overwhelmingly common case, since a
  // port fronts a single host.
  Port& in = *ports_[port];
  if (!in.learn_valid || in.last_learned_src != frame->src) {
    auto [it, inserted] = table_.try_emplace(frame->src, port);
    if (!inserted && it->second != port) {
      // The MAC moved here from another port: take over its table entry
      // and invalidate the previous owner's learn cache so it re-learns.
      Port& prev = *ports_[it->second];
      if (prev.learn_valid && prev.last_learned_src == frame->src) {
        prev.learn_valid = false;
      }
      it->second = port;
      ++generation_;
    } else if (inserted) {
      ++generation_;
    }
    in.last_learned_src = frame->src;
    in.learn_valid = true;
  }

  // Store-and-forward lookup latency, then route.
  if (tracer_.enabled()) {
    tracer_.complete(trk_, eng_.now(), wire_.switch_latency_ns, "forward");
  }
  eng_.schedule_after(wire_.switch_latency_ns,
                      [this, port, f = std::move(frame)]() mutable {
                        route(port, std::move(f));
                      });
}

void EthernetSwitch::route(std::size_t port, FramePtr frame) {
  Port& in = *ports_[port];
  // Route memo: the last successfully looked-up destination from this
  // port, valid only while the learning table is unchanged.
  if (in.memo_generation == generation_ && in.memo_dst == frame->dst) {
    if (in.memo_out != port) {
      ++forwarded_;
      enqueue(in.memo_out, std::move(frame));
    }
    return;
  }
  auto it =
      frame->dst.is_broadcast() ? table_.end() : table_.find(frame->dst);
  if (it != table_.end()) {
    in.memo_dst = frame->dst;
    in.memo_out = it->second;
    in.memo_generation = generation_;
    if (it->second != port) {
      ++forwarded_;
      enqueue(it->second, std::move(frame));
    }
    // Frames "forwarded" back out the ingress port are dropped, matching
    // real switch behaviour for hosts talking to themselves.
    return;
  }
  // Unknown destination or broadcast: flood pooled copies to all other
  // ports; the original returns to its pool when `frame` dies here.  Each
  // copy duplicates only the inline region — payload slices are shared —
  // so with slicing on a flood moves header bytes, not payloads.
  ++flooded_;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (p == port || ports_[p]->link == nullptr) continue;
    bytes_copied_ += frame->payload.size();
    enqueue(p, pool_.acquire_copy(*frame));
  }
}

void EthernetSwitch::enqueue(std::size_t port, FramePtr frame) {
  Port& out = *ports_[port];
  if (out.link == nullptr) return;
  std::uint64_t bytes = frame->wire_bytes();
  if (out.queued_bytes + bytes > wire_.switch_port_buffer_bytes) {
    ++dropped_;  // drop-tail on egress buffer overflow
    if (tracer_.enabled()) tracer_.instant(trk_, eng_.now(), "drop_tail");
    return;
  }
  out.queued_bytes += bytes;
  out.queue.push_back(std::move(frame));
  if (!out.draining) drain(port);
}

void EthernetSwitch::drain(std::size_t port) {
  Port& out = *ports_[port];
  if (out.queue.empty()) {
    out.draining = false;
    return;
  }
  out.draining = true;
  FramePtr frame = std::move(out.queue.front());
  out.queue.pop_front();
  out.queued_bytes -= frame->wire_bytes();
  sim::Duration ser = out.link->serialization_time(*frame);
  out.link->transmit(out.side, std::move(frame));
  eng_.schedule_after(ser, [this, port] { drain(port); });
}

}  // namespace ulsocks::net
