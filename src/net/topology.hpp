// Canned topologies.
#pragma once

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"

namespace ulsocks::net {

/// The paper's testbed topology: N hosts, each on its own full-duplex
/// gigabit link to one switch.  Hosts attach their NIC MAC to side A of
/// their link; side B belongs to the switch.
class StarNetwork {
 public:
  /// `per_host_propagation` (when non-empty) overrides the wire's
  /// propagation delay per host link — host i's cable is
  /// per_host_propagation[i % size()] ns long.  Serial and sharded
  /// constructors accept the same overrides so the topology under
  /// comparison is identical; in a sharded run a longer cable becomes a
  /// proportionally larger cross-shard edge lookahead (the link registers
  /// its true latency), which is exactly where the per-edge matrix beats
  /// the scalar bound.
  StarNetwork(sim::Engine& eng, const sim::WireCosts& wire,
              std::size_t host_count,
              std::vector<sim::Duration> per_host_propagation = {})
      : switch_(eng, wire, host_count) {
    links_.reserve(host_count);
    for (std::size_t i = 0; i < host_count; ++i) {
      links_.push_back(std::make_unique<Link>(
          eng, host_wire(wire, per_host_propagation, i)));
      switch_.connect(i, *links_.back(), Link::Side::kB);
    }
  }

  /// Sharded variant: the switch — and the switch side of every link —
  /// lives on shard 0 of `group`; each link routes cross-engine transmits
  /// through the group's mailboxes.  The host side of a link binds to its
  /// host's shard when the NIC attaches with its engine, so host placement
  /// is decided by whoever constructs the hosts (see apps::Cluster).  With
  /// a one-shard group every transmit resolves to the local path and the
  /// topology is byte-identical to the serial constructor.
  StarNetwork(sim::ShardGroup& group, const sim::WireCosts& wire,
              std::size_t host_count,
              std::vector<sim::Duration> per_host_propagation = {})
      : switch_(group.shard(0), wire, host_count) {
    links_.reserve(host_count);
    for (std::size_t i = 0; i < host_count; ++i) {
      links_.push_back(std::make_unique<Link>(
          group.shard(0), host_wire(wire, per_host_propagation, i)));
      links_.back()->set_shard_group(group);
      switch_.connect(i, *links_.back(), Link::Side::kB);
    }
  }

  static constexpr Link::Side kHostSide = Link::Side::kA;

  [[nodiscard]] Link& host_link(std::size_t host) { return *links_.at(host); }
  [[nodiscard]] EthernetSwitch& fabric() { return switch_; }
  [[nodiscard]] std::size_t host_count() const { return links_.size(); }

 private:
  [[nodiscard]] static sim::WireCosts host_wire(
      sim::WireCosts wire, const std::vector<sim::Duration>& overrides,
      std::size_t host) {
    if (!overrides.empty()) {
      wire.propagation_ns = overrides[host % overrides.size()];
    }
    return wire;
  }

  EthernetSwitch switch_;
  std::vector<std::unique_ptr<Link>> links_;
};

/// Two hosts back-to-back on one link (no switch); used by unit tests and
/// latency decomposition ablations.
class BackToBack {
 public:
  BackToBack(sim::Engine& eng, const sim::WireCosts& wire)
      : link_(eng, wire) {}

  [[nodiscard]] Link& link() { return link_; }
  [[nodiscard]] Link::Side side_of(std::size_t host) const {
    return host == 0 ? Link::Side::kA : Link::Side::kB;
  }

 private:
  Link link_;
};

}  // namespace ulsocks::net
