// Canned topologies.
#pragma once

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace ulsocks::net {

/// The paper's testbed topology: N hosts, each on its own full-duplex
/// gigabit link to one switch.  Hosts attach their NIC MAC to side A of
/// their link; side B belongs to the switch.
class StarNetwork {
 public:
  StarNetwork(sim::Engine& eng, const sim::WireCosts& wire,
              std::size_t host_count)
      : switch_(eng, wire, host_count) {
    links_.reserve(host_count);
    for (std::size_t i = 0; i < host_count; ++i) {
      links_.push_back(std::make_unique<Link>(eng, wire));
      switch_.connect(i, *links_.back(), Link::Side::kB);
    }
  }

  static constexpr Link::Side kHostSide = Link::Side::kA;

  [[nodiscard]] Link& host_link(std::size_t host) { return *links_.at(host); }
  [[nodiscard]] EthernetSwitch& fabric() { return switch_; }
  [[nodiscard]] std::size_t host_count() const { return links_.size(); }

 private:
  EthernetSwitch switch_;
  std::vector<std::unique_ptr<Link>> links_;
};

/// Two hosts back-to-back on one link (no switch); used by unit tests and
/// latency decomposition ablations.
class BackToBack {
 public:
  BackToBack(sim::Engine& eng, const sim::WireCosts& wire)
      : link_(eng, wire) {}

  [[nodiscard]] Link& link() { return link_; }
  [[nodiscard]] Link::Side side_of(std::size_t host) const {
    return host == 0 ? Link::Side::kA : Link::Side::kB;
  }

 private:
  Link link_;
};

}  // namespace ulsocks::net
