#include "net/link.hpp"

#include <algorithm>

namespace ulsocks::net {

DropPolicy drop_nth_policy(std::vector<std::uint64_t> ordinals) {
  // Counts frames per policy instance; ordinals are 1-based.
  auto counter = std::make_shared<std::uint64_t>(0);
  return [counter, ordinals = std::move(ordinals)](const Frame&) {
    ++*counter;
    return std::find(ordinals.begin(), ordinals.end(), *counter) !=
           ordinals.end();
  };
}

DropPolicy random_drop_policy(sim::Rng& rng, double p) {
  return [&rng, p](const Frame&) { return rng.chance(p); };
}

sim::Time Link::transmit(Side side, FramePtr frame) {
  auto& from = end_[static_cast<int>(side)];
  auto& to = end_[1 - static_cast<int>(side)];
  frame->wire_id = next_wire_id_++;
  ++from.sent;

  sim::Time start = std::max(eng_.now(), from.busy_until);
  sim::Duration ser = serialization_time(*frame);
  from.busy_until = start + ser;

  if (from.drop && from.drop(*frame)) {
    ++from.dropped;
    return from.busy_until;  // the wire time is spent even for lost frames
  }

  sim::Time arrival = from.busy_until + propagation_ns_;
  // EventFn is move-only, so the frame travels in the event itself.
  eng_.schedule_at(arrival, [sink = to.sink, f = std::move(frame)]() mutable {
    if (sink) sink->frame_arrived(std::move(f));
  });
  return from.busy_until;
}

}  // namespace ulsocks::net
