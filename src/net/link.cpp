#include "net/link.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/payload_slice.hpp"
#include "sim/shard.hpp"

namespace ulsocks::net {

DropPolicy drop_nth_policy(std::vector<std::uint64_t> ordinals) {
  // Counts frames per policy instance; ordinals are 1-based.
  auto counter = std::make_shared<std::uint64_t>(0);
  return [counter, ordinals = std::move(ordinals)](const Frame&) {
    ++*counter;
    return std::find(ordinals.begin(), ordinals.end(), *counter) !=
           ordinals.end();
  };
}

DropPolicy random_drop_policy(sim::Rng& rng, double p) {
  return [&rng, p](const Frame&) { return rng.chance(p); };
}

DropPolicy random_drop_policy(std::uint64_t seed, double p) {
  auto rng = std::make_shared<sim::Rng>(seed);
  return [rng, p](const Frame&) { return rng->chance(p); };
}

sim::Duration shard_lookahead(const sim::WireCosts& wire) {
  return sim::serialization_ns(Frame{}.wire_bytes(), wire.link_bps) +
         wire.propagation_ns;
}

namespace {

// Deep-copy `f` into a fresh heap frame owned by no pool, with every
// payload slice re-backed by private heap storage.  Frame pools, slice
// pools and slice refcounts are all single-threaded per shard, so a frame
// crossing shards must leave its source shard's allocator world entirely;
// the copy happens on the source thread, and the original (with its pool
// and slice references) dies there too.  Slice boundaries are preserved so
// scatter-gather receive paths behave identically serial vs. sharded.
FramePtr clone_for_shard_transfer(const Frame& f) {
  FramePtr out = make_frame_ptr();
  out->dst = f.dst;
  out->src = f.src;
  out->type = f.type;
  out->wire_id = f.wire_id;
  out->payload = f.payload;
  out->slices.reserve(f.slices.size());
  for (const PayloadSlice& s : f.slices) {
    auto span = s.span();
    out->slices.push_back(
        PayloadSlice::adopt(std::vector<std::uint8_t>(span.begin(), span.end())));
  }
  return out;
}

}  // namespace

void Link::resolve_shard(Endpoint& e) {
  if (group_ != nullptr && e.eng != nullptr) {
    e.shard = group_->index_of(*e.eng);
    e.resolved = true;
  }
}

void Link::maybe_register_lookahead() {
  // Both directions share the wire costs, so a cross-shard link
  // contributes a symmetric pair of edges.  Registration is
  // min-accumulating in the group, so re-attachment and parallel links
  // between the same shard pair are harmless.
  if (end_[0].resolved && end_[1].resolved && end_[0].shard != end_[1].shard) {
    group_->register_edge_lookahead(end_[0].shard, end_[1].shard,
                                    min_latency());
    group_->register_edge_lookahead(end_[1].shard, end_[0].shard,
                                    min_latency());
  }
}

sim::Time Link::transmit(Side side, FramePtr frame) {
  auto& from = end_[static_cast<int>(side)];
  auto& to = end_[1 - static_cast<int>(side)];
  frame->wire_id = from.next_wire_id++;
  ++from.sent;

  sim::Time start = std::max(from.eng->now(), from.busy_until);
  sim::Duration ser = serialization_time(*frame);
  from.busy_until = start + ser;

  if (from.drop && from.drop(*frame)) {
    ++from.dropped;
    return from.busy_until;  // the wire time is spent even for lost frames
  }

  sim::Time arrival = from.busy_until + propagation_ns_;
  if (to.eng == from.eng) {
    // EventFn is move-only, so the frame travels in the event itself.
    // Delivery runs in the receiving side's domain so a later migration of
    // that domain carries any still-queued arrivals with it.
    from.eng->schedule_in_domain(
        arrival, to.domain, [sink = to.sink, f = std::move(frame)]() mutable {
          if (sink) sink->frame_arrived(std::move(f));
        });
  } else {
    // Cross-shard: arrival >= now + serialization(min frame) + propagation
    // = now + min_latency(), which is exactly the edge lookahead this link
    // registered — the invariant post_remote demands.
    FramePtr crossed = clone_for_shard_transfer(*frame);
    frame.reset();  // original returns to its source-shard pool here
    group_->post_remote(
        from.shard, to.shard, arrival,
        [sink = to.sink, f = std::move(crossed)]() mutable {
          if (sink) sink->frame_arrived(std::move(f));
        },
        to.domain);
  }
  return from.busy_until;
}

}  // namespace ulsocks::net
