// Refcounted payload slices: the host-side zero-copy data path.
//
// A PayloadSlice is an immutable view (offset/length) into a refcounted
// byte buffer.  Protocol layers pin a message's payload into one slice at
// the API boundary (the single host copy), then fragment, encode, forward,
// flood and deliver it by slicing — refcount bumps instead of memcpy.  The
// backing buffers are pool-recycled exactly like FramePool frames: the
// deleter returns storage (capacity included) to the owning pool's free
// list, so steady-state traffic reuses a warm working set.
//
// Lifetime mirrors FramePool: slices routinely outlive their pool (queued
// events still hold frames holding slices when a Cluster destructs), so the
// pool core is shared_ptr-owned and stragglers free themselves when they
// see the dead mark.  Refcounts are plain integers — slices, like frames,
// never cross engine threads.
//
// A/B switch: `SlicePool::set_slicing_enabled(false)` restores the legacy
// deep-copy data path end-to-end (every layer branches on it before
// building slices).  Event order must be bit-identical either way; the
// determinism suite proves it by digest across every preset.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ulsocks::net {

class SlicePool;
class PayloadSlice;

namespace detail {

struct SlicePoolCore;

/// One refcounted backing buffer.  `core` is set once at allocation (null
/// for adopted/heap buffers) and never reassigned on recycle.
struct SliceStorage {
  std::vector<std::uint8_t> bytes;
  std::uint32_t refs = 0;
  std::shared_ptr<SlicePoolCore> core;
};

struct SlicePoolCore {
  std::vector<SliceStorage*> free;
  bool alive = true;           // cleared when the owning SlicePool dies
  std::uint64_t created = 0;   // buffers ever heap-allocated by the pool
  std::uint64_t recycled = 0;  // acquires served from the free list
  std::uint64_t outstanding = 0;
  std::uint64_t high_water = 0;  // peak simultaneously-outstanding buffers
  obs::Gauge* hwm_gauge = nullptr;  // mirrors high_water when bound
};

}  // namespace detail

/// Immutable, refcounted [offset, offset+length) view of a backing buffer.
/// Copying bumps the refcount; the last owner returns the storage to its
/// pool (or frees it).  Default-constructed slices are empty and own
/// nothing.
class PayloadSlice {
 public:
  PayloadSlice() = default;
  PayloadSlice(const PayloadSlice& o) noexcept
      : s_(o.s_), off_(o.off_), len_(o.len_) {
    if (s_ != nullptr) ++s_->refs;
  }
  PayloadSlice(PayloadSlice&& o) noexcept
      : s_(o.s_), off_(o.off_), len_(o.len_) {
    o.s_ = nullptr;
    o.off_ = 0;
    o.len_ = 0;
  }
  PayloadSlice& operator=(const PayloadSlice& o) noexcept {
    if (this != &o) {
      if (o.s_ != nullptr) ++o.s_->refs;
      release();
      s_ = o.s_;
      off_ = o.off_;
      len_ = o.len_;
    }
    return *this;
  }
  PayloadSlice& operator=(PayloadSlice&& o) noexcept {
    if (this != &o) {
      release();
      s_ = o.s_;
      off_ = o.off_;
      len_ = o.len_;
      o.s_ = nullptr;
      o.off_ = 0;
      o.len_ = 0;
    }
    return *this;
  }
  ~PayloadSlice() { release(); }

  /// A narrower view of the same buffer (refcount bump, no copy).
  /// `off + len` must lie within this slice.
  [[nodiscard]] PayloadSlice subslice(std::size_t off, std::size_t len) const {
    PayloadSlice s(*this);
    s.off_ += static_cast<std::uint32_t>(off);
    s.len_ = static_cast<std::uint32_t>(len);
    return s;
  }

  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return s_ == nullptr ? nullptr : s_->bytes.data() + off_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return {data(), len_};
  }
  /// How many views (including this one) share the backing buffer.
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return s_ == nullptr ? 0 : s_->refs;
  }

  /// Wrap an existing vector as a slice without copying (heap-backed, not
  /// pooled): the TCP encode path hands its segment payload straight off.
  [[nodiscard]] static PayloadSlice adopt(std::vector<std::uint8_t> bytes) {
    auto* s = new detail::SliceStorage();
    s->bytes = std::move(bytes);
    s->refs = 1;
    PayloadSlice out;
    out.s_ = s;
    out.len_ = static_cast<std::uint32_t>(s->bytes.size());
    return out;
  }

 private:
  friend class SlicePool;

  void release() noexcept {
    if (s_ == nullptr) return;
    if (--s_->refs == 0) {
      detail::SlicePoolCore* core = s_->core.get();
      if (core != nullptr) {
        --core->outstanding;
        if (core->alive) {
          core->free.push_back(s_);
          s_ = nullptr;
          return;
        }
      }
      delete s_;
    }
    s_ = nullptr;
  }

  detail::SliceStorage* s_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

/// Recycles slice backing buffers for one host's NIC (the simulated pinned
/// DMA region).  Single-threaded, like the Engine that drives it.
class SlicePool {
 public:
  SlicePool() : core_(std::make_shared<detail::SlicePoolCore>()) {}
  SlicePool(const SlicePool&) = delete;
  SlicePool& operator=(const SlicePool&) = delete;
  ~SlicePool() {
    core_->alive = false;
    for (detail::SliceStorage* s : core_->free) delete s;
    core_->free.clear();
  }

  /// Pin `bytes` into a fresh slice: the one host copy of the zero-copy
  /// path.  The buffer is written in full, so no stale bytes from a
  /// previous life can bleed through.
  [[nodiscard]] PayloadSlice copy_in(std::span<const std::uint8_t> bytes) {
    return fill(bytes, {});
  }

  /// Pin a header and a payload contiguously into one slice (the
  /// scatter-gather send: substrate header + user bytes in a single pass).
  [[nodiscard]] PayloadSlice gather(std::span<const std::uint8_t> head,
                                    std::span<const std::uint8_t> body) {
    return fill(head, body);
  }

  void bind_hwm_gauge(obs::Gauge& gauge) {
    core_->hwm_gauge = &gauge;
    gauge.set(static_cast<std::int64_t>(core_->high_water));
  }

  [[nodiscard]] std::uint64_t created() const { return core_->created; }
  [[nodiscard]] std::uint64_t recycled() const { return core_->recycled; }
  [[nodiscard]] std::uint64_t outstanding() const {
    return core_->outstanding;
  }
  [[nodiscard]] std::uint64_t high_water_mark() const {
    return core_->high_water;
  }

  /// Global A/B switch: with slicing disabled every protocol layer takes
  /// its legacy deep-copy path (the seed behaviour).  Event order must be
  /// identical either way — only host wall-clock and the
  /// `host/bytes_copied` counter may differ (tests prove it by digest).
  static void set_slicing_enabled(bool on) noexcept {
    slicing_enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool slicing_enabled() noexcept {
    return slicing_enabled_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] PayloadSlice fill(std::span<const std::uint8_t> a,
                                  std::span<const std::uint8_t> b) {
    detail::SlicePoolCore& c = *core_;
    detail::SliceStorage* s;
    if (!c.free.empty()) {
      s = c.free.back();
      c.free.pop_back();
      ++c.recycled;
    } else {
      s = new detail::SliceStorage();
      s->core = core_;
      ++c.created;
    }
    s->bytes.clear();  // keeps capacity — the point of the pool
    s->bytes.insert(s->bytes.end(), a.begin(), a.end());
    s->bytes.insert(s->bytes.end(), b.begin(), b.end());
    s->refs = 1;
    ++c.outstanding;
    if (c.outstanding > c.high_water) {
      c.high_water = c.outstanding;
      if (c.hwm_gauge != nullptr) {
        c.hwm_gauge->set(static_cast<std::int64_t>(c.high_water));
      }
    }
    PayloadSlice out;
    out.s_ = s;
    out.len_ = static_cast<std::uint32_t>(s->bytes.size());
    return out;
  }

  inline static std::atomic<bool> slicing_enabled_{true};
  std::shared_ptr<detail::SlicePoolCore> core_;
};

}  // namespace ulsocks::net
