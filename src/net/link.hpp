// Full-duplex point-to-point link with serialization, propagation delay and
// fault injection.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/frame.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace ulsocks::net {

/// Decides whether a given frame is lost on the wire.  Stateless frames in,
/// verdicts out; installed per link direction by tests and fault benches.
using DropPolicy = std::function<bool(const Frame&)>;

/// Drop every frame whose (per-direction) transmit ordinal is in `ordinals`.
[[nodiscard]] DropPolicy drop_nth_policy(std::vector<std::uint64_t> ordinals);

/// Drop frames independently with probability `p` drawn from `rng`.
[[nodiscard]] DropPolicy random_drop_policy(sim::Rng& rng, double p);

class Link {
 public:
  enum class Side : std::uint8_t { kA = 0, kB = 1 };

  Link(sim::Engine& eng, const sim::WireCosts& wire)
      : eng_(eng), bps_(wire.link_bps), propagation_ns_(wire.propagation_ns) {}

  void attach(Side side, FrameSink* sink) {
    end_[static_cast<int>(side)].sink = sink;
  }

  /// Install a drop policy on the direction *transmitting from* `side`.
  void set_drop_policy(Side side, DropPolicy policy) {
    end_[static_cast<int>(side)].drop = std::move(policy);
  }

  /// Time to serialize `frame` onto the wire at line rate.
  [[nodiscard]] sim::Duration serialization_time(const Frame& frame) const {
    return sim::serialization_ns(frame.wire_bytes(), bps_);
  }

  /// Queue `frame` for transmission from `side`.  The link serializes
  /// frames FIFO; the frame arrives at the far sink after serialization
  /// plus propagation.  Returns the time at which the wire in this
  /// direction becomes free (senders may use it for pacing).
  sim::Time transmit(Side side, FramePtr frame);

  /// True while the given direction is still serializing earlier frames.
  [[nodiscard]] bool busy(Side side) const {
    return end_[static_cast<int>(side)].busy_until > eng_.now();
  }

  [[nodiscard]] std::uint64_t frames_sent(Side side) const {
    return end_[static_cast<int>(side)].sent;
  }
  [[nodiscard]] std::uint64_t frames_dropped(Side side) const {
    return end_[static_cast<int>(side)].dropped;
  }

 private:
  struct Endpoint {
    FrameSink* sink = nullptr;   // receiver of frames sent *to* this side
    DropPolicy drop;             // applied to frames sent *from* this side
    sim::Time busy_until = 0;    // wire-free time for this direction
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
  };

  sim::Engine& eng_;
  std::uint64_t bps_;
  sim::Duration propagation_ns_;
  std::uint64_t next_wire_id_ = 1;
  Endpoint end_[2];
};

}  // namespace ulsocks::net
