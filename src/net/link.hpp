// Full-duplex point-to-point link with serialization, propagation delay and
// fault injection.
//
// Each side of a link is attached to an engine.  When both sides share one
// engine the arrival is scheduled locally (the classic serial path, byte
// for byte).  When the sides live on different shards of a
// sim::ShardGroup, transmit() deep-copies the frame off the source shard's
// pools and posts it through the group's cross-shard mailbox instead — the
// link's serialization + propagation delay is exactly the lookahead that
// makes the conservative-parallel schedule safe (see sim/shard.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/frame.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace ulsocks::sim {
class ShardGroup;
}  // namespace ulsocks::sim

namespace ulsocks::net {

/// Decides whether a given frame is lost on the wire.  Stateless frames in,
/// verdicts out; installed per link direction by tests and fault benches.
using DropPolicy = std::function<bool(const Frame&)>;

/// Drop every frame whose (per-direction) transmit ordinal is in `ordinals`.
[[nodiscard]] DropPolicy drop_nth_policy(std::vector<std::uint64_t> ordinals);

/// Drop frames independently with probability `p` drawn from `rng`.  The
/// reference must outlive the policy and is safe only for single-engine
/// runs: draws are interleave-dependent when the rng is shared.
[[nodiscard]] DropPolicy random_drop_policy(sim::Rng& rng, double p);

/// Drop frames independently with probability `p` from a private generator
/// seeded with `seed`.  Each policy instance owns its stream, so the draw
/// sequence per link direction is a pure function of that direction's
/// traffic — identical between serial and sharded runs.
[[nodiscard]] DropPolicy random_drop_policy(std::uint64_t seed, double p);

/// Minimum simulated latency of any frame crossing a link with these wire
/// costs: serialization of a minimum Ethernet frame plus propagation.
/// This is the free lookahead a ShardGroup built over such links gets.
[[nodiscard]] sim::Duration shard_lookahead(const sim::WireCosts& wire);

class Link {
 public:
  enum class Side : std::uint8_t { kA = 0, kB = 1 };

  Link(sim::Engine& eng, const sim::WireCosts& wire)
      : bps_(wire.link_bps), propagation_ns_(wire.propagation_ns) {
    end_[0].eng = &eng;
    end_[1].eng = &eng;
  }

  void attach(Side side, FrameSink* sink) {
    end_[static_cast<int>(side)].sink = sink;
  }

  /// Attach a sink together with the engine its side runs on.  With a
  /// shard group installed, a transmit whose two sides resolve to
  /// different shards takes the mailbox path.  The moment both sides
  /// resolve to distinct shards, the link registers its per-direction
  /// lookahead (min-frame serialization + this link's propagation) with
  /// the group — forming a cross-shard edge IS the registration.
  void attach(Side side, FrameSink* sink, sim::Engine& eng) {
    Endpoint& e = end_[static_cast<int>(side)];
    e.sink = sink;
    e.eng = &eng;
    resolve_shard(e);
    maybe_register_lookahead();
  }

  /// Route cross-engine transmits through `group`'s mailboxes.  Call after
  /// construction, before (or between) attach() calls; shard indices of
  /// already-attached sides are resolved immediately.
  void set_shard_group(sim::ShardGroup& group) {
    group_ = &group;
    resolve_shard(end_[0]);
    resolve_shard(end_[1]);
    maybe_register_lookahead();
  }

  /// Minimum simulated latency of any frame this link can deliver — what
  /// it registers as its cross-shard edge lookahead.
  [[nodiscard]] sim::Duration min_latency() const {
    return sim::serialization_ns(Frame{}.wire_bytes(), bps_) +
           propagation_ns_;
  }

  /// Install a drop policy on the direction *transmitting from* `side`.
  void set_drop_policy(Side side, DropPolicy policy) {
    end_[static_cast<int>(side)].drop = std::move(policy);
  }

  /// Tag the simulation domain owning `side`'s component.  Every frame
  /// delivery to that side is scheduled *in that domain*, so a live
  /// migration of the domain carries in-flight arrivals along with it.
  void set_domain(Side side, sim::DomainId domain) {
    end_[static_cast<int>(side)].domain = domain;
  }

  /// Move `side` onto another engine (live shard migration).  Barrier-only:
  /// the ShardGroup's DomainMigrator is the sanctioned caller.  Does not
  /// re-register lookahead — the group resets its edge matrix after a
  /// migration wave and then asks every link to reregister_lookahead().
  void rehome(Side side, sim::Engine& eng) {
    Endpoint& e = end_[static_cast<int>(side)];
    e.eng = &eng;
    resolve_shard(e);
  }

  /// Re-announce this link's cross-shard edge (if any) to the group.
  /// Called by the ShardGroup's EdgeRefresher after migrations reset the
  /// lookahead matrix.
  void reregister_lookahead() { maybe_register_lookahead(); }

  /// Engine currently driving `side` (post-migration it is the new home).
  [[nodiscard]] sim::Engine& engine(Side side) const {
    return *end_[static_cast<int>(side)].eng;
  }

  /// Time to serialize `frame` onto the wire at line rate.
  [[nodiscard]] sim::Duration serialization_time(const Frame& frame) const {
    return sim::serialization_ns(frame.wire_bytes(), bps_);
  }

  /// Queue `frame` for transmission from `side`.  The link serializes
  /// frames FIFO; the frame arrives at the far sink after serialization
  /// plus propagation.  Returns the time at which the wire in this
  /// direction becomes free (senders may use it for pacing).
  sim::Time transmit(Side side, FramePtr frame);

  /// True while the given direction is still serializing earlier frames.
  [[nodiscard]] bool busy(Side side) const {
    const Endpoint& e = end_[static_cast<int>(side)];
    return e.busy_until > e.eng->now();
  }

  [[nodiscard]] std::uint64_t frames_sent(Side side) const {
    return end_[static_cast<int>(side)].sent;
  }
  [[nodiscard]] std::uint64_t frames_dropped(Side side) const {
    return end_[static_cast<int>(side)].dropped;
  }

 private:
  struct Endpoint {
    FrameSink* sink = nullptr;   // receiver of frames sent *to* this side
    sim::Engine* eng = nullptr;  // engine this side's component runs on
    sim::DomainId domain = sim::kAmbientDomain;  // owning simulation domain
    std::uint32_t shard = 0;     // shard index of `eng` (when grouped)
    bool resolved = false;       // shard index is known (group + engine set)
    DropPolicy drop;             // applied to frames sent *from* this side
    sim::Time busy_until = 0;    // wire-free time for this direction
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
    // Per-direction (not per-link) so concurrent shards never share the
    // counter.  wire_id is identification-only — nothing behavioral reads
    // it — so renumbering per direction leaves digests untouched.
    std::uint64_t next_wire_id = 1;
  };

  void resolve_shard(Endpoint& e);
  void maybe_register_lookahead();

  std::uint64_t bps_;
  sim::Duration propagation_ns_;
  sim::ShardGroup* group_ = nullptr;
  Endpoint end_[2];
};

}  // namespace ulsocks::net
