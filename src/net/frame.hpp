// Ethernet frames.
//
// Frames carry their real payload bytes end-to-end so that every layer above
// (EMP fragmentation/reassembly, TCP segmentation, socket copies) can be
// checked for content integrity, not just timing.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/mac.hpp"

namespace ulsocks::net {

/// EtherType values used by the simulated protocols.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,   // kernel TCP/IP path
  kEmp = 0x88b5,    // EMP (local experimental ethertype, as EMP used)
};

struct Frame {
  MacAddress dst{};
  MacAddress src{};
  EtherType type = EtherType::kEmp;
  std::vector<std::uint8_t> payload;
  /// Monotonic id assigned at transmission; used by fault injection and
  /// traces to identify frames.
  std::uint64_t wire_id = 0;

  Frame() = default;
  Frame(MacAddress d, MacAddress s, EtherType t,
        std::vector<std::uint8_t> body)
      : dst(d), src(s), type(t), payload(std::move(body)) {}

  /// Bytes occupying the wire: preamble+SFD (8) + header (14) + payload
  /// padded to the 46-byte minimum + FCS (4) + inter-frame gap (12).
  [[nodiscard]] std::uint64_t wire_bytes() const {
    std::uint64_t body = payload.size() < 46 ? 46 : payload.size();
    return 8 + 14 + body + 4 + 12;
  }
};

using FramePtr = std::unique_ptr<Frame>;

/// Anything that can accept a fully received frame (NIC MAC, switch port).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void frame_arrived(FramePtr frame) = 0;
};

}  // namespace ulsocks::net
