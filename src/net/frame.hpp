// Ethernet frames and the per-host frame pool.
//
// Frames carry their real payload bytes end-to-end so that every layer above
// (EMP fragmentation/reassembly, TCP segmentation, socket copies) can be
// checked for content integrity, not just timing.
//
// Allocation model: a FramePtr is a unique_ptr with a custom deleter.  A
// frame acquired from a FramePool carries a shared handle to the pool's
// core; when the last owner drops it the deleter pushes the frame (payload
// vector and its capacity included) back onto the pool's free list instead
// of freeing it.  Steady-state traffic therefore reuses a small working set
// of frames with warm payload capacity — the NIC -> link -> switch -> NIC
// hop chain allocates nothing.
//
// Lifetime: frames routinely outlive their pool.  A bench declares
// `Engine eng; Cluster cl(eng, ...)`, so the cluster (and every NIC-owned
// pool) destructs before the engine — while queued events may still hold
// FramePtrs.  The pool core is therefore shared_ptr-owned: the pool
// destructor marks it dead and frees the free list, and stragglers see the
// dead mark and delete themselves normally.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "net/mac.hpp"
#include "net/payload_slice.hpp"
#include "obs/metrics.hpp"

namespace ulsocks::net {

/// EtherType values used by the simulated protocols.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,   // kernel TCP/IP path
  kEmp = 0x88b5,    // EMP (local experimental ethertype, as EMP used)
};

class FramePool;
struct FrameDeleter;

namespace detail {
struct FramePoolCore;
}  // namespace detail

struct Frame {
  MacAddress dst{};
  MacAddress src{};
  EtherType type = EtherType::kEmp;
  /// Inline region: with slicing enabled this holds only the protocol
  /// header (~16-40 bytes); legacy mode keeps the whole wire payload here.
  std::vector<std::uint8_t> payload;
  /// Scatter-gather extension: payload bytes following the inline region,
  /// shared by refcount with the sender's pinned buffer (and with flood
  /// copies).  Wire order is payload, then slices front-to-back.
  std::vector<PayloadSlice> slices;
  /// Monotonic id assigned at transmission; used by fault injection and
  /// traces to identify frames.
  std::uint64_t wire_id = 0;

  Frame() = default;
  Frame(MacAddress d, MacAddress s, EtherType t,
        std::vector<std::uint8_t> body)
      : dst(d), src(s), type(t), payload(std::move(body)) {}

  // Pool membership belongs to the frame's *storage*, not its value:
  // copying or moving a frame transfers the wire-visible fields only, so a
  // copy of a pooled frame is not itself pooled and a moved-from pooled
  // frame still returns to its pool.
  Frame(const Frame& o)
      : dst(o.dst), src(o.src), type(o.type), payload(o.payload),
        slices(o.slices), wire_id(o.wire_id) {}
  Frame(Frame&& o) noexcept
      : dst(o.dst), src(o.src), type(o.type),
        payload(std::move(o.payload)), slices(std::move(o.slices)),
        wire_id(o.wire_id) {}
  Frame& operator=(const Frame& o) {
    if (this != &o) {
      dst = o.dst;
      src = o.src;
      type = o.type;
      payload = o.payload;
      slices = o.slices;
      wire_id = o.wire_id;
    }
    return *this;
  }
  Frame& operator=(Frame&& o) noexcept {
    if (this != &o) {
      dst = o.dst;
      src = o.src;
      type = o.type;
      payload = std::move(o.payload);
      slices = std::move(o.slices);
      wire_id = o.wire_id;
    }
    return *this;
  }
  ~Frame() = default;

  /// Total logical payload length: inline region plus sliced extension.
  /// Identical sliced-vs-legacy for the same wire message — every
  /// size-driven cost (serialization, DMA, firmware per-byte work) goes
  /// through this, which is what keeps the A/B digests bit-equal.
  [[nodiscard]] std::size_t payload_bytes() const {
    std::size_t n = payload.size();
    for (const PayloadSlice& s : slices) n += s.size();
    return n;
  }

  /// Gather the logical payload starting at `off` into `dst` (receive-side
  /// delivery: the one copy per message).  Returns bytes written.
  std::size_t copy_payload(std::size_t off, std::span<std::uint8_t> dst) const {
    std::size_t written = 0;
    auto take = [&](std::span<const std::uint8_t> part) {
      if (off >= part.size()) {
        off -= part.size();
        return;
      }
      part = part.subspan(off);
      off = 0;
      std::size_t n = std::min(part.size(), dst.size() - written);
      std::copy_n(part.data(), n, dst.data() + written);
      written += n;
    };
    take(payload);
    for (const PayloadSlice& s : slices) {
      if (written == dst.size()) break;
      take(s.span());
    }
    return written;
  }

  /// Bytes occupying the wire: preamble+SFD (8) + header (14) + payload
  /// padded to the 46-byte minimum + FCS (4) + inter-frame gap (12).
  [[nodiscard]] std::uint64_t wire_bytes() const {
    std::uint64_t body = payload_bytes();
    if (body < 46) body = 46;
    return 8 + 14 + body + 4 + 12;
  }

 private:
  friend class FramePool;
  friend struct FrameDeleter;
  /// Set once when the pool allocates the frame; never reassigned on
  /// recycle, so reuse involves no refcount traffic.
  std::shared_ptr<detail::FramePoolCore> pool_core_;
};

struct FrameDeleter {
  void operator()(Frame* f) const noexcept;
};

using FramePtr = std::unique_ptr<Frame, FrameDeleter>;

/// Heap-allocate a frame outside any pool (tests, cold setup paths).
template <class... Args>
[[nodiscard]] inline FramePtr make_frame_ptr(Args&&... args) {
  return FramePtr(new Frame(std::forward<Args>(args)...));
}

namespace detail {
struct FramePoolCore {
  std::vector<Frame*> free;
  bool alive = true;           // cleared when the owning FramePool dies
  std::uint64_t created = 0;   // frames ever heap-allocated by the pool
  std::uint64_t recycled = 0;  // acquires served from the free list
  std::uint64_t outstanding = 0;
  std::uint64_t high_water = 0;  // peak simultaneously-outstanding frames
  obs::Gauge* hwm_gauge = nullptr;  // mirrors high_water when bound
};
}  // namespace detail

/// Recycles Frame objects (and their payload capacity) for one host's NIC
/// or for the switch's flood copies.  Single-threaded, like the Engine that
/// drives it.
class FramePool {
 public:
  FramePool() : core_(std::make_shared<detail::FramePoolCore>()) {}
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool() {
    core_->alive = false;
    for (Frame* f : core_->free) delete f;
    core_->free.clear();
  }

  /// A blank frame: cleared header fields, empty payload with whatever
  /// capacity its previous life left behind.
  [[nodiscard]] FramePtr acquire() {
    if (!pooling_enabled()) return make_frame_ptr();
    detail::FramePoolCore& c = *core_;
    Frame* f;
    if (!c.free.empty()) {
      f = c.free.back();
      c.free.pop_back();
      ++c.recycled;
      f->dst = MacAddress{};
      f->src = MacAddress{};
      f->type = EtherType::kEmp;
      f->payload.clear();  // keeps capacity — the point of the pool
      f->slices.clear();   // drops slice refs from the previous life
      f->wire_id = 0;
    } else {
      f = new Frame();
      f->pool_core_ = core_;
      ++c.created;
    }
    ++c.outstanding;
    if (c.outstanding > c.high_water) {
      c.high_water = c.outstanding;
      if (c.hwm_gauge != nullptr) {
        c.hwm_gauge->set(static_cast<std::int64_t>(c.high_water));
      }
    }
    return FramePtr(f);
  }

  /// A pooled copy of `src` (switch flooding).  Only the inline region is
  /// duplicated — with slicing on that is just the protocol header; the
  /// payload slices are shared by refcount bump across pools.
  [[nodiscard]] FramePtr acquire_copy(const Frame& src) {
    FramePtr f = acquire();
    f->dst = src.dst;
    f->src = src.src;
    f->type = src.type;
    f->payload.assign(src.payload.begin(), src.payload.end());
    f->slices = src.slices;
    f->wire_id = src.wire_id;
    return f;
  }

  /// Publish the pool's high-water mark through `gauge` (updated whenever
  /// a new peak is reached).
  void bind_hwm_gauge(obs::Gauge& gauge) {
    core_->hwm_gauge = &gauge;
    gauge.set(static_cast<std::int64_t>(core_->high_water));
  }

  [[nodiscard]] std::uint64_t created() const { return core_->created; }
  [[nodiscard]] std::uint64_t recycled() const { return core_->recycled; }
  [[nodiscard]] std::uint64_t outstanding() const {
    return core_->outstanding;
  }
  [[nodiscard]] std::uint64_t high_water_mark() const {
    return core_->high_water;
  }

  /// Global A/B switch for determinism tests: with pooling disabled,
  /// acquire() heap-allocates and the deleter frees — the seed behaviour.
  /// Event order must be identical either way (tests prove it by digest).
  static void set_pooling_enabled(bool on) noexcept {
    pooling_enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool pooling_enabled() noexcept {
    return pooling_enabled_.load(std::memory_order_relaxed);
  }

 private:
  inline static std::atomic<bool> pooling_enabled_{true};
  std::shared_ptr<detail::FramePoolCore> core_;
};

inline void FrameDeleter::operator()(Frame* f) const noexcept {
  const std::shared_ptr<detail::FramePoolCore>& core = f->pool_core_;
  if (core != nullptr) {
    --core->outstanding;
    if (core->alive && FramePool::pooling_enabled()) {
      core->free.push_back(f);
      return;
    }
  }
  delete f;
}

/// Anything that can accept a fully received frame (NIC MAC, switch port).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void frame_arrived(FramePtr frame) = 0;
};

}  // namespace ulsocks::net
