// Store-and-forward Ethernet switch with MAC learning (the Packet Engines
// switch of the paper's testbed).
//
// A frame is fully serialized onto the ingress link (modelled by Link)
// before the switch sees it — that is the "store".  The switch then charges
// its forwarding latency, looks up the destination in the learning table
// and queues the frame on the egress port, which drains at line rate.
// Egress queues are byte-limited and drop-tail.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "check/registry.hpp"
#include "net/frame.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace ulsocks::net {

class EthernetSwitch {
 public:
  EthernetSwitch(sim::Engine& eng, const sim::WireCosts& wire,
                 std::size_t port_count);

  /// Attach port `port` to `side` of `link`.  The switch becomes the sink
  /// for frames arriving at that side.
  void connect(std::size_t port, Link& link, Link::Side side);

  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }
  [[nodiscard]] std::uint64_t frames_forwarded() const {
    return forwarded_.value();
  }
  [[nodiscard]] std::uint64_t frames_flooded() const {
    return flooded_.value();
  }
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return dropped_.value();
  }
  [[nodiscard]] std::size_t learned_macs() const { return table_.size(); }

  /// Cross-layer invariants: per-port byte accounting matches the queued
  /// frames and respects the drop-tail buffer bound; the learning table
  /// only names real ports.  Registered with the engine's checker
  /// registry at construction.
  void check_invariants() const;

 private:
  struct Port;

  /// FrameSink adapter: routes link deliveries to ingress(port).
  struct PortSink final : FrameSink {
    EthernetSwitch* owner = nullptr;
    std::size_t port = 0;
    void frame_arrived(FramePtr frame) override {
      owner->ingress(port, std::move(frame));
    }
  };

  struct Port {
    Link* link = nullptr;
    Link::Side side = Link::Side::kA;
    PortSink sink;
    std::deque<FramePtr> queue;
    std::uint64_t queued_bytes = 0;
    bool draining = false;
    // Hot-path caches.  A port usually fronts one host, so its source
    // address and the destination it talks to repeat frame after frame;
    // both caches skip a hash lookup per frame.  The learn cache is
    // invalidated port-locally when another port steals its source MAC
    // (the only way its table entry can change under it); the route memo
    // is stamped with the table generation, so any table write anywhere
    // invalidates it.
    MacAddress last_learned_src{};
    bool learn_valid = false;
    MacAddress memo_dst{};
    std::size_t memo_out = 0;
    std::uint64_t memo_generation = 0;  // 0 = empty (generation_ starts at 1)
  };

  void ingress(std::size_t port, FramePtr frame);
  void route(std::size_t port, FramePtr frame);
  void enqueue(std::size_t port, FramePtr frame);
  void drain(std::size_t port);

  sim::Engine& eng_;
  sim::WireCosts wire_;
  FramePool pool_;  // recycles flood copies
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<MacAddress, std::size_t> table_;
  std::uint64_t generation_ = 1;  // bumped on every learning-table write
  obs::Scope scope_;  // "net/switch" registry prefix
  obs::Counter& forwarded_;
  obs::Counter& flooded_;
  obs::Counter& dropped_;
  obs::Counter& bytes_copied_;  // engine-wide "host/bytes_copied"
  obs::Tracer& tracer_;
  std::uint32_t trk_;  // ("net", "switch") timeline track

  // Last member: deregisters before the state it inspects is torn down.
  check::ScopedChecker inv_check_;
};

}  // namespace ulsocks::net
