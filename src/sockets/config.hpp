// Substrate configuration: every knob the paper evaluates.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ulsocks::sockets {

/// How unexpected message arrivals are handled (paper §5.2).
enum class FlowControl : std::uint8_t {
  /// Eager with credit-based flow control (§5.2 + §6.1): the adopted
  /// default.  2N descriptors backed by temporary buffers absorb up to N
  /// outstanding writes.
  kEagerCredits,
  /// Rendezvous (§5.2): request/grant/data per message.  Zero-copy, but
  /// message-per-read semantics and deadlock-prone under mutual writes
  /// (Figure 7) — the deadlock is the application's to avoid.
  kRendezvous,
  /// Separate communication thread (§5.2, rejected alternative): kept for
  /// the ablation bench.  Adds the measured ~20 us polling-thread
  /// synchronization cost to every socket call.
  kCommThread,
};

struct SubstrateConfig {
  /// Flow-control credits N (§6.1).  The paper's micro-benchmarks use 32;
  /// the web server uses 4.
  std::uint32_t credits = 32;
  /// Temporary (staging) buffer size per credit; 64 KB in the paper.
  std::uint32_t buffer_bytes = 65'536;
  /// Data streaming (§6.2): TCP-style byte-stream reads.  Disabling it
  /// selects Datagram sockets: message-boundary reads, and writes larger
  /// than buffer_bytes switch to zero-copy rendezvous.
  bool data_streaming = true;
  FlowControl flow = FlowControl::kEagerCredits;
  /// Delayed acknowledgments (§6.3): send a credit ack only after half the
  /// credits have been consumed, shrinking the ack-descriptor fraction the
  /// NIC walks during tag matching.
  bool delayed_acks = true;
  /// Keep acknowledgment buffers on the EMP unexpected queue (§6.4) so
  /// data descriptors are matched first.
  bool unexpected_queue_acks = true;
  /// Piggy-back credit returns on reverse-direction data (§6.1).
  bool piggyback_acks = true;

  /// Messages the receiver consumes between explicit credit acks.
  [[nodiscard]] std::uint32_t ack_every() const {
    return delayed_acks ? (credits >= 2 ? credits / 2 : 1) : 1;
  }

  /// Control descriptors pre-posted alongside the N data descriptors (the
  /// "2N" of §6.1).  With delayed acks at most two acks are in flight;
  /// with the unexpected queue none are pre-posted at all.
  [[nodiscard]] std::uint32_t ctrl_descriptors() const {
    if (unexpected_queue_acks) return 0;
    if (!delayed_acks) return credits;
    return credits >= 2 ? 2 : 1;
  }
};

/// A named substrate configuration: the registry entry behind preset().
/// `label` is the paper's figure label, reused verbatim by the bench JSON
/// emitter so plotted series match the figures.
struct Preset {
  std::string_view name;   // registry key, e.g. "ds_da_uq"
  std::string_view label;  // figure label, e.g. "DS + Delayed Acks + UQ"
  SubstrateConfig cfg;
};

namespace detail {
[[nodiscard]] constexpr SubstrateConfig make_ds() {
  SubstrateConfig c;
  c.delayed_acks = false;
  c.unexpected_queue_acks = false;
  c.piggyback_acks = false;
  return c;
}
[[nodiscard]] constexpr SubstrateConfig make_ds_da() {
  SubstrateConfig c = make_ds();
  c.delayed_acks = true;
  return c;
}
[[nodiscard]] constexpr SubstrateConfig make_ds_da_uq() {
  SubstrateConfig c = make_ds_da();
  c.unexpected_queue_acks = true;
  c.piggyback_acks = true;
  return c;
}
[[nodiscard]] constexpr SubstrateConfig make_dg() {
  SubstrateConfig c = make_ds_da_uq();
  c.data_streaming = false;
  c.piggyback_acks = false;  // datagrams carry no substrate header
  return c;
}

inline constexpr Preset kPresets[] = {
    {"ds", "Data Streaming", make_ds()},
    {"ds_da", "DS + Delayed Acks", make_ds_da()},
    {"ds_da_uq", "DS + Delayed Acks + UQ", make_ds_da_uq()},
    {"dg", "Datagram", make_dg()},
};
}  // namespace detail

/// The named-preset registry (the paper's figure configurations).  Unknown
/// names throw; use try_preset() to probe.
[[nodiscard]] inline const Preset& preset(std::string_view name) {
  for (const Preset& p : detail::kPresets) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown substrate preset: " +
                              std::string(name));
}

[[nodiscard]] inline const Preset* try_preset(std::string_view name) {
  for (const Preset& p : detail::kPresets) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

/// Every registered preset, in registration order.
[[nodiscard]] inline std::span<const Preset> presets() {
  return detail::kPresets;
}

/// Legacy accessors, now thin wrappers over the registry.
[[nodiscard]] inline SubstrateConfig preset_ds() { return preset("ds").cfg; }
[[nodiscard]] inline SubstrateConfig preset_ds_da() {
  return preset("ds_da").cfg;
}
[[nodiscard]] inline SubstrateConfig preset_ds_da_uq() {
  return preset("ds_da_uq").cfg;
}
[[nodiscard]] inline SubstrateConfig preset_dg() { return preset("dg").cfg; }

}  // namespace ulsocks::sockets
