// Substrate control-channel and connection-management wire formats.
//
// Connection management uses the paper's "data message exchange" (§5.1):
// an explicit request message carrying the client's identity and channel
// parameters, answered by an explicit reply.  All other control traffic
// (credit acks, close notification, rendezvous request/grant) flows over a
// per-connection control tag.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ulsocks::sockets {

enum class CtrlType : std::uint16_t {
  kCreditAck = 1,   // a: credit count being returned
  kClose = 2,       // connection teardown notification
  kRendReq = 3,     // a: payload bytes, b: request id
  kRendGrant = 4,   // b: request id (descriptor now posted)
  kConnReply = 5,   // a: packed tags, b: credits, c: buffer_bytes
  kConnRefuse = 6,
};

struct CtrlMsg {
  CtrlType type = CtrlType::kCreditAck;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

inline constexpr std::size_t kCtrlBytes = 16;

struct ConnRequest {
  std::uint16_t client_node = 0;
  std::uint16_t client_port = 0;
  // The initiator allocates BOTH channels.  EMP tag matching is on
  // (source index, tag), so tags only need to be unique per source; the
  // client draws the server-side tags from a disjoint range of its own
  // space.  This is what lets connect() complete on the EMP-level ack of
  // the request, without waiting for an application-level reply — the
  // paper's "connection time of a message exchange".
  std::uint16_t data_tag = 0;  // client receives data on this tag
  std::uint16_t ctrl_tag = 0;  // ... control messages on this one
  std::uint16_t rend_tag = 0;  // ... rendezvous payloads on this one
  std::uint16_t srv_data_tag = 0;  // server receives data on this tag
  std::uint16_t srv_ctrl_tag = 0;
  std::uint16_t srv_rend_tag = 0;
  std::uint32_t credits = 0;   // descriptors each side pre-posts
  std::uint32_t buffer_bytes = 0;
  friend bool operator==(const ConnRequest&, const ConnRequest&) = default;
};

inline constexpr std::size_t kConnRequestBytes = 24;

/// Pack/unpack three 16-bit tags into CtrlMsg::a plus the low half of c.
[[nodiscard]] std::vector<std::uint8_t> encode_ctrl(const CtrlMsg& m);
[[nodiscard]] std::optional<CtrlMsg> decode_ctrl(
    std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> encode_conn_request(
    const ConnRequest& r);
[[nodiscard]] std::optional<ConnRequest> decode_conn_request(
    std::span<const std::uint8_t> bytes);

/// Eager data messages carry a 4-byte header: piggybacked credit return
/// (§6.1) plus flags.
struct DataHeader {
  std::uint16_t piggyback_credits = 0;
  std::uint16_t flags = 0;
};
inline constexpr std::size_t kDataHeaderBytes = 4;

inline void encode_data_header(const DataHeader& h,
                                             std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(h.piggyback_credits);
  out[1] = static_cast<std::uint8_t>(h.piggyback_credits >> 8);
  out[2] = static_cast<std::uint8_t>(h.flags);
  out[3] = static_cast<std::uint8_t>(h.flags >> 8);
}

[[nodiscard]] inline DataHeader decode_data_header(const std::uint8_t* in) {
  DataHeader h;
  h.piggyback_credits =
      static_cast<std::uint16_t>(in[0] | (static_cast<std::uint16_t>(in[1])
                                          << 8));
  h.flags = static_cast<std::uint16_t>(
      in[2] | (static_cast<std::uint16_t>(in[3]) << 8));
  return h;
}

}  // namespace ulsocks::sockets
