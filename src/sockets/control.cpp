#include "sockets/control.hpp"

namespace ulsocks::sockets {

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v));
  put16(out, static_cast<std::uint16_t>(v >> 16));
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(
      in[at] | (static_cast<std::uint16_t>(in[at + 1]) << 8));
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint32_t>(get16(in, at)) |
         (static_cast<std::uint32_t>(get16(in, at + 2)) << 16);
}

}  // namespace

std::vector<std::uint8_t> encode_ctrl(const CtrlMsg& m) {
  std::vector<std::uint8_t> out;
  out.reserve(kCtrlBytes);
  put16(out, static_cast<std::uint16_t>(m.type));
  put16(out, 0);
  put32(out, m.a);
  put32(out, m.b);
  put32(out, m.c);
  return out;
}

std::optional<CtrlMsg> decode_ctrl(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kCtrlBytes) return std::nullopt;
  CtrlMsg m;
  auto t = get16(bytes, 0);
  if (t < 1 || t > 6) return std::nullopt;
  m.type = static_cast<CtrlType>(t);
  m.a = get32(bytes, 4);
  m.b = get32(bytes, 8);
  m.c = get32(bytes, 12);
  return m;
}

std::vector<std::uint8_t> encode_conn_request(const ConnRequest& r) {
  std::vector<std::uint8_t> out;
  out.reserve(kConnRequestBytes);
  put16(out, r.client_node);
  put16(out, r.client_port);
  put16(out, r.data_tag);
  put16(out, r.ctrl_tag);
  put16(out, r.rend_tag);
  put16(out, r.srv_data_tag);
  put16(out, r.srv_ctrl_tag);
  put16(out, r.srv_rend_tag);
  put32(out, r.credits);
  put32(out, r.buffer_bytes);
  return out;
}

std::optional<ConnRequest> decode_conn_request(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kConnRequestBytes) return std::nullopt;
  ConnRequest r;
  r.client_node = get16(bytes, 0);
  r.client_port = get16(bytes, 2);
  r.data_tag = get16(bytes, 4);
  r.ctrl_tag = get16(bytes, 6);
  r.rend_tag = get16(bytes, 8);
  r.srv_data_tag = get16(bytes, 10);
  r.srv_ctrl_tag = get16(bytes, 12);
  r.srv_rend_tag = get16(bytes, 14);
  r.credits = get32(bytes, 16);
  r.buffer_bytes = get32(bytes, 20);
  return r;
}

}  // namespace ulsocks::sockets
