#include "sockets/substrate.hpp"

#include <algorithm>
#include <cstring>

#include "check/invariant.hpp"
#include "sim/trace.hpp"

namespace ulsocks::sockets {

using os::SockAddr;
using os::SockErr;
using os::SocketError;

namespace {
// Datagram sockets keep no staging descriptors: small messages land on the
// EMP unexpected queue (entries are this large), bigger ones rendezvous.
constexpr std::uint32_t kDgEagerLimit = 4096;

// Lend `[off, off+len)` of a slice-delivered message to the caller's view:
// spans point into the refcounted slices, and the keepalive list pins them
// past the slot's repost.
void append_view_parts(os::RecvView& view, const emp::RecvState& r,
                       std::size_t off, std::size_t len) {
  std::size_t part_start = 0;
  for (const auto& p : r.parts) {
    if (len == 0) break;
    std::size_t part_end = part_start + p.size();
    if (off < part_end && !p.empty()) {
      std::size_t from = off > part_start ? off - part_start : 0;
      std::size_t take = std::min(p.size() - from, len);
      view.parts.emplace_back(p.data() + from, take);
      view.keepalive.push_back(p);
      off += take;
      len -= take;
    }
    part_start = part_end;
  }
}
}  // namespace

EmpSocketStack::Instruments::Instruments(obs::Scope scope)
    : connections_accepted(scope.counter("connections_accepted")),
      connections_initiated(scope.counter("connections_initiated")),
      eager_messages_tx(scope.counter("eager_messages_tx")),
      rendezvous_messages_tx(scope.counter("rendezvous_messages_tx")),
      credit_acks_tx(scope.counter("credit_acks_tx")),
      credits_piggybacked(scope.counter("credits_piggybacked")),
      truncated_datagrams(scope.counter("truncated_datagrams")),
      closes_tx(scope.counter("closes_tx")),
      credit_stall_ns(scope.histogram("credit_stall_ns")) {}

EmpSocketStack::EmpSocketStack(sim::Engine& eng, const sim::CostModel& model,
                               os::Host& host, emp::EmpEndpoint& ep,
                               SubstrateConfig default_config)
    : eng_(&eng),
      model_(model),
      host_(host),
      ep_(ep),
      default_cfg_(default_config),
      activity_(eng),
      ctr_(obs::Scope(eng.metrics(),
                      "h" + std::to_string(ep.node_id()) + "/sockets")),
      bytes_copied_(&eng.metrics().counter("host/bytes_copied")),
      recv_scratch_hwm_(&eng.metrics().gauge("host/recv_scratch_hwm")),
      tracer_(eng.tracer()),
      trk_(eng.tracer().track("h" + std::to_string(ep.node_id()), "sockets")),
      inv_check_(eng.checks(), "sockets.substrate",
                 [this] { check_invariants(); }) {
  // Every EMP completion wakes whatever substrate call is blocked.
  ep_.set_completion_hook([this] { activity_.notify_all(); });
}

SubstrateStats EmpSocketStack::stats() const noexcept {
  SubstrateStats s;
  s.connections_accepted = ctr_.connections_accepted.value();
  s.connections_initiated = ctr_.connections_initiated.value();
  s.eager_messages_tx = ctr_.eager_messages_tx.value();
  s.rendezvous_messages_tx = ctr_.rendezvous_messages_tx.value();
  s.credit_acks_tx = ctr_.credit_acks_tx.value();
  s.credits_piggybacked = ctr_.credits_piggybacked.value();
  s.truncated_datagrams = ctr_.truncated_datagrams.value();
  s.closes_tx = ctr_.closes_tx.value();
  return s;
}

void EmpSocketStack::check_invariants() const {
  for (const auto& [sd, s] : socks_) {
    if (s->state != Sock::State::kConnected || s->terminated) continue;
    // Credit conservation (§6.1): the peer only returns credits for
    // messages it consumed, so the credits we hold can never exceed the
    // window negotiated at connect time.
    ULSOCKS_INVARIANT(
        s->send_credits <= s->cfg.credits,
        check::msgf("sd=%d credit conservation violated: send_credits=%u > "
                    "credits=%u",
                    sd, s->send_credits, s->cfg.credits));
    // Consumed-but-unacknowledged messages are bounded by the window too:
    // the peer cannot have more messages outstanding than it had credits.
    ULSOCKS_INVARIANT(
        s->consumed_unacked <= s->cfg.credits,
        check::msgf("sd=%d consumed_unacked=%u > credits=%u", sd,
                    s->consumed_unacked, s->cfg.credits));
    // Descriptor-count bounds: N data descriptors and the configured
    // control-descriptor layout ("2N", §6.1) are ceilings, never exceeded.
    std::uint32_t max_data = s->cfg.data_streaming ? s->cfg.credits : 0;
    ULSOCKS_INVARIANT(
        s->data_slots.size() <= max_data,
        check::msgf("sd=%d data descriptor bound violated: %zu > %u", sd,
                    s->data_slots.size(), max_data));
    ULSOCKS_INVARIANT(
        s->ctrl_slots.size() <= s->cfg.ctrl_descriptors(),
        check::msgf("sd=%d ctrl descriptor bound violated: %zu > %u", sd,
                    s->ctrl_slots.size(), s->cfg.ctrl_descriptors()));
    ULSOCKS_INVARIANT(
        s->cfg.credits == 0 || s->staging_next < s->cfg.credits,
        check::msgf("sd=%d staging ring index %u out of bounds (credits=%u)",
                    sd, s->staging_next, s->cfg.credits));
    // Close accounting (§5.3): the counted close message bounds how many
    // messages we may consume from the peer.
    ULSOCKS_INVARIANT(
        !s->peer_closed || s->data_msgs_consumed <= s->peer_msgs_total,
        check::msgf("sd=%d consumed %llu messages but peer sent %llu", sd,
                    static_cast<unsigned long long>(s->data_msgs_consumed),
                    static_cast<unsigned long long>(s->peer_msgs_total)));
  }
}

EmpSocketStack::SockPtr& EmpSocketStack::sock(int sd) {
  auto it = socks_.find(sd);
  if (it == socks_.end()) {
    throw SocketError(SockErr::kInvalid, "bad socket descriptor");
  }
  return it->second;
}

const EmpSocketStack::SockPtr* EmpSocketStack::find_sock(int sd) const {
  auto it = socks_.find(sd);
  return it == socks_.end() ? nullptr : &it->second;
}

std::vector<std::uint8_t> EmpSocketStack::get_arena(std::size_t bytes) {
  auto& bucket = arena_pool_[bytes];
  if (!bucket.empty()) {
    auto arena = std::move(bucket.back());
    bucket.pop_back();
    return arena;
  }
  return std::vector<std::uint8_t>(bytes);
}

void EmpSocketStack::release_arena(std::vector<std::uint8_t> arena) {
  if (arena.empty()) return;
  arena_pool_[arena.size()].push_back(std::move(arena));
}

std::span<const std::uint8_t> EmpSocketStack::stage_ctrl(
    std::vector<std::uint8_t> encoded) {
  if (ctrl_staging_.capacity() < 256) ctrl_staging_.reserve(256);
  ULSOCKS_INVARIANT(encoded.size() <= ctrl_staging_.capacity(),
                    "control message exceeds the staging reservation");
  ctrl_staging_.assign(encoded.begin(), encoded.end());
  return ctrl_staging_;
}

emp::Tag EmpSocketStack::alloc_tags(TagRole role) {
  // Prefer fresh tags and recycle oldest-freed last: a late message from a
  // closed connection (a straggling Close or credit ack) must not match a
  // new connection that happens to reuse its tags.  Round-robin over the
  // ~5400 bases per role makes that window astronomically unlikely.
  if (role == TagRole::kLocal) {
    if (next_local_base_ + 3 < 0x4000) {
      emp::Tag t = next_local_base_;
      next_local_base_ = static_cast<emp::Tag>(next_local_base_ + 3);
      return t;
    }
    if (free_local_bases_.empty()) {
      // Tag exhaustion must fail loudly (a compiled-out assert here would
      // hand out colliding tags and corrupt live connections).
      throw SocketError(SockErr::kNoResources,
                        "local tag space exhausted: too many concurrent "
                        "connections");
    }
    emp::Tag t = free_local_bases_.front();
    free_local_bases_.pop_front();
    return t;
  }
  if (next_remote_base_ + 3 < 0x8000) {
    emp::Tag t = next_remote_base_;
    next_remote_base_ = static_cast<emp::Tag>(next_remote_base_ + 3);
    return t;
  }
  if (free_remote_bases_.empty()) {
    throw SocketError(SockErr::kNoResources,
                      "remote tag space exhausted: too many concurrent "
                      "connections");
  }
  emp::Tag t = free_remote_bases_.front();
  free_remote_bases_.pop_front();
  return t;
}

void EmpSocketStack::free_tags(emp::Tag base) {
  if (base >= 0x4000) {
    free_remote_bases_.push_back(base);
  } else {
    free_local_bases_.push_back(base);
  }
}

sim::Task<void> EmpSocketStack::comm_thread_penalty(const SockPtr& s) {
  if (s->cfg.flow == FlowControl::kCommThread) {
    // The polling communication thread costs ~20 us of synchronization per
    // socket operation (measured in the paper, §5.2).
    co_await host_.cpu().use(model_.host.thread_sync_ns);
  }
}

// ---------------------------------------------------------------------------
// Socket lifecycle
// ---------------------------------------------------------------------------

sim::Task<int> EmpSocketStack::socket() {
  co_await host_.cpu().use(model_.host.desc_build_ns);
  auto s = std::make_shared<Sock>();
  s->cfg = default_cfg_;
  int sd = next_sd_++;
  s->sd = sd;
  socks_[sd] = std::move(s);
  co_return sd;
}

sim::Task<void> EmpSocketStack::bind(int sd, SockAddr local) {
  co_await host_.cpu().use(model_.host.desc_build_ns);
  auto& s = sock(sd);
  if (s->state != Sock::State::kFresh) {
    throw SocketError(SockErr::kInvalid, "bind on active socket");
  }
  for (const auto& [other_sd, other] : socks_) {
    if (other->state == Sock::State::kListening &&
        other->local.port == local.port) {
      throw SocketError(SockErr::kInUse, "port already bound");
    }
  }
  s->local = SockAddr{ep_.node_id(), local.port};
  s->state = Sock::State::kBound;
}

sim::Task<void> EmpSocketStack::listen(int sd, int backlog) {
  auto s = sock(sd);
  if (s->state != Sock::State::kBound) {
    throw SocketError(SockErr::kInvalid, "listen on unbound socket");
  }
  s->backlog = std::max(1, backlog);
  // §5.1: post one connection-request descriptor per backlog entry; a
  // request that finds them all occupied is dropped and retried by EMP's
  // reliability, bounding simultaneous un-accepted connections.
  s->arena = get_arena(static_cast<std::size_t>(s->backlog) * 64);
  for (int i = 0; i < s->backlog; ++i) {
    auto slot = std::make_shared<Slot>();
    slot->buffer = std::span(s->arena).subspan(
        static_cast<std::size_t>(i) * 64, 64);
    slot->handle = co_await ep_.post_recv(std::nullopt,
                                          listen_tag(s->local.port),
                                          slot->buffer);
    s->conn_slots.push_back(std::move(slot));
  }
  // Stock the unexpected pool before any client can race us: requests'
  // early data (sent between the initiator's connect and our accept) must
  // have somewhere to land from the very first connection.
  if (s->cfg.unexpected_queue_acks) {
    std::size_t needed = std::max<std::size_t>(2, s->cfg.credits);
    std::size_t have = ep_.unexpected_free_count();
    if (have < needed) {
      co_await ep_.post_unexpected(needed - have, 4096);
    }
  }
  s->state = Sock::State::kListening;
}

sim::Task<void> EmpSocketStack::post_connection_resources(const SockPtr& s) {
  // All temporary buffers come from one arena, registered (pinned) with a
  // single syscall on the first post; subsequent posts hit the EMP
  // translation cache.
  const std::size_t slot_bytes = s->cfg.buffer_bytes + kDataHeaderBytes;
  const bool streaming = s->cfg.data_streaming;
  std::uint32_t ndata = streaming ? s->cfg.credits : 0;
  std::uint32_t nctrl = s->cfg.ctrl_descriptors();
  s->arena = get_arena(ndata * slot_bytes + nctrl * 64);
  // One send-staging slot per credit: a write returns as soon as its send
  // is posted, and the credit bound guarantees a slot is never overwritten
  // while the NIC may still read it.
  s->send_staging = get_arena(s->cfg.credits * slot_bytes);
  if (!streaming) s->dg_staging = get_arena(kDgEagerLimit);
  // N data descriptors with temporary buffers (data streaming only: the
  // datagram option delivers straight to the user buffer, §6.2)...
  for (std::uint32_t i = 0; i < ndata; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->buffer = std::span(s->arena).subspan(i * slot_bytes, slot_bytes);
    // Data slots ask for slice delivery: with slicing on the message stays
    // in refcounted NIC slices and the arena slot is only the pinned
    // fallback home (unexpected-queue arrivals).
    slot->handle = co_await ep_.post_recv(s->peer_node, s->my_data,
                                          slot->buffer, /*want_slices=*/true);
    s->data_slots.push_back(std::move(slot));
  }
  // ... plus control descriptors ("2N", §6.1) unless acks ride the
  // unexpected queue (§6.4).
  for (std::uint32_t i = 0; i < nctrl; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->buffer = std::span(s->arena).subspan(
        ndata * slot_bytes + i * 64, 64);
    slot->handle =
        co_await ep_.post_recv(s->peer_node, s->my_ctrl, slot->buffer);
    s->ctrl_slots.push_back(std::move(slot));
  }
  if (s->cfg.unexpected_queue_acks) {
    // Entries are sized to also absorb small data messages that arrive
    // between the initiator's connect() and the acceptor's resource
    // posting (the "early data" the one-exchange connection setup allows).
    std::size_t needed = std::max<std::size_t>(2, s->cfg.credits);
    if (!streaming) needed += s->cfg.credits;  // datagrams also land here
    std::size_t have = ep_.unexpected_free_count();
    if (have < needed) {
      co_await ep_.post_unexpected(needed - have, kDgEagerLimit);
    }
  }
}

sim::Task<void> EmpSocketStack::connect(int sd, SockAddr remote) {
  const sim::Time t0 = eng_->now();
  auto s = sock(sd);
  if (s->state != Sock::State::kFresh && s->state != Sock::State::kBound) {
    throw SocketError(SockErr::kInvalid, "connect on active socket");
  }
  if (s->state == Sock::State::kFresh) {
    s->local = SockAddr{ep_.node_id(), next_ephemeral_++};
  }
  s->remote = remote;
  s->peer_node = remote.node;
  // The initiator allocates both channels (§5.1 data message exchange:
  // everything the server needs travels in the request).
  s->owns_tags = true;
  s->my_data = alloc_tags(TagRole::kLocal);
  s->my_ctrl = static_cast<emp::Tag>(s->my_data + 1);
  s->my_rend = static_cast<emp::Tag>(s->my_data + 2);
  s->remote_base = alloc_tags(TagRole::kRemote);
  s->peer_data = s->remote_base;
  s->peer_ctrl = static_cast<emp::Tag>(s->remote_base + 1);
  s->peer_rend = static_cast<emp::Tag>(s->remote_base + 2);
  s->peer_buffer_bytes = s->cfg.buffer_bytes;
  s->send_credits = s->cfg.credits;
  s->state = Sock::State::kConnecting;
  co_await post_connection_resources(s);

  ConnRequest req;
  req.client_node = s->local.node;
  req.client_port = s->local.port;
  req.data_tag = s->my_data;
  req.ctrl_tag = s->my_ctrl;
  req.rend_tag = s->my_rend;
  req.srv_data_tag = s->peer_data;
  req.srv_ctrl_tag = s->peer_ctrl;
  req.srv_rend_tag = s->peer_rend;
  req.credits = s->cfg.credits;
  req.buffer_bytes = s->cfg.buffer_bytes;
  auto h = co_await ep_.post_send(remote.node, listen_tag(remote.port),
                                  stage_ctrl(encode_conn_request(req)));
  ++ctr_.connections_initiated;
  eng_->spawn(pump(s));

  // connect() completes on the EMP-level acknowledgment of the request:
  // the ack proves a pre-posted backlog descriptor absorbed it.  A full
  // backlog leaves the request unmatched until accept() reposts a
  // descriptor (EMP retranssmits meanwhile); exhausted retries mean nobody
  // is listening.
  bool refused = false;
  try {
    co_await ep_.wait_send_acked(std::move(h));
  } catch (const emp::EmpError&) {
    refused = true;
  }
  if (refused) {
    s->refused = true;
    s->terminated = true;
    co_await cleanup(s);
    throw SocketError(SockErr::kRefused, "connection refused");
  }
  s->established = true;
  s->state = Sock::State::kConnected;
  if (tracer_.enabled()) {
    tracer_.complete(trk_, t0, eng_->now() - t0, "connect",
                     "\"sd\":" + std::to_string(sd));
  }
  activity_.notify_all();
}

sim::Task<int> EmpSocketStack::complete_accept(const SockPtr& listener,
                                               Slot& slot, SockAddr* peer) {
  // Head-of-backlog connection request (§5.1).
  auto req = decode_conn_request(slot.buffer);
  // Recycle the descriptor so the backlog depth is maintained.
  slot.handle = co_await ep_.post_recv(
      std::nullopt, listen_tag(listener->local.port), slot.buffer);
  if (!req) co_return -1;  // malformed request: drop

  auto child = std::make_shared<Sock>();
  child->cfg = listener->cfg;
  // Connection parameters are the initiator's: it pre-posted its side
  // already and sized the request accordingly.
  child->cfg.credits = req->credits;
  child->cfg.buffer_bytes = req->buffer_bytes;
  child->local = listener->local;
  child->remote = SockAddr{req->client_node, req->client_port};
  child->peer_node = req->client_node;
  child->peer_data = req->data_tag;
  child->peer_ctrl = req->ctrl_tag;
  child->peer_rend = req->rend_tag;
  child->peer_buffer_bytes = req->buffer_bytes;
  child->send_credits = req->credits;
  child->owns_tags = false;  // tags live in the initiator's space
  child->my_data = req->srv_data_tag;
  child->my_ctrl = req->srv_ctrl_tag;
  child->my_rend = req->srv_rend_tag;
  child->established = true;
  child->state = Sock::State::kConnected;
  co_await post_connection_resources(child);
  // No reply message: the initiator already completed its connect on
  // the EMP ack of the request.
  int child_sd = next_sd_++;
  child->sd = child_sd;
  socks_[child_sd] = child;
  eng_->spawn(pump(child));
  ++ctr_.connections_accepted;
  if (peer != nullptr) *peer = child->remote;
  if (tracer_.enabled()) tracer_.instant(trk_, eng_->now(), "accept");
  co_return child_sd;
}

sim::Task<int> EmpSocketStack::accept(int sd, SockAddr* peer) {
  auto listener = sock(sd);
  if (listener->state != Sock::State::kListening) {
    throw SocketError(SockErr::kInvalid, "accept on non-listening socket");
  }
  for (;;) {
    for (auto& slot : listener->conn_slots) {
      if (!ep_.test_recv(slot->handle)) continue;
      int child_sd = co_await complete_accept(listener, *slot, peer);
      if (child_sd < 0) continue;
      co_return child_sd;
    }
    co_await activity_.wait();
  }
}

sim::Task<std::size_t> EmpSocketStack::accept_many(
    int sd, std::size_t max, std::vector<int>& out,
    std::vector<os::SockAddr>* peers) {
  auto listener = sock(sd);
  if (listener->state != Sock::State::kListening) {
    throw SocketError(SockErr::kInvalid, "accept on non-listening socket");
  }
  // One pass over the pre-posted backlog descriptors, by index: the repost
  // inside complete_accept() co_awaits, and close() may clear conn_slots
  // while we are parked there.
  std::size_t n = 0;
  for (std::size_t i = 0; n < max && i < listener->conn_slots.size(); ++i) {
    if (listener->state != Sock::State::kListening) break;
    // Shared owner, not a reference into the deque: the slot stays alive
    // across complete_accept()'s suspension even if close() clears
    // conn_slots meanwhile.
    auto slot = listener->conn_slots[i];
    if (!ep_.test_recv(slot->handle)) continue;
    SockAddr peer{};
    int child_sd = co_await complete_accept(listener, *slot, &peer);
    if (child_sd < 0) continue;
    out.push_back(child_sd);
    if (peers != nullptr) peers->push_back(peer);
    ++n;
  }
  co_return n;
}

sim::Task<void> EmpSocketStack::close(int sd) {
  co_await host_.cpu().use(model_.host.desc_build_ns);
  auto s = sock(sd);
  if (s->state == Sock::State::kListening) {
    for (auto& slot : s->conn_slots) {
      bool ok = co_await ep_.unpost_recv(slot->handle);
      (void)ok;  // a matched-but-unaccepted request is simply dropped
    }
    s->conn_slots.clear();
    release_arena(std::move(s->arena));
    s->state = Sock::State::kClosed;
    socks_.erase(sd);
    activity_.notify_all();
    co_return;
  }
  if (s->state != Sock::State::kConnected) {
    socks_.erase(sd);
    activity_.notify_all();
    co_return;
  }
  if (s->local_closed) co_return;
  s->local_closed = true;
  ++ctr_.closes_tx;
  // Return any credits the peer is still owed, then notify the close
  // (§5.3: "sends back a closed message to the connected node").
  co_await maybe_send_credit_ack(s, /*force=*/true);
  CtrlMsg m;
  m.type = CtrlType::kClose;
  m.a = static_cast<std::uint32_t>(s->data_msgs_sent);
  m.b = static_cast<std::uint32_t>(s->data_msgs_sent >> 32);
  co_await send_ctrl(s, m);
  activity_.notify_all();  // the pump finishes teardown when both closed
}

sim::Task<void> EmpSocketStack::set_option(int sd, os::SockOpt opt,
                                           int value) {
  co_await host_.cpu().use(model_.host.desc_build_ns);
  auto& s = sock(sd);
  // A listener's options configure the connections it will accept.
  bool configurable = s->state == Sock::State::kFresh ||
                      s->state == Sock::State::kBound ||
                      s->state == Sock::State::kListening;
  switch (opt) {
    case os::SockOpt::kCredits:
      if (!configurable) {
        throw SocketError(SockErr::kInvalid, "credits fixed after connect");
      }
      s->cfg.credits = static_cast<std::uint32_t>(std::max(value, 1));
      break;
    case os::SockOpt::kDatagram:
      if (!configurable) {
        throw SocketError(SockErr::kInvalid, "mode fixed after connect");
      }
      s->cfg.data_streaming = value == 0;
      break;
    default:
      break;  // kernel-TCP options are no-ops here
  }
}

sim::Task<int> EmpSocketStack::get_option(int sd, os::SockOpt opt) {
  co_await host_.cpu().use(model_.host.desc_build_ns);
  auto& s = sock(sd);
  switch (opt) {
    case os::SockOpt::kCredits:
      co_return static_cast<int>(s->cfg.credits);
    case os::SockOpt::kDatagram:
      co_return s->cfg.data_streaming ? 0 : 1;
    case os::SockOpt::kSndBuf:
    case os::SockOpt::kRcvBuf:
      // One value serves both directions: the connection's pre-posted
      // receive arena is the only buffering the substrate has.
      co_return static_cast<int>(s->cfg.buffer_bytes);
    case os::SockOpt::kNoDelay:
      co_return 0;  // unsupported here (see socket_api.hpp)
  }
  co_return 0;
}

// ---------------------------------------------------------------------------
// Control channel
// ---------------------------------------------------------------------------

sim::Task<void> EmpSocketStack::send_ctrl(const SockPtr& s, CtrlMsg m) {
  auto h = co_await ep_.post_send(s->peer_node, s->peer_ctrl,
                                  stage_ctrl(encode_ctrl(m)));
  (void)h;  // EMP's reliability delivers it; no need to block
}

void EmpSocketStack::apply_ctrl(const SockPtr& s, const CtrlMsg& m) {
  switch (m.type) {
    case CtrlType::kCreditAck:
      s->send_credits += m.a;
      break;
    case CtrlType::kClose:
      // The close notification carries how many data messages the peer
      // sent; EOF is surfaced only after all of them were consumed, so a
      // close can never overtake in-flight data.
      s->peer_closed = true;
      s->peer_msgs_total =
          static_cast<std::uint64_t>(m.a) |
          (static_cast<std::uint64_t>(m.b) << 32);
      break;
    case CtrlType::kRendReq:
      s->pending_rend.push_back(m);
      break;
    case CtrlType::kRendGrant:
      s->rend_granted[m.b] = true;
      break;
    case CtrlType::kConnReply:
      break;  // legacy: connections complete on the request's EMP ack
    case CtrlType::kConnRefuse:
      s->refused = true;
      break;
  }
  activity_.notify_all();
}

sim::Task<void> EmpSocketStack::drain_ctrl(const SockPtr& s, bool& progress) {
  // The pump and a blocked read()/write() may both try to drain; the
  // guard keeps exactly one drainer across suspension points.
  if (s->ctrl_drain_busy) co_return;
  s->ctrl_drain_busy = true;
  struct Release {
    bool* flag;
    ~Release() { *flag = false; }
  } release{&s->ctrl_drain_busy};
  if (s->cfg.unexpected_queue_acks) {
    // §6.4: control messages sit on the EMP unexpected queue; claim them
    // from the library without ever posting descriptors for them.
    std::vector<std::uint8_t> buf(64);
    for (;;) {
      auto r = co_await ep_.try_claim_unexpected(s->peer_node, s->my_ctrl,
                                                 buf);
      if (!r) break;
      if (auto m = decode_ctrl(std::span(buf).first(r->bytes))) {
        apply_ctrl(s, *m);
      }
      progress = true;
    }
    co_return;
  }
  // Pre-posted control descriptors: consume completed ones and repost.
  bool any = true;
  while (any && !s->ctrl_slots.empty()) {
    any = false;
    // The rotation below (push_back + pop_front) moves the deque element
    // while this coroutine is suspended in the awaits; the Slot object
    // itself is heap-stable, so hold the pointee, never a reference to
    // the deque slot.
    Slot* slot = s->ctrl_slots.front().get();
    if (ep_.test_recv(slot->handle)) {
      auto result = co_await ep_.wait_recv(slot->handle);
      if (auto m = decode_ctrl(
              std::span<const std::uint8_t>(slot->buffer)
                  .first(result.bytes))) {
        apply_ctrl(s, *m);
      }
      slot->handle =
          co_await ep_.post_recv(s->peer_node, s->my_ctrl, slot->buffer);
      s->ctrl_slots.push_back(std::move(s->ctrl_slots.front()));
      s->ctrl_slots.pop_front();
      progress = true;
      any = true;
    }
  }
}

bool EmpSocketStack::parse_arrived_data_headers(const SockPtr& s) {
  bool progress = false;
  for (auto& slot : s->data_slots) {
    if (slot->parsed || !ep_.test_recv(slot->handle)) continue;
    slot->msg_bytes = slot->handle->result.bytes;
    slot->offset = 0;
    slot->parsed = true;
    progress = true;
    if (slot->msg_bytes >= kDataHeaderBytes) {
      // Slice-delivered messages keep their bytes in the handle's parts;
      // gather the 4 header bytes instead of reading the (empty) slot
      // buffer.
      std::uint8_t hdr[kDataHeaderBytes];
      const std::uint8_t* hp = slot->buffer.data();
      if (slot->handle->sliced_delivery()) {
        slot->handle->copy_out(0, std::span<std::uint8_t>(hdr));
        hp = hdr;
      }
      DataHeader h = decode_data_header(hp);
      if (h.piggyback_credits > 0) {
        s->send_credits += h.piggyback_credits;  // §6.1 piggy-backed return
      }
    }
  }
  if (progress) activity_.notify_all();
  return progress;
}

sim::Task<void> EmpSocketStack::pump(SockPtr s) {
  while (!s->terminated) {
    bool progress = parse_arrived_data_headers(s);
    co_await drain_ctrl(s, progress);
    if (s->local_closed && s->peer_closed) {
      co_await cleanup(s);
      break;
    }
    if (!progress) co_await activity_.wait();
  }
}

sim::Task<void> EmpSocketStack::cleanup(const SockPtr& s) {
  if (s->terminated && s->my_data == 0) co_return;
  s->terminated = true;
  // §5.3: EMP has no garbage collection — every descriptor must be used or
  // explicitly unposted, or the NIC leaks resources.
  for (auto& slot : s->data_slots) {
    if (!ep_.test_recv(slot->handle)) {
      bool ok = co_await ep_.unpost_recv(slot->handle);
      (void)ok;
    }
  }
  s->data_slots.clear();
  for (auto& slot : s->ctrl_slots) {
    if (!ep_.test_recv(slot->handle)) {
      bool ok = co_await ep_.unpost_recv(slot->handle);
      (void)ok;
    }
  }
  s->ctrl_slots.clear();
  // Drain messages that already reached the unexpected queue so they do
  // not linger in the pool after the tags are retired.
  if (s->cfg.unexpected_queue_acks && s->my_ctrl != 0) {
    std::vector<std::uint8_t> buf(kDgEagerLimit);
    for (;;) {
      auto r = co_await ep_.try_claim_unexpected(s->peer_node, s->my_ctrl,
                                                 buf);
      if (!r) break;
    }
    for (;;) {
      auto r = co_await ep_.try_claim_unexpected(s->peer_node, s->my_data,
                                                 buf);
      if (!r) break;
    }
  }
  release_arena(std::move(s->arena));
  release_arena(std::move(s->send_staging));
  release_arena(std::move(s->dg_staging));
  if (s->owns_tags && s->my_data != 0) {
    free_tags(s->my_data);
    free_tags(s->remote_base);
    s->my_data = 0;
  }
  s->state = Sock::State::kClosed;
  socks_.erase(s->sd);
  activity_.notify_all();
}

sim::Task<void> EmpSocketStack::maybe_send_credit_ack(const SockPtr& s,
                                                      bool force) {
  std::uint32_t threshold = force ? 1 : s->cfg.ack_every();
  if (s->consumed_unacked >= threshold && !s->peer_closed) {
    CtrlMsg m;
    m.type = CtrlType::kCreditAck;
    m.a = s->consumed_unacked;
    s->consumed_unacked = 0;
    ++ctr_.credit_acks_tx;
    co_await send_ctrl(s, m);
  }
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

bool EmpSocketStack::front_data_ready(const Sock& s) const {
  return !s.data_slots.empty() && ep_.test_recv(s.data_slots.front()->handle);
}

sim::Task<void> EmpSocketStack::repost_slot(const SockPtr& s, Slot& slot) {
  slot.parsed = false;
  slot.offset = 0;
  slot.msg_bytes = 0;
  slot.handle = co_await ep_.post_recv(s->peer_node, s->my_data, slot.buffer,
                                       /*want_slices=*/true);
}

sim::Task<std::size_t> EmpSocketStack::read(int sd,
                                            std::span<std::uint8_t> out) {
  const sim::Time t0 = eng_->now();
  std::size_t n = co_await read_impl(sd, out, nullptr);
  if (tracer_.enabled()) {
    tracer_.complete(trk_, t0, eng_->now() - t0, "read",
                     "\"sd\":" + std::to_string(sd) +
                         ",\"bytes\":" + std::to_string(n));
  }
  co_return n;
}

sim::Task<std::size_t> EmpSocketStack::read_view(int sd, os::RecvView& view,
                                                 std::size_t max_bytes) {
  const sim::Time t0 = eng_->now();
  view.reset();
  // The scratch span doubles as the destination for every path that cannot
  // lend its buffers (legacy mode, datagrams, rendezvous); the sliced
  // streaming path fills `view.parts` instead and never touches it.
  note_recv_scratch(os::ensure_recv_scratch(view, max_bytes));
  std::size_t n = co_await read_impl(
      sd, std::span<std::uint8_t>(view.scratch.data(), max_bytes), &view);
  if (n > 0 && view.parts.empty()) {
    view.parts.emplace_back(view.scratch.data(), n);
  }
  if (tracer_.enabled()) {
    tracer_.complete(trk_, t0, eng_->now() - t0, "read_view",
                     "\"sd\":" + std::to_string(sd) +
                         ",\"bytes\":" + std::to_string(n));
  }
  co_return n;
}

sim::Task<std::size_t> EmpSocketStack::read_impl(int sd,
                                                 std::span<std::uint8_t> out,
                                                 os::RecvView* view) {
  auto s = sock(sd);
  if (s->state != Sock::State::kConnected) {
    throw SocketError(SockErr::kInvalid, "read on non-connected socket");
  }
  co_await comm_thread_penalty(s);
  if (s->cfg.flow != FlowControl::kRendezvous && !s->cfg.data_streaming) {
    co_return co_await dg_read(s, out);
  }
  for (;;) {
    (void)parse_arrived_data_headers(s);
    bool drain_progress = false;
    co_await drain_ctrl(s, drain_progress);

    bool rendezvous_mode = s->cfg.flow == FlowControl::kRendezvous;
    if (!rendezvous_mode && front_data_ready(*s)) {
      Slot& slot = *s->data_slots.front();
      if (!slot.parsed) {
        (void)parse_arrived_data_headers(s);
      }
      std::uint32_t payload =
          slot.msg_bytes >= kDataHeaderBytes
              ? slot.msg_bytes - static_cast<std::uint32_t>(kDataHeaderBytes)
              : 0;
      std::size_t n = std::min<std::size_t>(out.size(), payload - slot.offset);
      if (n > 0) {
        // The data-streaming copy (§6.2): temporary buffer -> user buffer.
        // Both A/B modes charge the same simulated copy cost; what differs
        // is the host work.  In view mode with slice delivery the bytes are
        // lent to the caller and no copy happens at all; otherwise
        // copy_out gathers from wherever the message landed.
        co_await host_.copy(n);
        const emp::RecvHandle& rh = slot.handle;
        if (view != nullptr && rh->sliced_delivery()) {
          append_view_parts(*view, *rh, kDataHeaderBytes + slot.offset, n);
        } else {
          rh->copy_out(kDataHeaderBytes + slot.offset, out.first(n));
          *bytes_copied_ += n;
        }
        slot.offset += static_cast<std::uint32_t>(n);
      }
      bool consumed = slot.offset >= payload;
      if (!s->cfg.data_streaming && !consumed) {
        // Datagram semantics: the unread tail of this message is lost.
        ++ctr_.truncated_datagrams;
        consumed = true;
      }
      if (consumed) {
        auto finished = std::move(s->data_slots.front());
        s->data_slots.pop_front();
        co_await repost_slot(s, *finished);
        s->data_slots.push_back(std::move(finished));
        ++s->consumed_unacked;
        ++s->data_msgs_consumed;
        co_await maybe_send_credit_ack(s, /*force=*/false);
      }
      co_return n;
    }
    if (!s->pending_rend.empty()) {
      co_return co_await rendezvous_read(s, out);
    }
    if (s->peer_closed && s->data_msgs_consumed >= s->peer_msgs_total) {
      co_return 0;  // orderly EOF: every sent message was consumed
    }
    if (s->local_closed) {
      throw SocketError(SockErr::kInvalid, "read after close");
    }
    co_await activity_.wait();
  }
}

sim::Task<std::size_t> EmpSocketStack::write(
    int sd, std::span<const std::uint8_t> in) {
  const sim::Time t0 = eng_->now();
  std::size_t n = co_await write_impl(sd, in);
  if (tracer_.enabled()) {
    tracer_.complete(trk_, t0, eng_->now() - t0, "write",
                     "\"sd\":" + std::to_string(sd) +
                         ",\"bytes\":" + std::to_string(n));
  }
  co_return n;
}

sim::Task<std::size_t> EmpSocketStack::write_impl(
    int sd, std::span<const std::uint8_t> in) {
  auto s = sock(sd);
  if (s->state != Sock::State::kConnected || s->local_closed) {
    throw SocketError(SockErr::kInvalid, "write on non-connected socket");
  }
  if (s->peer_closed) {
    throw SocketError(SockErr::kClosed, "peer has closed the connection");
  }
  if (in.empty()) co_return 0;
  co_await comm_thread_penalty(s);

  if (s->cfg.flow == FlowControl::kRendezvous) {
    co_return co_await rendezvous_write(s, in);
  }
  if (!s->cfg.data_streaming) {
    // Datagram mode: small messages go eagerly (they can land on the
    // unexpected queue if the reader is late); large ones rendezvous so
    // the DMA goes straight to the user buffer (§6.2).
    if (in.size() > kDgEagerLimit) {
      co_return co_await rendezvous_write(s, in);
    }
    co_return co_await dg_eager_write(s, in);
  }
  co_return co_await eager_write(s, in);
}

sim::Task<void> EmpSocketStack::acquire_credit(const SockPtr& s) {
  const sim::Time t0 = eng_->now();
  while (s->send_credits == 0) {
    if (s->peer_closed) {
      throw SocketError(SockErr::kClosed, "peer closed while awaiting credit");
    }
    bool progress = parse_arrived_data_headers(s);
    co_await drain_ctrl(s, progress);
    if (s->send_credits > 0) break;
    if (!progress) co_await activity_.wait();
  }
  --s->send_credits;
  // Time write() spent blocked on the §6.1 credit window; ~0 when the
  // reader keeps up.
  ctr_.credit_stall_ns.observe(eng_->now() - t0);
}

sim::Task<std::size_t> EmpSocketStack::eager_write(
    const SockPtr& s, std::span<const std::uint8_t> in) {
  // One credit buys one message of up to the peer's temporary-buffer size.
  co_await acquire_credit(s);

  std::size_t n = std::min<std::size_t>(in.size(), s->peer_buffer_bytes);
  const std::size_t slot_bytes = s->cfg.buffer_bytes + kDataHeaderBytes;
  std::span<std::uint8_t> msg =
      std::span(s->send_staging)
          .subspan(s->staging_next * slot_bytes, kDataHeaderBytes + n);
  s->staging_next = (s->staging_next + 1) % s->cfg.credits;
  DataHeader h;
  if (s->cfg.piggyback_acks && s->consumed_unacked > 0) {
    h.piggyback_credits =
        static_cast<std::uint16_t>(std::min<std::uint32_t>(
            s->consumed_unacked, 0xffff));
    ctr_.credits_piggybacked += h.piggyback_credits;
    s->consumed_unacked -= h.piggyback_credits;
  }

  ++ctr_.eager_messages_tx;
  ++s->data_msgs_sent;
  if (net::SlicePool::slicing_enabled()) {
    // Zero-copy send: header and user payload are gathered straight into
    // one pinned slice by post_send_sg — the staging ring is bypassed, but
    // its slot address is still what the translation cache is charged for,
    // so pin timing is identical to the legacy copy-through-staging path.
    std::uint8_t hdr[kDataHeaderBytes];
    encode_data_header(h, hdr);
    co_await host_.copy(n);
    auto handle = co_await ep_.post_send_sg(
        s->peer_node, s->peer_data,
        std::span<const std::uint8_t>(hdr, kDataHeaderBytes), in.first(n),
        msg.data());
    (void)handle;
    co_return n;
  }
  encode_data_header(h, msg.data());
  std::memcpy(msg.data() + kDataHeaderBytes, in.data(), n);
  *bytes_copied_ += n;
  // Building the message in the (pre-registered) send staging area is a
  // user-space copy.
  co_await host_.copy(n);

  // write() returns once the send is posted: the data already lives in a
  // registered staging slot that stays untouched until the credit that
  // paid for it comes back.
  auto handle = co_await ep_.post_send(s->peer_node, s->peer_data, msg);
  (void)handle;
  co_return n;
}

sim::Task<std::size_t> EmpSocketStack::dg_eager_write(
    const SockPtr& s, std::span<const std::uint8_t> in) {
  // Datagram eager path: no header, no staging — EMP DMAs straight out of
  // the user buffer (zero copy at the sender, §6.2).
  co_await acquire_credit(s);
  ++ctr_.eager_messages_tx;
  ++s->data_msgs_sent;
  auto handle = co_await ep_.post_send(s->peer_node, s->peer_data, in);
  co_await ep_.wait_send_local(handle);
  co_return in.size();
}

sim::Task<std::size_t> EmpSocketStack::rendezvous_write(
    const SockPtr& s, std::span<const std::uint8_t> in) {
  std::uint32_t id = s->next_rend_id++;
  CtrlMsg req;
  req.type = CtrlType::kRendReq;
  req.a = static_cast<std::uint32_t>(in.size());
  req.b = id;
  co_await send_ctrl(s, req);

  // Block until the receiver posts the descriptor and grants (§5.2): the
  // synchronization that both costs latency and risks deadlock (Figure 7).
  for (;;) {
    bool progress = false;
    co_await drain_ctrl(s, progress);
    if (s->rend_granted.count(id)) break;
    if (s->peer_closed) {
      throw SocketError(SockErr::kClosed, "peer closed during rendezvous");
    }
    if (!progress) co_await activity_.wait();
  }
  s->rend_granted.erase(id);

  ++ctr_.rendezvous_messages_tx;
  ++s->data_msgs_sent;
  // Zero copy: EMP DMAs straight out of the (pinned) user buffer.
  auto handle = co_await ep_.post_send(s->peer_node, s->peer_rend, in);
  co_await ep_.wait_send_local(handle);
  co_return in.size();
}

sim::Task<std::size_t> EmpSocketStack::dg_read(const SockPtr& s,
                                               std::span<std::uint8_t> out) {
  // Datagram receive (§6.2): message-boundary semantics and no temporary-
  // buffer copy on the fast path — when the read is pending before the
  // message arrives, the descriptor points straight at the user buffer.
  for (;;) {
    bool progress = false;
    co_await drain_ctrl(s, progress);

    // Oldest first: a datagram already waiting on the unexpected queue.
    auto claimed = co_await ep_.try_claim_unexpected(s->peer_node, s->my_data,
                                                     s->dg_staging);
    if (claimed) {
      std::size_t n = std::min<std::size_t>(out.size(), claimed->bytes);
      co_await host_.copy(n);
      std::memcpy(out.data(), s->dg_staging.data(), n);
      *bytes_copied_ += n;
      if (n < claimed->bytes) ++ctr_.truncated_datagrams;
      ++s->consumed_unacked;
      ++s->data_msgs_consumed;
      co_await maybe_send_credit_ack(s, /*force=*/false);
      co_return n;
    }
    if (!s->pending_rend.empty()) {
      co_return co_await rendezvous_read(s, out);
    }
    if (s->peer_closed && s->data_msgs_consumed >= s->peer_msgs_total) {
      co_return 0;  // orderly EOF
    }
    if (s->local_closed) {
      throw SocketError(SockErr::kInvalid, "read after close");
    }

    // Nothing waiting: post a descriptor for the next datagram.  If the
    // user buffer can hold any eager datagram, DMA goes straight into it.
    bool direct = out.size() >= kDgEagerLimit;
    std::span<std::uint8_t> target =
        direct ? out : std::span<std::uint8_t>(s->dg_staging);
    auto h = co_await ep_.post_recv(s->peer_node, s->my_data, target);
    bool matched = true;
    while (!ep_.test_recv(h)) {
      bool unpost_and_retry = false;
      if (!s->pending_rend.empty()) unpost_and_retry = true;
      if (s->peer_closed && s->data_msgs_consumed >= s->peer_msgs_total) {
        unpost_and_retry = true;
      }
      if (unpost_and_retry) {
        bool removed = co_await ep_.unpost_recv(h);
        if (removed) {
          matched = false;
          break;  // re-run the outer loop (rendezvous or EOF)
        }
        continue;  // raced with a match; consume it
      }
      bool p2 = false;
      co_await drain_ctrl(s, p2);
      if (ep_.test_recv(h)) break;
      if (!p2) co_await activity_.wait();
    }
    if (!matched) continue;
    auto result = co_await ep_.wait_recv(h);
    std::size_t n = std::min<std::size_t>(out.size(), result.bytes);
    if (!direct) {
      co_await host_.copy(n);
      std::memcpy(out.data(), s->dg_staging.data(), n);
      *bytes_copied_ += n;
    }
    if (n < result.bytes) ++ctr_.truncated_datagrams;
    ++s->consumed_unacked;
    ++s->data_msgs_consumed;
    co_await maybe_send_credit_ack(s, /*force=*/false);
    co_return n;
  }
}

sim::Task<std::size_t> EmpSocketStack::rendezvous_read(
    const SockPtr& s, std::span<std::uint8_t> out) {
  CtrlMsg req = s->pending_rend.front();
  s->pending_rend.pop_front();
  std::uint32_t bytes = req.a;

  CtrlMsg grant;
  grant.type = CtrlType::kRendGrant;
  grant.b = req.b;

  if (out.size() >= bytes) {
    // Zero copy: DMA directly into the user buffer.
    auto handle =
        co_await ep_.post_recv(s->peer_node, s->my_rend, out.first(bytes));
    co_await send_ctrl(s, grant);
    auto result = co_await ep_.wait_recv(handle);
    ++s->data_msgs_consumed;
    co_return result.bytes;
  }
  // User buffer too small: land in a pooled arena and truncate (datagram
  // semantics).  The arena — not a fresh vector — keeps the address the
  // EMP translation cache sees stable across connections.
  auto tmp = get_arena(bytes);
  auto handle = co_await ep_.post_recv(s->peer_node, s->my_rend, tmp);
  co_await send_ctrl(s, grant);
  auto result = co_await ep_.wait_recv(handle);
  std::size_t n = std::min<std::size_t>(out.size(), result.bytes);
  co_await host_.copy(n);
  std::memcpy(out.data(), tmp.data(), n);
  *bytes_copied_ += n;
  release_arena(std::move(tmp));
  ++ctr_.truncated_datagrams;
  ++s->data_msgs_consumed;
  co_return n;
}

bool EmpSocketStack::readable(int sd) const {
  const SockPtr* sp = find_sock(sd);
  if (sp == nullptr) return false;
  const Sock& s = **sp;
  if (s.state == Sock::State::kListening) {
    for (const auto& slot : s.conn_slots) {
      if (ep_.test_recv(slot->handle)) return true;
    }
    return false;
  }
  if (s.state != Sock::State::kConnected) return false;
  if (!s.cfg.data_streaming &&
      ep_.has_unexpected_ready(s.peer_node, s.my_data)) {
    return true;  // a datagram is waiting on the unexpected queue
  }
  return front_data_ready(s) || !s.pending_rend.empty() || s.peer_closed;
}

bool EmpSocketStack::writable(int sd) const {
  const SockPtr* sp = find_sock(sd);
  if (sp == nullptr) return false;
  const Sock& s = **sp;
  if (s.state != Sock::State::kConnected || s.local_closed || s.peer_closed) {
    // write() throws immediately (kInvalid / kClosed): ready in the
    // select() sense so the caller collects the error from the call.
    return true;
  }
  if (s.cfg.flow == FlowControl::kRendezvous) {
    // Rendezvous writes are not credit-gated; the handshake itself may
    // still park transiently, which ring drivers tolerate.
    return true;
  }
  return s.send_credits > 0;
}

}  // namespace ulsocks::sockets
