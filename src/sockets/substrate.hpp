// The EMP substrate: user-level sockets over EMP (the paper's contribution).
//
// Implements os::SocketApi entirely in user space on top of emp::EmpEndpoint:
//   - connection management by data message exchange (§5.1): listen() posts
//     `backlog` wildcard-source descriptors on a per-port tag; connect()
//     sends an explicit request carrying the client's address and channel
//     parameters; accept() completes the head-of-backlog descriptor and
//     replies;
//   - unexpected arrivals by eager-with-flow-control or rendezvous (§5.2),
//     with credit-based flow control (§6.1): N credits backed by 2N
//     pre-posted descriptors with temporary buffers;
//   - data streaming (extra copy through the temporary buffer) or datagram
//     mode (§6.2), where large writes switch to zero-copy rendezvous;
//   - delayed acknowledgments (§6.3), piggy-backed credit returns (§6.1),
//     and acknowledgments on the EMP unexpected queue (§6.4);
//   - resource management (§5.3): an active-socket table; close() sends an
//     explicit close message and unposts every descriptor (EMP has no
//     garbage collection), returning tags to a free list.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/registry.hpp"
#include "emp/endpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "oskernel/host.hpp"
#include "oskernel/socket_api.hpp"
#include "sockets/config.hpp"
#include "sockets/control.hpp"

namespace ulsocks::sockets {

/// Typed view over the "h<N>/sockets/*" registry counters (obs/metrics.hpp).
/// The registry is the canonical store; stats() materializes this struct so
/// existing call sites keep compiling unchanged.
struct SubstrateStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_initiated = 0;
  std::uint64_t eager_messages_tx = 0;
  std::uint64_t rendezvous_messages_tx = 0;
  std::uint64_t credit_acks_tx = 0;
  std::uint64_t credits_piggybacked = 0;
  std::uint64_t truncated_datagrams = 0;
  std::uint64_t closes_tx = 0;
};

class EmpSocketStack final : public os::SocketApi {
 public:
  EmpSocketStack(sim::Engine& eng, const sim::CostModel& model,
                 os::Host& host, emp::EmpEndpoint& ep,
                 SubstrateConfig default_config = {});

  /// Live shard migration: retarget wakeups and spawns at the new engine,
  /// move the invariant checker, and point the engine-wide copy tallies at
  /// the new engine's registry (summed across shards in reports).  The
  /// host and EMP endpoint are rebound by their owners.  Barrier-only.
  void rebind(sim::Engine& eng) {
    eng_ = &eng;
    activity_.rebind(eng);
    bytes_copied_ = &eng.metrics().counter("host/bytes_copied");
    recv_scratch_hwm_ = &eng.metrics().gauge("host/recv_scratch_hwm");
    inv_check_.move_to(eng.checks());
  }

  // SocketApi.
  sim::Task<int> socket() override;
  sim::Task<void> bind(int sd, os::SockAddr local) override;
  sim::Task<void> listen(int sd, int backlog) override;
  sim::Task<int> accept(int sd, os::SockAddr* peer) override;
  sim::Task<void> connect(int sd, os::SockAddr remote) override;
  sim::Task<std::size_t> read(int sd, std::span<std::uint8_t> out) override;
  sim::Task<std::size_t> write(int sd,
                               std::span<const std::uint8_t> in) override;
  /// Zero-copy receive: in sliced mode the view lends the NIC-delivered
  /// payload slices to the caller (no host copy at all); otherwise it
  /// degrades to one copy through `view.scratch`, exactly like read().
  sim::Task<std::size_t> read_view(int sd, os::RecvView& view,
                                   std::size_t max_bytes) override;
  sim::Task<void> close(int sd) override;
  sim::Task<void> set_option(int sd, os::SockOpt opt, int value) override;
  sim::Task<int> get_option(int sd, os::SockOpt opt) override;
  [[nodiscard]] bool readable(int sd) const override;
  [[nodiscard]] bool writable(int sd) const override;
  [[nodiscard]] sim::CondVar& activity() override { return activity_; }
  /// One pass over the listener's pre-posted connection descriptors (§5.4):
  /// every slot with a request already decoded completes in this call, so a
  /// ring doorbell drains the whole backlog without re-probing per accept.
  sim::Task<std::size_t> accept_many(
      int sd, std::size_t max, std::vector<int>& out,
      std::vector<os::SockAddr>* peers = nullptr) override;

  /// Materialize the typed stats view from the registry counters.
  [[nodiscard]] SubstrateStats stats() const noexcept;
  /// Active-socket-table size (§5.3); sockets leave the table only when
  /// both sides have closed and every descriptor has been reclaimed.
  [[nodiscard]] std::size_t active_socket_count() const {
    return socks_.size();
  }
  [[nodiscard]] emp::EmpEndpoint& endpoint() noexcept { return ep_; }

  /// Cross-layer invariants (§6.1 credit conservation, descriptor-count
  /// bounds, close accounting).  Registered with the engine's checker
  /// registry at construction; throws check::InvariantError on violation.
  void check_invariants() const;

 private:
  /// One pre-posted receive descriptor plus its temporary buffer (a view
  /// into the connection's arena: the arena is pinned once, so reposting a
  /// slot hits the translation cache instead of re-pinning).
  struct Slot {
    std::span<std::uint8_t> buffer;
    emp::RecvHandle handle;
    std::uint32_t msg_bytes = 0;   // valid once parsed
    std::uint32_t offset = 0;      // payload bytes already consumed
    bool parsed = false;           // header seen (credits applied)
  };

  struct Sock {
    enum class State : std::uint8_t {
      kFresh,
      kBound,
      kListening,
      kConnecting,
      kConnected,
      kClosed,
    };
    State state = State::kFresh;
    SubstrateConfig cfg;
    os::SockAddr local{};
    os::SockAddr remote{};

    // Listener state.
    int backlog = 0;
    // shared_ptr: an acceptor parked inside complete_accept() keeps its
    // slot alive even if close() clears the deque while it is suspended.
    std::deque<std::shared_ptr<Slot>> conn_slots;

    // Connection state.
    std::vector<std::uint8_t> arena;  // backing store for every slot buffer
    std::vector<std::uint8_t> send_staging;  // ring of per-credit slots
    std::uint32_t staging_next = 0;          // next ring slot to use
    std::vector<std::uint8_t> dg_staging;    // datagram claim/truncate path
    emp::NodeId peer_node = 0;
    emp::Tag my_data = 0, my_ctrl = 0, my_rend = 0;
    emp::Tag peer_data = 0, peer_ctrl = 0, peer_rend = 0;
    std::uint32_t peer_buffer_bytes = 0;
    std::uint32_t send_credits = 0;
    std::uint32_t consumed_unacked = 0;
    std::uint32_t next_rend_id = 1;
    std::deque<std::unique_ptr<Slot>> data_slots;  // FIFO arrival order
    std::deque<std::unique_ptr<Slot>> ctrl_slots;  // empty in UQ mode
    std::deque<CtrlMsg> pending_rend;              // rendezvous requests
    std::unordered_map<std::uint32_t, bool> rend_granted;
    std::uint64_t data_msgs_sent = 0;      // eager + rendezvous messages
    std::uint64_t data_msgs_consumed = 0;  // fully read (or truncated)
    std::uint64_t peer_msgs_total = 0;     // carried by the Close message
    bool ctrl_drain_busy = false;  // re-entrancy guard across co_awaits
    bool owns_tags = false;  // this side allocated the connection's tags
    emp::Tag remote_base = 0;  // the peer-side triple we allocated (if any)
    bool established = false;
    bool refused = false;
    bool peer_closed = false;
    bool local_closed = false;
    bool terminated = false;  // pump exited, resources reclaimed
    int sd = -1;
  };
  using SockPtr = std::shared_ptr<Sock>;

  SockPtr& sock(int sd);
  [[nodiscard]] const SockPtr* find_sock(int sd) const;

  /// Complete the connection request sitting in `slot`: repost the
  /// descriptor, build the child socket, post its resources.  Returns the
  /// child sd, or -1 for a malformed (dropped) request.  Shared by
  /// accept() and accept_many().
  sim::Task<int> complete_accept(const SockPtr& listener, Slot& slot,
                                 os::SockAddr* peer);

  [[nodiscard]] static emp::Tag listen_tag(std::uint16_t port) {
    return static_cast<emp::Tag>(0x8000u | port);
  }
  /// Tag triples (base = data, base+1 = ctrl, base+2 = rendezvous).  Local
  /// triples name this stack's receive channels for connections it
  /// initiates; remote triples are handed to the accepting side.  The two
  /// ranges are disjoint so a server's own outbound allocations can never
  /// collide with tags a client assigned to it.
  enum class TagRole : std::uint8_t { kLocal, kRemote };
  emp::Tag alloc_tags(TagRole role);
  void free_tags(emp::Tag base);

  /// Charge the communication-thread synchronization penalty when the
  /// kCommThread alternative is selected (ablation).
  [[nodiscard]] sim::Task<void> comm_thread_penalty(const SockPtr& s);

  // read()/write() bodies; the public entry points wrap them in a timeline
  // span without touching every co_return site.  `view` is non-null on the
  // read_view() path, where `out` is the caller's scratch span: the two
  // entry points share every await so the A/B digest cannot diverge.
  [[nodiscard]] sim::Task<std::size_t> read_impl(int sd,
                                                 std::span<std::uint8_t> out,
                                                 os::RecvView* view);
  [[nodiscard]] sim::Task<std::size_t> write_impl(
      int sd, std::span<const std::uint8_t> in);

  // Connection plumbing.
  [[nodiscard]] sim::Task<void> post_connection_resources(const SockPtr& s);
  [[nodiscard]] sim::Task<void> send_ctrl(const SockPtr& s, CtrlMsg m);
  [[nodiscard]] sim::Task<void> drain_ctrl(const SockPtr& s, bool& progress);
  [[nodiscard]] sim::Task<void> pump(SockPtr s);
  void apply_ctrl(const SockPtr& s, const CtrlMsg& m);
  bool parse_arrived_data_headers(const SockPtr& s);
  [[nodiscard]] sim::Task<void> cleanup(const SockPtr& s);
  [[nodiscard]] sim::Task<void> maybe_send_credit_ack(const SockPtr& s,
                                                      bool force);
  [[nodiscard]] sim::Task<std::size_t> eager_write(
      const SockPtr& s, std::span<const std::uint8_t> in);
  [[nodiscard]] sim::Task<std::size_t> dg_eager_write(
      const SockPtr& s, std::span<const std::uint8_t> in);
  [[nodiscard]] sim::Task<std::size_t> dg_read(const SockPtr& s,
                                               std::span<std::uint8_t> out);
  [[nodiscard]] sim::Task<void> acquire_credit(const SockPtr& s);
  [[nodiscard]] sim::Task<std::size_t> rendezvous_write(
      const SockPtr& s, std::span<const std::uint8_t> in);
  [[nodiscard]] sim::Task<std::size_t> rendezvous_read(
      const SockPtr& s, std::span<std::uint8_t> out);
  [[nodiscard]] sim::Task<void> repost_slot(const SockPtr& s, Slot& slot);

  [[nodiscard]] bool front_data_ready(const Sock& s) const;

  /// Registry-backed counter/histogram handles under "h<N>/sockets/".
  struct Instruments {
    obs::Counter& connections_accepted;
    obs::Counter& connections_initiated;
    obs::Counter& eager_messages_tx;
    obs::Counter& rendezvous_messages_tx;
    obs::Counter& credit_acks_tx;
    obs::Counter& credits_piggybacked;
    obs::Counter& truncated_datagrams;
    obs::Counter& closes_tx;
    obs::Histogram& credit_stall_ns;  // write() blocked waiting for credits
    explicit Instruments(obs::Scope scope);
  };

  sim::Engine* eng_;
  sim::CostModel model_;
  os::Host& host_;
  emp::EmpEndpoint& ep_;
  SubstrateConfig default_cfg_;
  sim::CondVar activity_;
  Instruments ctr_;
  obs::Counter* bytes_copied_;  // engine-wide "host/bytes_copied"
  obs::Gauge* recv_scratch_hwm_;  // engine-wide "host/recv_scratch_hwm"
  obs::Tracer& tracer_;
  std::uint32_t trk_;  // ("h<N>", "sockets") timeline track

  int next_sd_ = 1;
  std::uint16_t next_ephemeral_ = 40'000;
  std::map<int, SockPtr> socks_;  // the active socket table (§5.3)
  std::deque<emp::Tag> free_local_bases_;
  std::deque<emp::Tag> free_remote_bases_;
  emp::Tag next_local_base_ = 16;       // [16, 0x4000)
  emp::Tag next_remote_base_ = 0x4000;  // [0x4000, 0x8000)

  // Registered-buffer pool: arenas are recycled across connections so that
  // only the first connection of a given geometry pays the pin syscall —
  // later posts hit the EMP translation cache.  Without this, per-
  // connection registration would dominate the web-server experiment.
  [[nodiscard]] std::vector<std::uint8_t> get_arena(std::size_t bytes);
  void release_arena(std::vector<std::uint8_t> arena);
  std::map<std::size_t, std::vector<std::vector<std::uint8_t>>> arena_pool_;

  // Control-message staging: every transient encode (ctrl messages,
  // connection requests) is copied here before post_send so the EMP
  // translation cache only ever sees this one stable address — never a
  // short-lived heap block whose address depends on host allocator reuse.
  // post_send captures the payload synchronously, so one buffer is enough.
  // Pre-reserved so it never reallocates (the address must stay put).
  std::vector<std::uint8_t> ctrl_staging_;
  [[nodiscard]] std::span<const std::uint8_t> stage_ctrl(
      std::vector<std::uint8_t> encoded);

  // SocketApi hook: fold scratch sizes into the engine-global
  // "host/recv_scratch_hwm" high-water gauge.
  void note_recv_scratch(std::size_t bytes) override {
    if (static_cast<std::int64_t>(bytes) > recv_scratch_hwm_->value()) {
      recv_scratch_hwm_->set(static_cast<std::int64_t>(bytes));
    }
  }

  // Last member: deregisters before the state it inspects is torn down.
  check::ScopedChecker inv_check_;
};

}  // namespace ulsocks::sockets
