// OpRing implementation.
//
// Lives in the sockets library (not oskernel) because the ring's whole
// point is the substrate mapping: accept SQEs drain the listener's
// pre-posted connection descriptors through accept_many() in one pass, and
// readiness probes inspect the credit/descriptor state the substrate
// already keeps per §5.4.  The same code drives the kernel TCP stack
// unchanged through the identical SocketApi virtuals — that is the
// ring-vs-blocking and substrate-vs-TCP ablation surface.
//
// Scheduling discipline (the determinism argument, DESIGN.md §13):
//   * submit() and every host-side decision below run inside the caller's
//     current engine event and cost zero simulated time and zero scheduler
//     events.
//   * Drivers are started inline via the resume trampoline
//     (sim::detail::resume_chain), in submission-sequence order, and only
//     when the readiness probe says the stack call will not park — so the
//     stack's activity() condition variable holds at most ONE ring waiter
//     (the pump), never one per operation.
//   * CQEs are appended as operations complete and sorted by
//     (completion_time, seq) at reap; seq is the submission order, so ties
//     at one timestamp are resolved identically no matter how completions
//     interleaved.

#include "oskernel/ring.hpp"

#include <algorithm>
#include <utility>

namespace ulsocks::os {

OpRing::OpRing(sim::Engine& eng, SocketApi& stack)
    : eng_(eng),
      stack_(stack),
      cqe_cv_(eng),
      batch_size_(eng.metrics().histogram("ring/batch_size")),
      reap_wait_ns_(eng.metrics().histogram("ring/reap_wait_ns")),
      sqe_inflight_(eng.metrics().gauge("ring/sqe_inflight")) {}

// --- Submission-side helpers ----------------------------------------------

void OpRing::push(Sqe sqe) {
  auto op = std::make_unique<Op>();
  op->sqe = sqe;
  op->seq = next_seq_++;
  staged_.push_back(std::move(op));
}

void OpRing::push_accept(int sd, std::uint64_t user_data) {
  Sqe s;
  s.op = OpKind::kAccept;
  s.sd = sd;
  s.user_data = user_data;
  push(s);
}

void OpRing::push_read(int sd, std::span<std::uint8_t> buf,
                       std::uint64_t user_data) {
  Sqe s;
  s.op = OpKind::kRead;
  s.sd = sd;
  s.user_data = user_data;
  s.read_buf = buf;
  push(s);
}

void OpRing::push_read_view(int sd, RecvView& view, std::size_t max_bytes,
                            std::uint64_t user_data) {
  Sqe s;
  s.op = OpKind::kReadView;
  s.sd = sd;
  s.user_data = user_data;
  s.view = &view;
  s.max_bytes = max_bytes;
  push(s);
}

void OpRing::push_write(int sd, std::span<const std::uint8_t> buf,
                        std::uint64_t user_data) {
  Sqe s;
  s.op = OpKind::kWrite;
  s.sd = sd;
  s.user_data = user_data;
  s.write_buf = buf;
  push(s);
}

void OpRing::push_close(int sd, std::uint64_t user_data) {
  Sqe s;
  s.op = OpKind::kClose;
  s.sd = sd;
  s.user_data = user_data;
  push(s);
}

// --- Doorbell -------------------------------------------------------------

void OpRing::submit() {
  if (fatal_) std::rethrow_exception(fatal_);
  if (staged_.empty()) return;
  batch_size_.observe(staged_.size());

  // Move the batch into the pending map (staged_ is already in seq order)
  // and remember which closes it carried.
  std::vector<std::pair<int, std::uint64_t>> closes;  // (sd, seq)
  for (auto& op : staged_) {
    if (op->sqe.op == OpKind::kClose) closes.emplace_back(op->sqe.sd, op->seq);
    std::uint64_t seq = op->seq;
    pending_.emplace(seq, std::move(op));
  }
  staged_.clear();
  if (static_cast<std::int64_t>(pending_.size()) > sqe_inflight_.value()) {
    sqe_inflight_.set(static_cast<std::int64_t>(pending_.size()));
  }

  // A close SQE cancels every not-yet-started SQE on the same descriptor
  // (io_uring's -ECANCELED on ring teardown, scoped per fd): they complete
  // with failed/kClosed at the doorbell timestamp, before the close runs.
  for (const auto& [sd, seq] : closes) cancel_unstarted(sd, seq);

  start_ready();
  ensure_pump();
  prune_drivers();
}

bool OpRing::has_unstarted() const noexcept {
  for (const auto& [seq, op] : pending_) {
    if (!op->started) return true;
  }
  return false;
}

void OpRing::start_ready() {
  // Snapshot the unstarted seqs: drivers started below may erase pending_
  // entries (inline completion) before the scan finishes.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(pending_.size());
  for (const auto& [seq, op] : pending_) {
    if (!op->started) seqs.push_back(seq);
  }
  for (std::uint64_t seq : seqs) {
    auto it = pending_.find(seq);
    if (it == pending_.end() || it->second->started) continue;
    Op* op = it->second.get();
    switch (op->sqe.op) {
      case OpKind::kAccept: {
        if (!stack_.readable(op->sqe.sd)) continue;
        // Group every unstarted accept on this listener (op is the
        // earliest: the scan runs in seq order) into one accept_many pass
        // over the pre-posted connection descriptors.
        std::vector<Op*> group;
        for (std::uint64_t s2 : seqs) {
          if (s2 < seq) continue;
          auto it2 = pending_.find(s2);
          if (it2 == pending_.end() || it2->second->started) continue;
          Op* o2 = it2->second.get();
          if (o2->sqe.op != OpKind::kAccept || o2->sqe.sd != op->sqe.sd) {
            continue;
          }
          o2->started = true;
          group.push_back(o2);
        }
        int sd = op->sqe.sd;
        drivers_.push_back(drive_accepts(sd, std::move(group)));
        sim::detail::resume_chain(drivers_.back().handle());
        break;
      }
      case OpKind::kRead:
      case OpKind::kReadView:
        if (!stack_.readable(op->sqe.sd)) continue;
        start_op(op);
        break;
      case OpKind::kWrite:
        if (!stack_.writable(op->sqe.sd)) continue;
        start_op(op);
        break;
      case OpKind::kClose:
        // close() never waits for readiness; it is the wake-up that
        // resolves everything else parked on this descriptor.
        start_op(op);
        break;
    }
  }
}

void OpRing::start_op(Op* op) {
  op->started = true;
  drivers_.push_back(drive(op));
  sim::detail::resume_chain(drivers_.back().handle());
}

void OpRing::ensure_pump() {
  if (pump_running_ || !has_unstarted()) return;
  pump_task_ = pump();  // any previous pump frame is done; safe to replace
  pump_running_ = true;
  sim::detail::resume_chain(pump_task_.handle());
}

void OpRing::prune_drivers() {
  if (drivers_.size() < 64) return;
  std::erase_if(drivers_, [](const sim::Task<void>& t) { return t.done(); });
}

// --- Completion-side helpers ----------------------------------------------

void OpRing::finish(Op* op, std::int64_t result, SockAddr peer) {
  Cqe c;
  c.user_data = op->sqe.user_data;
  c.op = op->sqe.op;
  c.sd = op->sqe.sd;
  c.result = result;
  c.completion_time = eng_.now();
  c.seq = op->seq;
  c.peer = peer;
  pending_.erase(op->seq);  // destroys *op
  ready_.push_back(c);
  cqe_cv_.notify_all();
}

void OpRing::fail(Op* op, SockErr error) {
  Cqe c;
  c.user_data = op->sqe.user_data;
  c.op = op->sqe.op;
  c.sd = op->sqe.sd;
  c.result = -1;
  c.error = error;
  c.failed = true;
  c.completion_time = eng_.now();
  c.seq = op->seq;
  pending_.erase(op->seq);  // destroys *op
  ready_.push_back(c);
  cqe_cv_.notify_all();
}

void OpRing::cancel_unstarted(int sd, std::uint64_t except_seq) {
  std::vector<Op*> victims;
  for (const auto& [seq, op] : pending_) {
    if (seq == except_seq || op->started) continue;
    if (op->sqe.sd != sd || op->sqe.op == OpKind::kClose) continue;
    victims.push_back(op.get());
  }
  for (Op* op : victims) fail(op, SockErr::kClosed);
}

// --- Drivers --------------------------------------------------------------

sim::Task<void> OpRing::drive(Op* op) {
  // Cache what the post-completion path needs: finish()/fail() destroy *op.
  const OpKind kind = op->sqe.op;
  const int sd = op->sqe.sd;
  try {
    switch (kind) {
      case OpKind::kRead: {
        std::size_t n = co_await stack_.read(sd, op->sqe.read_buf);
        finish(op, static_cast<std::int64_t>(n));
        break;
      }
      case OpKind::kReadView: {
        std::size_t n =
            co_await stack_.read_view(sd, *op->sqe.view, op->sqe.max_bytes);
        finish(op, static_cast<std::int64_t>(n));
        break;
      }
      case OpKind::kWrite: {
        std::size_t n = co_await stack_.write(sd, op->sqe.write_buf);
        finish(op, static_cast<std::int64_t>(n));
        break;
      }
      case OpKind::kClose: {
        co_await stack_.close(sd);
        finish(op, 0);
        // Post-close sweep: SQEs that reverted to unstarted while the
        // close ran (e.g. an accept batch cut short) can never become
        // ready now; cancel them rather than leaving them parked forever.
        cancel_unstarted(sd, ~std::uint64_t{0});
        break;
      }
      case OpKind::kAccept:
        // Accepts always go through drive_accepts().
        fail(op, SockErr::kInvalid);
        break;
    }
  } catch (const SocketError& e) {
    fail(op, e.code());
  } catch (...) {
    // Invariant violations and other non-socket errors must not vanish
    // into a detached frame: surface them at the next submit()/reap().
    fatal_ = std::current_exception();
    fail(op, SockErr::kInvalid);
  }
}

sim::Task<void> OpRing::drive_accepts(int sd, std::vector<Op*> ops) {
  std::vector<int> fds;
  std::vector<SockAddr> peers;
  try {
    co_await stack_.accept_many(sd, ops.size(), fds, &peers);
  } catch (const SocketError& e) {
    for (Op* op : ops) fail(op, e.code());
    co_return;
  } catch (...) {
    fatal_ = std::current_exception();
    for (Op* op : ops) fail(op, SockErr::kInvalid);
    co_return;
  }
  // Completed accepts map to SQEs in submission order; the rest revert to
  // pending-unstarted and wait for the next readiness round (or for a
  // close to cancel them).
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i < fds.size()) {
      finish(ops[i], fds[i], i < peers.size() ? peers[i] : SockAddr{});
    } else {
      ops[i]->started = false;
    }
  }
  if (fds.size() < ops.size()) ensure_pump();
}

sim::Task<void> OpRing::pump() {
  // The ring's only standing waiter on the stack: one scheduler event per
  // stack state change, independent of how many SQEs are outstanding.
  // Scan BEFORE the first park: readiness may have arrived while no pump
  // was listening (e.g. while an accept batch was in flight and its
  // leftovers had not yet reverted), and that notification is gone.
  while (!fatal_) {
    start_ready();
    if (!has_unstarted()) break;
    co_await stack_.activity().wait();
  }
  pump_running_ = false;
}

// --- Reap -----------------------------------------------------------------

sim::Task<std::vector<Cqe>> OpRing::reap(std::size_t min, std::size_t max) {
  if (fatal_) std::rethrow_exception(fatal_);
  min = std::min(min, max);
  const sim::Time t0 = eng_.now();
  while (ready_.size() < min && !pending_.empty()) {
    co_await cqe_cv_.wait();
    if (fatal_) std::rethrow_exception(fatal_);
  }
  reap_wait_ns_.observe(eng_.now() - t0);
  std::sort(ready_.begin(), ready_.end(), [](const Cqe& a, const Cqe& b) {
    if (a.completion_time != b.completion_time) {
      return a.completion_time < b.completion_time;
    }
    return a.seq < b.seq;
  });
  std::size_t n = std::min(max, ready_.size());
  std::vector<Cqe> out(ready_.begin(),
                       ready_.begin() + static_cast<std::ptrdiff_t>(n));
  ready_.erase(ready_.begin(), ready_.begin() + static_cast<std::ptrdiff_t>(n));
  co_return out;
}

}  // namespace ulsocks::os
