#include "apps/matmul.hpp"

#include <cstring>
#include <map>

#include "oskernel/socket_api.hpp"

namespace ulsocks::apps {

namespace {

using os::SockAddr;
using sim::Task;

struct JobHeader {
  std::uint32_t n = 0;
  std::uint32_t row_start = 0;
  std::uint32_t row_count = 0;
};
constexpr std::size_t kJobHeaderBytes = 12;

void encode_header(const JobHeader& h, std::uint8_t* out) {
  std::memcpy(out, &h.n, 4);
  std::memcpy(out + 4, &h.row_start, 4);
  std::memcpy(out + 8, &h.row_count, 4);
}

JobHeader decode_header(const std::uint8_t* in) {
  JobHeader h;
  std::memcpy(&h.n, in, 4);
  std::memcpy(&h.row_start, in + 4, 4);
  std::memcpy(&h.row_count, in + 8, 4);
  return h;
}

std::span<const std::uint8_t> as_bytes(const double* p, std::size_t count) {
  return {reinterpret_cast<const std::uint8_t*>(p), count * sizeof(double)};
}

std::span<std::uint8_t> as_writable_bytes(double* p, std::size_t count) {
  return {reinterpret_cast<std::uint8_t*>(p), count * sizeof(double)};
}

}  // namespace

Matrix make_matrix(std::size_t n, std::uint32_t seed) {
  Matrix m(n * n);
  std::uint32_t x = seed * 2654435761u + 1;
  for (auto& v : m) {
    x = x * 1664525u + 1013904223u;
    v = static_cast<double>(x % 1000) / 100.0 - 5.0;
  }
  return m;
}

Matrix multiply_reference(const Matrix& a, const Matrix& b, std::size_t n) {
  Matrix c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      double aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += aik * b[k * n + j];
      }
    }
  }
  return c;
}

sim::Task<void> matmul_worker(os::Process& proc, os::SocketApi& stack,
                              std::uint16_t port) {
  int ls = co_await proc.socket(stack);
  co_await proc.bind(ls, SockAddr{0, port});
  co_await proc.listen(ls, 1);
  int fd = co_await proc.accept(ls);

  std::uint8_t hdr[kJobHeaderBytes];
  co_await proc.read_exact(fd, hdr);
  JobHeader job = decode_header(hdr);
  std::size_t n = job.n;

  Matrix b(n * n);
  co_await proc.read_exact(fd, as_writable_bytes(b.data(), b.size()));
  Matrix a_rows(static_cast<std::size_t>(job.row_count) * n);
  co_await proc.read_exact(fd,
                           as_writable_bytes(a_rows.data(), a_rows.size()));

  // The kernel: 2*rows*n*n flops, charged to the host CPU.
  Matrix c_rows(static_cast<std::size_t>(job.row_count) * n, 0.0);
  for (std::size_t i = 0; i < job.row_count; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      double aik = a_rows[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        c_rows[i * n + j] += aik * b[k * n + j];
      }
    }
  }
  double flops = 2.0 * static_cast<double>(job.row_count) *
                 static_cast<double>(n) * static_cast<double>(n);
  co_await proc.host().compute(static_cast<sim::Duration>(
      flops * 1e3 / proc.host().model().host.flops_per_us));

  co_await proc.write_all(fd, hdr);  // echo the block coordinates
  co_await proc.write_all(fd, as_bytes(c_rows.data(), c_rows.size()));
  co_await proc.close(fd);
  co_await proc.close(ls);
}

sim::Task<MatmulResult> matmul_master(os::Process& proc, os::SocketApi& stack,
                                      const Matrix& a, const Matrix& b,
                                      std::size_t n,
                                      std::vector<std::uint16_t> workers,
                                      std::uint16_t port) {
  // Re-read the host's engine at each clock read instead of caching it:
  // live shard rebalancing can rehome the host mid-run.
  sim::Time t0 = proc.host().engine().now();

  // Connect to every worker and ship its job.
  std::size_t w = workers.size();
  std::vector<int> fds(w);
  std::map<int, JobHeader> jobs;
  std::size_t rows_each = (n + w - 1) / w;
  for (std::size_t i = 0; i < w; ++i) {
    fds[i] = co_await proc.socket(stack);
    co_await proc.connect(fds[i], SockAddr{workers[i], port});
    JobHeader job;
    job.n = static_cast<std::uint32_t>(n);
    job.row_start = static_cast<std::uint32_t>(i * rows_each);
    job.row_count = static_cast<std::uint32_t>(
        std::min(rows_each, n - std::min(n, i * rows_each)));
    std::uint8_t hdr[kJobHeaderBytes];
    encode_header(job, hdr);
    co_await proc.write_all(fds[i], hdr);
    co_await proc.write_all(fds[i], as_bytes(b.data(), b.size()));
    co_await proc.write_all(
        fds[i], as_bytes(a.data() + job.row_start * n,
                         static_cast<std::size_t>(job.row_count) * n));
    jobs[fds[i]] = job;
  }

  // Gather with select(): whichever worker finishes first is read first.
  MatmulResult result;
  result.c.assign(n * n, 0.0);
  std::vector<int> outstanding = fds;
  while (!outstanding.empty()) {
    std::vector<int> ready = co_await proc.select(outstanding);
    for (int fd : ready) {
      std::uint8_t hdr[kJobHeaderBytes];
      co_await proc.read_exact(fd, hdr);
      JobHeader job = decode_header(hdr);
      co_await proc.read_exact(
          fd, as_writable_bytes(result.c.data() + job.row_start * n,
                                static_cast<std::size_t>(job.row_count) * n));
      co_await proc.close(fd);
      std::erase(outstanding, fd);
    }
  }
  result.elapsed = proc.host().engine().now() - t0;
  co_return result;
}

}  // namespace ulsocks::apps
