// Cluster: the paper's testbed in one object.
//
// N hosts, each with one CPU, a RAM-disk filesystem, one Tigon2-style NIC on
// a gigabit link into one switch, and both protocol stacks loaded: the
// kernel TCP baseline and EMP + the sockets-over-EMP substrate.  Tests,
// benches and examples build one of these and pick a stack per application
// — the application code itself is stack-agnostic.
#pragma once

#include <memory>
#include <vector>

#include "emp/endpoint.hpp"
#include "net/topology.hpp"
#include "nic/nic_device.hpp"
#include "oskernel/host.hpp"
#include "oskernel/process.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sockets/substrate.hpp"
#include "tcp/tcp_stack.hpp"

namespace ulsocks::apps {

class Cluster {
 public:
  struct Node {
    Node(sim::Engine& eng, const sim::CostModel& model, std::uint16_t id,
         net::Link& link, const sockets::SubstrateConfig& cfg,
         const tcp::TcpTunables& tcp_tun, bool dual_cpu_nic)
        : host(eng, model, id),
          nic(eng, model, link, net::StarNetwork::kHostSide,
              net::MacAddress::for_host(id), dual_cpu_nic),
          emp(eng, model, nic, host.cpu(), id,
              [](emp::NodeId n) {
                return net::MacAddress::for_host(
                    static_cast<std::uint32_t>(n));
              }),
          tcp(eng, model, host, nic,
              [](std::uint16_t n) { return net::MacAddress::for_host(n); },
              tcp_tun),
          socks(eng, model, host, emp, cfg) {}

    os::Host host;
    nic::NicDevice nic;
    emp::EmpEndpoint emp;
    tcp::TcpStack tcp;
    sockets::EmpSocketStack socks;
  };

  Cluster(sim::Engine& eng, const sim::CostModel& model,
          std::size_t node_count, sockets::SubstrateConfig cfg = {},
          tcp::TcpTunables tcp_tun = {}, bool dual_cpu_nic = true)
      : eng_(eng), model_(model), net_(eng, model.wire, node_count) {
    nodes_.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      nodes_.push_back(std::make_unique<Node>(
          eng, model, static_cast<std::uint16_t>(i), net_.host_link(i), cfg,
          tcp_tun, dual_cpu_nic));
    }
  }

  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] net::StarNetwork& network() { return net_; }
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] const sim::CostModel& model() const { return model_; }

  /// The stack an application should use for a given run.
  enum class StackKind { kTcp, kSubstrate };
  [[nodiscard]] os::SocketApi& stack(std::size_t node_idx, StackKind kind) {
    Node& n = node(node_idx);
    if (kind == StackKind::kTcp) return n.tcp;
    return n.socks;
  }

 private:
  sim::Engine& eng_;
  sim::CostModel model_;
  net::StarNetwork net_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace ulsocks::apps
