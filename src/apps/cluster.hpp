// Cluster: the paper's testbed in one object.
//
// N hosts, each with one CPU, a RAM-disk filesystem, one Tigon2-style NIC on
// a gigabit link into one switch, and both protocol stacks loaded: the
// kernel TCP baseline and EMP + the sockets-over-EMP substrate.  Tests,
// benches and examples build one of these and pick a stack per application
// — the application code itself is stack-agnostic.
#pragma once

#include <memory>
#include <vector>

#include "check/invariant.hpp"
#include "emp/endpoint.hpp"
#include "net/topology.hpp"
#include "nic/nic_device.hpp"
#include "oskernel/host.hpp"
#include "oskernel/process.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"
#include "sockets/substrate.hpp"
#include "tcp/tcp_stack.hpp"

namespace ulsocks::apps {

class Cluster {
 public:
  struct Node {
    Node(sim::Engine& eng, const sim::CostModel& model, std::uint16_t id,
         net::Link& link, const sockets::SubstrateConfig& cfg,
         const tcp::TcpTunables& tcp_tun, bool dual_cpu_nic)
        : host(eng, model, id),
          nic(eng, model, link, net::StarNetwork::kHostSide,
              net::MacAddress::for_host(id), dual_cpu_nic),
          emp(eng, model, nic, host.cpu(), id,
              [](emp::NodeId n) {
                return net::MacAddress::for_host(
                    static_cast<std::uint32_t>(n));
              }),
          tcp(eng, model, host, nic,
              [](std::uint16_t n) { return net::MacAddress::for_host(n); },
              tcp_tun),
          socks(eng, model, host, emp, cfg) {}

    os::Host host;
    nic::NicDevice nic;
    emp::EmpEndpoint emp;
    tcp::TcpStack tcp;
    sockets::EmpSocketStack socks;
  };

  /// `per_host_propagation` (when non-empty) gives host i's cable a
  /// propagation delay of per_host_propagation[i % size()] ns instead of
  /// the model's uniform wire — see net::StarNetwork.
  Cluster(sim::Engine& eng, const sim::CostModel& model,
          std::size_t node_count, sockets::SubstrateConfig cfg = {},
          tcp::TcpTunables tcp_tun = {}, bool dual_cpu_nic = true,
          std::vector<sim::Duration> per_host_propagation = {})
      : eng_(eng), model_(model),
        net_(eng, model.wire, node_count, std::move(per_host_propagation)) {
    nodes_.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      nodes_.push_back(std::make_unique<Node>(
          eng, model, static_cast<std::uint16_t>(i), net_.host_link(i), cfg,
          tcp_tun, dual_cpu_nic));
      net_.host_link(i).set_domain(net::StarNetwork::kHostSide,
                                   domain_of_node(i));
    }
  }

  /// Sharded testbed: the switch fabric runs on shard 0 and node i runs on
  /// shard `shard_of_node(i, group.size())`.  Per-shard protocol checkers
  /// keep sweeping on their own engines; a group-level checker asserts
  /// cross-shard frame conservation at epoch barriers.  With a one-shard
  /// group this is byte-identical to the serial constructor above.
  Cluster(sim::ShardGroup& group, const sim::CostModel& model,
          std::size_t node_count, sockets::SubstrateConfig cfg = {},
          tcp::TcpTunables tcp_tun = {}, bool dual_cpu_nic = true,
          std::vector<sim::Duration> per_host_propagation = {})
      : eng_(group.shard(0)), model_(model),
        net_(group, model.wire, node_count, std::move(per_host_propagation)) {
    nodes_.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      const std::size_t shard = shard_of_node(i, group.size());
      nodes_.push_back(std::make_unique<Node>(
          group.shard(shard), model, static_cast<std::uint16_t>(i),
          net_.host_link(i), cfg, tcp_tun, dual_cpu_nic));
      net_.host_link(i).set_domain(net::StarNetwork::kHostSide,
                                   domain_of_node(i));
      // A host sharing shard 0 with the switch receives local frames by
      // reference out of the fabric's pools; moving it to another thread
      // afterwards would race those pools.  Such hosts stay put.
      group.define_domain(domain_of_node(i),
                          static_cast<std::uint32_t>(shard), shard != 0);
    }
    // Rehome a host's bundle when the group applies a migration.  Captures
    // `this`: the cluster must outlive every group.run(), the same
    // lifetime contract the conservation checker below already imposes.
    group.set_domain_migrator(
        [this, &group](sim::DomainId d, std::uint32_t, std::uint32_t to) {
          Node& n = node(d - 1);
          sim::Engine& dst = group.shard(to);
          net_.host_link(d - 1).rehome(net::StarNetwork::kHostSide, dst);
          n.host.rebind(dst);
          n.nic.rebind(dst);
          n.emp.rebind(dst);
          n.tcp.rebind(dst);
          n.socks.rebind(dst);
        });
    group.set_edge_refresher([this] {
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        net_.host_link(i).reregister_lookahead();
      }
    });
    // Frames the switch pushed toward host i either arrived at its NIC
    // (counted received or filtered) or are still in flight — never more
    // arrivals than the link carried.  The two sides of the inequality
    // live on different shards, so this can only be read at a barrier.
    group.checks().add("net.cross_shard_frame_conservation", [this] {
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const net::Link& l = net_.host_link(i);
        const std::uint64_t carried =
            l.frames_sent(net::Link::Side::kB) -
            l.frames_dropped(net::Link::Side::kB);
        const std::uint64_t arrived =
            nodes_[i]->nic.frames_rx() + nodes_[i]->nic.frames_filtered();
        ULSOCKS_INVARIANT(
            arrived <= carried,
            check::msgf("host %zu NIC saw %llu frames but its link only "
                        "carried %llu",
                        i, static_cast<unsigned long long>(arrived),
                        static_cast<unsigned long long>(carried)));
      }
    });
  }

  /// Host-to-shard placement of the sharded constructor: the switch owns
  /// shard 0, so node i goes to shard (i + 1) % shards — node 0 (the
  /// server in the web workloads) never shares a core with the fabric.
  [[nodiscard]] static std::size_t shard_of_node(std::size_t node,
                                                std::size_t shards) {
    return shards <= 1 ? 0 : (node + 1) % shards;
  }

  /// Simulation domain of node i (sim::kAmbientDomain = 0 is the fabric,
  /// so hosts are numbered from 1).
  [[nodiscard]] static sim::DomainId domain_of_node(std::size_t node) {
    return static_cast<sim::DomainId>(node + 1);
  }

  /// The engine node i's host stack runs on (eng_ in the serial case).
  /// Reads through the NIC, so after a live migration it names the node's
  /// *current* engine — but do not cache it across group.run() calls, and
  /// use spawn_on() (not node_engine(i).spawn) to start workloads.
  [[nodiscard]] sim::Engine& node_engine(std::size_t i) {
    return node(i).nic.engine();
  }

  /// Spawn `task` on node i's engine, inside node i's domain: every event
  /// the workload schedules inherits the domain tag, which is what makes
  /// the whole workload migrate with its host.  A bare
  /// `node_engine(i).spawn(...)` would tag the root ambient and anchor it
  /// forever to its birth shard.
  void spawn_on(std::size_t i, sim::Task<void> task) {
    sim::Engine& eng = node_engine(i);
    sim::Engine::DomainScope scope(eng, domain_of_node(i));
    eng.spawn(std::move(task));
  }

  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] net::StarNetwork& network() { return net_; }
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] const sim::CostModel& model() const { return model_; }

  /// The stack an application should use for a given run.
  enum class StackKind { kTcp, kSubstrate };
  [[nodiscard]] os::SocketApi& stack(std::size_t node_idx, StackKind kind) {
    Node& n = node(node_idx);
    if (kind == StackKind::kTcp) return n.tcp;
    return n.socks;
  }

 private:
  sim::Engine& eng_;
  sim::CostModel model_;
  net::StarNetwork net_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace ulsocks::apps
