#include "apps/kvstore.hpp"

#include <cstring>

#include "oskernel/socket_api.hpp"

namespace ulsocks::apps {

namespace {

using os::SockAddr;
using sim::Task;

constexpr std::size_t kReqHeader = 7;
constexpr std::size_t kRespHeader = 5;

void put16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put32(std::uint8_t* p, std::uint32_t v) {
  put16(p, static_cast<std::uint16_t>(v));
  put16(p + 2, static_cast<std::uint16_t>(v >> 16));
}
std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}
std::uint32_t get32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(get16(p)) |
         (static_cast<std::uint32_t>(get16(p + 2)) << 16);
}

Task<void> serve_connection(os::Process& proc, int fd,
                            std::unordered_map<std::string,
                                               std::vector<std::uint8_t>>& db,
                            const KvServerOptions& options) {
  std::vector<std::uint8_t> header(kReqHeader);
  std::vector<std::uint8_t> key_buf;
  std::vector<std::uint8_t> val_buf;
  std::vector<std::uint8_t> response;
  for (;;) {
    try {
      co_await proc.read_exact(fd, header);
    } catch (const os::SocketError&) {
      break;  // orderly end of the connection
    }
    auto op = static_cast<KvOp>(header[0]);
    std::uint16_t keylen = get16(header.data() + 1);
    std::uint32_t vallen = get32(header.data() + 3);
    key_buf.resize(keylen);
    if (keylen > 0) co_await proc.read_exact(fd, key_buf);
    val_buf.resize(vallen);
    if (vallen > 0) co_await proc.read_exact(fd, val_buf);
    std::string key(key_buf.begin(), key_buf.end());

    // Server-side work: hashing + slab bookkeeping.
    co_await proc.host().compute(options.op_cost_ns);

    KvStatus status = KvStatus::kOk;
    const std::vector<std::uint8_t>* reply_val = nullptr;
    switch (op) {
      case KvOp::kSet:
        db[key] = std::move(val_buf);
        val_buf = {};
        break;
      case KvOp::kGet: {
        auto it = db.find(key);
        if (it == db.end()) {
          status = KvStatus::kNotFound;
        } else {
          reply_val = &it->second;
        }
        break;
      }
      case KvOp::kDel:
        status = db.erase(key) ? KvStatus::kOk : KvStatus::kNotFound;
        break;
      default:
        status = KvStatus::kError;
    }

    std::uint32_t out_len =
        reply_val ? static_cast<std::uint32_t>(reply_val->size()) : 0;
    response.resize(kRespHeader + out_len);
    response[0] = static_cast<std::uint8_t>(status);
    put32(response.data() + 1, out_len);
    if (reply_val != nullptr) {
      std::memcpy(response.data() + kRespHeader, reply_val->data(), out_len);
    }
    co_await proc.write_all(fd, response);
  }
  co_await proc.close(fd);
}

}  // namespace

sim::Task<void> kv_server(os::Process& proc, os::SocketApi& stack,
                          KvServerOptions options) {
  std::unordered_map<std::string, std::vector<std::uint8_t>> db;
  int ls = co_await proc.socket(stack);
  co_await proc.bind(ls, SockAddr{0, options.port});
  co_await proc.listen(ls, 8);
  std::size_t served = 0;
  while (options.max_connections == 0 || served < options.max_connections) {
    int fd = co_await proc.accept(ls);
    co_await serve_connection(proc, fd, db, options);
    ++served;
  }
  co_await proc.close(ls);
}

sim::Task<void> KvClient::connect() {
  fd_ = co_await proc_.socket(stack_);
  co_await proc_.connect(fd_, SockAddr{server_, port_});
}

sim::Task<void> KvClient::send_request(KvOp op, const std::string& key,
                                       std::span<const std::uint8_t> value) {
  std::vector<std::uint8_t> msg(kReqHeader + key.size() + value.size());
  msg[0] = static_cast<std::uint8_t>(op);
  put16(msg.data() + 1, static_cast<std::uint16_t>(key.size()));
  put32(msg.data() + 3, static_cast<std::uint32_t>(value.size()));
  std::memcpy(msg.data() + kReqHeader, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(msg.data() + kReqHeader + key.size(), value.data(),
                value.size());
  }
  co_await proc_.write_all(fd_, msg);
  ++requests_;
}

sim::Task<std::pair<KvStatus, std::vector<std::uint8_t>>>
KvClient::read_response() {
  std::vector<std::uint8_t> header(kRespHeader);
  co_await proc_.read_exact(fd_, header);
  auto status = static_cast<KvStatus>(header[0]);
  std::uint32_t len = get32(header.data() + 1);
  std::vector<std::uint8_t> value(len);
  if (len > 0) co_await proc_.read_exact(fd_, value);
  co_return std::make_pair(status, std::move(value));
}

sim::Task<KvStatus> KvClient::set(const std::string& key,
                                  std::span<const std::uint8_t> value) {
  co_await send_request(KvOp::kSet, key, value);
  auto [status, v] = co_await read_response();
  (void)v;
  co_return status;
}

sim::Task<std::optional<std::vector<std::uint8_t>>> KvClient::get(
    const std::string& key) {
  co_await send_request(KvOp::kGet, key, {});
  auto [status, v] = co_await read_response();
  if (status != KvStatus::kOk) co_return std::nullopt;
  co_return std::optional<std::vector<std::uint8_t>>(std::move(v));
}

sim::Task<KvStatus> KvClient::del(const std::string& key) {
  co_await send_request(KvOp::kDel, key, {});
  auto [status, v] = co_await read_response();
  (void)v;
  co_return status;
}

sim::Task<void> KvClient::close() {
  co_await proc_.close(fd_);
  fd_ = -1;
}

}  // namespace ulsocks::apps
