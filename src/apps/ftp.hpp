// ftp: file transfer over the stack-neutral sockets API (§7.3).
//
// A faithful-in-shape FTP: a line-based control connection (PORT / RETR /
// STOR / QUIT with 1xx/2xx replies) plus an active-mode data connection per
// transfer.  Files live on the hosts' RAM disks, as in the paper ("we have
// RAM disks for this experiment"); every transfer therefore pays both
// socket and filesystem costs — which is what keeps ftp below the raw
// socket peak.
//
// The server and client are written against os::Process only, so the same
// code runs over kernel TCP and over the EMP substrate — including the
// paper's §5.4 requirement that generic read()/write() dispatch correctly
// between the data *socket* and the local *file*.
#pragma once

#include <cstdint>
#include <string>

#include "oskernel/process.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace ulsocks::apps {

inline constexpr std::uint16_t kFtpControlPort = 21;

struct FtpServerOptions {
  std::uint16_t control_port = kFtpControlPort;
  /// Serve this many sessions, then stop (0 = forever).
  std::size_t max_sessions = 0;
  std::size_t chunk_bytes = 65'536;
};

/// Run an ftp server on `proc` using `stack`.  Serves sessions until
/// max_sessions (if nonzero) have completed.
[[nodiscard]] sim::Task<void> ftp_server(os::Process& proc,
                                         os::SocketApi& stack,
                                         FtpServerOptions options = {});

struct FtpTransfer {
  std::uint64_t bytes = 0;
  sim::Duration elapsed = 0;
  [[nodiscard]] double mbps() const {
    return elapsed ? static_cast<double>(bytes) * 8.0 /
                         (static_cast<double>(elapsed) / 1e9) / 1e6
                   : 0.0;
  }
};

class FtpClient {
 public:
  FtpClient(os::Process& proc, os::SocketApi& stack, std::uint16_t server_node,
            std::uint16_t data_port_base = 20'000)
      : proc_(proc),
        stack_(stack),
        server_node_(server_node),
        next_data_port_(data_port_base) {}

  /// Open the control connection (and log in, morally).
  [[nodiscard]] sim::Task<void> connect(
      std::uint16_t control_port = kFtpControlPort);

  /// RETR: fetch `remote_path` into `local_path` on this host's RAM disk.
  [[nodiscard]] sim::Task<FtpTransfer> get(std::string remote_path,
                                           std::string local_path);

  /// STOR: upload `local_path` to `remote_path` on the server's RAM disk.
  [[nodiscard]] sim::Task<FtpTransfer> put(std::string local_path,
                                           std::string remote_path);

  [[nodiscard]] sim::Task<void> quit();

 private:
  os::Process& proc_;
  os::SocketApi& stack_;
  std::uint16_t server_node_;
  std::uint16_t next_data_port_;
  int control_fd_ = -1;
  std::string reply_pending_;  // buffered control-channel bytes
};

}  // namespace ulsocks::apps
