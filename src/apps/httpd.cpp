#include "apps/httpd.hpp"

#include <vector>

#include "oskernel/socket_api.hpp"

namespace ulsocks::apps {

namespace {

using os::SockAddr;
using sim::Task;

// 16-byte request: magic, requested response size, request ordinal, pad.
void encode_request(std::uint32_t bytes, std::uint32_t ordinal,
                    std::uint8_t* out) {
  auto put32 = [](std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
  };
  put32(out, 0x75485454u);  // "uHTT"
  put32(out + 4, bytes);
  put32(out + 8, ordinal);
  put32(out + 12, 0);
}

std::uint32_t decode_request_bytes(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[4]) |
         (static_cast<std::uint32_t>(in[5]) << 8) |
         (static_cast<std::uint32_t>(in[6]) << 16) |
         (static_cast<std::uint32_t>(in[7]) << 24);
}

}  // namespace

namespace {

/// One connection's request/response loop, run as its own simulated
/// process so concurrent clients don't queue behind each other.
Task<void> handle_connection(os::Process& proc, int cs,
                             std::uint32_t requests_per_connection,
                             std::size_t& completed) {
  std::vector<std::uint8_t> request(kHttpRequestBytes);
  std::vector<std::uint8_t> body;
  for (std::uint32_t r = 0; r < requests_per_connection; ++r) {
    bool got_request = true;
    try {
      co_await proc.read_exact(cs, request);
    } catch (const os::SocketError&) {
      got_request = false;  // client finished early
    }
    if (!got_request) break;
    std::uint32_t bytes = decode_request_bytes(request.data());
    body.assign(bytes, 0x42);
    co_await proc.write_all(cs, body);
  }
  co_await proc.close(cs);
  ++completed;
}

}  // namespace

sim::Task<void> web_server(os::Process& proc, os::SocketApi& stack,
                           WebServerOptions options) {
  int ls = co_await proc.socket(stack);
  co_await proc.bind(ls, SockAddr{0, options.port});
  co_await proc.listen(ls, 8);
  auto& eng = proc.host().engine();
  std::size_t accepted = 0;
  std::size_t completed = 0;
  while (options.max_connections == 0 ||
         accepted < options.max_connections) {
    int cs = co_await proc.accept(ls);
    ++accepted;
    // Concurrent handling: the accept loop keeps running while earlier
    // connections are still being served.
    eng.spawn(handle_connection(proc, cs, options.requests_per_connection,
                                completed));
  }
  while (completed < accepted) co_await stack.activity().wait();
  co_await proc.close(ls);
}

sim::Task<void> web_client(os::Process& proc, os::SocketApi& stack,
                           WebClientOptions options,
                           sim::OnlineStats& response_us) {
  std::vector<std::uint8_t> request(kHttpRequestBytes);
  std::vector<std::uint8_t> body(options.response_bytes);
  std::size_t issued = 0;
  auto& eng = proc.host().engine();
  while (issued < options.total_requests) {
    std::uint32_t batch = static_cast<std::uint32_t>(
        std::min<std::size_t>(options.requests_per_connection,
                              options.total_requests - issued));
    sim::Time t0 = eng.now();
    int fd = co_await proc.socket(stack);
    co_await proc.connect(fd, SockAddr{options.server_node, options.port});
    for (std::uint32_t r = 0; r < batch; ++r) {
      encode_request(options.response_bytes,
                     static_cast<std::uint32_t>(issued + r), request.data());
      co_await proc.write_all(fd, request);
      co_await proc.read_exact(fd, body);
    }
    co_await proc.close(fd);
    // Average response time: the connection's wall time spread over the
    // requests it carried (how HTTP/1.1 amortizes the handshake).
    double per_request_us =
        sim::to_us(eng.now() - t0) / static_cast<double>(batch);
    for (std::uint32_t r = 0; r < batch; ++r) response_us.add(per_request_us);
    issued += batch;
  }
}

}  // namespace ulsocks::apps
