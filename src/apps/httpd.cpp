#include "apps/httpd.hpp"

#include <map>
#include <vector>

#include "oskernel/ring.hpp"
#include "oskernel/socket_api.hpp"

namespace ulsocks::apps {

namespace {

using os::SockAddr;
using sim::Task;

// 16-byte request: magic, requested response size, request ordinal, pad.
void encode_request(std::uint32_t bytes, std::uint32_t ordinal,
                    std::uint8_t* out) {
  auto put32 = [](std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
  };
  put32(out, 0x75485454u);  // "uHTT"
  put32(out + 4, bytes);
  put32(out + 8, ordinal);
  put32(out + 12, 0);
}

std::uint32_t decode_request_bytes(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[4]) |
         (static_cast<std::uint32_t>(in[5]) << 8) |
         (static_cast<std::uint32_t>(in[6]) << 16) |
         (static_cast<std::uint32_t>(in[7]) << 24);
}

}  // namespace

namespace {

/// One connection's request/response loop, run as its own simulated
/// process so concurrent clients don't queue behind each other.
Task<void> handle_connection(os::Process& proc, int cs,
                             std::uint32_t requests_per_connection,
                             std::size_t& completed) {
  std::vector<std::uint8_t> request(kHttpRequestBytes);
  std::vector<std::uint8_t> body;
  for (std::uint32_t r = 0; r < requests_per_connection; ++r) {
    bool got_request = true;
    try {
      co_await proc.read_exact(cs, request);
    } catch (const os::SocketError&) {
      got_request = false;  // client finished early
    }
    if (!got_request) break;
    std::uint32_t bytes = decode_request_bytes(request.data());
    body.assign(bytes, 0x42);
    co_await proc.write_all(cs, body);
  }
  co_await proc.close(cs);
  ++completed;
}

}  // namespace

sim::Task<void> web_server(os::Process& proc, os::SocketApi& stack,
                           WebServerOptions options) {
  int ls = co_await proc.socket(stack);
  co_await proc.bind(ls, SockAddr{0, options.port});
  co_await proc.listen(ls, options.backlog);
  std::size_t accepted = 0;
  std::size_t completed = 0;
  while (options.max_connections == 0 ||
         accepted < options.max_connections) {
    int cs = co_await proc.accept(ls);
    ++accepted;
    // Concurrent handling: the accept loop keeps running while earlier
    // connections are still being served.  The engine is re-read per
    // accept, never cached across a co_await: live shard rebalancing can
    // rehome this host between suspensions, and a root spawned on the old
    // engine would execute on another shard without crossing a barrier.
    proc.host().engine().spawn(handle_connection(
        proc, cs, options.requests_per_connection, completed));
  }
  while (completed < accepted) co_await stack.activity().wait();
  co_await proc.close(ls);
}

namespace {

/// Per-connection state machine for the ring server.  Exactly one SQE is
/// in flight per connection at any time, so a close never races a pending
/// read/write on the same descriptor.
struct RingConn {
  int sd = -1;
  std::vector<std::uint8_t> request =
      std::vector<std::uint8_t>(kHttpRequestBytes);
  std::size_t got = 0;  // request bytes accumulated so far
  std::vector<std::uint8_t> body;
  std::size_t wrote = 0;  // response bytes already accepted by the stack
  std::uint32_t served = 0;
};

}  // namespace

sim::Task<void> web_server_ring(os::Process& proc, os::SocketApi& stack,
                                WebServerOptions options) {
  int ls = co_await stack.socket();
  co_await stack.bind(ls, SockAddr{0, options.port});
  co_await stack.listen(ls, options.backlog);
  // The ring (and therefore this server) is pinned to its birth engine:
  // os::OpRing holds an Engine& for its completion condvar and has no
  // rebind.  Ring workloads run with rebalancing off; a migratable ring
  // host would need OpRing::rebind first.
  auto& eng = proc.host().engine();

  os::OpRing ring(eng, stack);
  // user_data: 0 tags accept CQEs (and the final listener close); ids >= 1
  // name connections.
  constexpr std::uint64_t kAcceptTag = 0;
  std::map<std::uint64_t, RingConn> conns;
  std::uint64_t next_id = 1;

  const std::size_t window =
      options.max_connections == 0
          ? static_cast<std::size_t>(options.backlog)
          : std::min(static_cast<std::size_t>(options.backlog),
                     options.max_connections);
  std::size_t accepts_posted = 0;
  std::size_t completed = 0;

  auto top_up_accepts = [&] {
    while ((options.max_connections == 0 ||
            accepts_posted < options.max_connections) &&
           accepts_posted - completed - conns.size() < window) {
      ring.push_accept(ls, kAcceptTag);
      ++accepts_posted;
    }
  };

  top_up_accepts();
  ring.submit();
  while (options.max_connections == 0 ||
         completed < options.max_connections) {
    for (const os::Cqe& c : co_await ring.reap(1, options.reap_batch)) {
      if (c.op == os::OpKind::kAccept) {
        if (c.failed) continue;  // canceled at shutdown
        std::uint64_t id = next_id++;
        RingConn& conn = conns[id];
        conn.sd = static_cast<int>(c.result);
        ring.push_read(conn.sd, std::span(conn.request), id);
        top_up_accepts();
        continue;
      }
      if (c.op == os::OpKind::kClose) {
        if (c.user_data == kAcceptTag) continue;  // listener close
        conns.erase(c.user_data);
        ++completed;
        continue;
      }
      RingConn& conn = conns.at(c.user_data);
      if (c.op == os::OpKind::kRead) {
        if (c.failed || c.result == 0) {  // client finished early / EOF
          ring.push_close(conn.sd, c.user_data);
          continue;
        }
        conn.got += static_cast<std::size_t>(c.result);
        if (conn.got < kHttpRequestBytes) {  // partial request: keep reading
          ring.push_read(conn.sd,
                         std::span(conn.request).subspan(conn.got), c.user_data);
          continue;
        }
        std::uint32_t bytes = decode_request_bytes(conn.request.data());
        conn.body.assign(bytes, 0x42);
        conn.wrote = 0;
        ring.push_write(conn.sd, std::span<const std::uint8_t>(conn.body),
                        c.user_data);
        continue;
      }
      // kWrite: continue the response, next request, or close.
      if (c.failed) {
        ring.push_close(conn.sd, c.user_data);
        continue;
      }
      conn.wrote += static_cast<std::size_t>(c.result);
      if (conn.wrote < conn.body.size()) {
        ring.push_write(conn.sd,
                        std::span<const std::uint8_t>(conn.body)
                            .subspan(conn.wrote),
                        c.user_data);
      } else if (++conn.served < options.requests_per_connection) {
        conn.got = 0;
        ring.push_read(conn.sd, std::span(conn.request), c.user_data);
      } else {
        ring.push_close(conn.sd, c.user_data);
      }
    }
    ring.submit();
  }

  // Shutdown: closing the listener cancels the still-posted accept window
  // (failed/kClosed CQEs), then the close CQE itself drains.
  ring.push_close(ls, kAcceptTag);
  ring.submit();
  while (ring.inflight() > 0) {
    (void)co_await ring.reap(1, options.reap_batch);
  }
}

sim::Task<void> web_client(os::Process& proc, os::SocketApi& stack,
                           WebClientOptions options,
                           sim::OnlineStats& response_us) {
  std::vector<std::uint8_t> request(kHttpRequestBytes);
  std::vector<std::uint8_t> body(options.response_bytes);
  std::size_t issued = 0;
  while (issued < options.total_requests) {
    std::uint32_t batch = static_cast<std::uint32_t>(
        std::min<std::size_t>(options.requests_per_connection,
                              options.total_requests - issued));
    // Clock reads go through the host's *current* engine (re-read after
    // every co_await) — a cached reference goes stale when rebalancing
    // migrates this host.
    sim::Time t0 = proc.host().engine().now();
    int fd = co_await proc.socket(stack);
    co_await proc.connect(fd, SockAddr{options.server_node, options.port});
    for (std::uint32_t r = 0; r < batch; ++r) {
      encode_request(options.response_bytes,
                     static_cast<std::uint32_t>(issued + r), request.data());
      co_await proc.write_all(fd, request);
      co_await proc.read_exact(fd, body);
    }
    co_await proc.close(fd);
    // Average response time: the connection's wall time spread over the
    // requests it carried (how HTTP/1.1 amortizes the handshake).
    double per_request_us = sim::to_us(proc.host().engine().now() - t0) /
                            static_cast<double>(batch);
    for (std::uint32_t r = 0; r < batch; ++r) response_us.add(per_request_us);
    issued += batch;
  }
}

}  // namespace ulsocks::apps
