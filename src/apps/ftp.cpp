#include "apps/ftp.hpp"

#include <charconv>
#include <vector>

#include "oskernel/socket_api.hpp"

namespace ulsocks::apps {

namespace {

using os::SockAddr;
using os::SockErr;
using os::SocketError;
using sim::Task;

/// Buffered CRLF line read for the control channel.  Reading in chunks
/// (rather than byte-at-a-time) keeps the control protocol working over
/// datagram sockets too, where each read returns one whole message.
Task<std::string> read_line_buffered(os::Process& proc, int fd,
                                     std::string& pending) {
  for (;;) {
    auto nl = pending.find('\n');
    if (nl != std::string::npos) {
      std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      co_return line;
    }
    if (pending.size() > 512) {
      throw SocketError(SockErr::kInvalid, "ftp control line too long");
    }
    std::uint8_t chunk[256];
    std::size_t n = co_await proc.read(fd, chunk);
    if (n == 0) co_return std::string();  // peer closed mid-line
    pending.append(reinterpret_cast<const char*>(chunk), n);
  }
}

Task<void> write_line(os::Process& proc, int fd, std::string line) {
  line += "\r\n";
  co_await proc.write_all(
      fd, std::span(reinterpret_cast<const std::uint8_t*>(line.data()),
                    line.size()));
}

/// Parse "<word> <rest>" into the command word and argument.
std::pair<std::string, std::string> split_command(const std::string& line) {
  auto sp = line.find(' ');
  if (sp == std::string::npos) return {line, ""};
  return {line.substr(0, sp), line.substr(sp + 1)};
}

bool parse_port_arg(const std::string& arg, SockAddr* out) {
  auto sp = arg.find(' ');
  if (sp == std::string::npos) return false;
  int node = 0, port = 0;
  auto r1 = std::from_chars(arg.data(), arg.data() + sp, node);
  auto r2 =
      std::from_chars(arg.data() + sp + 1, arg.data() + arg.size(), port);
  if (r1.ec != std::errc{} || r2.ec != std::errc{}) return false;
  out->node = static_cast<std::uint16_t>(node);
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

/// Stream a RAM-disk file into a socket: the paper's §5.4 scenario of a
/// file read and a socket write through the same generic interface.
Task<std::uint64_t> send_file(os::Process& proc, int file_fd, int sock_fd,
                              std::size_t chunk_bytes) {
  std::vector<std::uint8_t> chunk(chunk_bytes);
  std::uint64_t total = 0;
  for (;;) {
    std::size_t n = co_await proc.read(file_fd, chunk);
    if (n == 0) break;
    co_await proc.write_all(
        sock_fd, std::span<const std::uint8_t>(chunk).first(n));
    total += n;
  }
  co_return total;
}

Task<std::uint64_t> receive_file(os::Process& proc, int sock_fd, int file_fd,
                                 std::size_t chunk_bytes) {
  std::vector<std::uint8_t> chunk(chunk_bytes);
  std::uint64_t total = 0;
  for (;;) {
    std::size_t n = co_await proc.read(sock_fd, chunk);
    if (n == 0) break;
    co_await proc.write(file_fd,
                        std::span<const std::uint8_t>(chunk).first(n));
    total += n;
  }
  co_return total;
}

Task<void> serve_session(os::Process& proc, os::SocketApi& stack, int ctrl,
                         const FtpServerOptions& options) {
  co_await write_line(proc, ctrl, "220 ulsocks ftp ready");
  SockAddr data_addr{};
  bool have_port = false;
  std::string pending;
  for (;;) {
    std::string line = co_await read_line_buffered(proc, ctrl, pending);
    if (line.empty()) break;  // peer went away
    auto [cmd, arg] = split_command(line);
    if (cmd == "PORT") {
      if (parse_port_arg(arg, &data_addr)) {
        have_port = true;
        co_await write_line(proc, ctrl, "200 PORT command successful");
      } else {
        co_await write_line(proc, ctrl, "501 bad PORT argument");
      }
    } else if (cmd == "RETR" || cmd == "STOR") {
      if (!have_port) {
        co_await write_line(proc, ctrl, "503 use PORT first");
        continue;
      }
      bool retr = cmd == "RETR";
      if (retr && !proc.host().fs().exists(arg)) {
        co_await write_line(proc, ctrl, "550 no such file");
        continue;
      }
      co_await write_line(proc, ctrl, "150 opening data connection");
      // Active mode: the server dials the client's data port.  Bulk-
      // transfer sockets get large buffers, as era ftp daemons configured
      // (a no-op on the substrate, which has its own credit buffers).
      int data = co_await proc.socket(stack);
      co_await proc.set_option(data, os::SockOpt::kSndBuf, 131'072);
      co_await proc.set_option(data, os::SockOpt::kRcvBuf, 131'072);
      co_await proc.connect(data, data_addr);
      if (retr) {
        int file = co_await proc.open(arg, os::OpenMode::kRead);
        co_await send_file(proc, file, data, options.chunk_bytes);
        co_await proc.close(file);
      } else {
        int file = co_await proc.open(arg, os::OpenMode::kWrite);
        co_await receive_file(proc, data, file, options.chunk_bytes);
        co_await proc.close(file);
      }
      co_await proc.close(data);
      co_await write_line(proc, ctrl, "226 transfer complete");
      have_port = false;
    } else if (cmd == "QUIT") {
      co_await write_line(proc, ctrl, "221 goodbye");
      break;
    } else {
      co_await write_line(proc, ctrl, "502 command not implemented");
    }
  }
  co_await proc.close(ctrl);
}

/// Expect a reply whose code starts with `prefix` (e.g. "226").
Task<void> expect_reply(os::Process& proc, int fd, std::string& pending,
                        const char* prefix) {
  std::string line = co_await read_line_buffered(proc, fd, pending);
  if (line.rfind(prefix, 0) != 0) {
    throw SocketError(SockErr::kInvalid,
                      "ftp: unexpected reply: " + line);
  }
}

}  // namespace

sim::Task<void> ftp_server(os::Process& proc, os::SocketApi& stack,
                           FtpServerOptions options) {
  int ls = co_await proc.socket(stack);
  co_await proc.bind(ls, SockAddr{0, options.control_port});
  co_await proc.listen(ls, 8);
  std::size_t sessions = 0;
  while (options.max_sessions == 0 || sessions < options.max_sessions) {
    int ctrl = co_await proc.accept(ls);
    // One session at a time: the paper's experiment is single-client.
    co_await serve_session(proc, stack, ctrl, options);
    ++sessions;
  }
  co_await proc.close(ls);
}

sim::Task<void> FtpClient::connect(std::uint16_t control_port) {
  control_fd_ = co_await proc_.socket(stack_);
  co_await proc_.connect(control_fd_, SockAddr{server_node_, control_port});
  co_await expect_reply(proc_, control_fd_, reply_pending_, "220");
}

sim::Task<FtpTransfer> FtpClient::get(std::string remote_path,
                                      std::string local_path) {
  sim::Time t0 = proc_.host().engine().now();
  std::uint16_t port = next_data_port_++;
  int dls = co_await proc_.socket(stack_);
  co_await proc_.bind(dls, SockAddr{0, port});
  co_await proc_.listen(dls, 1);

  std::uint16_t self = proc_.host().id();
  co_await write_line(proc_, control_fd_,
                      "PORT " + std::to_string(self) + " " +
                          std::to_string(port));
  co_await expect_reply(proc_, control_fd_, reply_pending_, "200");
  co_await write_line(proc_, control_fd_, "RETR " + remote_path);
  co_await expect_reply(proc_, control_fd_, reply_pending_, "150");

  int data = co_await proc_.accept(dls);
  co_await proc_.set_option(data, os::SockOpt::kSndBuf, 131'072);
  co_await proc_.set_option(data, os::SockOpt::kRcvBuf, 131'072);
  int file = co_await proc_.open(local_path, os::OpenMode::kWrite);
  std::uint64_t bytes = co_await receive_file(proc_, data, file, 65'536);
  co_await proc_.close(file);
  co_await proc_.close(data);
  co_await proc_.close(dls);
  co_await expect_reply(proc_, control_fd_, reply_pending_, "226");
  co_return FtpTransfer{bytes, proc_.host().engine().now() - t0};
}

sim::Task<FtpTransfer> FtpClient::put(std::string local_path,
                                      std::string remote_path) {
  sim::Time t0 = proc_.host().engine().now();
  std::uint16_t port = next_data_port_++;
  int dls = co_await proc_.socket(stack_);
  co_await proc_.bind(dls, SockAddr{0, port});
  co_await proc_.listen(dls, 1);

  std::uint16_t self = proc_.host().id();
  co_await write_line(proc_, control_fd_,
                      "PORT " + std::to_string(self) + " " +
                          std::to_string(port));
  co_await expect_reply(proc_, control_fd_, reply_pending_, "200");
  co_await write_line(proc_, control_fd_, "STOR " + remote_path);
  co_await expect_reply(proc_, control_fd_, reply_pending_, "150");

  int data = co_await proc_.accept(dls);
  co_await proc_.set_option(data, os::SockOpt::kSndBuf, 131'072);
  co_await proc_.set_option(data, os::SockOpt::kRcvBuf, 131'072);
  int file = co_await proc_.open(local_path, os::OpenMode::kRead);
  std::uint64_t bytes = co_await send_file(proc_, file, data, 65'536);
  co_await proc_.close(file);
  co_await proc_.close(data);
  co_await proc_.close(dls);
  co_await expect_reply(proc_, control_fd_, reply_pending_, "226");
  co_return FtpTransfer{bytes, proc_.host().engine().now() - t0};
}

sim::Task<void> FtpClient::quit() {
  co_await write_line(proc_, control_fd_, "QUIT");
  co_await expect_reply(proc_, control_fd_, reply_pending_, "221");
  co_await proc_.close(control_fd_);
  control_fd_ = -1;
}

}  // namespace ulsocks::apps
