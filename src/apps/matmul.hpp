// Distributed matrix multiplication (§7.5).
//
// C = A * B on a 4-node cluster: a master generates the matrices, ships B
// and a block of A's rows to each worker, then gathers result blocks with
// select() — the call the paper highlights ("to know the socket that is
// connected to any given node... we used the select() operation").
// Workers charge their host CPU for the 2*N*N*rows floating-point
// operations of a naive kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "oskernel/process.hpp"
#include "sim/task.hpp"

namespace ulsocks::apps {

inline constexpr std::uint16_t kMatmulPort = 7000;

using Matrix = std::vector<double>;  // row-major N*N

/// Deterministic test matrix.
[[nodiscard]] Matrix make_matrix(std::size_t n, std::uint32_t seed);

/// Reference single-node multiply (for correctness checks).
[[nodiscard]] Matrix multiply_reference(const Matrix& a, const Matrix& b,
                                        std::size_t n);

/// Worker: accepts one job on `port`, computes its row block, replies,
/// exits.
[[nodiscard]] sim::Task<void> matmul_worker(os::Process& proc,
                                            os::SocketApi& stack,
                                            std::uint16_t port = kMatmulPort);

struct MatmulResult {
  Matrix c;
  sim::Duration elapsed = 0;
};

/// Master: distributes A's rows over `workers` (node ids), gathers C.
/// Results arrive in whatever order workers finish; select() multiplexes.
[[nodiscard]] sim::Task<MatmulResult> matmul_master(
    os::Process& proc, os::SocketApi& stack, const Matrix& a, const Matrix& b,
    std::size_t n, std::vector<std::uint16_t> workers,
    std::uint16_t port = kMatmulPort);

}  // namespace ulsocks::apps
