// Web server experiment (§7.4).
//
// The paper's workload: clients connect, send a 16-byte request (morally a
// file name), and the server replies with S bytes.  Under HTTP/1.0 the
// connection closes after one response; under HTTP/1.1 up to eight requests
// ride one connection.  The measured quantity is the average response time
// seen by the clients.
#pragma once

#include <cstdint>

#include "oskernel/process.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace ulsocks::apps {

inline constexpr std::uint16_t kHttpPort = 80;
inline constexpr std::size_t kHttpRequestBytes = 16;

struct WebServerOptions {
  std::uint16_t port = kHttpPort;
  /// Requests served per connection: 1 = HTTP/1.0; 8 = HTTP/1.1.
  std::uint32_t requests_per_connection = 1;
  /// Total connections to serve before returning (0 = forever).
  std::size_t max_connections = 0;
  /// Listen backlog (and, for the ring server, the accept-SQE window kept
  /// pre-posted on the listener).
  int backlog = 8;
  /// Ring server only: max CQEs taken per reap().  Digest-neutral — the
  /// ring's completion order is batch-size invariant (DESIGN.md §13).
  std::size_t reap_batch = 64;
};

/// The server: accepts sequentially and serves each connection to
/// completion (the paper's server is a simple iterative one).
[[nodiscard]] sim::Task<void> web_server(os::Process& proc,
                                         os::SocketApi& stack,
                                         WebServerOptions options = {});

/// Event-loop server: ONE task multiplexes every connection over an
/// os::OpRing — a window of accept SQEs stays pre-posted on the listener,
/// each connection is a small state machine (read request bytes, write
/// response bytes, close), and the loop is reap/advance/submit.  Serves
/// the same protocol as web_server with the same per-connection semantics;
/// at C10K connection counts it replaces the blocking server's
/// one-parked-coroutine-per-connection wake storms with a single ring
/// waiter.
[[nodiscard]] sim::Task<void> web_server_ring(os::Process& proc,
                                              os::SocketApi& stack,
                                              WebServerOptions options = {});

struct WebClientOptions {
  std::uint16_t server_node = 0;
  std::uint16_t port = kHttpPort;
  std::uint32_t response_bytes = 4;
  std::uint32_t requests_per_connection = 1;
  std::size_t total_requests = 64;
};

/// One client: issues requests and accumulates per-request response times
/// (connect amortized over the requests sharing its connection) in
/// microseconds.
[[nodiscard]] sim::Task<void> web_client(os::Process& proc,
                                         os::SocketApi& stack,
                                         WebClientOptions options,
                                         sim::OnlineStats& response_us);

}  // namespace ulsocks::apps
