// Key-value store: the paper's future-work direction (§8, "utilizing and
// evaluating the proposed substrate for a range of commercial applications
// in the Data center environment") built as a memcached-style service over
// the stack-neutral sockets API.
//
// Wire protocol (binary, little-endian):
//   request:  op(1) keylen(2) vallen(4) key[keylen] value[vallen]
//   response: status(1) vallen(4) value[vallen]
// One connection carries many pipelined requests (persistent-connection
// style); the server answers in order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "oskernel/process.hpp"
#include "sim/task.hpp"

namespace ulsocks::apps {

inline constexpr std::uint16_t kKvPort = 11'211;

enum class KvOp : std::uint8_t { kGet = 1, kSet = 2, kDel = 3 };
enum class KvStatus : std::uint8_t { kOk = 0, kNotFound = 1, kError = 2 };

struct KvServerOptions {
  std::uint16_t port = kKvPort;
  /// Serve this many connections, then stop (0 = forever).
  std::size_t max_connections = 0;
  /// Per-operation server compute (hashing, slab bookkeeping).
  sim::Duration op_cost_ns = 2'000;
};

/// Iterative key-value server.  Returns when max_connections have been
/// served.
[[nodiscard]] sim::Task<void> kv_server(os::Process& proc,
                                        os::SocketApi& stack,
                                        KvServerOptions options = {});

class KvClient {
 public:
  KvClient(os::Process& proc, os::SocketApi& stack, std::uint16_t server_node,
           std::uint16_t port = kKvPort)
      : proc_(proc), stack_(stack), server_(server_node), port_(port) {}

  [[nodiscard]] sim::Task<void> connect();

  [[nodiscard]] sim::Task<KvStatus> set(const std::string& key,
                                        std::span<const std::uint8_t> value);

  /// Returns the value, or nullopt when the key is absent.
  [[nodiscard]] sim::Task<std::optional<std::vector<std::uint8_t>>> get(
      const std::string& key);

  [[nodiscard]] sim::Task<KvStatus> del(const std::string& key);

  [[nodiscard]] sim::Task<void> close();

  [[nodiscard]] std::size_t requests_sent() const { return requests_; }

 private:
  [[nodiscard]] sim::Task<void> send_request(
      KvOp op, const std::string& key, std::span<const std::uint8_t> value);
  [[nodiscard]] sim::Task<std::pair<KvStatus, std::vector<std::uint8_t>>>
  read_response();

  os::Process& proc_;
  os::SocketApi& stack_;
  std::uint16_t server_;
  std::uint16_t port_;
  int fd_ = -1;
  std::size_t requests_ = 0;
};

}  // namespace ulsocks::apps
