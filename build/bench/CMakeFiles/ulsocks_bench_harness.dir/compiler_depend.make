# Empty compiler generated dependencies file for ulsocks_bench_harness.
# This may be replaced when dependencies are built.
