file(REMOVE_RECURSE
  "libulsocks_bench_harness.a"
)
