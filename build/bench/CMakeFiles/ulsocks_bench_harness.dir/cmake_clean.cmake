file(REMOVE_RECURSE
  "CMakeFiles/ulsocks_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/ulsocks_bench_harness.dir/harness.cpp.o.d"
  "libulsocks_bench_harness.a"
  "libulsocks_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulsocks_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
