file(REMOVE_RECURSE
  "CMakeFiles/ablation_tagmatch.dir/ablation_tagmatch.cpp.o"
  "CMakeFiles/ablation_tagmatch.dir/ablation_tagmatch.cpp.o.d"
  "ablation_tagmatch"
  "ablation_tagmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tagmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
