# Empty dependencies file for ablation_tagmatch.
# This may be replaced when dependencies are built.
