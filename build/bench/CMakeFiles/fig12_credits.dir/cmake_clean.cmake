file(REMOVE_RECURSE
  "CMakeFiles/fig12_credits.dir/fig12_credits.cpp.o"
  "CMakeFiles/fig12_credits.dir/fig12_credits.cpp.o.d"
  "fig12_credits"
  "fig12_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
