# Empty dependencies file for fig12_credits.
# This may be replaced when dependencies are built.
