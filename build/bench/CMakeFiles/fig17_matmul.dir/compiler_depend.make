# Empty compiler generated dependencies file for fig17_matmul.
# This may be replaced when dependencies are built.
