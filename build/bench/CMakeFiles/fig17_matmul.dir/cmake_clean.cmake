file(REMOVE_RECURSE
  "CMakeFiles/fig17_matmul.dir/fig17_matmul.cpp.o"
  "CMakeFiles/fig17_matmul.dir/fig17_matmul.cpp.o.d"
  "fig17_matmul"
  "fig17_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
