file(REMOVE_RECURSE
  "CMakeFiles/fig14_ftp.dir/fig14_ftp.cpp.o"
  "CMakeFiles/fig14_ftp.dir/fig14_ftp.cpp.o.d"
  "fig14_ftp"
  "fig14_ftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
