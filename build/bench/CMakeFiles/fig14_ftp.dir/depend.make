# Empty dependencies file for fig14_ftp.
# This may be replaced when dependencies are built.
