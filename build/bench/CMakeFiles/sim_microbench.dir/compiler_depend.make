# Empty compiler generated dependencies file for sim_microbench.
# This may be replaced when dependencies are built.
