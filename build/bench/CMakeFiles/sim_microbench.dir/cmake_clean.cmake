file(REMOVE_RECURSE
  "CMakeFiles/sim_microbench.dir/sim_microbench.cpp.o"
  "CMakeFiles/sim_microbench.dir/sim_microbench.cpp.o.d"
  "sim_microbench"
  "sim_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
