# Empty compiler generated dependencies file for fig16_web11.
# This may be replaced when dependencies are built.
