file(REMOVE_RECURSE
  "CMakeFiles/fig16_web11.dir/fig16_web11.cpp.o"
  "CMakeFiles/fig16_web11.dir/fig16_web11.cpp.o.d"
  "fig16_web11"
  "fig16_web11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_web11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
