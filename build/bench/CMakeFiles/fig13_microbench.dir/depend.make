# Empty dependencies file for fig13_microbench.
# This may be replaced when dependencies are built.
