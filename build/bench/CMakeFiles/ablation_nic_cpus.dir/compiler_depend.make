# Empty compiler generated dependencies file for ablation_nic_cpus.
# This may be replaced when dependencies are built.
