file(REMOVE_RECURSE
  "CMakeFiles/ablation_nic_cpus.dir/ablation_nic_cpus.cpp.o"
  "CMakeFiles/ablation_nic_cpus.dir/ablation_nic_cpus.cpp.o.d"
  "ablation_nic_cpus"
  "ablation_nic_cpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nic_cpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
