# Empty dependencies file for fig15_web10.
# This may be replaced when dependencies are built.
