
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_web10.cpp" "bench/CMakeFiles/fig15_web10.dir/fig15_web10.cpp.o" "gcc" "bench/CMakeFiles/fig15_web10.dir/fig15_web10.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ulsocks_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ulsocks_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sockets/CMakeFiles/ulsocks_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/ulsocks_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/emp/CMakeFiles/ulsocks_emp.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/ulsocks_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ulsocks_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ulsocks_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
