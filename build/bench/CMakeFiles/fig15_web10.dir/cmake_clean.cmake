file(REMOVE_RECURSE
  "CMakeFiles/fig15_web10.dir/fig15_web10.cpp.o"
  "CMakeFiles/fig15_web10.dir/fig15_web10.cpp.o.d"
  "fig15_web10"
  "fig15_web10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_web10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
