file(REMOVE_RECURSE
  "CMakeFiles/model_invariance_test.dir/model_invariance_test.cpp.o"
  "CMakeFiles/model_invariance_test.dir/model_invariance_test.cpp.o.d"
  "model_invariance_test"
  "model_invariance_test.pdb"
  "model_invariance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
