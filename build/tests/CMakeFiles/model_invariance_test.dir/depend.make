# Empty dependencies file for model_invariance_test.
# This may be replaced when dependencies are built.
