file(REMOVE_RECURSE
  "CMakeFiles/oskernel_test.dir/oskernel_test.cpp.o"
  "CMakeFiles/oskernel_test.dir/oskernel_test.cpp.o.d"
  "oskernel_test"
  "oskernel_test.pdb"
  "oskernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
