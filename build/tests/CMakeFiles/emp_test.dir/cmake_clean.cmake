file(REMOVE_RECURSE
  "CMakeFiles/emp_test.dir/emp_test.cpp.o"
  "CMakeFiles/emp_test.dir/emp_test.cpp.o.d"
  "emp_test"
  "emp_test.pdb"
  "emp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
