# Empty dependencies file for emp_test.
# This may be replaced when dependencies are built.
