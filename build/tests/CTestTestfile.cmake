# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/emp_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/substrate_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/oskernel_test[1]_include.cmake")
include("/root/repo/build/tests/model_invariance_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
