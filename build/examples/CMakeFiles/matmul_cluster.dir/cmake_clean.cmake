file(REMOVE_RECURSE
  "CMakeFiles/matmul_cluster.dir/matmul_cluster.cpp.o"
  "CMakeFiles/matmul_cluster.dir/matmul_cluster.cpp.o.d"
  "matmul_cluster"
  "matmul_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
