# Empty dependencies file for ftp_session.
# This may be replaced when dependencies are built.
