file(REMOVE_RECURSE
  "CMakeFiles/ftp_session.dir/ftp_session.cpp.o"
  "CMakeFiles/ftp_session.dir/ftp_session.cpp.o.d"
  "ftp_session"
  "ftp_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftp_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
