file(REMOVE_RECURSE
  "CMakeFiles/ulsocks_sim.dir/stats.cpp.o"
  "CMakeFiles/ulsocks_sim.dir/stats.cpp.o.d"
  "CMakeFiles/ulsocks_sim.dir/trace.cpp.o"
  "CMakeFiles/ulsocks_sim.dir/trace.cpp.o.d"
  "libulsocks_sim.a"
  "libulsocks_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulsocks_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
