file(REMOVE_RECURSE
  "libulsocks_sim.a"
)
