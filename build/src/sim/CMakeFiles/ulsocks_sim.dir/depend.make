# Empty dependencies file for ulsocks_sim.
# This may be replaced when dependencies are built.
