file(REMOVE_RECURSE
  "libulsocks_substrate.a"
)
