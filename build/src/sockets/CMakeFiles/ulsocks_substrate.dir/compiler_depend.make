# Empty compiler generated dependencies file for ulsocks_substrate.
# This may be replaced when dependencies are built.
