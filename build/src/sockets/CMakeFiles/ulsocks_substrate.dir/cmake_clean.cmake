file(REMOVE_RECURSE
  "CMakeFiles/ulsocks_substrate.dir/control.cpp.o"
  "CMakeFiles/ulsocks_substrate.dir/control.cpp.o.d"
  "CMakeFiles/ulsocks_substrate.dir/substrate.cpp.o"
  "CMakeFiles/ulsocks_substrate.dir/substrate.cpp.o.d"
  "libulsocks_substrate.a"
  "libulsocks_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulsocks_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
