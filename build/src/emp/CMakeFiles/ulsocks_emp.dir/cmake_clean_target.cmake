file(REMOVE_RECURSE
  "libulsocks_emp.a"
)
