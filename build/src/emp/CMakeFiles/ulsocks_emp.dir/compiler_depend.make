# Empty compiler generated dependencies file for ulsocks_emp.
# This may be replaced when dependencies are built.
