file(REMOVE_RECURSE
  "CMakeFiles/ulsocks_emp.dir/endpoint.cpp.o"
  "CMakeFiles/ulsocks_emp.dir/endpoint.cpp.o.d"
  "CMakeFiles/ulsocks_emp.dir/wire.cpp.o"
  "CMakeFiles/ulsocks_emp.dir/wire.cpp.o.d"
  "libulsocks_emp.a"
  "libulsocks_emp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulsocks_emp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
