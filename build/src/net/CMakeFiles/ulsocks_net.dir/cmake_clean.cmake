file(REMOVE_RECURSE
  "CMakeFiles/ulsocks_net.dir/link.cpp.o"
  "CMakeFiles/ulsocks_net.dir/link.cpp.o.d"
  "CMakeFiles/ulsocks_net.dir/switch.cpp.o"
  "CMakeFiles/ulsocks_net.dir/switch.cpp.o.d"
  "libulsocks_net.a"
  "libulsocks_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulsocks_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
