# Empty dependencies file for ulsocks_net.
# This may be replaced when dependencies are built.
