file(REMOVE_RECURSE
  "libulsocks_net.a"
)
