file(REMOVE_RECURSE
  "CMakeFiles/ulsocks_tcp.dir/segment.cpp.o"
  "CMakeFiles/ulsocks_tcp.dir/segment.cpp.o.d"
  "CMakeFiles/ulsocks_tcp.dir/tcp_stack.cpp.o"
  "CMakeFiles/ulsocks_tcp.dir/tcp_stack.cpp.o.d"
  "libulsocks_tcp.a"
  "libulsocks_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulsocks_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
