file(REMOVE_RECURSE
  "libulsocks_tcp.a"
)
