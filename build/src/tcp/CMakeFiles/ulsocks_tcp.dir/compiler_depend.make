# Empty compiler generated dependencies file for ulsocks_tcp.
# This may be replaced when dependencies are built.
