file(REMOVE_RECURSE
  "libulsocks_os.a"
)
