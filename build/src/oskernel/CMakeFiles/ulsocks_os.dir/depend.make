# Empty dependencies file for ulsocks_os.
# This may be replaced when dependencies are built.
