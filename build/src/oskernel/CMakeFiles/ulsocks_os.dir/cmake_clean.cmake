file(REMOVE_RECURSE
  "CMakeFiles/ulsocks_os.dir/process.cpp.o"
  "CMakeFiles/ulsocks_os.dir/process.cpp.o.d"
  "libulsocks_os.a"
  "libulsocks_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulsocks_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
