# Empty compiler generated dependencies file for ulsocks_apps.
# This may be replaced when dependencies are built.
