file(REMOVE_RECURSE
  "CMakeFiles/ulsocks_apps.dir/ftp.cpp.o"
  "CMakeFiles/ulsocks_apps.dir/ftp.cpp.o.d"
  "CMakeFiles/ulsocks_apps.dir/httpd.cpp.o"
  "CMakeFiles/ulsocks_apps.dir/httpd.cpp.o.d"
  "CMakeFiles/ulsocks_apps.dir/kvstore.cpp.o"
  "CMakeFiles/ulsocks_apps.dir/kvstore.cpp.o.d"
  "CMakeFiles/ulsocks_apps.dir/matmul.cpp.o"
  "CMakeFiles/ulsocks_apps.dir/matmul.cpp.o.d"
  "libulsocks_apps.a"
  "libulsocks_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulsocks_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
