file(REMOVE_RECURSE
  "libulsocks_apps.a"
)
