// ftp over user-level sockets: the paper's §7.3 scenario as a runnable
// session.  A server exports a RAM-disk file; the client fetches it, pushes
// it back under a new name, and the transfer rates for both stacks are
// printed side by side.
//
// This example exercises the §5.4 "overloaded name-space" requirement: the
// ftp code calls the same read()/write() on file descriptors that are
// sometimes RAM-disk files and sometimes sockets.
//
//   ./examples/ftp_session
#include <cstdio>
#include <vector>

#include "apps/cluster.hpp"
#include "apps/ftp.hpp"

using namespace ulsocks;
using sim::Task;

namespace {

double run_session(apps::Cluster::StackKind kind, const char* label) {
  sim::Engine engine;
  apps::Cluster cluster(engine, sim::calibrated_cost_model(), 2);

  // An 8 MB file on the server's RAM disk.
  std::vector<std::uint8_t> file(8u << 20);
  for (std::size_t i = 0; i < file.size(); ++i) {
    file[i] = static_cast<std::uint8_t>(i % 251);
  }
  cluster.node(0).host.fs().install("/srv/release.tar", file);

  double down_mbps = 0, up_mbps = 0;
  bool verified = false;

  auto server = [&]() -> Task<void> {
    os::Process proc(cluster.node(0).host);
    apps::FtpServerOptions opt;
    opt.max_sessions = 1;
    co_await apps::ftp_server(proc, cluster.stack(0, kind), opt);
  };
  auto client = [&]() -> Task<void> {
    co_await engine.delay(10'000);
    os::Process proc(cluster.node(1).host);
    apps::FtpClient ftp(proc, cluster.stack(1, kind), /*server_node=*/0);
    co_await ftp.connect();
    auto down = co_await ftp.get("/srv/release.tar", "/tmp/release.tar");
    auto up = co_await ftp.put("/tmp/release.tar", "/srv/release.copy");
    co_await ftp.quit();
    down_mbps = down.mbps();
    up_mbps = up.mbps();
    verified =
        cluster.node(0).host.fs().contents("/srv/release.copy") == file;
  };
  engine.spawn(server());
  engine.spawn(client());
  engine.run();

  std::printf("%-22s RETR %7.1f Mb/s   STOR %7.1f Mb/s   round-trip %s\n",
              label, down_mbps, up_mbps, verified ? "verified" : "CORRUPT");
  return down_mbps;
}

}  // namespace

int main() {
  std::printf("ftp session, 8 MB file on a RAM disk (paper §7.3)\n\n");
  double sub = run_session(apps::Cluster::StackKind::kSubstrate,
                           "sockets-over-EMP");
  double tcp = run_session(apps::Cluster::StackKind::kTcp, "kernel TCP");
  std::printf("\nsubstrate advantage: %.2fx (paper: ~2x, both substrate "
              "modes filesystem-bound)\n",
              sub / tcp);
  return 0;
}
