// Web-server cluster demo: the paper's §7.4 experiment as a runnable
// scenario.  One server, three clients; each client fetches a page-sized
// reply per connection (HTTP/1.0) and then again with eight requests per
// connection (HTTP/1.1).  Both stacks are shown side by side.
//
//   ./examples/web_cluster
#include <cstdio>

#include "apps/cluster.hpp"
#include "apps/httpd.hpp"

using namespace ulsocks;
using sim::Task;

namespace {

double run(apps::Cluster::StackKind kind, std::uint32_t per_connection,
           std::uint32_t reply_bytes) {
  sim::Engine engine;
  // Web-server runs use 4 credits: with a request per connection, bigger
  // credit counts waste time posting and reclaiming descriptors (§7.4).
  sockets::SubstrateConfig cfg = sockets::preset_ds_da_uq();
  cfg.credits = 4;
  apps::Cluster cluster(engine, sim::calibrated_cost_model(), 4, cfg);

  sim::OnlineStats rt[3];
  auto server = [&]() -> Task<void> {
    os::Process proc(cluster.node(0).host);
    apps::WebServerOptions opt;
    opt.requests_per_connection = per_connection;
    opt.max_connections = 3 * (24 / per_connection);
    co_await apps::web_server(proc, cluster.stack(0, kind), opt);
  };
  auto client = [&](std::size_t idx) -> Task<void> {
    co_await engine.delay(5'000 + idx * 500);
    os::Process proc(cluster.node(idx + 1).host);
    apps::WebClientOptions opt;
    opt.server_node = 0;
    opt.response_bytes = reply_bytes;
    opt.requests_per_connection = per_connection;
    opt.total_requests = 24;
    co_await apps::web_client(proc, cluster.stack(idx + 1, kind), opt,
                              rt[idx]);
  };
  engine.spawn(server());
  for (std::size_t i = 0; i < 3; ++i) engine.spawn(client(i));
  engine.run();

  double sum = 0;
  for (const auto& st : rt) sum += st.mean();
  return sum / 3.0;
}

}  // namespace

int main() {
  std::printf("web server, 1 server + 3 clients, 1 KB replies (§7.4)\n\n");
  std::printf("%-12s %-18s %-18s\n", "protocol", "substrate (us)",
              "kernel TCP (us)");
  for (std::uint32_t per_conn : {1u, 8u}) {
    double sub = run(apps::Cluster::StackKind::kSubstrate, per_conn, 1024);
    double tcp = run(apps::Cluster::StackKind::kTcp, per_conn, 1024);
    std::printf("HTTP/1.%c     %-18.0f %-18.0f  (%.1fx)\n",
                per_conn == 1 ? '0' : '1', sub, tcp, tcp / sub);
  }
  std::printf(
      "\npaper: up to ~6x under HTTP/1.0; HTTP/1.1's connection reuse\n"
      "narrows but does not close the gap\n");
  return 0;
}
