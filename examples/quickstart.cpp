// Quickstart: user-level sockets over EMP in ~60 lines.
//
// Builds the paper's testbed (hosts + Tigon2-style NICs + gigabit switch),
// starts an echo server over the sockets-over-EMP substrate, connects a
// client, and measures a few round trips.  Swap `node.socks` for `node.tcp`
// and the *same application code* runs over the kernel TCP baseline — the
// paper's central claim.
//
//   ./examples/quickstart
#include <cstdio>
#include <vector>

#include "apps/cluster.hpp"

using namespace ulsocks;
using sim::Task;

int main() {
  // A 2-node cluster with the calibrated PIII-700 / GigE cost model.
  sim::Engine engine;
  apps::Cluster cluster(engine, sim::calibrated_cost_model(), 2);

  auto server = [&]() -> Task<void> {
    os::SocketApi& api = cluster.node(1).socks;  // or: cluster.node(1).tcp
    int ls = co_await api.socket();
    co_await api.bind(ls, os::SockAddr{1, 7777});
    co_await api.listen(ls, 4);
    os::SockAddr peer{};
    int cs = co_await api.accept(ls, &peer);
    std::printf("[server] accepted connection from node %u port %u\n",
                peer.node, peer.port);
    std::vector<std::uint8_t> buf(64);
    for (int i = 0; i < 10; ++i) {
      co_await api.read_exact(cs, buf);
      co_await api.write_all(cs, buf);  // echo
    }
    co_await api.close(cs);
    co_await api.close(ls);
  };

  auto client = [&]() -> Task<void> {
    os::SocketApi& api = cluster.node(0).socks;
    co_await engine.delay(10'000);  // let the server listen first
    int fd = co_await api.socket();
    co_await api.connect(fd, os::SockAddr{1, 7777});
    std::printf("[client] connected in simulated time\n");
    std::vector<std::uint8_t> msg(64, 0x2a);
    sim::Time t0 = engine.now();
    for (int i = 0; i < 10; ++i) {
      co_await api.write_all(fd, msg);
      co_await api.read_exact(fd, msg);
    }
    double one_way_us = sim::to_us(engine.now() - t0) / 20.0;
    std::printf("[client] 64-byte one-way latency: %.1f us "
                "(paper: ~37 us streaming, ~120 us kernel TCP)\n",
                one_way_us);
    co_await api.close(fd);
  };

  engine.spawn(server());
  engine.spawn(client());
  engine.run();  // run the simulated cluster to completion
  std::printf("done; simulated %.3f ms in total\n",
              sim::to_ms(engine.now()));
  return 0;
}
