// Distributed matrix multiplication on the 4-node cluster (§7.5): a master
// ships row blocks of A and all of B to three workers over sockets and
// gathers result blocks with select(), verifying the product against a
// single-node reference.
//
//   ./examples/matmul_cluster
#include <cmath>
#include <cstdio>

#include "apps/cluster.hpp"
#include "apps/matmul.hpp"

using namespace ulsocks;
using sim::Task;

namespace {

double run(apps::Cluster::StackKind kind, std::size_t n, bool verify) {
  sim::Engine engine;
  apps::Cluster cluster(engine, sim::calibrated_cost_model(), 4);
  auto a = apps::make_matrix(n, 1);
  auto b = apps::make_matrix(n, 2);

  apps::MatmulResult result;
  auto master = [&]() -> Task<void> {
    co_await engine.delay(20'000);
    os::Process proc(cluster.node(0).host);
    std::vector<std::uint16_t> workers{1, 2, 3};
    result = co_await apps::matmul_master(proc, cluster.stack(0, kind), a,
                                          b, n, workers);
  };
  auto worker = [&](std::size_t idx) -> Task<void> {
    os::Process proc(cluster.node(idx).host);
    co_await apps::matmul_worker(proc, cluster.stack(idx, kind));
  };
  for (std::size_t i = 1; i <= 3; ++i) engine.spawn(worker(i));
  engine.spawn(master());
  engine.run();

  if (verify) {
    auto expected = apps::multiply_reference(a, b, n);
    double max_err = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      max_err = std::max(max_err, std::fabs(result.c[i] - expected[i]));
    }
    std::printf("  verification: max |error| = %.2e %s\n", max_err,
                max_err < 1e-9 ? "(exact)" : "(MISMATCH)");
  }
  return sim::to_ms(result.elapsed);
}

}  // namespace

int main() {
  std::printf("distributed matmul, master + 3 workers (§7.5)\n\n");
  std::printf("verifying a small problem first:\n");
  run(apps::Cluster::StackKind::kSubstrate, 64, /*verify=*/true);

  std::printf("\n%-6s %-16s %-16s %s\n", "N", "substrate (ms)",
              "kernel TCP (ms)", "speedup");
  for (std::size_t n : {128ul, 256ul, 384ul}) {
    double sub = run(apps::Cluster::StackKind::kSubstrate, n, false);
    double tcp = run(apps::Cluster::StackKind::kTcp, n, false);
    std::printf("%-6zu %-16.2f %-16.2f %.2fx\n", n, sub, tcp, tcp / sub);
  }
  std::printf(
      "\npaper: substrate ahead, with the gap narrowing as O(N^3) compute\n"
      "outgrows O(N^2) communication\n");
  return 0;
}
