#!/usr/bin/env python3
"""Self-tests for the ulsan static-analysis suite.

Each rule is exercised against a four-way fixture corpus under
tests/fixtures/ulsan/<rule>/: a *firing* snippet the rule must flag, a
*suppressed* snippet where every finding carries a NOLINT, a *clean*
snippet showing the compliant shape, and an *unused* snippet whose
suppression covers nothing (itself an error).  On top of that, the
framework mechanics — baseline absorption, staleness, the no-baseline
policy for layering/wire-hygiene, the legacy coro-capture alias, blanket
NOLINTs — and the CLI surface are tested directly.

Run from the repo root:  python3 tests/ulsan_test.py
Registered with ctest as ``ulsan.selftest``.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "scripts"))

from ulsan.framework import (  # noqa: E402
    Baseline, BaselineEntry, NO_BASELINE_RULES, all_rules, normalize_text,
    run)

FIXTURES = REPO / "tests" / "fixtures" / "ulsan"

# rule name -> fixture location; flat rules keep one file per case,
# path-sensitive rules (layering, wire) keep one directory tree per case.
FLAT_RULES = {
    "determinism": FIXTURES / "determinism",
    "shard-affinity": FIXTURES / "shard_affinity",
    "coro-schedule-capture": FIXTURES / "coro_schedule",
    "coro-iife-capture": FIXTURES / "coro_iife",
    "coro-ref-across-await": FIXTURES / "coro_ref",
}
TREE_RULES = {
    "layering": FIXTURES / "layering",
    "wire-hygiene": FIXTURES / "wire",
}
ALL_RULES = {**FLAT_RULES, **TREE_RULES}

CASES = ("firing", "suppressed", "clean", "unused")


def case_paths(rule_name, case):
    base = ALL_RULES[rule_name]
    if rule_name in TREE_RULES:
        return [base / case]
    return [base / f"{case}.cpp"]


def run_case(rule_name, case):
    return run(case_paths(rule_name, case), rule_names=[rule_name])


class RegistryTest(unittest.TestCase):
    def test_expected_rules_registered(self):
        self.assertEqual(sorted(all_rules()), sorted(ALL_RULES))

    def test_rules_are_documented(self):
        for name, r in all_rules().items():
            with self.subTest(rule=name):
                self.assertTrue(r.summary.strip())
                self.assertTrue((r.doc or "").strip(),
                                f"ulsan-{name} has no --explain text")

    def test_fixture_corpus_is_complete(self):
        for name in ALL_RULES:
            for case in CASES:
                for p in case_paths(name, case):
                    with self.subTest(rule=name, case=case):
                        self.assertTrue(p.exists(), f"missing fixture {p}")


class FixtureCorpusTest(unittest.TestCase):
    """The firing/suppressed/clean/unused contract, per rule."""

    def test_firing(self):
        for name in ALL_RULES:
            with self.subTest(rule=name):
                res = run_case(name, "firing")
                self.assertGreaterEqual(len(res.new), 1,
                                        f"ulsan-{name} missed its fixture")
                self.assertTrue(all(f.rule == name for f in res.new))
                self.assertEqual(res.errors, [])

    def test_suppressed(self):
        for name in ALL_RULES:
            with self.subTest(rule=name):
                res = run_case(name, "suppressed")
                self.assertEqual(res.new, [],
                                 f"suppression did not cover ulsan-{name}: "
                                 f"{[f.render() for f in res.new]}")
                self.assertGreaterEqual(len(res.suppressed), 1)
                self.assertEqual(res.errors, [],
                                 [f.render() for f in res.errors])
                self.assertFalse(res.failed)

    def test_clean(self):
        for name in ALL_RULES:
            with self.subTest(rule=name):
                res = run_case(name, "clean")
                self.assertEqual(res.new, [],
                                 f"false positive from ulsan-{name}: "
                                 f"{[f.render() for f in res.new]}")
                self.assertEqual(res.suppressed, [])
                self.assertEqual(res.errors, [])

    def test_unused_suppression_is_an_error(self):
        for name in ALL_RULES:
            with self.subTest(rule=name):
                res = run_case(name, "unused")
                self.assertEqual(res.new, [])
                unused = [f for f in res.errors
                          if f.rule == "unused-suppression"]
                self.assertGreaterEqual(len(unused), 1,
                                        f"unused ulsan-{name} suppression "
                                        f"not reported")
                self.assertTrue(res.failed)


class SuppressionSyntaxTest(unittest.TestCase):
    def _run_snippet(self, code, rule_names=None, allow_legacy=False):
        with tempfile.TemporaryDirectory() as td:
            p = Path(td) / "snippet.cpp"
            p.write_text(code)
            return run([p], rule_names=rule_names, allow_legacy=allow_legacy)

    def test_blanket_nolint_rejected(self):
        res = self._run_snippet("int x = 0;  // NOLINT\n")
        self.assertTrue(any(f.rule == "suppression-syntax"
                            and "blanket" in f.message
                            for f in res.errors))

    def test_unknown_ulsan_rule_rejected(self):
        res = self._run_snippet("int x = 0;  // NOLINT(ulsan-nonexistent)\n")
        self.assertTrue(any(f.rule == "suppression-syntax"
                            and "unknown rule" in f.message
                            for f in res.errors))

    def test_clang_tidy_tokens_ignored(self):
        res = self._run_snippet(
            "int x = 0;  // NOLINT(bugprone-use-after-move)\n")
        self.assertEqual(res.errors, [])
        self.assertFalse(res.failed)

    def test_shared_list_suppresses_both_tools(self):
        res = self._run_snippet(
            "#include <cstdlib>\n"
            "// NOLINTNEXTLINE(cert-msc30-c, ulsan-determinism)\n"
            "int roll() { return rand(); }\n",
            rule_names=["determinism"])
        self.assertEqual(res.new, [])
        self.assertEqual(len(res.suppressed), 1)
        self.assertEqual(res.errors, [])

    LEGACY = ("void arm() {\n"
              "  int hits = 0;\n"
              "  eng.schedule_after(100, [&hits] { ++hits; });"
              "  // NOLINT(coro-capture)\n"
              "}\n")

    def test_legacy_coro_token_rejected_by_default(self):
        res = self._run_snippet(self.LEGACY,
                                rule_names=["coro-schedule-capture"])
        self.assertTrue(any(f.rule == "suppression-syntax"
                            and "migrate" in f.message
                            for f in res.errors))
        self.assertEqual(len(res.new), 1)  # the finding is NOT suppressed

    def test_legacy_coro_token_accepted_by_shim_mode(self):
        res = self._run_snippet(self.LEGACY,
                                rule_names=["coro-schedule-capture"],
                                allow_legacy=True)
        self.assertEqual(res.new, [])
        self.assertEqual(len(res.suppressed), 1)
        self.assertEqual(res.errors, [])

    def test_umbrella_alias_covers_both_coro_rules(self):
        code = ("template <typename T> struct Task {};\n"
                "Task<void> delay(int);\n"
                "void spawn(int& c) {\n"
                "  // NOLINTNEXTLINE(ulsan-coro-capture)\n"
                "  auto t = [&c]() -> Task<void> { co_await delay(1);"
                " ++c; }();\n"
                "  (void)t;\n"
                "}\n")
        res = self._run_snippet(code, rule_names=["coro-iife-capture"])
        self.assertEqual(res.new, [])
        self.assertEqual(len(res.suppressed), 1)
        self.assertEqual(res.errors, [])


class BaselineTest(unittest.TestCase):
    FIRING = FLAT_RULES["determinism"] / "firing.cpp"

    def _entries_from_firing(self):
        res = run([self.FIRING], rule_names=["determinism"])
        return [BaselineEntry(rule=f.rule, file=f.path,
                              text=normalize_text(f.excerpt), count=1,
                              justification="fixture grandfather")
                for f in res.new]

    def test_baseline_absorbs_matching_findings(self):
        bl = Baseline(self._entries_from_firing(), path=None)
        res = run([self.FIRING], rule_names=["determinism"], baseline=bl)
        self.assertEqual(res.new, [])
        self.assertGreaterEqual(len(res.baselined), 3)
        self.assertEqual(res.errors, [])
        self.assertFalse(res.failed)

    def test_stale_entry_fails_the_run(self):
        entries = self._entries_from_firing()
        entries.append(BaselineEntry(rule="determinism",
                                     file=entries[0].file,
                                     text="int fixed_long_ago = rand();",
                                     count=1, justification="was real once"))
        bl = Baseline(entries, path=None)
        res = run([self.FIRING], rule_names=["determinism"], baseline=bl)
        self.assertTrue(any(f.rule == "baseline-stale" for f in res.errors))
        self.assertTrue(res.failed)

    def test_count_shrink_is_reported(self):
        entries = self._entries_from_firing()
        entries[0].count = 2  # expects two occurrences, only one remains
        bl = Baseline(entries, path=None)
        res = run([self.FIRING], rule_names=["determinism"], baseline=bl)
        self.assertTrue(any(f.rule == "baseline-stale"
                            and "lower the count" in f.message
                            for f in res.errors))

    def test_missing_justification_fails(self):
        entries = self._entries_from_firing()
        entries[0].justification = "  "
        bl = Baseline(entries, path=None)
        res = run([self.FIRING], rule_names=["determinism"], baseline=bl)
        self.assertTrue(any(f.rule == "baseline-policy"
                            and "justification" in f.message
                            for f in res.errors))

    def test_layering_and_wire_may_never_be_baselined(self):
        self.assertEqual(NO_BASELINE_RULES, ("layering", "wire-hygiene"))
        for banned in NO_BASELINE_RULES:
            with self.subTest(rule=banned):
                bl = Baseline([BaselineEntry(
                    rule=banned, file="src/x.cpp", text="anything",
                    count=1, justification="not allowed anyway")], path=None)
                res = run([self.FIRING], rule_names=["determinism"],
                          baseline=bl)
                self.assertTrue(any(f.rule == "baseline-policy"
                                    and "may not be baselined" in f.message
                                    for f in res.errors))

    def test_committed_baseline_honors_the_policy(self):
        bl = Baseline.load(REPO / "scripts" / "ulsan" / "baseline.json")
        for e in bl.entries:
            with self.subTest(entry=f"{e.rule}:{e.file}"):
                self.assertNotIn(e.rule, NO_BASELINE_RULES)
                self.assertTrue(e.justification.strip(),
                                "committed baseline entry lacks a "
                                "justification")


class CliTest(unittest.TestCase):
    """End-to-end through ``python3 -m ulsan`` as check.sh invokes it."""

    def _ulsan(self, *argv):
        env = dict(os.environ,
                   PYTHONPATH=str(REPO / "scripts"),
                   PYTHONDONTWRITEBYTECODE="1")
        return subprocess.run(
            [sys.executable, "-m", "ulsan", *argv],
            cwd=REPO, env=env, capture_output=True, text=True)

    def test_src_tree_is_clean(self):
        proc = self._ulsan("src")
        self.assertEqual(proc.returncode, 0,
                         f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        self.assertIn("ulsan: clean", proc.stdout)

    def test_json_report_on_firing_fixture(self):
        rel = FLAT_RULES["determinism"].relative_to(REPO) / "firing.cpp"
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "report.json"
            proc = self._ulsan(str(rel), "--no-baseline", "--json",
                               str(out), "--quiet")
            self.assertEqual(proc.returncode, 1)
            payload = json.loads(out.read_text())
        self.assertEqual(payload["tool"], "ulsan")
        self.assertEqual(payload["counts"]["new"], 3)
        for f in payload["findings"]:
            self.assertTrue(f["rule"].startswith("ulsan-"))
            self.assertEqual(f["status"], "new")

    def test_list_rules(self):
        proc = self._ulsan("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for name in ALL_RULES:
            self.assertIn(f"ulsan-{name}", proc.stdout)

    def test_explain(self):
        proc = self._ulsan("--explain", "layering")
        self.assertEqual(proc.returncode, 0)
        self.assertIn("sockets", proc.stdout)

    def test_unknown_rule_is_usage_error(self):
        proc = self._ulsan("src", "--rules", "no-such-rule")
        self.assertEqual(proc.returncode, 2)

    def test_deprecated_shim_delegates(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "lint_coro_captures.py"),
             "src"],
            cwd=REPO, capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0,
                         f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        self.assertIn("deprecated", proc.stderr.lower())


if __name__ == "__main__":
    unittest.main(verbosity=2)
