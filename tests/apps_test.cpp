// Integration tests for the paper's applications (ftp, web server, matmul),
// each run over BOTH stacks — the "no application changes" claim, checked.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/cluster.hpp"
#include "apps/ftp.hpp"
#include "apps/httpd.hpp"
#include "apps/matmul.hpp"
#include "sim/engine.hpp"

namespace ulsocks::apps {
namespace {

using sim::Engine;
using sim::Task;

class AppsTest : public ::testing::TestWithParam<Cluster::StackKind> {
 protected:
  AppsTest() : cluster_(eng_, sim::calibrated_cost_model(), 4) {}

  os::SocketApi& stack(std::size_t node) {
    return cluster_.stack(node, GetParam());
  }

  Engine eng_;
  Cluster cluster_;
};

TEST_P(AppsTest, FtpRoundTripPreservesFileContents) {
  auto payload = std::vector<std::uint8_t>(300'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  cluster_.node(0).host.fs().install("/srv/data.bin", payload);

  FtpTransfer down{}, up{};
  auto server = [&]() -> Task<void> {
    os::Process proc(cluster_.node(0).host);
    FtpServerOptions opt;
    opt.max_sessions = 1;
    co_await ftp_server(proc, stack(0), opt);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    os::Process proc(cluster_.node(1).host);
    FtpClient ftp(proc, stack(1), 0);
    co_await ftp.connect();
    down = co_await ftp.get("/srv/data.bin", "/tmp/copy.bin");
    up = co_await ftp.put("/tmp/copy.bin", "/srv/returned.bin");
    co_await ftp.quit();
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();

  EXPECT_EQ(down.bytes, payload.size());
  EXPECT_EQ(up.bytes, payload.size());
  EXPECT_EQ(cluster_.node(1).host.fs().contents("/tmp/copy.bin"), payload);
  EXPECT_EQ(cluster_.node(0).host.fs().contents("/srv/returned.bin"),
            payload);
  EXPECT_GT(down.mbps(), 50.0);  // sanity: it actually streamed
}

TEST_P(AppsTest, FtpMissingFileYieldsError) {
  bool got_550 = false;
  auto server = [&]() -> Task<void> {
    os::Process proc(cluster_.node(0).host);
    FtpServerOptions opt;
    opt.max_sessions = 1;
    co_await ftp_server(proc, stack(0), opt);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    os::Process proc(cluster_.node(1).host);
    FtpClient ftp(proc, stack(1), 0);
    co_await ftp.connect();
    try {
      (void)co_await ftp.get("/no/such/file", "/tmp/x");
    } catch (const os::SocketError& e) {
      got_550 = std::string(e.what()).find("550") != std::string::npos;
    }
    co_await ftp.quit();
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(got_550);
}

TEST_P(AppsTest, WebServerServesThreeClients) {
  sim::OnlineStats rt[3];
  auto server = [&]() -> Task<void> {
    os::Process proc(cluster_.node(0).host);
    WebServerOptions opt;
    opt.requests_per_connection = 1;
    opt.max_connections = 30;
    co_await web_server(proc, stack(0), opt);
  };
  auto client = [&](std::size_t idx) -> Task<void> {
    co_await eng_.delay(10'000 + idx * 100);
    os::Process proc(cluster_.node(idx + 1).host);
    WebClientOptions opt;
    opt.server_node = 0;
    opt.response_bytes = 1024;
    opt.requests_per_connection = 1;
    opt.total_requests = 10;
    co_await web_client(proc, stack(idx + 1), opt, rt[idx]);
  };
  eng_.spawn(server());
  for (std::size_t i = 0; i < 3; ++i) eng_.spawn(client(i));
  eng_.run();
  for (auto& stats : rt) {
    EXPECT_EQ(stats.count(), 10u);
    EXPECT_GT(stats.mean(), 0.0);
  }
}

TEST_P(AppsTest, WebServerHttp11AmortizesConnections) {
  auto run_mode = [&](std::uint32_t per_conn) {
    Engine eng;
    Cluster cl(eng, sim::calibrated_cost_model(), 2);
    sim::OnlineStats rt;
    auto server = [&]() -> Task<void> {
      os::Process proc(cl.node(0).host);
      WebServerOptions opt;
      opt.requests_per_connection = per_conn;
      opt.max_connections = per_conn == 1 ? 16 : 2;
      co_await web_server(proc, cl.stack(0, GetParam()), opt);
    };
    auto client = [&]() -> Task<void> {
      co_await eng.delay(10'000);
      os::Process proc(cl.node(1).host);
      WebClientOptions opt;
      opt.server_node = 0;
      opt.response_bytes = 64;
      opt.requests_per_connection = per_conn;
      opt.total_requests = 16;
      co_await web_client(proc, cl.stack(1, GetParam()), opt, rt);
    };
    eng.spawn(server());
    eng.spawn(client());
    eng.run();
    return rt.mean();
  };
  double http10 = run_mode(1);
  double http11 = run_mode(8);
  // Reusing the connection must reduce mean response time.
  EXPECT_LT(http11, http10);
}

TEST_P(AppsTest, MatmulMatchesReference) {
  constexpr std::size_t kN = 48;
  auto a = make_matrix(kN, 1);
  auto b = make_matrix(kN, 2);
  auto expected = multiply_reference(a, b, kN);

  MatmulResult result;
  auto master = [&]() -> Task<void> {
    co_await eng_.delay(50'000);  // workers come up first
    os::Process proc(cluster_.node(0).host);
    std::vector<std::uint16_t> workers{1, 2, 3};
    result = co_await matmul_master(proc, stack(0), a, b, kN, workers);
  };
  auto worker = [&](std::size_t idx) -> Task<void> {
    os::Process proc(cluster_.node(idx).host);
    co_await matmul_worker(proc, stack(idx));
  };
  for (std::size_t i = 1; i <= 3; ++i) eng_.spawn(worker(i));
  eng_.spawn(master());
  eng_.run();

  ASSERT_EQ(result.c.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(result.c[i], expected[i], 1e-9) << "element " << i;
  }
  EXPECT_GT(result.elapsed, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothStacks, AppsTest,
                         ::testing::Values(Cluster::StackKind::kTcp,
                                           Cluster::StackKind::kSubstrate),
                         [](const auto& info) {
                           return info.param == Cluster::StackKind::kTcp
                                      ? "KernelTcp"
                                      : "EmpSubstrate";
                         });

// The headline application claim, as a test: the substrate's web server
// beats kernel TCP's by a large factor under HTTP/1.0 (paper: up to 6x).
TEST(AppComparison, SubstrateWebServerBeatsTcp) {
  auto run = [](Cluster::StackKind kind) {
    Engine eng;
    sockets::SubstrateConfig cfg;
    cfg.credits = 4;  // the paper's choice for this experiment (§7.4)
    Cluster cl(eng, sim::calibrated_cost_model(), 2, cfg);
    sim::OnlineStats rt;
    auto server = [&]() -> Task<void> {
      os::Process proc(cl.node(0).host);
      WebServerOptions opt;
      opt.max_connections = 20;
      co_await web_server(proc, cl.stack(0, kind), opt);
    };
    auto client = [&]() -> Task<void> {
      co_await eng.delay(10'000);
      os::Process proc(cl.node(1).host);
      WebClientOptions opt;
      opt.server_node = 0;
      opt.response_bytes = 256;
      opt.total_requests = 20;
      co_await web_client(proc, cl.stack(1, kind), opt, rt);
    };
    eng.spawn(server());
    eng.spawn(client());
    eng.run();
    return rt.mean();
  };
  double tcp_us = run(Cluster::StackKind::kTcp);
  double sub_us = run(Cluster::StackKind::kSubstrate);
  EXPECT_GT(tcp_us, 2.5 * sub_us);
}

}  // namespace
}  // namespace ulsocks::apps
