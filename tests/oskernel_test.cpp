// Tests for the host model: RAM-disk filesystem, process fd dispatch (the
// §5.4 interception analogue) and select() across heterogeneous fds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/cluster.hpp"
#include "oskernel/fs.hpp"
#include "oskernel/host.hpp"
#include "oskernel/process.hpp"
#include "sim/engine.hpp"

namespace ulsocks::os {
namespace {

using sim::Engine;
using sim::Task;

class HostTest : public ::testing::Test {
 protected:
  HostTest() : host_(eng_, sim::calibrated_cost_model(), 0) {}
  Engine eng_;
  Host host_;
};

TEST_F(HostTest, FsWriteThenReadRoundTrips) {
  std::vector<std::uint8_t> data(10'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  auto proc = [&]() -> Task<void> {
    auto f = co_await host_.fs().open("/x/y", OpenMode::kWrite);
    co_await host_.fs().write(f, data);
    co_await host_.fs().close(f);

    auto g = co_await host_.fs().open("/x/y", OpenMode::kRead);
    std::vector<std::uint8_t> buf(4096);
    std::vector<std::uint8_t> out;
    for (;;) {
      std::size_t n = co_await host_.fs().read(g, buf);
      if (n == 0) break;
      out.insert(out.end(), buf.begin(),
                 buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
    co_await host_.fs().close(g);
    EXPECT_EQ(out, data);
  };
  eng_.spawn(proc());
  eng_.run();
}

TEST_F(HostTest, FsOpenMissingFileThrows) {
  bool threw = false;
  auto proc = [&]() -> Task<void> {
    try {
      auto f = co_await host_.fs().open("/nope", OpenMode::kRead);
      (void)f;
    } catch (const FsError&) {
      threw = true;
    }
  };
  eng_.spawn(proc());
  eng_.run();
  EXPECT_TRUE(threw);
}

TEST_F(HostTest, FsOpenForWriteTruncates) {
  host_.fs().install("/t", std::vector<std::uint8_t>(100, 1));
  auto proc = [&]() -> Task<void> {
    auto f = co_await host_.fs().open("/t", OpenMode::kWrite);
    std::vector<std::uint8_t> five(5, 2);
    co_await host_.fs().write(f, five);
    co_await host_.fs().close(f);
  };
  eng_.spawn(proc());
  eng_.run();
  EXPECT_EQ(host_.fs().size_of("/t"), 5u);
}

TEST_F(HostTest, FsReadsChargeSimulatedTime) {
  host_.fs().install("/big", std::vector<std::uint8_t>(1 << 20));
  sim::Time elapsed = 0;
  auto proc = [&]() -> Task<void> {
    sim::Time t0 = eng_.now();
    auto f = co_await host_.fs().open("/big", OpenMode::kRead);
    std::vector<std::uint8_t> buf(1 << 20);
    std::size_t n = co_await host_.fs().read(f, buf);
    EXPECT_EQ(n, buf.size());
    elapsed = eng_.now() - t0;
  };
  eng_.spawn(proc());
  eng_.run();
  // 1 MB at ~150 MB/s is ~7 ms; anything in [2, 30] ms is sane.
  EXPECT_GT(sim::to_ms(elapsed), 2.0);
  EXPECT_LT(sim::to_ms(elapsed), 30.0);
}

TEST_F(HostTest, CpuIsSerialResource) {
  // Two processes charging the CPU serialize, not overlap.
  sim::Time done_a = 0, done_b = 0;
  auto proc = [&](sim::Time& done) -> Task<void> {
    co_await host_.compute(1'000'000);  // 1 ms of compute
    done = eng_.now();
  };
  eng_.spawn(proc(done_a));
  eng_.spawn(proc(done_b));
  eng_.run();
  EXPECT_EQ(std::max(done_a, done_b), 2'000'000u);
}

TEST_F(HostTest, ProcessDispatchesFdKinds) {
  // The §5.4 scenario: the same read()/write() calls work on files and
  // sockets, routed by the fd table.
  Engine eng;
  apps::Cluster cl(eng, sim::calibrated_cost_model(), 2);
  cl.node(0).host.fs().install("/data", {1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<std::uint8_t> via_socket(8);

  auto server = [&]() -> Task<void> {
    Process proc(cl.node(1).host);
    int ls = co_await proc.socket(cl.node(1).socks);
    co_await proc.bind(ls, SockAddr{1, 9});
    co_await proc.listen(ls, 1);
    int cs = co_await proc.accept(ls);
    co_await proc.read_exact(cs, via_socket);
    co_await proc.close(cs);
    co_await proc.close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng.delay(1000);
    Process proc(cl.node(0).host);
    // Generic fd calls: file read, then socket write, same interface.
    int file = co_await proc.open("/data", OpenMode::kRead);
    int sock = co_await proc.socket(cl.node(0).socks);
    co_await proc.connect(sock, SockAddr{1, 9});
    std::vector<std::uint8_t> buf(8);
    std::size_t n = co_await proc.read(file, buf);
    EXPECT_EQ(n, 8u);
    co_await proc.write_all(sock, buf);
    co_await proc.close(sock);
    co_await proc.close(file);
    EXPECT_EQ(proc.open_fd_count(), 0u);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  EXPECT_EQ(via_socket, (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST_F(HostTest, BadFdThrows) {
  auto proc = [&]() -> Task<void> {
    Process p(host_);
    std::vector<std::uint8_t> buf(4);
    bool threw = false;
    try {
      std::size_t n = co_await p.read(42, buf);
      (void)n;
    } catch (const SocketError& e) {
      threw = e.code() == SockErr::kInvalid;
    }
    EXPECT_TRUE(threw);
  };
  eng_.spawn(proc());
  eng_.run();
}

TEST_F(HostTest, SelectIncludesRegularFilesImmediately) {
  host_.fs().install("/f", {1, 2, 3});
  std::vector<int> ready;
  auto proc = [&]() -> Task<void> {
    Process p(host_);
    int fd = co_await p.open("/f", OpenMode::kRead);
    std::vector<int> watch{fd};
    ready = co_await p.select(watch);
  };
  eng_.spawn(proc());
  eng_.run();
  EXPECT_EQ(ready.size(), 1u);
}

TEST_F(HostTest, SelectAcrossBothStacks) {
  // A heterogeneous fd set (kernel TCP + substrate) must still wake when
  // either becomes readable; Process::select falls back to polling.
  Engine eng;
  apps::Cluster cl(eng, sim::calibrated_cost_model(), 2);
  std::size_t ready_count = 0;

  auto server = [&]() -> Task<void> {
    Process proc(cl.node(1).host);
    int tls = co_await proc.socket(cl.node(1).tcp);
    co_await proc.bind(tls, SockAddr{1, 11});
    co_await proc.listen(tls, 1);
    int sls = co_await proc.socket(cl.node(1).socks);
    co_await proc.bind(sls, SockAddr{1, 12});
    co_await proc.listen(sls, 1);
    int tcp_conn = co_await proc.accept(tls);
    int sub_conn = co_await proc.accept(sls);
    // Data arrives on the substrate socket only.
    std::vector<int> watch{tcp_conn, sub_conn};
    auto ready = co_await proc.select(watch);
    ready_count = ready.size();
    EXPECT_EQ(ready[0], sub_conn);
  };
  auto client = [&]() -> Task<void> {
    co_await eng.delay(1000);
    Process proc(cl.node(0).host);
    int t = co_await proc.socket(cl.node(0).tcp);
    co_await proc.connect(t, SockAddr{1, 11});
    int u = co_await proc.socket(cl.node(0).socks);
    co_await proc.connect(u, SockAddr{1, 12});
    co_await eng.delay(1'000'000);
    std::vector<std::uint8_t> msg(4, 9);
    co_await proc.write_all(u, msg);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run_until(100'000'000);
  EXPECT_EQ(ready_count, 1u);
}

}  // namespace
}  // namespace ulsocks::os
