// Tests for the correctness-tooling layer: the ULSOCKS_INVARIANT macro,
// the checker registry, the engine's always-on causality invariants, and
// end-to-end detection of deliberately corrupted protocol state.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "apps/cluster.hpp"
#include "check/invariant.hpp"
#include "check/registry.hpp"
#include "net/switch.hpp"
#include "sim/engine.hpp"
#include "sockets/control.hpp"
#include "sockets/substrate.hpp"

namespace ulsocks {
namespace {

using apps::Cluster;
using check::InvariantError;
using check::Registry;
using check::ScopedChecker;
using os::SockAddr;
using sim::Engine;
using sim::Task;

// ---------------------------------------------------------------------------
// The macro itself
// ---------------------------------------------------------------------------

TEST(Invariant, PassingConditionIsSilent) {
  EXPECT_NO_THROW(ULSOCKS_INVARIANT(1 + 1 == 2, "arithmetic works"));
}

TEST(Invariant, FailureCarriesConditionLocationAndMessage) {
  try {
    ULSOCKS_INVARIANT(2 + 2 == 5, check::msgf("checked %d values", 3));
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("checked 3 values"), std::string::npos) << what;
  }
}

TEST(Invariant, MessageIsNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("never needed");
  };
  ULSOCKS_INVARIANT(true, expensive());
  EXPECT_EQ(evaluations, 0);
}

TEST(Invariant, MsgfFormatsLikePrintf) {
  EXPECT_EQ(check::msgf("a=%d b=%s", 7, "x"), "a=7 b=x");
}

// ---------------------------------------------------------------------------
// Checker registry
// ---------------------------------------------------------------------------

TEST(CheckRegistry, RunsCheckersInRegistrationOrder) {
  Registry reg;
  std::vector<int> order;
  reg.add("first", [&] { order.push_back(1); });
  reg.add("second", [&] { order.push_back(2); });
  reg.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CheckRegistry, ViolationNamesTheFailingChecker) {
  Registry reg;
  reg.add("emp.credits", [] {
    ULSOCKS_INVARIANT(false, "credit count corrupted");
  });
  try {
    reg.run_all();
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("emp.credits"), std::string::npos) << what;
    EXPECT_NE(what.find("credit count corrupted"), std::string::npos) << what;
  }
}

TEST(CheckRegistry, ScopedCheckerDeregistersOnDestruction) {
  Registry reg;
  {
    ScopedChecker sc(reg, "temp", [] {});
    EXPECT_EQ(reg.size(), 1u);
  }
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_NO_THROW(reg.run_all());
}

// ---------------------------------------------------------------------------
// Engine causality invariants (always on, every build type)
// ---------------------------------------------------------------------------

TEST(EngineInvariants, SchedulingInThePastThrows) {
  Engine eng;
  eng.schedule_at(100, [&eng] {
    // now() == 100 inside this event; 50 is in the past.
    eng.schedule_at(50, [] {});
  });
  try {
    eng.run();
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("schedule_at in the past"),
              std::string::npos)
        << e.what();
  }
}

TEST(EngineInvariants, SchedulingAtNowIsAllowed) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] {
    eng.schedule_at(10, [&] { ++fired; });  // same instant: fine
  });
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineInvariants, CheckIntervalSweepsRegisteredCheckers) {
  Engine eng;
  eng.set_check_interval(1);
  int sweeps = 0;
  ScopedChecker sc(eng.checks(), "counter", [&] { ++sweeps; });
  for (int i = 0; i < 5; ++i) eng.schedule_at(10 * (i + 1), [] {});
  eng.run();
  EXPECT_EQ(sweeps, 5);
}

TEST(EngineInvariants, CheckIntervalZeroDisablesSweeping) {
  Engine eng;
  eng.set_check_interval(0);
  int sweeps = 0;
  ScopedChecker sc(eng.checks(), "counter", [&] { ++sweeps; });
  eng.schedule_at(10, [] {});
  eng.run();
  EXPECT_EQ(sweeps, 0);
}

// ---------------------------------------------------------------------------
// Switch invariants
// ---------------------------------------------------------------------------

TEST(SwitchInvariants, ConnectToOutOfRangePortThrows) {
  Engine eng;
  sim::CostModel model = sim::calibrated_cost_model();
  net::EthernetSwitch sw(eng, model.wire, 2);
  net::Link link(eng, model.wire);
  EXPECT_THROW(sw.connect(5, link, net::Link::Side::kA), InvariantError);
}

// ---------------------------------------------------------------------------
// End-to-end: deliberately corrupted protocol state is caught
// ---------------------------------------------------------------------------

// A rogue peer grants credits the receiver never consumed.  The substrate's
// credit-conservation checker (§6.1: send_credits can never exceed the
// negotiated window) must catch it within one checker sweep.
TEST(ProtocolCorruption, ForgedCreditAckTripsConservationChecker) {
  Engine eng;
  eng.set_check_interval(1);
  Cluster cluster(eng, sim::calibrated_cost_model(), 2);

  auto server = [](Cluster& c) -> Task<void> {
    auto& api = c.node(1).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 9100});
    co_await api.listen(ls, 2);
    int sd = co_await api.accept(ls, nullptr);
    // Forge a credit ack far beyond anything the client could be owed.
    // The client's connect() allocates the first local tag triple, so its
    // control channel is base 16 + 1 = 17.
    sockets::CtrlMsg forged;
    forged.type = sockets::CtrlType::kCreditAck;
    forged.a = 1000;
    auto h = co_await c.node(1).emp.post_send(0, 17,
                                              sockets::encode_ctrl(forged));
    (void)h;
    (void)sd;
  };
  auto client = [](Cluster& c) -> Task<void> {
    auto& api = c.node(0).socks;
    int sd = co_await api.socket();
    co_await api.connect(sd, SockAddr{1, 9100});
    // Keep reading: the pump drains the forged ack and applies it.
    std::vector<std::uint8_t> buf(64);
    (void)co_await api.read(sd, buf);
  };
  eng.spawn(server(cluster));
  eng.spawn(client(cluster));

  try {
    eng.run();
    FAIL() << "expected InvariantError from the credit checker";
  } catch (const InvariantError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("sockets.substrate"), std::string::npos) << what;
    EXPECT_NE(what.find("credit conservation"), std::string::npos) << what;
  }
}

// A rogue peer grants a piggy-backed credit return on a data message the
// receiver never paid a credit for.  Same conservation law, different
// protocol path (§6.1 piggy-backed returns ride the data header).
TEST(ProtocolCorruption, ForgedPiggybackCreditTripsChecker) {
  Engine eng;
  eng.set_check_interval(1);
  Cluster cluster(eng, sim::calibrated_cost_model(), 2);

  auto server = [](Cluster& c) -> Task<void> {
    auto& api = c.node(1).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 9101});
    co_await api.listen(ls, 2);
    int sd = co_await api.accept(ls, nullptr);
    (void)sd;
    // Forge an eager data message to the client's data tag (base 16)
    // whose header returns 500 credits that were never spent.
    std::vector<std::uint8_t> msg(sockets::kDataHeaderBytes + 8, 0);
    sockets::DataHeader h;
    h.piggyback_credits = 500;
    sockets::encode_data_header(h, msg.data());
    auto handle = co_await c.node(1).emp.post_send(0, 16, msg);
    (void)handle;
  };
  auto client = [](Cluster& c) -> Task<void> {
    auto& api = c.node(0).socks;
    int sd = co_await api.socket();
    co_await api.connect(sd, SockAddr{1, 9101});
    std::vector<std::uint8_t> buf(64);
    (void)co_await api.read(sd, buf);
  };
  eng.spawn(server(cluster));
  eng.spawn(client(cluster));

  try {
    eng.run();
    FAIL() << "expected InvariantError from the credit checker";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("credit conservation"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace ulsocks
