// Tests for the key-value store extension (the paper's §8 data-center
// future work), run over both stacks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/cluster.hpp"
#include "apps/kvstore.hpp"
#include "sim/engine.hpp"

namespace ulsocks::apps {
namespace {

using sim::Engine;
using sim::Task;

class KvTest : public ::testing::TestWithParam<Cluster::StackKind> {
 protected:
  KvTest() : cluster_(eng_, sim::calibrated_cost_model(), 2) {}
  os::SocketApi& stack(std::size_t n) { return cluster_.stack(n, GetParam()); }
  Engine eng_;
  Cluster cluster_;
};

std::vector<std::uint8_t> value_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST_P(KvTest, SetGetDelRoundTrip) {
  bool done = false;
  auto server = [&]() -> Task<void> {
    os::Process proc(cluster_.node(0).host);
    KvServerOptions opt;
    opt.max_connections = 1;
    co_await kv_server(proc, stack(0), opt);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    os::Process proc(cluster_.node(1).host);
    KvClient kv(proc, stack(1), 0);
    co_await kv.connect();

    EXPECT_EQ(co_await kv.set("alpha", value_of("one")), KvStatus::kOk);
    EXPECT_EQ(co_await kv.set("beta", value_of("two")), KvStatus::kOk);

    auto v = co_await kv.get("alpha");
    EXPECT_TRUE(v.has_value());
    if (v) EXPECT_EQ(*v, value_of("one"));

    EXPECT_FALSE((co_await kv.get("gamma")).has_value());

    EXPECT_EQ(co_await kv.del("alpha"), KvStatus::kOk);
    EXPECT_FALSE((co_await kv.get("alpha")).has_value());
    EXPECT_EQ(co_await kv.del("alpha"), KvStatus::kNotFound);

    // Overwrite.
    EXPECT_EQ(co_await kv.set("beta", value_of("TWO!")), KvStatus::kOk);
    auto w = co_await kv.get("beta");
    EXPECT_TRUE(w.has_value());
    if (w) EXPECT_EQ(*w, value_of("TWO!"));

    co_await kv.close();
    done = true;
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(done);
}

TEST_P(KvTest, LargeValuesSurvive) {
  bool done = false;
  std::vector<std::uint8_t> big(200'000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 101 + 13);
  }
  auto server = [&]() -> Task<void> {
    os::Process proc(cluster_.node(0).host);
    KvServerOptions opt;
    opt.max_connections = 1;
    co_await kv_server(proc, stack(0), opt);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    os::Process proc(cluster_.node(1).host);
    KvClient kv(proc, stack(1), 0);
    co_await kv.connect();
    EXPECT_EQ(co_await kv.set("blob", big), KvStatus::kOk);
    auto v = co_await kv.get("blob");
    EXPECT_TRUE(v.has_value());
    if (v) EXPECT_EQ(*v, big);
    co_await kv.close();
    done = true;
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(done);
}

TEST_P(KvTest, ManySmallOperations) {
  bool done = false;
  constexpr int kOps = 200;
  auto server = [&]() -> Task<void> {
    os::Process proc(cluster_.node(0).host);
    KvServerOptions opt;
    opt.max_connections = 1;
    co_await kv_server(proc, stack(0), opt);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    os::Process proc(cluster_.node(1).host);
    KvClient kv(proc, stack(1), 0);
    co_await kv.connect();
    for (int i = 0; i < kOps; ++i) {
      std::string key = "k" + std::to_string(i % 17);
      EXPECT_EQ(co_await kv.set(key, value_of(std::to_string(i))),
                KvStatus::kOk);
      auto v = co_await kv.get(key);
      EXPECT_TRUE(v.has_value());
      if (v) EXPECT_EQ(*v, value_of(std::to_string(i)));
    }
    co_await kv.close();
    done = true;
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster_.node(0).socks.active_socket_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothStacks, KvTest,
                         ::testing::Values(Cluster::StackKind::kTcp,
                                           Cluster::StackKind::kSubstrate),
                         [](const auto& info) {
                           return info.param == Cluster::StackKind::kTcp
                                      ? "KernelTcp"
                                      : "EmpSubstrate";
                         });

}  // namespace
}  // namespace ulsocks::apps
