// Tests for the kernel TCP-lite baseline: wire format, handshake, stream
// delivery, window limits, Nagle, teardown, resets and loss recovery.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "net/topology.hpp"
#include "nic/nic_device.hpp"
#include "oskernel/host.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "tcp/segment.hpp"
#include "tcp/tcp_stack.hpp"

namespace ulsocks::tcp {
namespace {

using os::SockAddr;
using os::SockErr;
using os::SocketError;
using sim::Engine;
using sim::Task;

TEST(Segment, RoundTrip) {
  Segment s;
  s.src_node = 1;
  s.dst_node = 2;
  s.src_port = 5000;
  s.dst_port = 80;
  s.seq = 0x123456789abcull;
  s.ack = 0xdeadbeefull;
  s.window = 65'000;
  s.flags = Flags{.syn = true, .ack = true};
  s.payload = {1, 2, 3, 4, 5};
  auto bytes = encode_segment(s);
  EXPECT_EQ(bytes.size(), kSegmentHeaderBytes + 5);
  auto d = decode_segment(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_port, 5000);
  EXPECT_EQ(d->seq, s.seq);
  EXPECT_EQ(d->ack, s.ack);
  EXPECT_EQ(d->window, s.window);
  EXPECT_EQ(d->flags, s.flags);
  EXPECT_EQ(d->payload, s.payload);
}

TEST(Segment, RejectsShort) {
  EXPECT_FALSE(decode_segment(std::vector<std::uint8_t>(10)).has_value());
}

class TcpPair : public ::testing::Test {
 protected:
  TcpPair() : model_(sim::calibrated_cost_model()), net_(eng_, model_.wire, 2) {
    for (std::uint16_t i = 0; i < 2; ++i) {
      host_[i] = std::make_unique<os::Host>(eng_, model_, i);
      nic_[i] = std::make_unique<nic::NicDevice>(
          eng_, model_, net_.host_link(i), net::StarNetwork::kHostSide,
          net::MacAddress::for_host(i));
      stack_[i] = std::make_unique<TcpStack>(
          eng_, model_, *host_[i], *nic_[i], [](std::uint16_t n) {
            return net::MacAddress::for_host(n);
          });
    }
  }

  static std::vector<std::uint8_t> pattern(std::size_t n,
                                           std::uint8_t seed = 1) {
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::uint8_t>(seed + i * 13);
    }
    return v;
  }

  Engine eng_;
  sim::CostModel model_;
  net::StarNetwork net_;
  std::unique_ptr<os::Host> host_[2];
  std::unique_ptr<nic::NicDevice> nic_[2];
  std::unique_ptr<TcpStack> stack_[2];
};

TEST_F(TcpPair, ConnectAcceptRoundTrip) {
  bool accepted = false;
  SockAddr peer{};
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 5);
    int cs = co_await stack_[1]->accept(ls, &peer);
    accepted = true;
    co_await stack_[1]->close(cs);
    co_await stack_[1]->close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack_[0]->socket();
    co_await stack_[0]->connect(s, SockAddr{1, 80});
    co_await stack_[0]->close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(accepted);
  EXPECT_EQ(peer.node, 0);  // client address travels with the connection
}

TEST_F(TcpPair, ConnectionTimeIsInPaperRange) {
  // Paper: TCP connection establishment is typically 200-250 us.
  sim::Time t0 = 0, t1 = 0;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 5);
    int cs = co_await stack_[1]->accept(ls, nullptr);
    (void)cs;
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack_[0]->socket();
    t0 = eng_.now();
    co_await stack_[0]->connect(s, SockAddr{1, 80});
    t1 = eng_.now();
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  double us = sim::to_us(t1 - t0);
  EXPECT_GT(us, 150.0);
  EXPECT_LT(us, 300.0);
}

TEST_F(TcpPair, ConnectRefusedWithoutListener) {
  bool refused = false;
  auto client = [&]() -> Task<void> {
    int s = co_await stack_[0]->socket();
    try {
      co_await stack_[0]->connect(s, SockAddr{1, 9999});
    } catch (const SocketError& e) {
      refused = e.code() == SockErr::kRefused;
    }
  };
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(refused);
}

TEST_F(TcpPair, StreamDataIntegrity) {
  auto data = pattern(100'000, 7);
  std::vector<std::uint8_t> received;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 5);
    int cs = co_await stack_[1]->accept(ls, nullptr);
    std::vector<std::uint8_t> buf(8192);
    for (;;) {
      std::size_t n = co_await stack_[1]->read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
    co_await stack_[1]->close(cs);
    co_await stack_[1]->close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack_[0]->socket();
    co_await stack_[0]->connect(s, SockAddr{1, 80});
    co_await stack_[0]->write_all(s, data);
    co_await stack_[0]->close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_EQ(received, data);
}

TEST_F(TcpPair, StreamAllowsArbitraryReadSizes) {
  auto data = pattern(10'000, 3);
  std::vector<std::uint8_t> received;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 5);
    int cs = co_await stack_[1]->accept(ls, nullptr);
    std::vector<std::uint8_t> buf(777);  // deliberately odd chunks
    for (;;) {
      std::size_t n = co_await stack_[1]->read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack_[0]->socket();
    co_await stack_[0]->connect(s, SockAddr{1, 80});
    // Writes in odd sizes too: message boundaries must not matter.
    std::size_t off = 0;
    while (off < data.size()) {
      std::size_t n = std::min<std::size_t>(333, data.size() - off);
      co_await stack_[0]->write_all(
          s, std::span<const std::uint8_t>(data).subspan(off, n));
      off += n;
    }
    co_await stack_[0]->close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_EQ(received, data);
}

TEST_F(TcpPair, BidirectionalSimultaneousWrites) {
  // Both sides write 48 KB then read 48 KB: kernel buffering must avoid
  // deadlock (the scenario the paper's Figure 7 shows deadlocking under a
  // naive rendezvous scheme).
  constexpr std::size_t kBytes = 49'152;
  int done = 0;
  auto side = [&](int me, int other_port, bool listen_side) -> Task<void> {
    int fd;
    if (listen_side) {
      int ls = co_await stack_[me]->socket();
      co_await stack_[me]->bind(ls, SockAddr{1, 80});
      co_await stack_[me]->listen(ls, 5);
      fd = co_await stack_[me]->accept(ls, nullptr);
    } else {
      co_await eng_.delay(10'000);
      fd = co_await stack_[me]->socket();
      co_await stack_[me]->connect(fd, SockAddr{1, 80});
    }
    (void)other_port;
    // write() first, read() second on BOTH sides.
    co_await stack_[me]->write_all(fd, pattern(kBytes));
    std::vector<std::uint8_t> buf(kBytes);
    co_await stack_[me]->read_exact(fd, buf);
    EXPECT_EQ(buf, pattern(kBytes));
    ++done;
  };
  eng_.spawn(side(1, 0, true));
  eng_.spawn(side(0, 80, false));
  eng_.run();
  EXPECT_EQ(done, 2);
}

TEST_F(TcpPair, ReadReturnsZeroAfterPeerClose) {
  bool got_eof = false;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 5);
    int cs = co_await stack_[1]->accept(ls, nullptr);
    std::vector<std::uint8_t> buf(64);
    std::size_t n = co_await stack_[1]->read(cs, buf);
    EXPECT_EQ(n, 4u);
    n = co_await stack_[1]->read(cs, buf);
    got_eof = n == 0;
    co_await stack_[1]->close(cs);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack_[0]->socket();
    co_await stack_[0]->connect(s, SockAddr{1, 80});
    co_await stack_[0]->write_all(s, pattern(4));
    co_await stack_[0]->close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(got_eof);
}

TEST_F(TcpPair, SmallSendBufferLimitsThroughput) {
  // The paper's Figure 13 point: 16 KB kernel buffers cap TCP well below
  // what larger buffers reach.
  auto run_with_bufs = [&](int bytes_buf) {
    double mbps = 0;
    constexpr std::size_t kTotal = 4 << 20;
    auto server = [&]() -> Task<void> {
      int ls = co_await stack_[1]->socket();
      co_await stack_[1]->bind(ls, SockAddr{1, 80});
      co_await stack_[1]->listen(ls, 5);
      int cs = co_await stack_[1]->accept(ls, nullptr);
      co_await stack_[1]->set_option(cs, os::SockOpt::kRcvBuf, bytes_buf);
      std::vector<std::uint8_t> buf(65'536);
      std::size_t total = 0;
      sim::Time t0 = eng_.now();
      for (;;) {
        std::size_t n = co_await stack_[1]->read(cs, buf);
        if (n == 0) break;
        total += n;
      }
      mbps = static_cast<double>(total) * 8.0 /
             sim::to_sec(eng_.now() - t0) / 1e6;
      co_await stack_[1]->close(cs);
      co_await stack_[1]->close(ls);
    };
    auto client = [&]() -> Task<void> {
      co_await eng_.delay(10'000);
      int s = co_await stack_[0]->socket();
      co_await stack_[0]->set_option(s, os::SockOpt::kSndBuf, bytes_buf);
      co_await stack_[0]->connect(s, SockAddr{1, 80});
      auto chunk = pattern(65'536);
      for (std::size_t sent = 0; sent < kTotal; sent += chunk.size()) {
        co_await stack_[0]->write_all(s, chunk);
      }
      co_await stack_[0]->close(s);
    };
    eng_.spawn(server());
    eng_.spawn(client());
    eng_.run();
    return mbps;
  };

  double small = run_with_bufs(16'384);
  double big = run_with_bufs(262'144);
  EXPECT_GT(big, small * 1.3);  // tuned buffers must clearly win
  EXPECT_GT(small, 150.0);
  EXPECT_LT(small, 450.0);
  EXPECT_GT(big, 450.0);
  EXPECT_LT(big, 700.0);
}

TEST_F(TcpPair, FourByteLatencyNearPaperBaseline) {
  // Paper: ~120 us one-way for 4-byte messages over kernel TCP.
  constexpr int kIters = 20;
  double one_way_us = 0;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 5);
    int cs = co_await stack_[1]->accept(ls, nullptr);
    co_await stack_[1]->set_option(cs, os::SockOpt::kNoDelay, 1);
    std::vector<std::uint8_t> buf(4);
    for (int i = 0; i < kIters; ++i) {
      co_await stack_[1]->read_exact(cs, buf);
      co_await stack_[1]->write_all(cs, buf);
    }
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack_[0]->socket();
    co_await stack_[0]->connect(s, SockAddr{1, 80});
    co_await stack_[0]->set_option(s, os::SockOpt::kNoDelay, 1);
    std::vector<std::uint8_t> buf(4);
    sim::Time t0 = eng_.now();
    for (int i = 0; i < kIters; ++i) {
      co_await stack_[0]->write_all(s, buf);
      co_await stack_[0]->read_exact(s, buf);
    }
    one_way_us = sim::to_us(eng_.now() - t0) / (2.0 * kIters);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_GT(one_way_us, 95.0);
  EXPECT_LT(one_way_us, 145.0);
}

TEST_F(TcpPair, RecoversFromFrameLoss) {
  net_.host_link(0).set_drop_policy(net::StarNetwork::kHostSide,
                                    net::drop_nth_policy({5, 9, 14}));
  auto data = pattern(50'000, 9);
  std::vector<std::uint8_t> received;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 5);
    int cs = co_await stack_[1]->accept(ls, nullptr);
    std::vector<std::uint8_t> buf(8192);
    for (;;) {
      std::size_t n = co_await stack_[1]->read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack_[0]->socket();
    co_await stack_[0]->connect(s, SockAddr{1, 80});
    co_await stack_[0]->write_all(s, data);
    co_await stack_[0]->close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_EQ(received, data);
  EXPECT_GT(stack_[0]->stats().retransmits, 0u);
}

TEST_F(TcpPair, BacklogOverflowRefusesConnection) {
  int refused = 0, connected = 0;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 2);
    // Never accepts: the backlog fills up.
    co_await eng_.delay(100'000'000);
  };
  auto client = [&](int idx) -> Task<void> {
    co_await eng_.delay(10'000 + idx * 1'000);
    int s = co_await stack_[0]->socket();
    try {
      co_await stack_[0]->connect(s, SockAddr{1, 80});
      ++connected;
    } catch (const SocketError&) {
      ++refused;
    }
  };
  eng_.spawn(server());
  for (int i = 0; i < 5; ++i) eng_.spawn(client(i));
  eng_.run();
  EXPECT_EQ(connected, 2);
  EXPECT_EQ(refused, 3);
}

TEST_F(TcpPair, ZeroWindowProbeUnsticksStalledReceiver) {
  // Receiver stops reading; sender fills the window and must probe until
  // the reader drains.
  bool all_received = false;
  auto data = pattern(60'000, 5);
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 5);
    int cs = co_await stack_[1]->accept(ls, nullptr);
    co_await eng_.delay(50'000'000);  // stall for 50 ms, window goes to 0
    std::vector<std::uint8_t> received;
    std::vector<std::uint8_t> buf(8192);
    for (;;) {
      std::size_t n = co_await stack_[1]->read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
    all_received = received == data;
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack_[0]->socket();
    co_await stack_[0]->connect(s, SockAddr{1, 80});
    co_await stack_[0]->write_all(s, data);
    co_await stack_[0]->close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(all_received);
}

TEST_F(TcpPair, ClosedConnectionsAreGarbageCollected) {
  auto server = [&]() -> Task<void> {
    int ls = co_await stack_[1]->socket();
    co_await stack_[1]->bind(ls, SockAddr{1, 80});
    co_await stack_[1]->listen(ls, 8);
    for (int i = 0; i < 5; ++i) {
      int cs = co_await stack_[1]->accept(ls, nullptr);
      std::vector<std::uint8_t> buf(16);
      std::size_t n = co_await stack_[1]->read(cs, buf);
      (void)n;
      co_await stack_[1]->close(cs);
    }
    co_await stack_[1]->close(ls);
  };
  auto client = [&]() -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await eng_.delay(10'000);
      int s = co_await stack_[0]->socket();
      co_await stack_[0]->connect(s, SockAddr{1, 80});
      co_await stack_[0]->write_all(s, pattern(16));
      co_await stack_[0]->close(s);
    }
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  // Give the gc linger time to pass, then drain.
  eng_.schedule_after(50'000'000, [] {});
  eng_.run();
  EXPECT_EQ(stack_[0]->live_socket_count(), 0u);
  EXPECT_EQ(stack_[1]->live_socket_count(), 0u);
}

// ---------------------------------------------------------------------------
// ByteRing: the snd_buf/rcv_buf backing store
// ---------------------------------------------------------------------------

TEST(ByteRing, FifoSemanticsWithIndexing) {
  ByteRing r;
  EXPECT_TRUE(r.empty());
  std::vector<std::uint8_t> a{1, 2, 3};
  std::vector<std::uint8_t> b{4, 5};
  r.append(a);
  r.append(b);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[4], 5);
  r.pop_front(2);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 3);
  EXPECT_EQ(r.data()[2], 5) << "live bytes must stay contiguous";
  r.pop_front(3);
  EXPECT_TRUE(r.empty());
}

TEST(ByteRing, DrainInSmallReadsNeverGoesQuadratic) {
  // The regression this guards: a front-erase that shifts the remaining
  // bytes on every pop makes draining N bytes in k-byte reads move
  // O(N^2/k) bytes total.  ByteRing's compact-when-dead>=live policy
  // bounds lifetime byte moves by lifetime bytes appended, so a 1000-read
  // drain moves each byte at most once.
  ByteRing r;
  constexpr std::size_t kReads = 1000;
  constexpr std::size_t kReadSize = 64;
  std::vector<std::uint8_t> chunk(kReadSize, 0xcd);
  for (std::size_t i = 0; i < kReads; ++i) r.append(chunk);
  ASSERT_EQ(r.appended(), kReads * kReadSize);
  for (std::size_t i = 0; i < kReads; ++i) r.pop_front(kReadSize);
  EXPECT_TRUE(r.empty());
  EXPECT_LE(r.moved(), r.appended())
      << "compaction moved more bytes than were ever appended: the "
         "quadratic front-erase blowup is back";
}

TEST(ByteRing, InterleavedAppendPopKeepsLinearMoves) {
  // Steady-state streaming shape: the window fills, acks trim the front,
  // more data lands.  Total moves must stay bounded by total appends even
  // when the ring never fully drains between rounds.
  ByteRing r;
  std::vector<std::uint8_t> chunk(1460);
  std::iota(chunk.begin(), chunk.end(), 0);
  std::size_t popped = 0;
  for (int round = 0; round < 500; ++round) {
    r.append(chunk);
    if (r.size() > 4 * 1460) {
      r.pop_front(1460);
      popped += 1460;
    }
  }
  while (!r.empty()) {
    std::size_t n = std::min<std::size_t>(97, r.size());
    r.pop_front(n);
    popped += n;
  }
  EXPECT_EQ(popped, r.appended());
  EXPECT_LE(r.moved(), r.appended());
}

// decode_segment_frame must gather identically from an all-inline frame
// and from a header+slice frame (the sliced TX path's wire form).
TEST(Segment, FrameDecodeGathersInlineAndSlicedIdentically) {
  Segment s;
  s.src_node = 1;
  s.dst_node = 2;
  s.src_port = 4242;
  s.dst_port = 80;
  s.seq = 1000;
  s.ack = 2000;
  s.window = 8192;
  s.flags = Flags{.ack = true};
  s.payload.resize(500);
  std::iota(s.payload.begin(), s.payload.end(), 0);

  net::Frame inline_frame;
  encode_segment_into(s, inline_frame.payload);

  net::Frame sliced_frame;
  encode_segment_header_into(s, sliced_frame.payload);
  EXPECT_EQ(sliced_frame.payload.size(), kSegmentHeaderBytes);
  sliced_frame.slices.push_back(net::PayloadSlice::adopt(s.payload));

  EXPECT_EQ(inline_frame.payload_bytes(), sliced_frame.payload_bytes());
  auto a = decode_segment_frame(inline_frame);
  auto b = decode_segment_frame(sliced_frame);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->seq, b->seq);
  EXPECT_EQ(a->flags, b->flags);
  EXPECT_EQ(a->payload, b->payload);
  EXPECT_EQ(a->payload, s.payload);
}

}  // namespace
}  // namespace ulsocks::tcp
