// Tests for the unified observability layer: metrics registry math,
// snapshot determinism, stats structs as thin views over the registry, and
// the timeline tracer's cross-layer span export.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "apps/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/engine.hpp"
#include "sockets/config.hpp"
#include "sockets/substrate.hpp"
#include "tcp/tcp_stack.hpp"

namespace ulsocks::obs {
namespace {

using apps::Cluster;
using os::SockAddr;
using sim::Engine;
using sim::Task;

TEST(Counter, IncrementForms) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  ++c;
  c.inc();
  c.inc(3);
  c += 5;
  EXPECT_EQ(c.value(), 10u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Histogram, BucketsAndSummary) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  for (std::uint64_t v : {0ul, 1ul, 2ul, 3ul, 4ul, 1000ul}) h.observe(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1010.0 / 6.0);
  // Log buckets: 0 and 1 share bucket 0; [2,4) bucket 1..2; 1000 in
  // [512,1024) = bucket 9.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(1000), 9u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  // p99 covers the largest observation's bucket bound; p50 a small one.
  EXPECT_GE(h.quantile_bound(0.99), 1000u);
  EXPECT_LE(h.quantile_bound(0.5), 8u);
}

TEST(Registry, SamePathSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("h0/x/events");
  Counter& b = reg.counter("h0/x/events");
  EXPECT_EQ(&a, &b);
  ++a;
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, SnapshotExpandsHistogramsAndOrders) {
  Registry reg;
  reg.counter("h0/layer/c").inc(5);
  reg.gauge("h0/layer/g").set(-2);
  auto& h = reg.histogram("h0/layer/h");
  h.observe(3);
  h.observe(100);
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("h0/layer/c"), 5);
  EXPECT_EQ(snap.at("h0/layer/g"), -2);
  EXPECT_EQ(snap.at("h0/layer/h/count"), 2);
  EXPECT_EQ(snap.at("h0/layer/h/sum"), 103);
  EXPECT_EQ(snap.at("h0/layer/h/min"), 3);
  EXPECT_EQ(snap.at("h0/layer/h/max"), 100);
  EXPECT_TRUE(snap.count("h0/layer/h/p50"));
  EXPECT_TRUE(snap.count("h0/layer/h/p99"));
  // Prefix-restricted view.
  auto sub = reg.snapshot("h0/layer/h");
  EXPECT_EQ(sub.size(), 6u);
  EXPECT_FALSE(sub.count("h0/layer/c"));
}

TEST(Scope, PrependsPrefix) {
  Registry reg;
  Scope scope(reg, "h3/emp");
  ++scope.counter("acks_tx");
  EXPECT_EQ(reg.snapshot().at("h3/emp/acks_tx"), 1);
}

/// Two-node socket ping-pong over the substrate; every protocol layer
/// (sockets, EMP, NIC, switch) contributes registry counters and — when the
/// tracer is on — timeline spans.
void run_ping_pong(Engine& eng, int rounds = 8,
                   std::size_t msg_bytes = 512) {
  Cluster cl(eng, sim::calibrated_cost_model(), 2,
             sockets::preset("ds_da_uq").cfg);
  auto server = [&cl, rounds, msg_bytes]() -> Task<void> {
    auto& api = cl.node(1).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 80});
    co_await api.listen(ls, 2);
    int cs = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(msg_bytes);
    for (int i = 0; i < rounds; ++i) {
      co_await api.read_exact(cs, buf);
      co_await api.write_all(cs, buf);
    }
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&cl, &eng, rounds, msg_bytes]() -> Task<void> {
    auto& api = cl.node(0).socks;
    co_await eng.delay(10'000);
    int s = co_await api.socket();
    co_await api.connect(s, SockAddr{1, 80});
    std::vector<std::uint8_t> buf(msg_bytes, 0x42);
    for (int i = 0; i < rounds; ++i) {
      co_await api.write_all(s, buf);
      co_await api.read_exact(s, buf);
    }
    co_await api.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
}

TEST(Snapshot, DeterministicAcrossIdenticalRuns) {
  std::map<std::string, std::int64_t> snaps[2];
  for (auto& snap : snaps) {
    Engine eng;
    run_ping_pong(eng);
    snap = eng.metrics().snapshot();
  }
  EXPECT_FALSE(snaps[0].empty());
  EXPECT_EQ(snaps[0], snaps[1]);
}

TEST(Snapshot, CoversEveryLayerOnBothHosts) {
  Engine eng;
  run_ping_pong(eng);
  auto snap = eng.metrics().snapshot();
  for (const char* prefix :
       {"h0/sockets/", "h0/emp/", "h0/nic/", "h1/sockets/", "h1/emp/",
        "h1/nic/", "net/switch/"}) {
    EXPECT_FALSE(eng.metrics().snapshot(prefix).empty())
        << "no metrics under " << prefix;
  }
  // Spot checks: the workload moved real frames.
  EXPECT_GT(snap.at("h0/emp/data_frames_tx"), 0);
  EXPECT_GT(snap.at("h1/nic/frames_rx"), 0);
  EXPECT_GT(snap.at("net/switch/frames_forwarded"), 0);
  // The new latency histograms observed the workload.
  EXPECT_GT(snap.at("h1/emp/tag_walk_len/count"), 0);
  EXPECT_GT(snap.at("h1/emp/desc_queue_depth/count"), 0);
}

TEST(StatsViews, AgreeWithRegistryAfterPingPong) {
  Engine eng;
  Cluster cl(eng, sim::calibrated_cost_model(), 2,
             sockets::preset("ds_da_uq").cfg);
  auto server = [&]() -> Task<void> {
    auto& api = cl.node(1).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 80});
    co_await api.listen(ls, 2);
    int cs = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(256);
    for (int i = 0; i < 4; ++i) {
      co_await api.read_exact(cs, buf);
      co_await api.write_all(cs, buf);
    }
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& api = cl.node(0).socks;
    co_await eng.delay(10'000);
    int s = co_await api.socket();
    co_await api.connect(s, SockAddr{1, 80});
    std::vector<std::uint8_t> buf(256, 7);
    for (int i = 0; i < 4; ++i) {
      co_await api.write_all(s, buf);
      co_await api.read_exact(s, buf);
    }
    co_await api.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();

  auto snap = eng.metrics().snapshot();
  const auto as_u64 = [&](const char* path) {
    return static_cast<std::uint64_t>(snap.at(path));
  };

  sockets::SubstrateStats ss = cl.node(0).socks.stats();
  EXPECT_EQ(ss.connections_initiated,
            as_u64("h0/sockets/connections_initiated"));
  EXPECT_EQ(ss.eager_messages_tx, as_u64("h0/sockets/eager_messages_tx"));
  EXPECT_EQ(ss.closes_tx, as_u64("h0/sockets/closes_tx"));
  EXPECT_GT(ss.eager_messages_tx, 0u);

  sockets::SubstrateStats srv = cl.node(1).socks.stats();
  EXPECT_EQ(srv.connections_accepted,
            as_u64("h1/sockets/connections_accepted"));
  EXPECT_EQ(srv.connections_accepted, 1u);

  emp::EmpStats es = cl.node(0).emp.stats();
  EXPECT_EQ(es.sends_posted, as_u64("h0/emp/sends_posted"));
  EXPECT_EQ(es.data_frames_tx, as_u64("h0/emp/data_frames_tx"));
  EXPECT_EQ(es.acks_rx, as_u64("h0/emp/acks_rx"));
  EXPECT_EQ(es.descriptors_walked, as_u64("h0/emp/descriptors_walked"));
  EXPECT_GT(es.data_frames_tx, 0u);
}

TEST(StatsViews, TcpAgreesWithRegistryAfterPingPong) {
  Engine eng;
  Cluster cl(eng, sim::calibrated_cost_model(), 2);
  auto server = [&]() -> Task<void> {
    auto& api = cl.node(1).tcp;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 80});
    co_await api.listen(ls, 2);
    int cs = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(128);
    for (int i = 0; i < 4; ++i) {
      co_await api.read_exact(cs, buf);
      co_await api.write_all(cs, buf);
    }
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& api = cl.node(0).tcp;
    co_await eng.delay(10'000);
    int s = co_await api.socket();
    co_await api.connect(s, SockAddr{1, 80});
    std::vector<std::uint8_t> buf(128, 3);
    for (int i = 0; i < 4; ++i) {
      co_await api.write_all(s, buf);
      co_await api.read_exact(s, buf);
    }
    co_await api.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();

  auto snap = eng.metrics().snapshot();
  const auto as_u64 = [&](const char* path) {
    return static_cast<std::uint64_t>(snap.at(path));
  };
  tcp::TcpStats ts = cl.node(0).tcp.stats();
  EXPECT_EQ(ts.segments_tx, as_u64("h0/tcp/segments_tx"));
  EXPECT_EQ(ts.bytes_tx, as_u64("h0/tcp/bytes_tx"));
  EXPECT_EQ(ts.segments_rx, as_u64("h0/tcp/segments_rx"));
  EXPECT_EQ(ts.interrupts, as_u64("h0/tcp/interrupts"));
  EXPECT_GT(ts.segments_tx, 0u);
  EXPECT_GT(ts.interrupts, 0u);
}

TEST(Timeline, PingPongSpansCrossLayersWithMonotoneTimestamps) {
  Engine eng;
  eng.tracer().set_enabled(true);
  run_ping_pong(eng, /*rounds=*/4);
  const auto& events = eng.tracer().events();
  ASSERT_FALSE(events.empty());

  // Timestamps are simulated time: bounded by the run and never negative.
  for (const TraceEvent& e : events) {
    EXPECT_LE(e.ts, eng.now());
    EXPECT_LE(e.ts + e.dur, eng.now());
  }

  // track() re-resolves existing (host, component) pairs to the same id.
  const std::uint32_t trk_socks = eng.tracer().track("h0", "sockets");
  const std::uint32_t trk_emp = eng.tracer().track("h0", "emp");
  const std::uint32_t trk_nic = eng.tracer().track("h0", "nic");
  const std::uint32_t trk_switch = eng.tracer().track("net", "switch");

  // First occurrence of a layer's signature event at or after `from` (the
  // connect handshake also posts EMP sends, so each lower-layer event is
  // searched from the upper layer's timestamp onward).
  auto first_ts_from = [&](std::uint32_t trk, std::string_view name,
                           sim::Time from) {
    for (const TraceEvent& e : events) {
      if (e.track == trk && e.name == name && e.ts >= from) return e.ts;
    }
    ADD_FAILURE() << "no event " << name << " on track " << trk
                  << " at or after t=" << from;
    return sim::Time{0};
  };
  // One send crosses substrate -> EMP -> NIC -> switch in causal order.
  const sim::Time t_write = first_ts_from(trk_socks, "write", 0);
  const sim::Time t_send = first_ts_from(trk_emp, "post_send", t_write);
  const sim::Time t_mac = first_ts_from(trk_nic, "mac_tx", t_send);
  const sim::Time t_fwd = first_ts_from(trk_switch, "forward", t_mac);
  EXPECT_LE(t_write, t_send);
  EXPECT_LE(t_send, t_mac);
  EXPECT_LE(t_mac, t_fwd);
  EXPECT_LT(t_fwd, eng.now());

  // Per-track begin/end style sanity for complete spans: durations are
  // non-negative and the event stream is in recording order.
  sim::Time prev = 0;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.ts, 0u);
    (void)prev;
    prev = e.ts;
  }

  // The export is a loadable Chrome trace document.
  std::string json = eng.tracer().to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(Timeline, DisabledTracerRecordsNothing) {
  Engine eng;
  run_ping_pong(eng, /*rounds=*/2);
  EXPECT_TRUE(eng.tracer().events().empty());
}

TEST(JsonEscape, EscapesControlAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_escape("plain"), "plain");
}

}  // namespace
}  // namespace ulsocks::obs
