// Property: protocol CORRECTNESS is independent of the cost model.
//
// cost_model.hpp promises that changing a constant changes timing only.
// These tests re-run the full substrate data path under deliberately
// distorted machine models — a NIC 20x slower than the wire, a host with
// glacial memcpy, free syscalls — and assert byte-exact delivery, orderly
// teardown and zero resource leaks every time.
#include <gtest/gtest.h>

#include <vector>

#include "apps/cluster.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace ulsocks {
namespace {

using apps::Cluster;
using os::SockAddr;
using sim::Engine;
using sim::Task;

sim::CostModel slow_nic_model() {
  auto m = sim::calibrated_cost_model();
  m.nic.fw_tx_frame_ns = 150'000;
  m.nic.fw_rx_frame_ns = 250'000;  // rx 20x slower than the wire
  m.nic.fw_tx_frame_per_byte_ns = 0;
  m.nic.fw_rx_frame_per_byte_ns = 0;
  m.nic.tag_match_per_desc_ns = 20'000;
  return m;
}

sim::CostModel slow_host_model() {
  auto m = sim::calibrated_cost_model();
  m.host.memcpy_bytes_per_us = 2.0;  // 2 MB/s memcpy
  m.host.syscall_ns = 300'000;
  m.host.pin_region_ns = 2'000'000;
  return m;
}

sim::CostModel free_everything_model() {
  auto m = sim::calibrated_cost_model();
  m.host = sim::HostCosts{};
  m.host.syscall_ns = 0;
  m.host.memcpy_setup_ns = 0;
  m.host.memcpy_bytes_per_us = 1e9;
  m.nic.fw_tx_frame_ns = 1;
  m.nic.fw_rx_frame_ns = 1;
  m.nic.fw_tx_frame_per_byte_ns = 0;
  m.nic.fw_rx_frame_per_byte_ns = 0;
  m.nic.mailbox_post_ns = 1;
  m.nic.fw_tx_post_ns = 1;
  m.nic.fw_rx_post_ns = 1;
  m.nic.tag_match_per_desc_ns = 1;
  return m;
}

sim::CostModel slow_wire_model() {
  auto m = sim::calibrated_cost_model();
  m.wire.link_bps = 10'000'000;  // 10 Mb/s Ethernet
  m.wire.switch_latency_ns = 400'000;
  return m;
}

struct Distortion {
  const char* name;
  sim::CostModel model;
};

class ModelInvariance : public ::testing::TestWithParam<int> {};

sim::CostModel model_for(int which) {
  switch (which) {
    case 0:
      return slow_nic_model();
    case 1:
      return slow_host_model();
    case 2:
      return free_everything_model();
    default:
      return slow_wire_model();
  }
}

TEST_P(ModelInvariance, SubstrateTransferStaysCorrect) {
  auto model = model_for(GetParam());
  Engine eng;
  Cluster cl(eng, model, 2);

  std::vector<std::uint8_t> data(40'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 17 + 3);
  }
  std::vector<std::uint8_t> received;
  bool eof = false;

  auto server = [&]() -> Task<void> {
    auto& api = cl.node(1).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 80});
    co_await api.listen(ls, 1);
    int cs = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(7'001);
    for (;;) {
      std::size_t n = co_await api.read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
    eof = true;
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& api = cl.node(0).socks;
    co_await eng.delay(1000);
    int s = co_await api.socket();
    co_await api.connect(s, SockAddr{1, 80});
    co_await api.write_all(s, data);
    co_await api.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();

  EXPECT_TRUE(eof);
  EXPECT_EQ(received, data);
  EXPECT_EQ(cl.node(0).socks.active_socket_count(), 0u);
  EXPECT_EQ(cl.node(1).socks.active_socket_count(), 0u);
  EXPECT_EQ(cl.node(0).emp.posted_descriptor_count(), 0u);
  EXPECT_EQ(cl.node(1).emp.posted_descriptor_count(), 0u);
}

TEST_P(ModelInvariance, TcpTransferStaysCorrect) {
  auto model = model_for(GetParam());
  Engine eng;
  Cluster cl(eng, model, 2);

  std::vector<std::uint8_t> data(30'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 23 + 1);
  }
  std::vector<std::uint8_t> received;

  auto server = [&]() -> Task<void> {
    auto& api = cl.node(1).tcp;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 80});
    co_await api.listen(ls, 1);
    int cs = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(4'096);
    for (;;) {
      std::size_t n = co_await api.read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& api = cl.node(0).tcp;
    co_await eng.delay(1000);
    int s = co_await api.socket();
    co_await api.connect(s, SockAddr{1, 80});
    co_await api.write_all(s, data);
    co_await api.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  EXPECT_EQ(received, data);
}

std::string distortion_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"SlowNic", "SlowHost",
                                       "FreeEverything", "SlowWire"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Distortions, ModelInvariance,
                         ::testing::Values(0, 1, 2, 3), distortion_name);

}  // namespace
}  // namespace ulsocks
