// Tests for the sockets-over-EMP substrate: connection management, stream
// and datagram semantics, credit flow control, rendezvous, delayed acks,
// the unexpected-queue option, resource reclamation and select().
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/cluster.hpp"
#include "sim/engine.hpp"
#include "sockets/config.hpp"
#include "sockets/control.hpp"
#include "sockets/substrate.hpp"

namespace ulsocks::sockets {
namespace {

using apps::Cluster;
using os::SockAddr;
using os::SockErr;
using os::SocketError;
using sim::Engine;
using sim::Task;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 11);
  }
  return v;
}

TEST(ControlWire, CtrlRoundTrip) {
  CtrlMsg m;
  m.type = CtrlType::kRendReq;
  m.a = 123456;
  m.b = 77;
  m.c = 0xdeadbeef;
  auto bytes = encode_ctrl(m);
  EXPECT_EQ(bytes.size(), kCtrlBytes);
  auto d = decode_ctrl(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, CtrlType::kRendReq);
  EXPECT_EQ(d->a, 123456u);
  EXPECT_EQ(d->b, 77u);
  EXPECT_EQ(d->c, 0xdeadbeefu);
}

TEST(ControlWire, ConnRequestRoundTrip) {
  ConnRequest r;
  r.client_node = 3;
  r.client_port = 40001;
  r.data_tag = 19;
  r.ctrl_tag = 20;
  r.rend_tag = 21;
  r.credits = 32;
  r.buffer_bytes = 65536;
  auto bytes = encode_conn_request(r);
  auto d = decode_conn_request(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, r);
}

TEST(ControlWire, DataHeaderRoundTrip) {
  DataHeader h;
  h.piggyback_credits = 513;
  h.flags = 7;
  std::uint8_t buf[4];
  encode_data_header(h, buf);
  auto d = decode_data_header(buf);
  EXPECT_EQ(d.piggyback_credits, 513);
  EXPECT_EQ(d.flags, 7);
}

TEST(Config, PresetsMatchPaperLabels) {
  auto ds = preset_ds();
  EXPECT_FALSE(ds.delayed_acks);
  EXPECT_FALSE(ds.unexpected_queue_acks);
  EXPECT_EQ(ds.ctrl_descriptors(), ds.credits);  // the "2N" layout
  auto da = preset_ds_da();
  EXPECT_TRUE(da.delayed_acks);
  EXPECT_EQ(da.ctrl_descriptors(), 2u);
  EXPECT_EQ(da.ack_every(), 16u);  // half of 32 credits
  auto uq = preset_ds_da_uq();
  EXPECT_EQ(uq.ctrl_descriptors(), 0u);
  auto dg = preset_dg();
  EXPECT_FALSE(dg.data_streaming);
}

class SubstratePair : public ::testing::TestWithParam<SubstrateConfig> {
 protected:
  SubstratePair() : cluster_(eng_, sim::calibrated_cost_model(), 2,
                             GetParam()) {}

  EmpSocketStack& stack(int i) { return cluster_.node(static_cast<std::size_t>(i)).socks; }

  Engine eng_;
  Cluster cluster_;
};

// The core end-to-end property, run under every paper configuration (DS,
// DS_DA, DS_DA_UQ, DG, rendezvous): connect, exchange patterned data both
// ways, close, and leak nothing.
TEST_P(SubstratePair, ConnectTransferClose) {
  const auto data = pattern(10'000, 5);
  std::vector<std::uint8_t> received;
  SockAddr peer{};
  bool server_saw_eof = false;

  auto server = [&]() -> Task<void> {
    int ls = co_await stack(1).socket();
    co_await stack(1).bind(ls, SockAddr{1, 80});
    co_await stack(1).listen(ls, 4);
    int cs = co_await stack(1).accept(ls, &peer);
    // Big enough for one whole message: under datagram semantics a short
    // buffer would (correctly) truncate.
    std::vector<std::uint8_t> buf(10'000);
    for (;;) {
      std::size_t n = co_await stack(1).read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
    server_saw_eof = true;
    co_await stack(1).close(cs);
    co_await stack(1).close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack(0).socket();
    co_await stack(0).connect(s, SockAddr{1, 80});
    co_await stack(0).write_all(s, data);
    co_await stack(0).close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();

  EXPECT_TRUE(server_saw_eof);
  EXPECT_EQ(received, data);
  EXPECT_EQ(peer.node, 0);  // §5.1: the client's identity is preserved
  // §5.3: all descriptors reclaimed, active socket tables empty.
  EXPECT_EQ(stack(0).active_socket_count(), 0u);
  EXPECT_EQ(stack(1).active_socket_count(), 0u);
  EXPECT_EQ(cluster_.node(0).emp.posted_descriptor_count(), 0u);
  EXPECT_EQ(cluster_.node(1).emp.posted_descriptor_count(), 0u);
}

SubstrateConfig rendezvous_cfg() {
  SubstrateConfig c = preset_ds_da_uq();
  c.flow = FlowControl::kRendezvous;
  return c;
}

SubstrateConfig small_credit_cfg() {
  SubstrateConfig c = preset_ds_da_uq();
  c.credits = 2;
  c.buffer_bytes = 1024;
  return c;
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, SubstratePair,
    ::testing::Values(preset_ds(), preset_ds_da(), preset_ds_da_uq(),
                      preset_dg(), rendezvous_cfg(), small_credit_cfg()));

class SubstrateTest : public ::testing::Test {
 protected:
  SubstrateTest() : cluster_(eng_, sim::calibrated_cost_model(), 2) {}
  EmpSocketStack& stack(int i) { return cluster_.node(static_cast<std::size_t>(i)).socks; }
  Engine eng_;
  Cluster cluster_;
};

TEST_F(SubstrateTest, StreamSemanticsAcrossMessageBoundaries) {
  // The paper's data-streaming option: 10 bytes written at once can be read
  // as two sets of 5 bytes.
  bool done = false;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack(1).socket();
    co_await stack(1).bind(ls, SockAddr{1, 80});
    co_await stack(1).listen(ls, 1);
    int cs = co_await stack(1).accept(ls, nullptr);
    std::vector<std::uint8_t> a(5), b(5);
    co_await stack(1).read_exact(cs, a);
    co_await stack(1).read_exact(cs, b);
    auto expect = pattern(10, 1);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), expect.begin()));
    EXPECT_TRUE(std::equal(b.begin(), b.end(), expect.begin() + 5));
    done = true;
    co_await stack(1).close(cs);
    co_await stack(1).close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    int s = co_await stack(0).socket();
    co_await stack(0).connect(s, SockAddr{1, 80});
    co_await stack(0).write_all(s, pattern(10, 1));
    co_await stack(0).close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(done);
}

TEST_F(SubstrateTest, DatagramPreservesMessageBoundaries) {
  // Datagram sockets: one message per read, remainder truncated.
  int reads = 0;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack(1).socket();
    co_await stack(1).bind(ls, SockAddr{1, 80});
    co_await stack(1).listen(ls, 1);
    co_await stack(1).set_option(ls, os::SockOpt::kDatagram, 1);
    int cs = co_await stack(1).accept(ls, nullptr);
    std::vector<std::uint8_t> buf(100);
    // Two 40-byte messages: each read returns exactly one.
    std::size_t n1 = co_await stack(1).read(cs, buf);
    EXPECT_EQ(n1, 40u);
    std::size_t n2 = co_await stack(1).read(cs, buf);
    EXPECT_EQ(n2, 40u);
    reads = 2;
    co_await stack(1).close(cs);
    co_await stack(1).close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    int s = co_await stack(0).socket();
    co_await stack(0).set_option(s, os::SockOpt::kDatagram, 1);
    co_await stack(0).connect(s, SockAddr{1, 80});
    std::size_t n = co_await stack(0).write(s, pattern(40, 1));
    EXPECT_EQ(n, 40u);
    n = co_await stack(0).write(s, pattern(40, 2));
    EXPECT_EQ(n, 40u);
    co_await stack(0).close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_EQ(reads, 2);
}

TEST_F(SubstrateTest, DatagramLargeMessageUsesZeroCopyRendezvous) {
  // DG writes above the temporary-buffer size switch to rendezvous (§6.2).
  const auto big = pattern(300'000, 3);
  std::vector<std::uint8_t> rx(300'000);
  bool ok = false;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack(1).socket();
    co_await stack(1).bind(ls, SockAddr{1, 80});
    co_await stack(1).listen(ls, 1);
    co_await stack(1).set_option(ls, os::SockOpt::kDatagram, 1);
    int cs = co_await stack(1).accept(ls, nullptr);
    std::size_t n = co_await stack(1).read(cs, rx);
    EXPECT_EQ(n, big.size());
    ok = rx == big;
    co_await stack(1).close(cs);
    co_await stack(1).close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    int s = co_await stack(0).socket();
    co_await stack(0).set_option(s, os::SockOpt::kDatagram, 1);
    co_await stack(0).connect(s, SockAddr{1, 80});
    std::size_t n = co_await stack(0).write(s, big);
    EXPECT_EQ(n, big.size());
    co_await stack(0).close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(ok);
  EXPECT_GE(stack(0).stats().rendezvous_messages_tx, 1u);
}

TEST_F(SubstrateTest, ConnectRefusedWithoutListener) {
  bool refused = false;
  auto client = [&]() -> Task<void> {
    int s = co_await stack(0).socket();
    try {
      co_await stack(0).connect(s, SockAddr{1, 4242});
    } catch (const SocketError& e) {
      refused = e.code() == SockErr::kRefused;
    }
  };
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(refused);
  EXPECT_EQ(stack(0).active_socket_count(), 0u);
}

TEST_F(SubstrateTest, ConnectionTimeIsOneMessageExchange) {
  // §7.4: substrate connection setup is one message exchange plus the
  // descriptor posting on each side (which is why the paper drops to 4
  // credits for the web server); with 4 credits it lands far below TCP's
  // 200-250 us kernel-mediated handshake.
  auto measure = [&](std::uint32_t credits) {
    SubstrateConfig cfg = preset_ds_da_uq();
    cfg.credits = credits;
    Engine eng;
    Cluster cl(eng, sim::calibrated_cost_model(), 2, cfg);
    sim::Time t0 = 0, t1 = 0;
    auto server = [&]() -> Task<void> {
      auto& st = cl.node(1).socks;
      int ls = co_await st.socket();
      co_await st.bind(ls, SockAddr{1, 80});
      co_await st.listen(ls, 1);
      // Two connections: the second measures steady state (buffers pooled
      // and pinned, translation cache warm).
      for (int i = 0; i < 2; ++i) {
        int cs = co_await st.accept(ls, nullptr);
        co_await st.close(cs);
      }
    };
    auto client = [&]() -> Task<void> {
      auto& st = cl.node(0).socks;
      co_await eng.delay(10'000);
      int warm = co_await st.socket();
      co_await st.connect(warm, SockAddr{1, 80});
      co_await st.close(warm);
      co_await eng.delay(1'000'000);
      int s = co_await st.socket();
      t0 = eng.now();
      co_await st.connect(s, SockAddr{1, 80});
      t1 = eng.now();
    };
    eng.spawn(server());
    eng.spawn(client());
    eng.run_until(50'000'000);
    return sim::to_us(t1 - t0);
  };
  double us4 = measure(4);
  double us32 = measure(32);
  EXPECT_GT(us4, 30.0);
  EXPECT_LT(us4, 160.0);   // well under TCP's ~230 us
  EXPECT_GT(us32, us4);    // §7.4: descriptor posting cost grows with N
}

TEST_F(SubstrateTest, CreditExhaustionBlocksWriterUntilReaderDrains) {
  // With N credits, at most N eager messages can be outstanding; the
  // writer must block on the (N+1)th until the reader consumes one.
  SubstrateConfig cfg = preset_ds_da_uq();
  cfg.credits = 4;
  cfg.buffer_bytes = 1024;
  Engine eng;
  Cluster cl(eng, sim::calibrated_cost_model(), 2, cfg);

  sim::Time writer_blocked_until = 0;
  auto server = [&]() -> Task<void> {
    auto& st = cl.node(1).socks;
    int ls = co_await st.socket();
    co_await st.bind(ls, SockAddr{1, 80});
    co_await st.listen(ls, 1);
    int cs = co_await st.accept(ls, nullptr);
    // Do not read for 5 ms: the writer exhausts its 4 credits.
    co_await eng.delay(5'000'000);
    std::vector<std::uint8_t> buf(1024);
    for (int i = 0; i < 6; ++i) {
      co_await st.read_exact(cs, buf);
    }
    co_await st.close(cs);
    co_await st.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& st = cl.node(0).socks;
    co_await eng.delay(1000);
    int s = co_await st.socket();
    co_await st.connect(s, SockAddr{1, 80});
    auto chunk = pattern(1024);
    for (int i = 0; i < 6; ++i) {
      co_await st.write_all(s, chunk);
    }
    writer_blocked_until = eng.now();
    co_await st.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  // The writer cannot have finished before the reader started draining.
  EXPECT_GT(writer_blocked_until, 5'000'000u);
}

TEST_F(SubstrateTest, RendezvousMutualWriteDeadlocks) {
  // Figure 7: with the rendezvous scheme, write()-then-read() on both
  // sides deadlocks.  The substrate faithfully reproduces this hazard —
  // avoiding it is the application's responsibility.
  SubstrateConfig cfg = preset_ds_da_uq();
  cfg.flow = FlowControl::kRendezvous;
  Engine eng;
  Cluster cl(eng, sim::calibrated_cost_model(), 2, cfg);

  int completions = 0;
  auto side = [&](int me, bool listener) -> Task<void> {
    auto& st = cl.node(static_cast<std::size_t>(me)).socks;
    int fd;
    if (listener) {
      int ls = co_await st.socket();
      co_await st.bind(ls, SockAddr{1, 80});
      co_await st.listen(ls, 1);
      fd = co_await st.accept(ls, nullptr);
    } else {
      co_await eng.delay(1000);
      fd = co_await st.socket();
      co_await st.connect(fd, SockAddr{1, 80});
    }
    auto data = pattern(1000);
    co_await st.write_all(fd, data);  // blocks awaiting the grant...
    std::vector<std::uint8_t> buf(1000);
    co_await st.read_exact(fd, buf);  // ...which only a read would give
    ++completions;
  };
  eng.spawn(side(1, true));
  eng.spawn(side(0, false));
  eng.run_until(2'000'000'000);  // 2 simulated seconds
  EXPECT_EQ(completions, 0);  // both sides are deadlocked, as in the paper
}

TEST_F(SubstrateTest, EagerCreditsSurviveMutualWritesWithinCredits) {
  // Same pattern as above but with eager flow control: up to N
  // outstanding writes per direction are absorbed by the 2N descriptors
  // (§6.1), so the exchange completes.
  int completions = 0;
  auto side = [&](int me, bool listener) -> Task<void> {
    auto& st = stack(me);
    int fd;
    if (listener) {
      int ls = co_await st.socket();
      co_await st.bind(ls, SockAddr{1, 80});
      co_await st.listen(ls, 1);
      fd = co_await st.accept(ls, nullptr);
    } else {
      co_await eng_.delay(1000);
      fd = co_await st.socket();
      co_await st.connect(fd, SockAddr{1, 80});
    }
    auto data = pattern(30'000);
    co_await st.write_all(fd, data);
    std::vector<std::uint8_t> buf(30'000);
    co_await st.read_exact(fd, buf);
    EXPECT_EQ(buf, data);
    ++completions;
  };
  eng_.spawn(side(1, true));
  eng_.spawn(side(0, false));
  eng_.run();
  EXPECT_EQ(completions, 2);
}

TEST_F(SubstrateTest, BacklogLimitsSimultaneousConnections) {
  // With backlog 2 and no accept, the third connect cannot complete until
  // the server starts accepting.
  int accepted = 0;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack(1).socket();
    co_await stack(1).bind(ls, SockAddr{1, 80});
    co_await stack(1).listen(ls, 2);
    co_await eng_.delay(30'000'000);  // 30 ms before accepting
    for (int i = 0; i < 3; ++i) {
      int cs = co_await stack(1).accept(ls, nullptr);
      (void)cs;
      ++accepted;
    }
  };
  std::vector<sim::Time> connected(3);
  auto client = [&](int idx) -> Task<void> {
    co_await eng_.delay(1000 + idx);
    int s = co_await stack(0).socket();
    co_await stack(0).connect(s, SockAddr{1, 80});
    connected[static_cast<std::size_t>(idx)] = eng_.now();
  };
  eng_.spawn(server());
  for (int i = 0; i < 3; ++i) eng_.spawn(client(i));
  eng_.run_until(200'000'000);
  EXPECT_EQ(accepted, 3);
  // The first two requests are absorbed by the two pre-posted backlog
  // descriptors, so those connects complete immediately; the third finds
  // the backlog full, is dropped, and only gets through via EMP
  // retransmission once accept() reposts a descriptor after 30 ms.
  EXPECT_LT(connected[0], 30'000'000u);
  EXPECT_LT(connected[1], 30'000'000u);
  EXPECT_GT(connected[2], 30'000'000u);
  EXPECT_GT(cluster_.node(1).emp.stats().unmatched_drops, 0u);
  EXPECT_GT(cluster_.node(0).emp.stats().retransmitted_frames, 0u);
}

TEST_F(SubstrateTest, SelectWakesOnReadable) {
  std::vector<int> ready_fds;
  auto server = [&]() -> Task<void> {
    auto& node = cluster_.node(1);
    os::Process proc(node.host);
    int ls = co_await proc.socket(node.socks);
    co_await proc.bind(ls, SockAddr{1, 80});
    co_await proc.listen(ls, 1);
    int cs = co_await proc.accept(ls);
    // select() on the connection: data arrives 1 ms later.
    // Note: GCC 12 miscompiles braced temporaries passed by value into a
    // coroutine ("array used as initializer"); use a named vector.
    std::vector<int> watch{cs};
    ready_fds = co_await proc.select(watch);
    std::vector<std::uint8_t> buf(16);
    std::size_t n = co_await proc.read(cs, buf);
    EXPECT_EQ(n, 16u);
    co_await proc.close(cs);
    co_await proc.close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    int s = co_await stack(0).socket();
    co_await stack(0).connect(s, SockAddr{1, 80});
    co_await eng_.delay(1'000'000);
    co_await stack(0).write_all(s, pattern(16));
    co_await stack(0).close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  ASSERT_EQ(ready_fds.size(), 1u);
}

TEST_F(SubstrateTest, ManySequentialConnectionsDoNotLeak) {
  // A close() storm: every connection's descriptors and tags must be
  // reclaimed (§5.3).
  constexpr int kConns = 25;
  int served = 0;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack(1).socket();
    co_await stack(1).bind(ls, SockAddr{1, 80});
    co_await stack(1).listen(ls, 4);
    for (int i = 0; i < kConns; ++i) {
      int cs = co_await stack(1).accept(ls, nullptr);
      std::vector<std::uint8_t> buf(64);
      std::size_t n = co_await stack(1).read(cs, buf);
      co_await stack(1).write_all(
          cs, std::span<const std::uint8_t>(buf).first(n));
      co_await stack(1).close(cs);
      ++served;
    }
    co_await stack(1).close(ls);
  };
  auto client = [&]() -> Task<void> {
    for (int i = 0; i < kConns; ++i) {
      int s = co_await stack(0).socket();
      co_await stack(0).connect(s, SockAddr{1, 80});
      auto msg = pattern(64, static_cast<std::uint8_t>(i));
      co_await stack(0).write_all(s, msg);
      std::vector<std::uint8_t> echo(64);
      co_await stack(0).read_exact(s, echo);
      EXPECT_EQ(echo, msg);
      co_await stack(0).close(s);
    }
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();

  EXPECT_EQ(served, kConns);
  EXPECT_EQ(stack(0).active_socket_count(), 0u);
  EXPECT_EQ(stack(1).active_socket_count(), 0u);
  EXPECT_EQ(cluster_.node(0).emp.posted_descriptor_count(), 0u);
  EXPECT_EQ(cluster_.node(1).emp.posted_descriptor_count(), 0u);
  EXPECT_EQ(cluster_.node(0).emp.pending_send_count(), 0u);
  EXPECT_EQ(cluster_.node(1).emp.pending_send_count(), 0u);
}

TEST_F(SubstrateTest, WriteAfterPeerCloseThrows) {
  bool threw = false;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack(1).socket();
    co_await stack(1).bind(ls, SockAddr{1, 80});
    co_await stack(1).listen(ls, 1);
    int cs = co_await stack(1).accept(ls, nullptr);
    co_await stack(1).close(cs);
    co_await stack(1).close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    int s = co_await stack(0).socket();
    co_await stack(0).connect(s, SockAddr{1, 80});
    co_await eng_.delay(1'000'000);  // let the close notification land
    try {
      auto d = pattern(8);
      co_await stack(0).write_all(s, d);
    } catch (const SocketError& e) {
      threw = e.code() == SockErr::kClosed;
    }
    co_await stack(0).close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(threw);
}

TEST_F(SubstrateTest, DelayedAcksReduceExplicitAckTraffic) {
  auto run_with = [&](bool delayed) {
    SubstrateConfig cfg = preset_ds();
    cfg.delayed_acks = delayed;
    cfg.piggyback_acks = false;
    cfg.credits = 8;
    cfg.buffer_bytes = 1024;
    Engine eng;
    Cluster cl(eng, sim::calibrated_cost_model(), 2, cfg);
    auto server = [&]() -> Task<void> {
      auto& st = cl.node(1).socks;
      int ls = co_await st.socket();
      co_await st.bind(ls, SockAddr{1, 80});
      co_await st.listen(ls, 1);
      int cs = co_await st.accept(ls, nullptr);
      std::vector<std::uint8_t> buf(1024);
      for (int i = 0; i < 32; ++i) co_await st.read_exact(cs, buf);
      co_await st.close(cs);
      co_await st.close(ls);
    };
    auto client = [&]() -> Task<void> {
      auto& st = cl.node(0).socks;
      co_await eng.delay(1000);
      int s = co_await st.socket();
      co_await st.connect(s, SockAddr{1, 80});
      auto chunk = pattern(1024);
      for (int i = 0; i < 32; ++i) co_await st.write_all(s, chunk);
      co_await st.close(s);
    };
    eng.spawn(server());
    eng.spawn(client());
    eng.run();
    return cl.node(1).socks.stats().credit_acks_tx;
  };
  auto acks_immediate = run_with(false);
  auto acks_delayed = run_with(true);
  EXPECT_GT(acks_immediate, 2 * acks_delayed);
}

TEST_F(SubstrateTest, PiggybackReturnsCreditsOnReverseTraffic) {
  // Request-response traffic: with piggybacking on, credits ride the
  // responses and explicit acks (mostly) disappear.
  SubstrateConfig cfg = preset_ds_da_uq();
  cfg.credits = 8;
  cfg.buffer_bytes = 1024;
  Engine eng;
  Cluster cl(eng, sim::calibrated_cost_model(), 2, cfg);
  auto server = [&]() -> Task<void> {
    auto& st = cl.node(1).socks;
    int ls = co_await st.socket();
    co_await st.bind(ls, SockAddr{1, 80});
    co_await st.listen(ls, 1);
    int cs = co_await st.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(128);
    for (int i = 0; i < 64; ++i) {
      co_await st.read_exact(cs, buf);
      co_await st.write_all(cs, buf);
    }
    co_await st.close(cs);
    co_await st.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& st = cl.node(0).socks;
    co_await eng.delay(1000);
    int s = co_await st.socket();
    co_await st.connect(s, SockAddr{1, 80});
    std::vector<std::uint8_t> buf(128, 9);
    for (int i = 0; i < 64; ++i) {
      co_await st.write_all(s, buf);
      co_await st.read_exact(s, buf);
    }
    co_await st.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  EXPECT_GT(cl.node(1).socks.stats().credits_piggybacked, 30u);
}

TEST_F(SubstrateTest, LatencyBeatsKernelTcpByPaperFactor) {
  // Figure 13: ~4.2x (datagram) / ~3.4x (streaming) better latency than
  // TCP at 4 bytes.  Check the substrate side here (TCP verified in
  // tcp_test): one-way < 45 us for streaming with all enhancements.
  constexpr int kIters = 30;
  double one_way_us = 0;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack(1).socket();
    co_await stack(1).bind(ls, SockAddr{1, 80});
    co_await stack(1).listen(ls, 1);
    int cs = co_await stack(1).accept(ls, nullptr);
    std::vector<std::uint8_t> buf(4);
    for (int i = 0; i < kIters; ++i) {
      co_await stack(1).read_exact(cs, buf);
      co_await stack(1).write_all(cs, buf);
    }
    co_await stack(1).close(cs);
    co_await stack(1).close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack(0).socket();
    co_await stack(0).connect(s, SockAddr{1, 80});
    std::vector<std::uint8_t> buf(4);
    sim::Time t0 = eng_.now();
    for (int i = 0; i < kIters; ++i) {
      co_await stack(0).write_all(s, buf);
      co_await stack(0).read_exact(s, buf);
    }
    one_way_us = sim::to_us(eng_.now() - t0) / (2.0 * kIters);
    co_await stack(0).close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_GT(one_way_us, 28.0);
  EXPECT_LT(one_way_us, 48.0);
}

TEST_F(SubstrateTest, ReliableUnderFrameLoss) {
  // The substrate inherits EMP's reliability: data survives frame loss
  // without application-visible effects.
  cluster_.network().host_link(0).set_drop_policy(
      net::StarNetwork::kHostSide,
      net::random_drop_policy(eng_.rng(), 0.03));
  cluster_.network().host_link(1).set_drop_policy(
      net::StarNetwork::kHostSide,
      net::random_drop_policy(eng_.rng(), 0.03));
  const auto data = pattern(60'000, 7);
  std::vector<std::uint8_t> received;
  auto server = [&]() -> Task<void> {
    int ls = co_await stack(1).socket();
    co_await stack(1).bind(ls, SockAddr{1, 80});
    co_await stack(1).listen(ls, 1);
    int cs = co_await stack(1).accept(ls, nullptr);
    std::vector<std::uint8_t> buf(4096);
    for (;;) {
      std::size_t n = co_await stack(1).read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
    co_await stack(1).close(cs);
    co_await stack(1).close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    int s = co_await stack(0).socket();
    co_await stack(0).connect(s, SockAddr{1, 80});
    co_await stack(0).write_all(s, data);
    co_await stack(0).close(s);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_EQ(received, data);
}

}  // namespace
}  // namespace ulsocks::sockets
