// OpRing semantics: CQE ordering determinism across reap batch sizes
// (digest identity on every preset, under loss, and sharded), mixed SQE
// kinds on one ring, cancellation on close, the ring-over-TCP fallback,
// and the readiness/scratch satellites (writable(), recv-scratch cap).
//
// The key determinism claim (DESIGN.md §13): the ring's host-side work —
// probes, grouping, cancellation, reaping — costs zero simulated time and
// zero scheduler events, so an application that reaps 1 CQE at a time
// performs the same submissions at the same timestamps as one that reaps
// 64 at a time, and `Engine::digest()` (seq-folded, order-exact) is
// byte-identical across reap batch sizes.  Ring-vs-blocking is a different
// program (one parked pump vs one parked coroutine per connection), so
// those runs are compared on outcomes, not on the seq-folded digest —
// exactly the partition-dependence argument determinism_test.cpp makes for
// causal_digest().
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "apps/cluster.hpp"
#include "apps/httpd.hpp"
#include "net/topology.hpp"
#include "oskernel/process.hpp"
#include "oskernel/ring.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"
#include "sim/stats.hpp"
#include "sockets/config.hpp"

namespace ulsocks {
namespace {

using apps::Cluster;
using os::SockAddr;
using sim::Engine;
using sim::Task;

// ---------------------------------------------------------------------------
// Ring web workload: one server node (ring or blocking httpd), N client
// nodes each running a few concurrent web clients.
// ---------------------------------------------------------------------------

struct WebRunOptions {
  sockets::SubstrateConfig cfg{};
  bool use_tcp = false;
  bool ring_server = true;
  std::size_t reap_batch = 64;
  std::size_t client_nodes = 2;
  std::size_t clients_per_node = 3;  // concurrent clients per node
  std::uint32_t requests_per_connection = 2;
  std::size_t connections_per_client = 2;
  std::uint32_t response_bytes = 1024;
  double loss = 0.0;
  unsigned seed = 42;
};

struct WebSignature {
  std::uint64_t digest = 0;
  std::uint64_t causal = 0;
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  std::size_t responses = 0;
  friend bool operator==(const WebSignature&, const WebSignature&) = default;
};

/// The causal part: invariant across shard partitions (the seq-folded
/// digest is partition-dependent by construction).
struct CausalSignature {
  std::uint64_t causal = 0;
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  std::size_t responses = 0;
  friend bool operator==(const CausalSignature&,
                         const CausalSignature&) = default;
};

CausalSignature causal_part(const WebSignature& s) {
  return {s.causal, s.events, s.end_time, s.responses};
}

Task<void> run_server(Cluster& cl, const WebRunOptions& opt,
                      std::size_t total_connections) {
  os::Process proc(cl.node(0).host);
  apps::WebServerOptions sopt;
  sopt.requests_per_connection = opt.requests_per_connection;
  sopt.max_connections = total_connections;
  sopt.backlog = 16;
  sopt.reap_batch = opt.reap_batch;
  auto& stack = cl.stack(0, opt.use_tcp ? Cluster::StackKind::kTcp
                                        : Cluster::StackKind::kSubstrate);
  if (opt.ring_server) {
    co_await apps::web_server_ring(proc, stack, sopt);
  } else {
    co_await apps::web_server(proc, stack, sopt);
  }
}

Task<void> run_client(Cluster& cl, const WebRunOptions& opt, std::size_t node,
                      std::size_t idx, sim::OnlineStats& stats) {
  // The stagger delay must run on the client node's own engine — in the
  // sharded runs that node lives on another shard.
  co_await cl.node_engine(node).delay(10'000 + (node * 7 + idx) * 700);
  os::Process proc(cl.node(node).host);
  apps::WebClientOptions copt;
  copt.server_node = 0;
  copt.response_bytes = opt.response_bytes;
  copt.requests_per_connection = opt.requests_per_connection;
  copt.total_requests =
      opt.connections_per_client * opt.requests_per_connection;
  auto& stack = cl.stack(node, opt.use_tcp ? Cluster::StackKind::kTcp
                                           : Cluster::StackKind::kSubstrate);
  co_await apps::web_client(proc, stack, copt, stats);
}

WebSignature run_web(const WebRunOptions& opt) {
  Engine eng(opt.seed);
  Cluster cl(eng, sim::calibrated_cost_model(), opt.client_nodes + 1,
             opt.cfg);
  if (opt.loss > 0.0) {
    for (std::size_t i = 0; i <= opt.client_nodes; ++i) {
      cl.network().host_link(i).set_drop_policy(
          net::StarNetwork::kHostSide,
          net::random_drop_policy(eng.rng(), opt.loss));
    }
  }
  const std::size_t total_connections = opt.client_nodes *
                                        opt.clients_per_node *
                                        opt.connections_per_client;
  std::vector<sim::OnlineStats> stats(opt.client_nodes *
                                      opt.clients_per_node);
  eng.spawn(run_server(cl, opt, total_connections));
  for (std::size_t n = 0; n < opt.client_nodes; ++n) {
    for (std::size_t c = 0; c < opt.clients_per_node; ++c) {
      eng.spawn(run_client(cl, opt, n + 1, c,
                           stats[n * opt.clients_per_node + c]));
    }
  }
  eng.run();
  WebSignature sig{eng.digest(), eng.causal_digest(), eng.events_executed(),
                   eng.now(), 0};
  for (const auto& s : stats) sig.responses += s.count();
  return sig;
}

// ---------------------------------------------------------------------------
// Reap-batch-size digest identity, every preset.
// ---------------------------------------------------------------------------

TEST(RingDeterminism, DigestIdenticalAcrossReapBatchSizesOnEveryPreset) {
  for (const sockets::Preset& p : sockets::presets()) {
    WebRunOptions opt;
    opt.cfg = p.cfg;
    opt.reap_batch = 1;
    WebSignature one = run_web(opt);
    opt.reap_batch = 4;
    WebSignature four = run_web(opt);
    opt.reap_batch = 64;
    WebSignature many = run_web(opt);
    EXPECT_EQ(four, one) << "preset " << p.name
                         << ": reap(1,4) diverged from reap(1,1)";
    EXPECT_EQ(many, one) << "preset " << p.name
                         << ": reap(1,64) diverged from reap(1,1)";
    EXPECT_EQ(one.responses, 2u * 3u * 2u * 2u) << "preset " << p.name;
  }
}

TEST(RingDeterminism, DigestIdenticalAcrossReapBatchSizesUnderLoss) {
  WebRunOptions opt;
  opt.cfg.credits = 2;
  opt.cfg.buffer_bytes = 2048;
  opt.loss = 0.01;
  opt.reap_batch = 1;
  WebSignature one = run_web(opt);
  opt.reap_batch = 64;
  WebSignature many = run_web(opt);
  EXPECT_EQ(many, one) << "lossy stress diverged across reap batch sizes";
  EXPECT_EQ(one.responses, 2u * 3u * 2u * 2u);
}

TEST(RingDeterminism, DigestIdenticalAcrossReapBatchSizesOverTcp) {
  WebRunOptions opt;
  opt.use_tcp = true;
  opt.reap_batch = 1;
  WebSignature one = run_web(opt);
  opt.reap_batch = 64;
  WebSignature many = run_web(opt);
  EXPECT_EQ(many, one) << "TCP fallback diverged across reap batch sizes";
  EXPECT_EQ(one.responses, 2u * 3u * 2u * 2u);
}

// ---------------------------------------------------------------------------
// Ring-vs-blocking: same protocol outcomes on both stacks (the seq-folded
// digest is program-dependent; see the header comment).
// ---------------------------------------------------------------------------

TEST(RingVsBlocking, SameResponsesOnEveryPreset) {
  for (const sockets::Preset& p : sockets::presets()) {
    WebRunOptions opt;
    opt.cfg = p.cfg;
    opt.ring_server = true;
    WebSignature ring = run_web(opt);
    opt.ring_server = false;
    WebSignature blocking = run_web(opt);
    EXPECT_EQ(ring.responses, blocking.responses) << "preset " << p.name;
    EXPECT_EQ(ring.responses, 2u * 3u * 2u * 2u) << "preset " << p.name;
  }
}

TEST(RingVsBlocking, SameResponsesUnderLossAndOverTcp) {
  for (bool tcp : {false, true}) {
    WebRunOptions opt;
    opt.use_tcp = tcp;
    if (!tcp) {
      opt.cfg.credits = 2;
      opt.cfg.buffer_bytes = 2048;
      opt.loss = 0.01;
    }
    opt.ring_server = true;
    WebSignature ring = run_web(opt);
    opt.ring_server = false;
    WebSignature blocking = run_web(opt);
    EXPECT_EQ(ring.responses, blocking.responses) << (tcp ? "tcp" : "lossy");
    EXPECT_EQ(ring.responses, 2u * 3u * 2u * 2u);
  }
}

// ---------------------------------------------------------------------------
// Sharded: ring ops are per-host, so the ring web workload must be
// causally invariant across shard counts (and a 1-shard group byte-equal
// to the plain engine).
// ---------------------------------------------------------------------------

WebSignature run_web_sharded(std::size_t shards, const WebRunOptions& opt) {
  const sim::CostModel model = sim::calibrated_cost_model();
  sim::ShardGroup group(shards, net::shard_lookahead(model.wire), opt.seed);
  Cluster cl(group, model, opt.client_nodes + 1, opt.cfg);
  const std::size_t total_connections = opt.client_nodes *
                                        opt.clients_per_node *
                                        opt.connections_per_client;
  std::vector<sim::OnlineStats> stats(opt.client_nodes *
                                      opt.clients_per_node);
  cl.node_engine(0).spawn(run_server(cl, opt, total_connections));
  for (std::size_t n = 0; n < opt.client_nodes; ++n) {
    for (std::size_t c = 0; c < opt.clients_per_node; ++c) {
      cl.node_engine(n + 1).spawn(run_client(
          cl, opt, n + 1, c, stats[n * opt.clients_per_node + c]));
    }
  }
  group.run(1);
  WebSignature sig{group.digest(), group.causal_digest(),
                   group.events_executed(), group.now(), 0};
  for (const auto& s : stats) sig.responses += s.count();
  return sig;
}

TEST(RingSharded, GroupOfOneIsByteIdenticalToPlainEngine) {
  WebRunOptions opt;
  WebSignature plain = run_web(opt);
  WebSignature one = run_web_sharded(1, opt);
  EXPECT_EQ(one, plain);
  EXPECT_GT(plain.responses, 0u);
}

TEST(RingSharded, CausallyInvariantAcrossShardCounts) {
  WebRunOptions opt;
  CausalSignature one = causal_part(run_web_sharded(1, opt));
  CausalSignature two = causal_part(run_web_sharded(2, opt));
  CausalSignature four = causal_part(run_web_sharded(4, opt));
  EXPECT_EQ(two, one) << "ring web diverged at 2 shards";
  EXPECT_EQ(four, one) << "ring web diverged at 4 shards";
  EXPECT_GT(one.responses, 0u);
}

// ---------------------------------------------------------------------------
// Direct ring API: mixed SQE kinds, CQE ordering, cancellation.
// ---------------------------------------------------------------------------

class RingApiTest : public ::testing::TestWithParam<Cluster::StackKind> {
 protected:
  RingApiTest() : cluster_(eng_, sim::calibrated_cost_model(), 3) {}

  os::SocketApi& stack(std::size_t node) {
    return cluster_.stack(node, GetParam());
  }

  Engine eng_;
  Cluster cluster_;
};

TEST_P(RingApiTest, MixedSqesOnOneRingCompleteInOrder) {
  std::vector<os::Cqe> got;
  auto server = [&]() -> Task<void> {
    auto& api = stack(0);
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{0, 80});
    co_await api.listen(ls, 8);
    os::OpRing ring(eng_, api);
    ring.push_accept(ls, 100);
    ring.push_accept(ls, 101);
    ring.submit();
    std::vector<int> conns;
    while (conns.size() < 2) {
      for (const os::Cqe& c : co_await ring.reap(1, 8)) {
        EXPECT_FALSE(c.failed);
        EXPECT_EQ(c.op, os::OpKind::kAccept);
        conns.push_back(static_cast<int>(c.result));
        got.push_back(c);
      }
    }
    // One batch mixing reads and writes across both connections.
    std::vector<std::uint8_t> rx0(4), rx1(4);
    std::vector<std::uint8_t> pong{'p', 'o', 'n', 'g'};
    ring.push_read(conns[0], rx0, 200);
    ring.push_read(conns[1], rx1, 201);
    ring.push_write(conns[0], pong, 300);
    ring.push_write(conns[1], pong, 301);
    ring.submit();
    std::size_t done = 0;
    while (done < 4) {
      for (const os::Cqe& c : co_await ring.reap(1, 8)) {
        EXPECT_FALSE(c.failed);
        got.push_back(c);
        ++done;
      }
    }
    EXPECT_EQ(std::vector<std::uint8_t>(rx0.begin(), rx0.end()),
              (std::vector<std::uint8_t>{'p', 'i', 'n', 'g'}));
    EXPECT_EQ(std::vector<std::uint8_t>(rx1.begin(), rx1.end()),
              (std::vector<std::uint8_t>{'p', 'i', 'n', 'g'}));
    ring.push_close(conns[0], 400);
    ring.push_close(conns[1], 401);
    ring.push_close(ls, 402);
    ring.submit();
    while (ring.inflight() > 0) {
      for (const os::Cqe& c : co_await ring.reap(1, 8)) got.push_back(c);
    }
  };
  auto client = [&](std::size_t node) -> Task<void> {
    co_await eng_.delay(5'000 * node);
    auto& api = stack(node);
    int fd = co_await api.socket();
    co_await api.connect(fd, SockAddr{0, 80});
    std::vector<std::uint8_t> ping{'p', 'i', 'n', 'g'};
    co_await api.write_all(fd, ping);
    std::vector<std::uint8_t> reply(4);
    co_await api.read_exact(fd, reply);
    EXPECT_EQ(reply, (std::vector<std::uint8_t>{'p', 'o', 'n', 'g'}));
    co_await api.close(fd);
  };
  eng_.spawn(server());
  eng_.spawn(client(1));
  eng_.spawn(client(2));
  eng_.run();

  ASSERT_EQ(got.size(), 9u);  // 2 accepts + 2 reads + 2 writes + 3 closes
  // reap() contract: (completion_time, seq) strictly increasing across
  // every CQE handed out, including across reap calls.
  for (std::size_t i = 1; i < got.size(); ++i) {
    const bool ordered =
        got[i - 1].completion_time < got[i].completion_time ||
        (got[i - 1].completion_time == got[i].completion_time &&
         got[i - 1].seq < got[i].seq);
    EXPECT_TRUE(ordered) << "CQE " << i << " out of order";
  }
}

TEST_P(RingApiTest, CloseCancelsPendingSqesOnSameDescriptor) {
  bool saw_cancel = false;
  bool saw_close = false;
  auto server = [&]() -> Task<void> {
    auto& api = stack(0);
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{0, 80});
    co_await api.listen(ls, 8);
    int cs = co_await api.accept(ls, nullptr);

    os::OpRing ring(eng_, api);
    // The client never sends, so this read stays in flight...
    std::vector<std::uint8_t> buf(16);
    ring.push_read(cs, buf, 1);
    ring.submit();
    EXPECT_EQ(ring.inflight(), 1u);
    // ...until a close on the same descriptor cancels it.
    ring.push_close(cs, 2);
    ring.submit();
    while (ring.inflight() > 0) {
      for (const os::Cqe& c : co_await ring.reap(1, 8)) {
        if (c.user_data == 1) {
          EXPECT_TRUE(c.failed);
          EXPECT_EQ(c.error, os::SockErr::kClosed);
          saw_cancel = true;
        }
        if (c.user_data == 2) {
          EXPECT_FALSE(c.failed);
          saw_close = true;
        }
      }
    }
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(1'000);
    auto& api = stack(1);
    int fd = co_await api.socket();
    co_await api.connect(fd, SockAddr{0, 80});
    // Wait for the server's close to surface, then clean up.
    std::vector<std::uint8_t> buf(4);
    try {
      (void)co_await api.read(fd, buf);
    } catch (const os::SocketError&) {
    }
    co_await api.close(fd);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();
  EXPECT_TRUE(saw_cancel);
  EXPECT_TRUE(saw_close);
}

INSTANTIATE_TEST_SUITE_P(BothStacks, RingApiTest,
                         ::testing::Values(Cluster::StackKind::kSubstrate,
                                           Cluster::StackKind::kTcp),
                         [](const auto& info) {
                           return info.param == Cluster::StackKind::kSubstrate
                                      ? "Substrate"
                                      : "Tcp";
                         });

// ---------------------------------------------------------------------------
// Satellites: writable() probes and the recv-scratch high-water cap.
// ---------------------------------------------------------------------------

TEST(Writable, SubstrateTracksSendCredits) {
  Engine eng(7);
  Cluster cl(eng, sim::calibrated_cost_model(), 2,
             sockets::SubstrateConfig{.credits = 2, .buffer_bytes = 512});
  bool exhausted_seen = false;
  bool recovered_seen = false;
  auto server = [&]() -> Task<void> {
    auto& api = cl.node(0).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{0, 80});
    co_await api.listen(ls, 4);
    int cs = co_await api.accept(ls, nullptr);
    // Do not read until the client has exhausted its credits.
    while (!exhausted_seen) co_await api.activity().wait();
    std::vector<std::uint8_t> buf(512);
    for (int i = 0; i < 2; ++i) (void)co_await api.read(cs, buf);
    while (!recovered_seen) co_await api.activity().wait();
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng.delay(1'000);
    auto& api = cl.node(1).socks;
    EXPECT_FALSE(api.writable(999));  // no such descriptor
    int fd = co_await api.socket();
    // Unconnected: write() would throw immediately, so the descriptor is
    // "ready" in the select() sense.
    EXPECT_TRUE(api.writable(fd));
    co_await api.connect(fd, SockAddr{0, 80});
    EXPECT_TRUE(api.writable(fd));
    std::vector<std::uint8_t> msg(64, 0xaa);
    co_await api.write_all(fd, msg);
    co_await api.write_all(fd, msg);
    // Both credits consumed and the server is not reading.
    EXPECT_FALSE(api.writable(fd));
    exhausted_seen = true;
    // Once the server drains, credits return and writable() flips back.
    while (!api.writable(fd)) co_await api.activity().wait();
    recovered_seen = true;
    co_await api.close(fd);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  EXPECT_TRUE(recovered_seen);
}

TEST(Writable, TcpTracksSendBufferSpace) {
  Engine eng(7);
  Cluster cl(eng, sim::calibrated_cost_model(), 2);
  bool full_seen = false;
  std::size_t total_written = 0;
  auto server = [&]() -> Task<void> {
    auto& api = cl.node(0).tcp;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{0, 80});
    co_await api.listen(ls, 4);
    int cs = co_await api.accept(ls, nullptr);
    while (!full_seen) co_await api.activity().wait();
    std::vector<std::uint8_t> buf(65536);
    std::size_t drained = 0;
    for (;;) {
      std::size_t n = co_await api.read(cs, buf);
      if (n == 0) break;
      drained += n;
    }
    EXPECT_EQ(drained, total_written);
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng.delay(1'000);
    auto& api = cl.node(1).tcp;
    EXPECT_FALSE(api.writable(999));  // no such descriptor
    int fd = co_await api.socket();
    co_await api.connect(fd, SockAddr{0, 80});
    co_await api.set_option(fd, os::SockOpt::kSndBuf, 4096);
    EXPECT_TRUE(api.writable(fd));
    // Stuff the send buffer until write() would park (the receiver is not
    // draining, so the window closes and snd_buf fills).
    std::vector<std::uint8_t> chunk(1024, 0x55);
    while (api.writable(fd)) {
      total_written += co_await api.write(fd, chunk);
      if (total_written >= (std::size_t{64} << 20)) {
        ADD_FAILURE() << "snd_buf never filled";
        break;
      }
    }
    EXPECT_FALSE(api.writable(fd));
    full_seen = true;
    co_await api.close(fd);  // FIN queues behind the buffered bytes
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  EXPECT_TRUE(full_seen);
}

TEST(RecvScratch, EnsureCapsRetainedGrowthAtHighWater) {
  os::RecvView view;
  EXPECT_EQ(os::ensure_recv_scratch(view, 1024), 1024u);
  // A spike above the high-water mark is honored...
  EXPECT_EQ(os::ensure_recv_scratch(view, 200'000), 200'000u);
  // ...but the next smaller request releases it instead of keeping the
  // spike alive for the connection's lifetime.
  EXPECT_EQ(os::ensure_recv_scratch(view, 1024), 1024u);
  EXPECT_LE(view.scratch.size(), os::kRecvScratchHighWater);
  // Requests at or under the mark never shrink what's already there.
  EXPECT_EQ(os::ensure_recv_scratch(view, 512), 1024u);
}

TEST(RecvScratch, ReadViewReportsHighWaterGauge) {
  Engine eng(7);
  Cluster cl(eng, sim::calibrated_cost_model(), 2);
  auto server = [&]() -> Task<void> {
    auto& api = cl.node(0).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{0, 80});
    co_await api.listen(ls, 4);
    int cs = co_await api.accept(ls, nullptr);
    os::RecvView view;
    std::size_t n = co_await api.read_view(cs, view, 70'000);
    EXPECT_GT(n, 0u);
    while (n < 100) n += co_await api.read_view(cs, view, 70'000);
    // The spike was reported to the gauge, and a smaller follow-up read
    // releases the retained scratch back under the high-water mark.
    (void)co_await api.read_view(cs, view, 128);
    EXPECT_LE(view.scratch.size(), os::kRecvScratchHighWater);
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    co_await eng.delay(1'000);
    auto& api = cl.node(1).socks;
    int fd = co_await api.socket();
    co_await api.connect(fd, SockAddr{0, 80});
    std::vector<std::uint8_t> payload(200, 0x5a);
    co_await api.write_all(fd, payload);
    std::vector<std::uint8_t> buf(16);
    try {
      (void)co_await api.read(fd, buf);
    } catch (const os::SocketError&) {
    }
    co_await api.close(fd);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  EXPECT_GE(eng.metrics().gauge("host/recv_scratch_hwm").value(), 70'000);
}

}  // namespace
}  // namespace ulsocks
