// ulsan fixture: compliant cross-shard code — no pool/engine handles,
// no reference captures, only by-value plain data crosses the boundary.
#include <cstdint>
#include <functional>

struct Event {
  std::uint64_t when;
  int payload;
};

void enqueue_local(std::function<void()> fn);

void good_hop(Event ev) {
  enqueue_local([ev] { (void)ev.payload; });
}

struct RebalancePolicyHost {
  // Policies are installed, not hand-rolled: the group evaluates this on
  // the barrier thread and performs the migration surgery itself.
  void install(std::function<void()> policy) { policy_ = std::move(policy); }
  std::function<void()> policy_;
};
