// ulsan fixture: compliant cross-shard code — no pool/engine handles,
// no reference captures, only by-value plain data crosses the boundary.
#include <cstdint>
#include <functional>

struct Event {
  std::uint64_t when;
  int payload;
};

void enqueue_local(std::function<void()> fn);

void good_hop(Event ev) {
  enqueue_local([ev] { (void)ev.payload; });
}
