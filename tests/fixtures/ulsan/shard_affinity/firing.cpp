// ulsan fixture: shard-affinity violations — post_remote outside the
// sanctioned link rehoming path, handle-smuggling captures, and a
// hand-written lookahead-matrix entry outside net::Link.
struct Frame;
struct FramePool;
struct ShardGroup;

void bad_hop(ShardGroup& group, FramePool& pool, Frame& frame) {
  group.post_remote(0, 1, 100, [&frame] { (void)frame; });
  group.post_remote(0, 1, 200, [&pool] { (void)pool; });
}

void bad_edge(ShardGroup& group) {
  // Overstates the link latency "to batch harder" — exactly the unsound
  // write the rule exists to catch.
  group.register_edge_lookahead(0, 1, 1'000'000);
}
