// ulsan fixture: shard-affinity violations — post_remote outside the
// sanctioned link rehoming path, plus handle-smuggling captures.
struct Frame;
struct FramePool;
struct ShardGroup;

void bad_hop(ShardGroup& group, FramePool& pool, Frame& frame) {
  group.post_remote(0, 1, 100, [&frame] { (void)frame; });
  group.post_remote(0, 1, 200, [&pool] { (void)pool; });
}
