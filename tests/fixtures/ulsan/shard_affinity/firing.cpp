// ulsan fixture: shard-affinity violations — post_remote outside the
// sanctioned link rehoming path, handle-smuggling captures, and a
// hand-written lookahead-matrix entry outside net::Link.
struct Frame;
struct FramePool;
struct ShardGroup;

void bad_hop(ShardGroup& group, FramePool& pool, Frame& frame) {
  group.post_remote(0, 1, 100, [&frame] { (void)frame; });
  group.post_remote(0, 1, 200, [&pool] { (void)pool; });
}

void bad_edge(ShardGroup& group) {
  // Overstates the link latency "to batch harder" — exactly the unsound
  // write the rule exists to catch.
  group.register_edge_lookahead(0, 1, 1'000'000);
}

struct Engine;

void bad_migration(ShardGroup& group, Engine& dst) {
  // An application hand-rolling a migration mid-run: every one of these
  // belongs to the barrier-phase rebalance path, nowhere else.
  group.request_domain_migration(3, 1);
  auto dom = group.extract_domain(3);
  (void)dst;
}
