// ulsan fixture: shard-affinity suppression with no finding under it.
#include <functional>

void enqueue_local(std::function<void()> fn);

void good_hop(int payload) {
  enqueue_local([payload] { (void)payload; });  // NOLINT(ulsan-shard-affinity)
}
