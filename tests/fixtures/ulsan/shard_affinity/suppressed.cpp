// ulsan fixture: same violations, suppressed with justification.
struct Frame;
struct FramePool;
struct ShardGroup;

void bad_hop(ShardGroup& group, FramePool& pool, Frame& frame) {
  // NOLINTNEXTLINE(ulsan-shard-affinity)
  group.post_remote(0, 1, 100, [&frame] { (void)frame; });
  group.post_remote(0, 1, 200, [&pool] { (void)pool; });  // NOLINT(ulsan-shard-affinity)
}

void bad_edge(ShardGroup& group) {
  group.register_edge_lookahead(0, 1, 7);  // NOLINT(ulsan-shard-affinity)
}

struct Engine;

void bad_migration(ShardGroup& group, Engine& dst) {
  group.request_domain_migration(3, 1);  // NOLINT(ulsan-shard-affinity)
  // NOLINTNEXTLINE(ulsan-shard-affinity)
  auto dom = group.extract_domain(3);
  (void)dst;
}
