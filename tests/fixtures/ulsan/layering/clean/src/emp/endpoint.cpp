// ulsan fixture: every edge emp is allowed to have.
#include "emp/wire.hpp"
#include "nic/dma.hpp"
#include "net/link.hpp"
#include "sim/engine.hpp"
#include "check/invariant.hpp"
#include "obs/counters.hpp"
#include <vector>
