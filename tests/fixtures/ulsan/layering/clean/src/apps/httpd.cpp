// ulsan fixture: apps sits at the top and may include anything.
#include "sockets/socket_api.hpp"
#include "emp/endpoint.hpp"
#include "tcp/connection.hpp"
#include "sim/engine.hpp"
