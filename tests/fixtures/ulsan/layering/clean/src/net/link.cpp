// ulsan fixture: net sees only sim and the utility layers.
#include "net/port.hpp"
#include "sim/engine.hpp"
#include "obs/counters.hpp"
