// ulsan fixture: suppression on a perfectly legal include.
#include "net/link.hpp"  // NOLINT(ulsan-layering)
