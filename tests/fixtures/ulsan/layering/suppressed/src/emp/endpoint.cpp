// ulsan fixture: the same illegal edge, suppressed (fixtures only —
// real layering violations are fixed, never suppressed or baselined).
#include "apps/httpd.hpp"  // NOLINT(ulsan-layering)
#include "net/link.hpp"
