// ulsan fixture: net including a transport — sideways/up edge.
#include "tcp/segment.hpp"
#include "sim/engine.hpp"
