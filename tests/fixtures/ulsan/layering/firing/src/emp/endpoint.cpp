// ulsan fixture: emp reaching up the stack — both includes violate the
// DAG (emp may see nic/net/sim/check/obs only).
#include "apps/httpd.hpp"
#include "sockets/socket_api.hpp"
#include "net/link.hpp"
