// ulsan fixture: the compliant shapes — copy the value before awaiting,
// or re-fetch the element after resuming.
#include <deque>

template <typename T>
struct Task {};
Task<void> delay(int ticks);

struct Slot {
  int seq;
};

Task<void> drain(std::deque<Slot>& slots) {
  int seq = slots.front().seq;
  co_await delay(1);
  slots.front().seq = seq + 1;
}

// Completion-ring shape, compliant: tag the SQE before the submit await
// and re-fetch from the queue after resuming.
struct Sqe {
  unsigned user_data;
};

struct Ring {
  std::deque<Sqe> sq;
};

Task<void> submit(Ring& ring);

Task<void> push_and_submit(Ring& ring) {
  unsigned user_data = ring.sq.back().user_data;
  co_await submit(ring);
  ring.sq.back().user_data = user_data + 1;
}
