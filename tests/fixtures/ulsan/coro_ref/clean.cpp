// ulsan fixture: the compliant shapes — copy the value before awaiting,
// or re-fetch the element after resuming.
#include <deque>

template <typename T>
struct Task {};
Task<void> delay(int ticks);

struct Slot {
  int seq;
};

Task<void> drain(std::deque<Slot>& slots) {
  int seq = slots.front().seq;
  co_await delay(1);
  slots.front().seq = seq + 1;
}
