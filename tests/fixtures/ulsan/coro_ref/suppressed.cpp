// ulsan fixture: same shape, suppressed (fixture pretends the element
// is pinned for the duration of the await).
#include <deque>

template <typename T>
struct Task {};
Task<void> delay(int ticks);

struct Slot {
  int seq;
};

Task<void> drain(std::deque<Slot>& slots) {
  auto& slot = slots.front();  // NOLINT(ulsan-coro-ref-across-await)
  co_await delay(1);
  slot.seq += 1;
}
