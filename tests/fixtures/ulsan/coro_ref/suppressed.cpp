// ulsan fixture: same shape, suppressed (fixture pretends the element
// is pinned for the duration of the await).
#include <deque>

template <typename T>
struct Task {};
Task<void> delay(int ticks);

struct Slot {
  int seq;
};

Task<void> drain(std::deque<Slot>& slots) {
  auto& slot = slots.front();  // NOLINT(ulsan-coro-ref-across-await)
  co_await delay(1);
  slot.seq += 1;
}

// Completion-ring shape, suppressed (fixture pretends the SQE slot is
// stable for the duration of the submit await).
struct Sqe {
  unsigned user_data;
};

struct Ring {
  std::deque<Sqe> sq;
};

Task<void> submit(Ring& ring);

Task<void> push_and_submit(Ring& ring) {
  auto& sqe = ring.sq.back();  // NOLINT(ulsan-coro-ref-across-await)
  co_await submit(ring);
  sqe.user_data = 7;
}
