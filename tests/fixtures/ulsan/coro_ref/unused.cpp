// ulsan fixture: suppression on a reference that never crosses an
// await — nothing fires, the suppression is the finding.
#include <deque>

template <typename T>
struct Task {};
Task<void> delay(int ticks);

struct Slot {
  int seq;
};

Task<void> drain(std::deque<Slot>& slots) {
  auto& slot = slots.front();  // NOLINT(ulsan-coro-ref-across-await)
  slot.seq += 1;
  co_await delay(1);
}
