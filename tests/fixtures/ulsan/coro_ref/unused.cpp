// ulsan fixture: suppression on a reference that never crosses an
// await — nothing fires, the suppression is the finding.
#include <deque>

template <typename T>
struct Task {};
Task<void> delay(int ticks);

struct Slot {
  int seq;
};

Task<void> drain(std::deque<Slot>& slots) {
  auto& slot = slots.front();  // NOLINT(ulsan-coro-ref-across-await)
  slot.seq += 1;
  co_await delay(1);
}

// Completion-ring shape: the SQE reference is consumed before the await,
// so this suppression covers nothing.
struct Sqe {
  unsigned user_data;
};

struct Ring {
  std::deque<Sqe> sq;
};

Task<void> submit(Ring& ring);

Task<void> push_and_submit(Ring& ring) {
  auto& sqe = ring.sq.back();  // NOLINT(ulsan-coro-ref-across-await)
  sqe.user_data = 7;
  co_await submit(ring);
}
