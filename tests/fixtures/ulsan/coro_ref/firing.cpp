// ulsan fixture: reference into a container element held across a
// co_await — the deque can rotate while the coroutine is suspended.
#include <deque>

template <typename T>
struct Task {};
Task<void> delay(int ticks);

struct Slot {
  int seq;
};

Task<void> drain(std::deque<Slot>& slots) {
  auto& slot = slots.front();
  co_await delay(1);
  slot.seq += 1;
}

// Completion-ring shape: an SQE reference into the submission queue held
// across the submit await — the queue can grow (and reallocate) while the
// coroutine is suspended in the doorbell.
struct Sqe {
  unsigned user_data;
};

struct Ring {
  std::deque<Sqe> sq;
};

Task<void> submit(Ring& ring);

Task<void> push_and_submit(Ring& ring) {
  auto& sqe = ring.sq.back();
  co_await submit(ring);
  sqe.user_data = 7;
}
