// ulsan fixture: reference into a container element held across a
// co_await — the deque can rotate while the coroutine is suspended.
#include <deque>

template <typename T>
struct Task {};
Task<void> delay(int ticks);

struct Slot {
  int seq;
};

Task<void> drain(std::deque<Slot>& slots) {
  auto& slot = slots.front();
  co_await delay(1);
  slot.seq += 1;
}
