// ulsan fixture: suppression over the already-safe capture-free shape.
template <typename T>
struct Task {};
Task<void> delay(int ticks);

void spawn(int* counter) {
  // NOLINTNEXTLINE(ulsan-coro-iife-capture)
  auto t = [](int* c) -> Task<void> {
    co_await delay(1);
    ++*c;
  }(counter);
  (void)t;
}
