// ulsan fixture: the safe shape — capture-free coroutine lambda taking
// its state as parameters, so everything lives in the coroutine frame.
template <typename T>
struct Task {};
Task<void> delay(int ticks);

void spawn(int* counter) {
  auto t = [](int* c) -> Task<void> {
    co_await delay(1);
    ++*c;
  }(counter);
  (void)t;
}
