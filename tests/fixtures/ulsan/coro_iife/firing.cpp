// ulsan fixture: immediately-invoked lambda coroutine with a capture —
// the closure dies at the end of the expression, the frame lives on.
template <typename T>
struct Task {};
Task<void> delay(int ticks);

void spawn(int& counter) {
  auto t = [&counter]() -> Task<void> {
    co_await delay(1);
    ++counter;
  }();
  (void)t;
}
