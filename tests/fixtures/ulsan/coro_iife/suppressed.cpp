// ulsan fixture: same IIFE coroutine, suppressed via NOLINTNEXTLINE.
template <typename T>
struct Task {};
Task<void> delay(int ticks);

void spawn(int& counter) {
  // NOLINTNEXTLINE(ulsan-coro-iife-capture)
  auto t = [&counter]() -> Task<void> {
    co_await delay(1);
    ++counter;
  }();
  (void)t;
}
