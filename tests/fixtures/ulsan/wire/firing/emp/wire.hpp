// ulsan fixture: a wire-format struct with no adjacent static_assert.
#include <cstdint>

struct EmpHeader {
  std::uint8_t kind;
  std::uint16_t src;
  std::uint16_t dst;
  std::uint32_t msg_id;
};
