// ulsan fixture: wire struct correctly pinned by an adjacent assert.
#include <cstdint>

struct Segment {
  std::uint32_t seq;
  std::uint32_t ack;
  std::uint16_t window;
  std::uint16_t flags;
};

static_assert(sizeof(Segment) == 12,
              "Segment wire layout drifted — revisit the encoder");
