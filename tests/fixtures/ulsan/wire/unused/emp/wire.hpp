// ulsan fixture: suppression on a struct that already has its assert.
#include <cstdint>

// NOLINTNEXTLINE(ulsan-wire-hygiene)
struct EmpHeader {
  std::uint8_t kind;
  std::uint16_t src;
};

static_assert(sizeof(EmpHeader) == 4,
              "EmpHeader wire layout drifted — revisit the encoder");
