// ulsan fixture: same naked struct, suppressed.
#include <cstdint>

// NOLINTNEXTLINE(ulsan-wire-hygiene)
struct EmpHeader {
  std::uint8_t kind;
  std::uint16_t src;
  std::uint16_t dst;
  std::uint32_t msg_id;
};
