// ulsan fixture: the compliant shapes — ordered iteration, value keys,
// lookups into unordered containers (order-independent), seeded RNG.
#include <map>
#include <unordered_map>

struct Table {
  std::map<int, int> credits_;
  std::unordered_map<int, int> cache_;

  int sum() const {
    int total = 0;
    for (const auto& [id, c] : credits_) {
      total += c;
    }
    auto it = cache_.find(3);  // point lookup: no iteration order involved
    return it == cache_.end() ? total : total + it->second;
  }
};
