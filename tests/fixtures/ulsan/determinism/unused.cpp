// ulsan fixture: a suppression with nothing to suppress is itself an
// error (the code was fixed, or the rule name is a typo).
#include <map>

struct Table {
  std::map<int, int> credits_;  // NOLINT(ulsan-determinism)
};
