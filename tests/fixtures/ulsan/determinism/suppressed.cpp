// ulsan fixture: same patterns as firing.cpp, every one suppressed.
#include <cstdlib>
#include <map>
#include <unordered_map>

struct Peer {};

struct Table {
  std::unordered_map<int, int> credits_;
  std::map<Peer*, int> by_peer_;  // NOLINT(ulsan-determinism)

  int sum() const {
    int total = 0;
    for (const auto& [id, c] : credits_) {  // NOLINT(ulsan-determinism)
      total += c;
    }
    return total + std::rand();  // NOLINT(ulsan-determinism)
  }
};
