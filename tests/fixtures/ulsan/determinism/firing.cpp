// ulsan fixture: every determinism pattern fires once.
#include <cstdlib>
#include <map>
#include <unordered_map>

struct Peer {};

struct Table {
  std::unordered_map<int, int> credits_;
  std::map<Peer*, int> by_peer_;  // pointer-keyed ordered container

  int sum() const {
    int total = 0;
    for (const auto& [id, c] : credits_) {
      total += c;
    }
    return total + std::rand();
  }
};
