// ulsan fixture: by-value captures into the scheduler are fine.
#include <memory>

struct Engine {
  template <typename F>
  void schedule_after(unsigned long delay, F&& fn);
};

void arm(Engine& eng) {
  auto hits = std::make_shared<int>(0);
  eng.schedule_after(100, [hits] { ++*hits; });
}
