// ulsan fixture: same scheduler hand-off, suppressed (caller guarantees
// the referent outlives the timer in this contrived fixture).
struct Engine {
  template <typename F>
  void schedule_after(unsigned long delay, F&& fn);
};

void arm(Engine& eng, int& hits) {
  eng.schedule_after(100, [&hits] { ++hits; });  // NOLINT(ulsan-coro-schedule-capture)
}
