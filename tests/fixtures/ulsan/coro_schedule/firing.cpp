// ulsan fixture: reference-capturing lambda handed to the scheduler —
// the lambda outlives the enclosing frame.
struct Engine {
  template <typename F>
  void schedule_after(unsigned long delay, F&& fn);
};

void arm(Engine& eng) {
  int hits = 0;
  eng.schedule_after(100, [&hits] { ++hits; });
}
