// ulsan fixture: suppression on a by-value schedule — nothing fires,
// so the suppression itself is reported.
struct Engine {
  template <typename F>
  void schedule_after(unsigned long delay, F&& fn);
};

void arm(Engine& eng) {
  int hits = 0;
  eng.schedule_after(100, [hits] { (void)hits; });  // NOLINT(ulsan-coro-schedule-capture)
}
