// Unit tests for the discrete-event engine, coroutine tasks and
// synchronization primitives.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ulsocks::sim {
namespace {

TEST(Time, LiteralsAndConversions) {
  EXPECT_EQ(1_us, 1000_ns);
  EXPECT_EQ(1_ms, 1000_us);
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_sec(3'000'000'000ull), 3.0);
}

TEST(Time, SerializationCost) {
  // 1500 bytes at 1 Gb/s = 12 us.
  EXPECT_EQ(serialization_ns(1500, 1'000'000'000ull), 12'000u);
  // 4 bytes at 1 Gb/s = 32 ns.
  EXPECT_EQ(serialization_ns(4, 1'000'000'000ull), 32u);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, EqualTimestampsRunInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    eng.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedSchedulingAdvancesTime) {
  Engine eng;
  Time fired_at = 0;
  eng.schedule_at(5, [&] {
    eng.schedule_after(7, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(fired_at, 12u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int count = 0;
  for (Time t = 10; t <= 100; t += 10) {
    eng.schedule_at(t, [&] { ++count; });
  }
  bool drained = eng.run_until(50);
  EXPECT_FALSE(drained);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(eng.now(), 50u);
  drained = eng.run_until(1000);
  EXPECT_TRUE(drained);
  EXPECT_EQ(count, 10);
}

TEST(Engine, RequestStopHaltsRun) {
  Engine eng;
  int count = 0;
  eng.schedule_at(1, [&] {
    ++count;
    eng.request_stop();
  });
  eng.schedule_at(2, [&] { ++count; });
  eng.run();
  EXPECT_EQ(count, 1);
  eng.clear_stop();
  eng.run();
  EXPECT_EQ(count, 2);
}

TEST(Task, SpawnedProcessRuns) {
  Engine eng;
  bool ran = false;
  auto proc = [](Engine& e, bool& flag) -> Task<void> {
    co_await e.delay(10);
    flag = true;
  };
  eng.spawn(proc(eng, ran));
  eng.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(eng.now(), 10u);
}

TEST(Task, NestedAwaitReturnsValue) {
  Engine eng;
  int result = 0;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.delay(5);
    co_return 42;
  };
  auto outer = [&inner](Engine& e, int& out) -> Task<void> {
    out = co_await inner(e);
  };
  eng.spawn(outer(eng, result));
  eng.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(eng.now(), 5u);
}

TEST(Task, DeeplyNestedAwaitIsStackSafe) {
  Engine eng;
  // Recursion depth that would overflow the stack if awaits recursed.
  struct Rec {
    static Task<int> chain(Engine& e, int depth) {
      if (depth == 0) co_return 0;
      int below = co_await chain(e, depth - 1);
      co_return below + 1;
    }
  };
  int result = -1;
  auto outer = [&result](Engine& e) -> Task<void> {
    result = co_await Rec::chain(e, 50'000);
  };
  eng.spawn(outer(eng));
  eng.run();
  EXPECT_EQ(result, 50'000);
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Engine eng;
  auto thrower = [](Engine& e) -> Task<void> {
    co_await e.delay(1);
    throw std::runtime_error("boom");
  };
  bool caught = false;
  auto outer = [&thrower, &caught](Engine& e) -> Task<void> {
    try {
      co_await thrower(e);
    } catch (const std::runtime_error& err) {
      caught = std::string(err.what()) == "boom";
    }
  };
  eng.spawn(outer(eng));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Task, UncaughtExceptionSurfacesFromRun) {
  Engine eng;
  auto thrower = [](Engine& e) -> Task<void> {
    co_await e.delay(1);
    throw std::runtime_error("unhandled");
  };
  eng.spawn(thrower(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Task, ManySpawnedTasksAreReaped) {
  Engine eng;
  int done = 0;
  auto proc = [](Engine& e, int& counter) -> Task<void> {
    co_await e.delay(1);
    ++counter;
  };
  for (int i = 0; i < 1000; ++i) eng.spawn(proc(eng, done));
  eng.run();
  EXPECT_EQ(done, 1000);
}

TEST(Task, TwoProcessesInterleaveDeterministically) {
  Engine eng;
  std::vector<std::string> log;
  auto proc = [](Engine& e, std::vector<std::string>& lg, std::string name,
                 Duration step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(step);
      lg.push_back(name + std::to_string(i));
    }
  };
  eng.spawn(proc(eng, log, "a", 10));
  eng.spawn(proc(eng, log, "b", 15));
  eng.run();
  // a fires at 10,20,30; b at 15,30,45.  At t=30, b's resume was scheduled
  // earlier (at t=15) than a's (at t=20), so b1 precedes a2.
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2",
                                           "b2"}));
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  Engine eng;
  CondVar cv(eng);
  int woken = 0;
  auto waiter = [](CondVar& c, int& count) -> Task<void> {
    co_await c.wait();
    ++count;
  };
  for (int i = 0; i < 5; ++i) eng.spawn(waiter(cv, woken));
  eng.schedule_at(50, [&] { cv.notify_all(); });
  eng.run();
  EXPECT_EQ(woken, 5);
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(CondVar, NotifyOneWakesExactlyOne) {
  Engine eng;
  CondVar cv(eng);
  int woken = 0;
  auto waiter = [](CondVar& c, int& count) -> Task<void> {
    co_await c.wait();
    ++count;
  };
  for (int i = 0; i < 3; ++i) eng.spawn(waiter(cv, woken));
  eng.schedule_at(10, [&] { cv.notify_one(); });
  eng.run();
  EXPECT_EQ(woken, 1);
  EXPECT_EQ(cv.waiter_count(), 2u);
  cv.notify_all();  // clean up parked coroutines before teardown
  eng.run();
}

TEST(CondVar, WaitUntilChecksPredicate) {
  Engine eng;
  CondVar cv(eng);
  bool flag = false;
  Time resumed_at = 0;
  auto waiter = [](Engine& e, CondVar& c, bool& f, Time& at) -> Task<void> {
    co_await c.wait_until([&f] { return f; });
    at = e.now();
  };
  eng.spawn(waiter(eng, cv, flag, resumed_at));
  // Spurious notify at t=10 must not release the waiter.
  eng.schedule_at(10, [&] { cv.notify_all(); });
  eng.schedule_at(20, [&] {
    flag = true;
    cv.notify_all();
  });
  eng.run();
  EXPECT_EQ(resumed_at, 20u);
}

TEST(ManualEvent, WaitAfterSetDoesNotBlock) {
  Engine eng;
  ManualEvent ev(eng);
  ev.set();
  Time at = 1;
  auto waiter = [](Engine& e, ManualEvent& m, Time& t) -> Task<void> {
    co_await m.wait();
    t = e.now();
  };
  eng.spawn(waiter(eng, ev, at));
  eng.run();
  EXPECT_EQ(at, 0u);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(eng, 2);
  int concurrent = 0;
  int peak = 0;
  auto worker = [](Engine& e, Semaphore& s, int& cur, int& pk) -> Task<void> {
    co_await s.acquire();
    ++cur;
    pk = std::max(pk, cur);
    co_await e.delay(10);
    --cur;
    s.release();
  };
  for (int i = 0; i < 6; ++i) eng.spawn(worker(eng, sem, concurrent, peak));
  eng.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Semaphore, TryAcquire) {
  Engine eng;
  Semaphore sem(eng, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Channel, FifoDelivery) {
  Engine eng;
  Channel<int> ch(eng, 4);
  std::vector<int> got;
  auto producer = [](Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await c.send(i);
    c.close();
  };
  auto consumer = [](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    while (auto v = co_await c.recv()) out.push_back(*v);
  };
  eng.spawn(producer(ch));
  eng.spawn(consumer(ch, got));
  eng.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Channel, BoundedCapacityBlocksSender) {
  Engine eng;
  Channel<int> ch(eng, 2);
  int sent = 0;
  auto producer = [](Channel<int>& c, int& s) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await c.send(i);
      ++s;
    }
  };
  eng.spawn(producer(ch, sent));
  eng.run();
  EXPECT_EQ(sent, 2);  // producer parked: channel full, nobody receiving
  // Drain one; producer should make exactly one more send.
  auto drain = [](Channel<int>& c) -> Task<void> {
    auto v = co_await c.recv();
    EXPECT_TRUE(v.has_value());
  };
  eng.spawn(drain(ch));
  eng.run();
  EXPECT_EQ(sent, 3);
  ch.close();  // release the parked producer (send throws; swallowed by run)
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Channel, TrySendTryRecv) {
  Engine eng;
  Channel<int> ch(eng, 1);
  EXPECT_TRUE(ch.try_send(7));
  EXPECT_FALSE(ch.try_send(8));
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(ch.try_recv().has_value());
}

TEST(Stats, OnlineStatsMoments) {
  OnlineStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(Stats, SeriesPercentiles) {
  Series s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 0.6);  // nearest-rank, either side is fine
  EXPECT_NEAR(s.percentile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Stats, ResultTableFormatting) {
  ResultTable t({"size", "latency_us"});
  t.add_row({"4", ResultTable::num(28.5, 1)});
  std::string out = t.to_string();
  EXPECT_NE(out.find("size"), std::string::npos);
  EXPECT_NE(out.find("28.5"), std::string::npos);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1'000'000), b.uniform(0, 1'000'000));
  }
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

// Determinism property: the same seed gives the identical event trace.
TEST(Engine, RunsAreReproducible) {
  auto run_once = [](std::uint64_t seed) {
    Engine eng(seed);
    std::vector<Time> stamps;
    auto proc = [](Engine& e, std::vector<Time>& out) -> Task<void> {
      for (int i = 0; i < 50; ++i) {
        co_await e.delay(e.rng().uniform(1, 100));
        out.push_back(e.now());
      }
    };
    eng.spawn(proc(eng, stamps));
    eng.spawn(proc(eng, stamps));
    eng.run();
    return stamps;
  };
  EXPECT_EQ(run_once(123), run_once(123));
  EXPECT_NE(run_once(123), run_once(456));
}

// ---------------------------------------------------------------------------
// InlineFunction (the engine's event callable)
// ---------------------------------------------------------------------------

TEST(InlineFunction, HoldsMoveOnlyCapturesInline) {
  auto payload = std::make_unique<int>(41);
  int result = 0;
  EventFn fn = [p = std::move(payload), &result] { result = *p + 1; };
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(result, 42);
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, SpillsOversizedCapturesToTheHeap) {
  // A capture bigger than the inline buffer must still work (heap spill).
  struct Big {
    std::array<std::uint64_t, 32> words{};  // 256 B > the 88 B inline buffer
  };
  Big big;
  big.words[31] = 7;
  std::uint64_t seen = 0;
  EventFn fn = [big, &seen] { seen = big.words[31]; };
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 7u);
}

TEST(InlineFunction, MoveTransfersTheCallable) {
  int calls = 0;
  EventFn a = [&calls] { ++calls; };
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ulsocks::sim
