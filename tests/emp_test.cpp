// Unit and property tests for the EMP protocol: wire format, tag matching,
// reliability under frame loss, the unexpected queue, and resource
// accounting.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "emp/endpoint.hpp"
#include "emp/wire.hpp"
#include "net/topology.hpp"
#include "nic/nic_device.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace ulsocks::emp {
namespace {

using sim::Engine;
using sim::Task;

TEST(Wire, HeaderRoundTripData) {
  EmpHeader h;
  h.kind = FrameKind::kData;
  h.src_node = 3;
  h.dst_node = 1;
  h.tag = 0xbeef;
  h.msg_id = 123456;
  h.frame_index = 7;
  h.total_frames = 44;
  h.msg_bytes = 65000;
  std::vector<std::uint8_t> frag(100);
  std::iota(frag.begin(), frag.end(), 0);

  auto bytes = encode_frame(h, frag);
  EXPECT_EQ(bytes.size(), kHeaderBytes + frag.size());
  auto decoded = decode_frame(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header, h);
  EXPECT_TRUE(std::equal(frag.begin(), frag.end(),
                         decoded->fragment.begin()));
}

TEST(Wire, HeaderRoundTripAck) {
  EmpHeader h;
  h.kind = FrameKind::kAck;
  h.src_node = 2;
  h.dst_node = 0;
  h.msg_id = 99;
  h.ack_value = 12;
  auto bytes = encode_frame(h, {});
  auto decoded = decode_frame(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.kind, FrameKind::kAck);
  EXPECT_EQ(decoded->header.ack_value, 12u);
  EXPECT_TRUE(decoded->fragment.empty());
}

TEST(Wire, RejectsMalformed) {
  EXPECT_FALSE(decode_frame(std::vector<std::uint8_t>(5)).has_value());
  std::vector<std::uint8_t> junk(kHeaderBytes, 0xff);
  EXPECT_FALSE(decode_frame(junk).has_value());  // kind 0xff invalid
}

TEST(Wire, FragmentationMath) {
  EXPECT_EQ(max_fragment_bytes(1500), 1480u);
  EXPECT_EQ(frames_for(0, 1500), 1u);
  EXPECT_EQ(frames_for(1, 1500), 1u);
  EXPECT_EQ(frames_for(1480, 1500), 1u);
  EXPECT_EQ(frames_for(1481, 1500), 2u);
  EXPECT_EQ(frames_for(65536, 1500), 45u);
}

// Fixture: two hosts on a star network with EMP endpoints.
class EmpPair : public ::testing::Test {
 protected:
  EmpPair() : model_(sim::calibrated_cost_model()), net_(eng_, model_.wire, 2) {
    for (int i = 0; i < 2; ++i) {
      cpu_[i] = std::make_unique<sim::SerialResource>(
          eng_, "host" + std::to_string(i));
      nic_[i] = std::make_unique<nic::NicDevice>(
          eng_, model_, net_.host_link(static_cast<std::size_t>(i)),
          net::StarNetwork::kHostSide,
          net::MacAddress::for_host(static_cast<std::uint32_t>(i)));
      ep_[i] = std::make_unique<EmpEndpoint>(
          eng_, model_, *nic_[i], *cpu_[i], static_cast<NodeId>(i),
          [](NodeId n) {
            return net::MacAddress::for_host(static_cast<std::uint32_t>(n));
          },
          config_);
    }
  }

  static std::vector<std::uint8_t> pattern(std::size_t n,
                                           std::uint8_t seed = 1) {
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::uint8_t>(seed + i * 7);
    }
    return v;
  }

  EmpConfig config_{};
  Engine eng_;
  sim::CostModel model_;
  net::StarNetwork net_;
  std::unique_ptr<sim::SerialResource> cpu_[2];
  std::unique_ptr<nic::NicDevice> nic_[2];
  std::unique_ptr<EmpEndpoint> ep_[2];
};

TEST_F(EmpPair, SmallMessageDelivered) {
  auto data = pattern(4);
  std::vector<std::uint8_t> rxbuf(64, 0);
  RecvResult result{};

  auto receiver = [&]() -> Task<void> {
    auto h = co_await ep_[1]->post_recv(NodeId{0}, 10, rxbuf);
    result = co_await ep_[1]->wait_recv(h);
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(1000);  // let the receiver pre-post
    auto h = co_await ep_[0]->post_send(1, 10, data);
    co_await ep_[0]->wait_send_acked(h);
  };
  eng_.spawn(receiver());
  eng_.spawn(sender());
  eng_.run();

  EXPECT_EQ(result.src, 0);
  EXPECT_EQ(result.tag, 10);
  EXPECT_EQ(result.bytes, 4u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), rxbuf.begin()));
  EXPECT_EQ(ep_[1]->posted_descriptor_count(), 0u);
  EXPECT_EQ(ep_[0]->pending_send_count(), 0u);
}

TEST_F(EmpPair, MultiFrameMessageReassembled) {
  auto data = pattern(10'000, 3);
  std::vector<std::uint8_t> rxbuf(10'000, 0);

  auto receiver = [&]() -> Task<void> {
    auto h = co_await ep_[1]->post_recv(NodeId{0}, 5, rxbuf);
    auto r = co_await ep_[1]->wait_recv(h);
    EXPECT_EQ(r.bytes, 10'000u);
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    auto h = co_await ep_[0]->post_send(1, 5, data);
    co_await ep_[0]->wait_send_acked(h);
  };
  eng_.spawn(receiver());
  eng_.spawn(sender());
  eng_.run();
  EXPECT_EQ(rxbuf, data);
  // 10000 bytes / 1480 per frame = 7 frames.
  EXPECT_EQ(ep_[0]->stats().data_frames_tx, 7u);
}

TEST_F(EmpPair, ZeroByteMessage) {
  std::vector<std::uint8_t> rxbuf(8, 0xcc);
  auto receiver = [&]() -> Task<void> {
    auto h = co_await ep_[1]->post_recv(NodeId{0}, 1, rxbuf);
    auto r = co_await ep_[1]->wait_recv(h);
    EXPECT_EQ(r.bytes, 0u);
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    auto h = co_await ep_[0]->post_send(1, 1, {});
    co_await ep_[0]->wait_send_acked(h);
  };
  eng_.spawn(receiver());
  eng_.spawn(sender());
  eng_.run();
  EXPECT_EQ(rxbuf[0], 0xcc);  // untouched
}

TEST_F(EmpPair, TagMatchingSelectsCorrectDescriptor) {
  std::vector<std::uint8_t> buf_a(64), buf_b(64);
  auto msg_a = pattern(16, 11);
  auto msg_b = pattern(16, 77);

  auto receiver = [&]() -> Task<void> {
    auto ha = co_await ep_[1]->post_recv(NodeId{0}, 100, buf_a);
    auto hb = co_await ep_[1]->post_recv(NodeId{0}, 200, buf_b);
    auto rb = co_await ep_[1]->wait_recv(hb);
    auto ra = co_await ep_[1]->wait_recv(ha);
    EXPECT_EQ(ra.tag, 100);
    EXPECT_EQ(rb.tag, 200);
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    // Send tag 200 first: it must land in buf_b even though buf_a was
    // posted first.
    auto h1 = co_await ep_[0]->post_send(1, 200, msg_b);
    auto h2 = co_await ep_[0]->post_send(1, 100, msg_a);
    co_await ep_[0]->wait_send_acked(h1);
    co_await ep_[0]->wait_send_acked(h2);
  };
  eng_.spawn(receiver());
  eng_.spawn(sender());
  eng_.run();
  EXPECT_TRUE(std::equal(msg_a.begin(), msg_a.end(), buf_a.begin()));
  EXPECT_TRUE(std::equal(msg_b.begin(), msg_b.end(), buf_b.begin()));
}

TEST_F(EmpPair, WildcardSourceMatchesAnySender) {
  std::vector<std::uint8_t> buf(32);
  auto receiver = [&]() -> Task<void> {
    auto h = co_await ep_[1]->post_recv(std::nullopt, 9, buf);
    auto r = co_await ep_[1]->wait_recv(h);
    EXPECT_EQ(r.src, 0);
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    auto h = co_await ep_[0]->post_send(1, 9, pattern(8));
    co_await ep_[0]->wait_send_acked(h);
  };
  eng_.spawn(receiver());
  eng_.spawn(sender());
  eng_.run();
}

TEST_F(EmpPair, UnmatchedMessageIsDroppedThenRetransmitted) {
  // No descriptor is posted until well after the first transmission; the
  // receiver must get the data via sender retransmission.
  auto data = pattern(100, 9);
  std::vector<std::uint8_t> buf(128);
  bool received = false;

  auto sender = [&]() -> Task<void> {
    auto h = co_await ep_[0]->post_send(1, 42, data);
    co_await ep_[0]->wait_send_acked(h);
  };
  auto receiver = [&]() -> Task<void> {
    // Wait past one retransmit timeout before posting.
    co_await eng_.delay(config_.retransmit_timeout + 500'000);
    auto h = co_await ep_[1]->post_recv(NodeId{0}, 42, buf);
    auto r = co_await ep_[1]->wait_recv(h);
    EXPECT_EQ(r.bytes, 100u);
    received = true;
  };
  eng_.spawn(sender());
  eng_.spawn(receiver());
  eng_.run();

  EXPECT_TRUE(received);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), buf.begin()));
  EXPECT_GE(ep_[1]->stats().unmatched_drops, 1u);
  EXPECT_GE(ep_[0]->stats().retransmitted_frames, 1u);
}

TEST_F(EmpPair, SendFailsAfterMaxRetries) {
  config_ = EmpConfig{};
  config_.max_retries = 3;
  config_.retransmit_timeout = 100'000;
  // Rebuild endpoint 0 with the tighter config.
  ep_[0] = std::make_unique<EmpEndpoint>(
      eng_, model_, *nic_[0], *cpu_[0], NodeId{0},
      [](NodeId n) {
        return net::MacAddress::for_host(static_cast<std::uint32_t>(n));
      },
      config_);

  bool failed = false;
  auto sender = [&]() -> Task<void> {
    auto h = co_await ep_[0]->post_send(1, 7, pattern(10));
    try {
      co_await ep_[0]->wait_send_acked(h);
    } catch (const EmpError&) {
      failed = true;
    }
  };
  eng_.spawn(sender());
  eng_.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(ep_[0]->pending_send_count(), 0u);
}

class EmpLossTest : public EmpPair,
                    public ::testing::WithParamInterface<double> {};

// Property: EMP delivers every message intact, in posted-descriptor order,
// under any frame-loss rate the link throws at it.
TEST_P(EmpLossTest, ReliableUnderLoss) {
  const double loss = GetParam();
  net_.host_link(0).set_drop_policy(
      net::StarNetwork::kHostSide,
      net::random_drop_policy(eng_.rng(), loss));
  net_.host_link(1).set_drop_policy(
      net::StarNetwork::kHostSide,
      net::random_drop_policy(eng_.rng(), loss));

  constexpr int kMessages = 12;
  constexpr std::size_t kBytes = 5'000;
  std::vector<std::vector<std::uint8_t>> rx(kMessages);
  int completed = 0;

  auto receiver = [&]() -> Task<void> {
    std::vector<RecvHandle> handles;
    for (int i = 0; i < kMessages; ++i) {
      rx[static_cast<std::size_t>(i)].resize(kBytes);
      handles.push_back(co_await ep_[1]->post_recv(
          NodeId{0}, static_cast<Tag>(i), rx[static_cast<std::size_t>(i)]));
    }
    for (int i = 0; i < kMessages; ++i) {
      auto r = co_await ep_[1]->wait_recv(handles[static_cast<std::size_t>(i)]);
      EXPECT_EQ(r.bytes, kBytes);
      ++completed;
    }
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    for (int i = 0; i < kMessages; ++i) {
      auto h = co_await ep_[0]->post_send(1, static_cast<Tag>(i),
                                          pattern(kBytes,
                                                  static_cast<std::uint8_t>(i)));
      co_await ep_[0]->wait_send_acked(h);
    }
  };
  eng_.spawn(receiver());
  eng_.spawn(sender());
  eng_.run();

  EXPECT_EQ(completed, kMessages);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)],
              pattern(kBytes, static_cast<std::uint8_t>(i)))
        << "message " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, EmpLossTest,
                         ::testing::Values(0.0, 0.01, 0.05, 0.2));

TEST_F(EmpPair, UnexpectedQueueCatchesEarlyMessage) {
  auto data = pattern(200, 5);
  std::vector<std::uint8_t> buf(256);

  auto setup = [&]() -> Task<void> {
    co_await ep_[1]->post_unexpected(4, 1024);
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(50'000);
    auto h = co_await ep_[0]->post_send(1, 3, data);
    co_await ep_[0]->wait_send_acked(h);
  };
  auto receiver = [&]() -> Task<void> {
    // Post the receive long after the message arrived.
    co_await eng_.delay(500'000);
    auto h = co_await ep_[1]->post_recv(NodeId{0}, 3, buf);
    auto r = co_await ep_[1]->wait_recv(h);
    EXPECT_EQ(r.bytes, 200u);
  };
  eng_.spawn(setup());
  eng_.spawn(sender());
  eng_.spawn(receiver());
  eng_.run();

  EXPECT_TRUE(std::equal(data.begin(), data.end(), buf.begin()));
  EXPECT_GE(ep_[1]->stats().unexpected_claims, 1u);
  EXPECT_EQ(ep_[1]->stats().unmatched_drops, 0u);
  // No retransmissions needed: the unexpected queue absorbed the message.
  EXPECT_EQ(ep_[0]->stats().retransmitted_frames, 0u);
  // The entry returned to the pool after delivery.
  EXPECT_EQ(ep_[1]->unexpected_free_count(), 4u);
}

TEST_F(EmpPair, UnexpectedReconciledWithDescriptorPostedWhileInFlight) {
  // The descriptor is filed between the message's first frame and its
  // completion; the ready-reconciliation path must still deliver it.
  auto data = pattern(8'000, 21);
  std::vector<std::uint8_t> buf(8'192);
  bool got = false;

  auto setup = [&]() -> Task<void> {
    co_await ep_[1]->post_unexpected(2, 16'384);
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(50'000);
    auto h = co_await ep_[0]->post_send(1, 6, data);
    co_await ep_[0]->wait_send_acked(h);
  };
  auto receiver = [&]() -> Task<void> {
    // 8 KB takes ~6 frames; post mid-flight (~30 us after first frame).
    co_await eng_.delay(80'000);
    auto h = co_await ep_[1]->post_recv(NodeId{0}, 6, buf);
    auto r = co_await ep_[1]->wait_recv(h);
    EXPECT_EQ(r.bytes, 8'000u);
    got = true;
  };
  eng_.spawn(setup());
  eng_.spawn(sender());
  eng_.spawn(receiver());
  eng_.run();
  EXPECT_TRUE(got);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), buf.begin()));
}

TEST_F(EmpPair, UnpostRemovesDescriptor) {
  std::vector<std::uint8_t> buf(64);
  auto proc = [&]() -> Task<void> {
    auto h = co_await ep_[1]->post_recv(NodeId{0}, 5, buf);
    co_await eng_.delay(100'000);
    EXPECT_EQ(ep_[1]->posted_descriptor_count(), 1u);
    bool removed = co_await ep_[1]->unpost_recv(h);
    EXPECT_TRUE(removed);
    co_await eng_.delay(100'000);
    EXPECT_EQ(ep_[1]->posted_descriptor_count(), 0u);
  };
  eng_.spawn(proc());
  eng_.run();
}

TEST_F(EmpPair, UnpostFailsOnMatchedDescriptor) {
  std::vector<std::uint8_t> buf(64);
  auto receiver = [&]() -> Task<void> {
    auto h = co_await ep_[1]->post_recv(NodeId{0}, 5, buf);
    co_await eng_.delay(300'000);  // message arrives meanwhile
    bool removed = co_await ep_[1]->unpost_recv(h);
    EXPECT_FALSE(removed);
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(10'000);
    auto h = co_await ep_[0]->post_send(1, 5, pattern(16));
    co_await ep_[0]->wait_send_acked(h);
  };
  eng_.spawn(receiver());
  eng_.spawn(sender());
  eng_.run();
}

TEST_F(EmpPair, TranslationCacheAvoidsRepinning) {
  std::vector<std::uint8_t> buf(64);
  auto proc = [&]() -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      auto h = co_await ep_[1]->post_recv(NodeId{0}, static_cast<Tag>(i), buf);
      bool ok = co_await ep_[1]->unpost_recv(h);
      EXPECT_TRUE(ok);
    }
  };
  eng_.spawn(proc());
  eng_.run();
  EXPECT_EQ(ep_[1]->stats().pin_misses, 1u);
  EXPECT_EQ(ep_[1]->stats().pin_hits, 9u);
}

TEST_F(EmpPair, AcksFollowWindow) {
  // 10 frames with ack window 4 -> acks at 4, 8, 10 = 3 acks.
  auto data = pattern(1480 * 10);
  std::vector<std::uint8_t> buf(1480 * 10);
  auto receiver = [&]() -> Task<void> {
    auto h = co_await ep_[1]->post_recv(NodeId{0}, 2, buf);
    co_await ep_[1]->wait_recv(h);
  };
  auto sender = [&]() -> Task<void> {
    co_await eng_.delay(1000);
    auto h = co_await ep_[0]->post_send(1, 2, data);
    co_await ep_[0]->wait_send_acked(h);
  };
  eng_.spawn(receiver());
  eng_.spawn(sender());
  eng_.run();
  EXPECT_EQ(ep_[1]->stats().acks_tx, 3u);
  EXPECT_EQ(ep_[0]->stats().acks_rx, 3u);
}

TEST_F(EmpPair, LatencyIsCloseToPaperEmpBaseline) {
  // Calibration check: one-way 4-byte latency (half of ping-pong RTT)
  // should sit near the paper's 28 us for raw EMP.
  constexpr int kIters = 30;
  std::vector<std::uint8_t> ping(4), pong(4), b0(4), b1(4);
  sim::Time total_rtt_start = 0;
  double one_way_us = 0;

  auto server = [&]() -> Task<void> {
    for (int i = 0; i < kIters; ++i) {
      auto h = co_await ep_[1]->post_recv(NodeId{0}, 1, b1);
      co_await ep_[1]->wait_recv(h);
      auto s = co_await ep_[1]->post_send(0, 2, pong);
      co_await ep_[1]->wait_send_local(s);
    }
  };
  auto client = [&]() -> Task<void> {
    co_await eng_.delay(100'000);
    total_rtt_start = eng_.now();
    for (int i = 0; i < kIters; ++i) {
      auto h = co_await ep_[0]->post_recv(NodeId{1}, 2, b0);
      auto s = co_await ep_[0]->post_send(1, 1, ping);
      co_await ep_[0]->wait_recv(h);
    }
    one_way_us =
        sim::to_us(eng_.now() - total_rtt_start) / (2.0 * kIters);
  };
  eng_.spawn(server());
  eng_.spawn(client());
  eng_.run();

  EXPECT_GT(one_way_us, 20.0);
  EXPECT_LT(one_way_us, 36.0);
}

}  // namespace
}  // namespace ulsocks::emp
