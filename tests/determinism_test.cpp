// Determinism self-check (ROADMAP tier-1 gate): the engine folds every
// executed event's (time, sequence) into a 64-bit digest; two runs of the
// same seeded workload must be bit-identical — same digest, same event
// count, same final time.  A divergence means something nondeterministic
// (wall clock, pointer ordering, uninitialized reads) leaked into the
// simulation and every paper-reproduction number is suspect.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "apps/cluster.hpp"
#include "sim/engine.hpp"
#include "sockets/config.hpp"

namespace ulsocks {
namespace {

using apps::Cluster;
using os::SockAddr;
using sim::Engine;
using sim::Task;

TEST(Digest, AdvancesAsEventsExecute) {
  Engine eng;
  std::uint64_t initial = eng.digest();
  eng.schedule_at(10, [] {});
  EXPECT_EQ(eng.digest(), initial);  // scheduling alone changes nothing
  eng.run();
  EXPECT_NE(eng.digest(), initial);
}

TEST(Digest, IdenticalEventSequencesAgree) {
  auto run = [] {
    Engine eng;
    for (int i = 0; i < 100; ++i) {
      eng.schedule_at(static_cast<sim::Time>(i * 7), [] {});
    }
    eng.run();
    return eng.digest();
  };
  EXPECT_EQ(run(), run());
}

TEST(Digest, DifferentTimingsDiverge) {
  auto run = [](sim::Time spacing) {
    Engine eng;
    for (int i = 0; i < 10; ++i) {
      eng.schedule_at(static_cast<sim::Time>(i) * spacing, [] {});
    }
    eng.run();
    return eng.digest();
  };
  EXPECT_NE(run(7), run(8));
}

struct RunSignature {
  std::uint64_t digest;
  std::uint64_t events;
  sim::Time end_time;
  std::uint64_t bytes_echoed;
  friend bool operator==(const RunSignature&, const RunSignature&) = default;
};

// A full-stack workload: substrate connection setup, eager + credit flow,
// randomized message sizes drawn from the engine's seeded RNG, teardown.
RunSignature run_echo_workload(std::uint64_t seed) {
  Engine eng(seed);
  Cluster cluster(eng, sim::calibrated_cost_model(), 2);
  std::uint64_t echoed = 0;

  auto server = [](Cluster& c) -> Task<void> {
    auto& api = c.node(1).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 7100});
    co_await api.listen(ls, 4);
    int sd = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(16384);
    for (;;) {
      std::size_t n = co_await api.read(sd, buf);
      if (n == 0) break;
      co_await api.write_all(sd, std::span(buf).first(n));
    }
    co_await api.close(sd);
    co_await api.close(ls);
  };
  auto client = [](Cluster& c, Engine& eng,
                   std::uint64_t& echoed) -> Task<void> {
    auto& api = c.node(0).socks;
    int sd = co_await api.socket();
    co_await api.connect(sd, SockAddr{1, 7100});
    std::vector<std::uint8_t> out(16384);
    std::vector<std::uint8_t> in(16384);
    for (int i = 0; i < 25; ++i) {
      std::size_t n = eng.rng().uniform(1, 8192);
      for (std::size_t b = 0; b < n; ++b) {
        out[b] = static_cast<std::uint8_t>(eng.rng().uniform(0, 255));
      }
      co_await api.write_all(sd, std::span(out).first(n));
      co_await api.read_exact(sd, std::span(in).first(n));
      echoed += n;
    }
    co_await api.close(sd);
  };
  eng.spawn(server(cluster));
  eng.spawn(client(cluster, eng, echoed));
  eng.run();
  return RunSignature{eng.digest(), eng.events_executed(), eng.now(), echoed};
}

TEST(Determinism, SameSeedSameDigestTwice) {
  RunSignature a = run_echo_workload(42);
  RunSignature b = run_echo_workload(42);
  EXPECT_EQ(a, b) << "same-seed runs diverged: digest " << a.digest << " vs "
                  << b.digest << ", events " << a.events << " vs "
                  << b.events;
  EXPECT_GT(a.bytes_echoed, 0u);
  EXPECT_GT(a.events, 1000u);  // the workload actually exercised the stack
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Different seeds draw different message sizes, so the event stream —
  // and therefore the digest — must differ.
  EXPECT_NE(run_echo_workload(1).digest, run_echo_workload(2).digest);
}

}  // namespace
}  // namespace ulsocks
