// Determinism self-check (ROADMAP tier-1 gate): the engine folds every
// executed event's (time, sequence) into a 64-bit digest; two runs of the
// same seeded workload must be bit-identical — same digest, same event
// count, same final time.  A divergence means something nondeterministic
// (wall clock, pointer ordering, uninitialized reads) leaked into the
// simulation and every paper-reproduction number is suspect.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "apps/cluster.hpp"
#include "check/invariant.hpp"
#include "net/frame.hpp"
#include "net/link.hpp"
#include "net/payload_slice.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"
#include "sockets/config.hpp"

namespace ulsocks {
namespace {

using apps::Cluster;
using os::SockAddr;
using sim::Engine;
using sim::Task;

TEST(Digest, AdvancesAsEventsExecute) {
  Engine eng;
  std::uint64_t initial = eng.digest();
  eng.schedule_at(10, [] {});
  EXPECT_EQ(eng.digest(), initial);  // scheduling alone changes nothing
  eng.run();
  EXPECT_NE(eng.digest(), initial);
}

TEST(Digest, IdenticalEventSequencesAgree) {
  auto run = [] {
    Engine eng;
    for (int i = 0; i < 100; ++i) {
      eng.schedule_at(static_cast<sim::Time>(i * 7), [] {});
    }
    eng.run();
    return eng.digest();
  };
  EXPECT_EQ(run(), run());
}

TEST(Digest, DifferentTimingsDiverge) {
  auto run = [](sim::Time spacing) {
    Engine eng;
    for (int i = 0; i < 10; ++i) {
      eng.schedule_at(static_cast<sim::Time>(i) * spacing, [] {});
    }
    eng.run();
    return eng.digest();
  };
  EXPECT_NE(run(7), run(8));
}

struct RunSignature {
  std::uint64_t digest;
  std::uint64_t events;
  sim::Time end_time;
  std::uint64_t bytes_echoed;
  friend bool operator==(const RunSignature&, const RunSignature&) = default;
};

// Workload knobs for run_echo_workload.  Defaults reproduce the original
// tier-1 workload exactly.
struct EchoOptions {
  sockets::SubstrateConfig cfg{};
  bool use_tcp = false;    // kernel TCP instead of the substrate
  bool use_view = false;   // server drains with read_view() (zero-copy)
  double loss = 0.0;       // random frame loss on both host links
  std::uint64_t* bytes_copied = nullptr;  // out: host/bytes_copied total
};

// A full-stack workload: substrate connection setup, eager + credit flow,
// randomized message sizes drawn from the engine's seeded RNG, teardown.
// The client verifies the echoed bytes, so any stale-buffer bleed from the
// slice/frame pools shows up as a content mismatch, not just a digest one.
RunSignature run_echo_workload(std::uint64_t seed,
                               const EchoOptions& opt = {}) {
  Engine eng(seed);
  Cluster cluster(eng, sim::calibrated_cost_model(), 2, opt.cfg);
  if (opt.loss > 0) {
    for (std::size_t i = 0; i < 2; ++i) {
      cluster.network().host_link(i).set_drop_policy(
          net::StarNetwork::kHostSide,
          net::random_drop_policy(eng.rng(), opt.loss));
    }
  }
  std::uint64_t echoed = 0;

  auto pick = [&](std::size_t node) -> os::SocketApi& {
    return opt.use_tcp
               ? static_cast<os::SocketApi&>(cluster.node(node).tcp)
               : static_cast<os::SocketApi&>(cluster.node(node).socks);
  };
  auto server = [&]() -> Task<void> {
    auto& api = pick(1);
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 7100});
    co_await api.listen(ls, 4);
    int sd = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(16384);
    os::RecvView view;
    for (;;) {
      std::size_t n;
      if (opt.use_view) {
        n = co_await api.read_view(sd, view, buf.size());
        // Gather the parts host-side (no simulated cost) so the echo write
        // pattern is identical whether slicing lent one part or many.
        std::size_t off = 0;
        for (const auto& part : view.parts) {
          std::memcpy(buf.data() + off, part.data(), part.size());
          off += part.size();
        }
      } else {
        n = co_await api.read(sd, buf);
      }
      if (n == 0) break;
      co_await api.write_all(sd, std::span(buf).first(n));
    }
    co_await api.close(sd);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& api = pick(0);
    int sd = co_await api.socket();
    co_await api.connect(sd, SockAddr{1, 7100});
    std::vector<std::uint8_t> out(16384);
    std::vector<std::uint8_t> in(16384);
    for (int i = 0; i < 25; ++i) {
      std::size_t n = eng.rng().uniform(1, 8192);
      for (std::size_t b = 0; b < n; ++b) {
        out[b] = static_cast<std::uint8_t>(eng.rng().uniform(0, 255));
      }
      co_await api.write_all(sd, std::span(out).first(n));
      co_await api.read_exact(sd, std::span(in).first(n));
      EXPECT_TRUE(std::equal(in.begin(), in.begin() + n, out.begin()))
          << "echoed bytes corrupted at iteration " << i;
      echoed += n;
    }
    co_await api.close(sd);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  if (opt.bytes_copied != nullptr) {
    *opt.bytes_copied = static_cast<std::uint64_t>(
        eng.metrics().counter("host/bytes_copied").value());
  }
  return RunSignature{eng.digest(), eng.events_executed(), eng.now(), echoed};
}

TEST(Determinism, SameSeedSameDigestTwice) {
  RunSignature a = run_echo_workload(42);
  RunSignature b = run_echo_workload(42);
  EXPECT_EQ(a, b) << "same-seed runs diverged: digest " << a.digest << " vs "
                  << b.digest << ", events " << a.events << " vs "
                  << b.events;
  EXPECT_GT(a.bytes_echoed, 0u);
  EXPECT_GT(a.events, 1000u);  // the workload actually exercised the stack
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Different seeds draw different message sizes, so the event stream —
  // and therefore the digest — must differ.
  EXPECT_NE(run_echo_workload(1).digest, run_echo_workload(2).digest);
}

TEST(Determinism, FramePoolingDoesNotChangeEventOrder) {
  // Pooling recycles frame storage; it must never leak into simulated
  // behaviour.  The full echo workload (connection setup, eager + credit
  // flow, teardown) must produce a bit-identical run signature with the
  // pool switched off (seed behaviour: heap-allocate every frame).
  net::FramePool::set_pooling_enabled(false);
  RunSignature unpooled = run_echo_workload(42);
  net::FramePool::set_pooling_enabled(true);
  RunSignature pooled = run_echo_workload(42);
  EXPECT_EQ(pooled, unpooled)
      << "pooled digest " << pooled.digest << " vs unpooled "
      << unpooled.digest << ", events " << pooled.events << " vs "
      << unpooled.events;
}

// RAII guard: every slicing A/B test must leave the global switch in its
// default (enabled) state even when an assertion fails midway.
struct SlicingGuard {
  ~SlicingGuard() { net::SlicePool::set_slicing_enabled(true); }
};

// The zero-copy slice data path must be a pure host-side optimization:
// the simulated event stream (digest, count, end time) is bit-identical
// with slicing on and off, on every paper preset.
TEST(Determinism, SlicingDoesNotChangeEventOrderOnAnyPreset) {
  SlicingGuard guard;
  for (const sockets::Preset& p : sockets::presets()) {
    EchoOptions opt;
    opt.cfg = p.cfg;
    net::SlicePool::set_slicing_enabled(false);
    RunSignature legacy = run_echo_workload(42, opt);
    net::SlicePool::set_slicing_enabled(true);
    RunSignature sliced = run_echo_workload(42, opt);
    EXPECT_EQ(sliced, legacy)
        << "preset " << p.name << ": sliced digest " << sliced.digest
        << " vs legacy " << legacy.digest << ", events " << sliced.events
        << " vs " << legacy.events;
  }
}

// Same invariant through the zero-copy read_view() receive API, where the
// sliced mode lends NIC buffers instead of copying into user memory.
TEST(Determinism, SlicingDoesNotChangeEventOrderWithReadView) {
  SlicingGuard guard;
  EchoOptions opt;
  opt.cfg = sockets::preset_ds_da_uq();
  opt.use_view = true;
  net::SlicePool::set_slicing_enabled(false);
  RunSignature legacy = run_echo_workload(42, opt);
  net::SlicePool::set_slicing_enabled(true);
  RunSignature sliced = run_echo_workload(42, opt);
  EXPECT_EQ(sliced, legacy);
}

// Stress variant: tiny credits and staging buffers force fragmentation,
// credit stalls and unexpected-queue traffic, and random frame loss drives
// the NACK-repair retransmit path — all of which rebuild frames from the
// pinned slice and must stay digest-identical.
TEST(Determinism, SlicingDoesNotChangeEventOrderUnderLossyStress) {
  SlicingGuard guard;
  EchoOptions opt;
  opt.cfg = sockets::preset_ds_da_uq();
  opt.cfg.credits = 2;
  opt.cfg.buffer_bytes = 2048;
  opt.loss = 0.01;
  net::SlicePool::set_slicing_enabled(false);
  RunSignature legacy = run_echo_workload(42, opt);
  net::SlicePool::set_slicing_enabled(true);
  RunSignature sliced = run_echo_workload(42, opt);
  EXPECT_EQ(sliced, legacy);
}

// Kernel TCP grew its own sliced segment path (header inline, payload
// adopted as a slice); it must be behaviour-neutral too, including under
// loss (retransmits re-slice from the ByteRing).
TEST(Determinism, SlicingDoesNotChangeEventOrderOverTcp) {
  SlicingGuard guard;
  EchoOptions opt;
  opt.use_tcp = true;
  opt.loss = 0.005;
  net::SlicePool::set_slicing_enabled(false);
  RunSignature legacy = run_echo_workload(42, opt);
  net::SlicePool::set_slicing_enabled(true);
  RunSignature sliced = run_echo_workload(42, opt);
  EXPECT_EQ(sliced, legacy);
}

// The point of the slices: with read_view the legacy path copies every
// payload byte ~5 times on the host (staging, send capture, wire encode,
// delivery, read-out) while the sliced path pins it once.  Require the
// ISSUE's >= 3x reduction with headroom.
TEST(HostCopies, SlicingCutsBytesCopiedAtLeast3x) {
  SlicingGuard guard;
  std::uint64_t legacy_bytes = 0;
  std::uint64_t sliced_bytes = 0;
  EchoOptions opt;
  opt.cfg = sockets::preset_ds_da_uq();
  opt.use_view = true;
  net::SlicePool::set_slicing_enabled(false);
  opt.bytes_copied = &legacy_bytes;
  (void)run_echo_workload(42, opt);
  net::SlicePool::set_slicing_enabled(true);
  opt.bytes_copied = &sliced_bytes;
  (void)run_echo_workload(42, opt);
  ASSERT_GT(sliced_bytes, 0u);  // control traffic still copies
  EXPECT_GE(legacy_bytes, 3 * sliced_bytes)
      << "legacy copied " << legacy_bytes << " bytes, sliced copied "
      << sliced_bytes;
}

// ---------------------------------------------------------------------------
// Queue-order property test: the engine's two-level 4-ary heap must pop in
// exactly the strict (time, sequence) order.  The oracle is a deliberately
// naive scheduler — an unordered vector popped by linear min-scan — driven
// through the same randomized self-spawning workload and folded through the
// same digest function.  Any ordering bug in the heap, the slot arena, or
// the near/far horizon split shows up as a digest or count mismatch.
// ---------------------------------------------------------------------------

// The engine's digest fold (splitmix64 finalizer), replicated here so the
// test checks the published contract rather than calling back into it.
constexpr std::uint64_t ref_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
constexpr std::uint64_t kRefDigestInit = 0x243f6a8885a308d3ull;

// Deterministic generator shared (by value of its seed) between the engine
// run and the reference run: if both schedulers execute events in the same
// order, both draw the same decisions.
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 11;
  }
};

// Delta distribution exercising every queue regime: same-timestamp events
// (seq tiebreak), short deltas (near heap), and deltas past the 64 us near
// window (far heap + horizon refills).
sim::Duration random_delta(Lcg& rng) {
  const std::uint64_t r = rng.next();
  switch (r % 4) {
    case 0: return 0;
    case 1: return static_cast<sim::Duration>(r % 64);
    case 2: return static_cast<sim::Duration>(r % 4096);
    default: return static_cast<sim::Duration>(70'000 + r % 200'000);
  }
}

struct NaiveScheduler {
  struct Ev {
    sim::Time t;
    std::uint64_t seq;
    int depth;
  };
  std::vector<Ev> pending;
  sim::Time now = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t digest = kRefDigestInit;
  std::uint64_t executed = 0;

  void schedule(sim::Time t, int depth) {
    pending.push_back(Ev{t, next_seq++, depth});
  }
  void run(Lcg& rng) {
    while (!pending.empty()) {
      std::size_t best = 0;  // linear min-scan: the obviously-correct pop
      for (std::size_t i = 1; i < pending.size(); ++i) {
        const Ev& a = pending[i];
        const Ev& b = pending[best];
        if (a.t < b.t || (a.t == b.t && a.seq < b.seq)) best = i;
      }
      const Ev ev = pending[best];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best));
      now = ev.t;
      ++executed;
      digest = ref_mix64(digest ^ static_cast<std::uint64_t>(ev.t));
      digest = ref_mix64(digest ^ ev.seq);
      if (ev.depth > 0) {
        const std::uint64_t kids = rng.next() % 3;
        for (std::uint64_t k = 0; k < kids; ++k) {
          schedule(now + random_delta(rng), ev.depth - 1);
        }
      }
    }
  }
};

// Self-spawning event for the real engine, mirroring NaiveScheduler's
// execution body draw-for-draw.
struct Spawner {
  Engine* eng;
  Lcg* rng;
  int depth;
  void operator()() const {
    if (depth <= 0) return;
    const std::uint64_t kids = rng->next() % 3;
    for (std::uint64_t k = 0; k < kids; ++k) {
      eng->schedule_after(random_delta(*rng), Spawner{eng, rng, depth - 1});
    }
  }
};

// ---------------------------------------------------------------------------
// Sharded engine (sim/shard.hpp): a ShardGroup partitions the hosts across
// engines synchronized by link-latency lookahead.  The contract, from
// weakest to strongest coupling:
//   - a one-shard group is byte-identical to a plain Engine (same digest);
//   - for a fixed shard count, parallel execution is byte-identical to
//     stepping the same epochs serially (same per-shard digests, so the
//     same folded group digest);
//   - across shard counts, the simulated outcome is invariant: the same
//     events fire at the same times (causal digest, event count, end time)
//     and the application sees the same bytes.  The seq-folded digest is
//     intentionally partition-dependent (each engine numbers its own
//     events), which is why causal_digest() exists.
// These workloads draw randomness from per-actor generators and seeded
// drop policies — never Engine::rng(), whose draw interleaving would
// change with the partition.
// ---------------------------------------------------------------------------

struct ShardSignature {
  std::uint64_t group_digest;
  std::uint64_t causal_digest;
  std::uint64_t events;
  sim::Time end_time;
  std::uint64_t bytes_echoed;
  friend bool operator==(const ShardSignature&, const ShardSignature&) =
      default;
};

/// The partition-invariant part of a signature (drops the seq-folded
/// digest, which legitimately differs across shard counts).
struct CausalSignature {
  std::uint64_t causal_digest;
  std::uint64_t events;
  sim::Time end_time;
  std::uint64_t bytes_echoed;
  friend bool operator==(const CausalSignature&, const CausalSignature&) =
      default;
};

CausalSignature causal_part(const ShardSignature& s) {
  return {s.causal_digest, s.events, s.end_time, s.bytes_echoed};
}

struct ShardEchoOptions {
  sockets::SubstrateConfig cfg{};
  bool use_tcp = false;
  double loss = 0.0;
  int rounds = 20;
  std::uint64_t seed = 42;
  // Per-host cable propagation overrides (ns), cycled over hosts; empty
  // keeps the calibrated model's uniform wire.
  std::vector<sim::Duration> per_host_propagation = {};
  // Pin the group to the PR5-era scalar epoch bound instead of the
  // per-edge lookahead matrix (A/B comparisons).
  bool scalar_lookahead = false;
};

/// Scheduler-side observables of a sharded run, for epoch-count A/Bs.
struct GroupStats {
  std::uint64_t epochs = 0;
  std::uint64_t barrier_skips = 0;
};

Task<void> shard_echo_server(os::SocketApi& api) {
  int ls = co_await api.socket();
  co_await api.bind(ls, SockAddr{1, 7100});
  co_await api.listen(ls, 4);
  int sd = co_await api.accept(ls, nullptr);
  std::vector<std::uint8_t> buf(16384);
  for (;;) {
    std::size_t n = co_await api.read(sd, buf);
    if (n == 0) break;
    co_await api.write_all(sd, std::span(buf).first(n));
  }
  co_await api.close(sd);
  co_await api.close(ls);
}

Task<void> shard_echo_client(os::SocketApi& api, std::uint64_t seed,
                             int rounds, std::uint64_t* echoed) {
  Lcg rng{seed};
  int sd = co_await api.socket();
  co_await api.connect(sd, SockAddr{1, 7100});
  std::vector<std::uint8_t> out(16384);
  std::vector<std::uint8_t> in(16384);
  for (int i = 0; i < rounds; ++i) {
    const std::size_t n = 1 + rng.next() % 8192;
    for (std::size_t b = 0; b < n; ++b) {
      out[b] = static_cast<std::uint8_t>(rng.next() & 0xff);
    }
    co_await api.write_all(sd, std::span(out).first(n));
    co_await api.read_exact(sd, std::span(in).first(n));
    EXPECT_TRUE(std::equal(in.begin(), in.begin() + n, out.begin()))
        << "echoed bytes corrupted at iteration " << i;
    *echoed += n;
  }
  co_await api.close(sd);
}

os::SocketApi& shard_echo_api(Cluster& cl, std::size_t node, bool use_tcp) {
  return use_tcp ? static_cast<os::SocketApi&>(cl.node(node).tcp)
                 : static_cast<os::SocketApi&>(cl.node(node).socks);
}

void shard_echo_losses(Cluster& cl, const ShardEchoOptions& opt) {
  if (opt.loss <= 0) return;
  // Policies seeded per link, not fed from any engine's RNG: frames cross a
  // given link side in the same order under every partition, so the drop
  // decisions replay identically.
  for (std::size_t i = 0; i < 2; ++i) {
    cl.network().host_link(i).set_drop_policy(
        net::StarNetwork::kHostSide,
        net::random_drop_policy(opt.seed * 1000003 + i, opt.loss));
  }
}

/// The group's default (and scalar-mode) lookahead: a lower bound on every
/// link's latency, so the minimum over the heterogeneous cables in play.
sim::Duration echo_lookahead(const sim::CostModel& model,
                             const ShardEchoOptions& opt) {
  sim::WireCosts wire = model.wire;
  sim::Duration la = net::shard_lookahead(wire);
  for (sim::Duration p : opt.per_host_propagation) {
    wire.propagation_ns = p;
    la = std::min(la, net::shard_lookahead(wire));
  }
  return la;
}

ShardSignature run_plain_echo(const ShardEchoOptions& opt = {}) {
  Engine eng(opt.seed);
  Cluster cl(eng, sim::calibrated_cost_model(), 2, opt.cfg, {}, true,
             opt.per_host_propagation);
  shard_echo_losses(cl, opt);
  std::uint64_t echoed = 0;
  eng.spawn(shard_echo_server(shard_echo_api(cl, 1, opt.use_tcp)));
  eng.spawn(shard_echo_client(shard_echo_api(cl, 0, opt.use_tcp),
                              opt.seed ^ 0xabcdefull, opt.rounds, &echoed));
  eng.run();
  return {eng.digest(), eng.causal_digest(), eng.events_executed(), eng.now(),
          echoed};
}

ShardSignature run_sharded_echo(std::size_t shards, unsigned threads,
                                const ShardEchoOptions& opt = {},
                                GroupStats* stats = nullptr) {
  const sim::CostModel model = sim::calibrated_cost_model();
  sim::ShardGroup group(shards, echo_lookahead(model, opt), opt.seed);
  if (opt.scalar_lookahead) {
    group.set_lookahead_mode(sim::ShardGroup::LookaheadMode::kScalar);
  }
  Cluster cl(group, model, 2, opt.cfg, {}, true, opt.per_host_propagation);
  shard_echo_losses(cl, opt);
  std::uint64_t echoed = 0;
  cl.node_engine(1).spawn(shard_echo_server(shard_echo_api(cl, 1, opt.use_tcp)));
  cl.node_engine(0).spawn(shard_echo_client(
      shard_echo_api(cl, 0, opt.use_tcp), opt.seed ^ 0xabcdefull, opt.rounds,
      &echoed));
  group.run(threads);
  if (stats != nullptr) {
    stats->epochs = group.epochs();
    stats->barrier_skips = group.barrier_skips();
  }
  return {group.digest(), group.causal_digest(), group.events_executed(),
          group.now(), echoed};
}

/// run_sharded_echo plus a deterministic round-robin migration schedule:
/// every `every_n_epochs` barrier epochs the policy bounces one of the two
/// host domains onto the next non-fabric shard, cycling forever.  Roots go
/// through Cluster::spawn_on so the whole workload carries its host's
/// domain tag and migrates with it; the schedule is a pure function of the
/// epoch count, never wall clock.
ShardSignature run_migrating_echo(
    std::size_t shards, unsigned threads, std::uint64_t every_n_epochs,
    const ShardEchoOptions& opt = {},
    std::vector<sim::ShardGroup::MigrationRecord>* log = nullptr,
    GroupStats* stats = nullptr) {
  const sim::CostModel model = sim::calibrated_cost_model();
  sim::ShardGroup group(shards, echo_lookahead(model, opt), opt.seed);
  if (opt.scalar_lookahead) {
    group.set_lookahead_mode(sim::ShardGroup::LookaheadMode::kScalar);
  }
  Cluster cl(group, model, 2, opt.cfg, {}, true, opt.per_host_propagation);
  shard_echo_losses(cl, opt);
  auto tick = std::make_shared<std::uint64_t>(0);
  group.set_rebalance_policy(
      [tick](sim::ShardGroup& g) {
        const std::uint64_t t = (*tick)++;
        const auto d = static_cast<sim::DomainId>(1 + t % 2);
        if (!g.domain_migratable(d)) return;
        g.request_domain_migration(
            d, static_cast<std::uint32_t>(1 + t % (g.size() - 1)));
      },
      every_n_epochs);
  std::uint64_t echoed = 0;
  cl.spawn_on(1, shard_echo_server(shard_echo_api(cl, 1, opt.use_tcp)));
  cl.spawn_on(0, shard_echo_client(shard_echo_api(cl, 0, opt.use_tcp),
                                   opt.seed ^ 0xabcdefull, opt.rounds,
                                   &echoed));
  group.run(threads);
  if (log != nullptr) *log = group.migration_log();
  if (stats != nullptr) {
    stats->epochs = group.epochs();
    stats->barrier_skips = group.barrier_skips();
  }
  return {group.digest(), group.causal_digest(), group.events_executed(),
          group.now(), echoed};
}

// A one-shard group must be indistinguishable from not sharding at all:
// same engine seed, same event stream, same seq-folded digest — on every
// named paper preset.
TEST(Sharding, GroupOfOneIsByteIdenticalToPlainEngine) {
  for (const sockets::Preset& p : sockets::presets()) {
    ShardEchoOptions opt;
    opt.cfg = p.cfg;
    ShardSignature plain = run_plain_echo(opt);
    ShardSignature one = run_sharded_echo(1, 1, opt);
    EXPECT_EQ(one, plain) << "preset " << p.name << ": group-of-one digest "
                          << one.group_digest << " vs plain "
                          << plain.group_digest;
    EXPECT_GT(plain.bytes_echoed, 0u) << "preset " << p.name;
  }
}

// Across shard counts the partition changes but the simulation must not:
// same events at the same times, same bytes through the application — on
// every named preset.
TEST(Sharding, OutcomeInvariantAcrossShardCountsOnEveryPreset) {
  for (const sockets::Preset& p : sockets::presets()) {
    ShardEchoOptions opt;
    opt.cfg = p.cfg;
    CausalSignature one = causal_part(run_sharded_echo(1, 1, opt));
    CausalSignature two = causal_part(run_sharded_echo(2, 1, opt));
    CausalSignature four = causal_part(run_sharded_echo(4, 1, opt));
    EXPECT_EQ(two, one) << "preset " << p.name << " diverged at 2 shards";
    EXPECT_EQ(four, one) << "preset " << p.name << " diverged at 4 shards";
    EXPECT_GT(one.bytes_echoed, 0u) << "preset " << p.name;
  }
}

// For a fixed partition, running epochs on a thread pool must be
// byte-identical to stepping them serially — per-shard digests and all.
// This is the test the ThreadSanitizer stage in scripts/check.sh runs with
// real concurrency.
TEST(Sharding, ParallelIsByteIdenticalToSerialStepping) {
  for (std::size_t shards : {2ul, 4ul}) {
    ShardSignature serial = run_sharded_echo(shards, 1);
    ShardSignature parallel = run_sharded_echo(shards, 4);
    EXPECT_EQ(parallel, serial)
        << shards << " shards: parallel digest " << parallel.group_digest
        << " vs serial " << serial.group_digest;
  }
}

// Loss, tiny credits and tiny staging buffers drive retransmits, credit
// stalls and unexpected-queue traffic across the shard boundary; the
// outcome must still be partition-invariant, and parallel must still match
// serial stepping byte-for-byte.
TEST(Sharding, LossyStressOutcomeInvariantAcrossShardCounts) {
  ShardEchoOptions opt;
  opt.cfg = sockets::preset_ds_da_uq();
  opt.cfg.credits = 2;
  opt.cfg.buffer_bytes = 2048;
  opt.loss = 0.01;
  CausalSignature one = causal_part(run_sharded_echo(1, 1, opt));
  CausalSignature two = causal_part(run_sharded_echo(2, 1, opt));
  CausalSignature four = causal_part(run_sharded_echo(4, 1, opt));
  EXPECT_EQ(two, one) << "lossy stress diverged at 2 shards";
  EXPECT_EQ(four, one) << "lossy stress diverged at 4 shards";
  EXPECT_EQ(run_sharded_echo(4, 4, opt), run_sharded_echo(4, 1, opt))
      << "lossy stress: parallel diverged from serial stepping";
}

// Live migration must be invisible to the simulation.  Bouncing the two
// host domains across shards on three very different cadences — every
// barrier, every 8th, every 64th — leaves the causal digest, event count,
// end time and echoed bytes of every paper preset exactly as the
// never-migrating partition produced them.  (The seq-folded digest is
// excluded on purpose: event numbering is per-engine, so it legitimately
// differs when a domain changes engines.)
TEST(Sharding, MigrationScheduleInvariantOnEveryPreset) {
  for (const sockets::Preset& p : sockets::presets()) {
    ShardEchoOptions opt;
    opt.cfg = p.cfg;
    const CausalSignature still = causal_part(run_sharded_echo(4, 1, opt));
    for (std::uint64_t k : {std::uint64_t{1}, std::uint64_t{8},
                            std::uint64_t{64}}) {
      std::vector<sim::ShardGroup::MigrationRecord> log;
      const CausalSignature moved =
          causal_part(run_migrating_echo(4, 1, k, opt, &log));
      EXPECT_EQ(moved, still)
          << "preset " << p.name << " diverged migrating every " << k
          << " epochs";
      EXPECT_GT(log.size(), 0u)
          << "preset " << p.name << " K=" << k << ": nothing ever migrated";
    }
  }
}

// The same invariance under loss, tiny credits and tiny staging buffers:
// retransmits, credit stalls and unexpected-queue traffic must all survive
// having their host yanked onto another engine mid-flow.
TEST(Sharding, MigrationLossyStressInvariant) {
  ShardEchoOptions opt;
  opt.cfg = sockets::preset_ds_da_uq();
  opt.cfg.credits = 2;
  opt.cfg.buffer_bytes = 2048;
  opt.loss = 0.01;
  const CausalSignature still = causal_part(run_sharded_echo(4, 1, opt));
  for (std::uint64_t k : {std::uint64_t{1}, std::uint64_t{8},
                          std::uint64_t{64}}) {
    EXPECT_EQ(causal_part(run_migrating_echo(4, 1, k, opt)), still)
        << "lossy stress diverged migrating every " << k << " epochs";
  }
}

// With rebalancing active, a thread pool must still be byte-identical to
// serial stepping: same digests, same epoch count, and the exact same
// migration schedule (the log pins which domain moved where at which
// barrier).
TEST(Sharding, MigrationParallelMatchesSerialByteForByte) {
  std::vector<sim::ShardGroup::MigrationRecord> serial_log, parallel_log;
  GroupStats serial_stats, parallel_stats;
  const ShardSignature serial =
      run_migrating_echo(4, 1, 8, {}, &serial_log, &serial_stats);
  const ShardSignature parallel =
      run_migrating_echo(4, 4, 8, {}, &parallel_log, &parallel_stats);
  EXPECT_EQ(parallel, serial)
      << "parallel digest " << parallel.group_digest << " vs serial "
      << serial.group_digest;
  EXPECT_EQ(parallel_stats.epochs, serial_stats.epochs);
  EXPECT_GT(serial_log.size(), 0u) << "schedule never migrated";
  EXPECT_EQ(parallel_log, serial_log)
      << "thread pool changed the migration schedule";
}

// A migration proposed mid-epoch (from inside an executing event) must not
// take effect until the barrier: the placement map keeps answering with
// the old shard and the version stays put for the rest of the window.
TEST(Sharding, MidEpochMigrationRequestDefersToBarrier) {
  const sim::CostModel model = sim::calibrated_cost_model();
  sim::ShardGroup group(4, net::shard_lookahead(model.wire));
  Cluster cl(group, model, 2);
  ASSERT_EQ(group.shard_of_domain(1), 1u);  // host 0 starts on shard 1
  const std::uint64_t v0 = group.placement_version();
  std::uint32_t seen_mid_epoch = ~0u;
  std::uint64_t version_mid_epoch = 0;
  group.shard(1).schedule_after(1000, [&] {
    group.request_domain_migration(1, 3);
    seen_mid_epoch = group.shard_of_domain(1);
    version_mid_epoch = group.placement_version();
  });
  std::uint64_t echoed = 0;
  cl.spawn_on(1, shard_echo_server(cl.node(1).socks));
  cl.spawn_on(0, shard_echo_client(cl.node(0).socks, 7, 4, &echoed));
  group.run(1);
  EXPECT_EQ(seen_mid_epoch, 1u) << "migration applied inside the window";
  EXPECT_EQ(version_mid_epoch, v0);
  EXPECT_EQ(group.shard_of_domain(1), 3u) << "migration never applied";
  EXPECT_GT(group.placement_version(), v0);
  EXPECT_EQ(group.migrations_applied(), 1u);
  EXPECT_GT(echoed, 0u);
}

// Kernel TCP's loss recovery (retransmit timers are the long-dated far-heap
// events) must behave identically when the two endpoints live on different
// shards.
TEST(Sharding, TcpOverLossOutcomeInvariantAcrossShardCounts) {
  ShardEchoOptions opt;
  opt.use_tcp = true;
  opt.loss = 0.005;
  CausalSignature one = causal_part(run_sharded_echo(1, 1, opt));
  CausalSignature two = causal_part(run_sharded_echo(2, 1, opt));
  CausalSignature four = causal_part(run_sharded_echo(4, 1, opt));
  EXPECT_EQ(two, one) << "tcp-over-loss diverged at 2 shards";
  EXPECT_EQ(four, one) << "tcp-over-loss diverged at 4 shards";
}

// Cross-shard frames arriving within one epoch window must drain in strict
// (t, seq, src_shard) order at the barrier, regardless of the order the
// mailboxes were filled: seq orders same-time posts from one source, the
// source shard index breaks cross-source ties.
TEST(Sharding, MailboxDrainsInTimeSeqSrcOrder) {
  sim::ShardGroup group(3, /*lookahead=*/100);
  std::vector<int> order;
  auto post = [&](std::uint32_t src, sim::Time t, int id) {
    group.post_remote(src, 0, t, [&order, id] { order.push_back(id); });
  };
  // Both source shards post at t=0, inside one window, timestamps
  // deliberately scrambled relative to push order.
  group.shard(1).schedule_at(0, [&] {
    post(1, 150, 0);  // (t=150, seq=0, src=1)
    post(1, 120, 1);  // (t=120, seq=1, src=1)
  });
  group.shard(2).schedule_at(0, [&] {
    post(2, 150, 2);  // (t=150, seq=0, src=2)
    post(2, 120, 3);  // (t=120, seq=1, src=2)
    post(2, 150, 4);  // (t=150, seq=2, src=2)
  });
  group.run(1);
  // t=120 first (seq ties, src 1 < 2); then t=150 by (seq, src): seq 0 of
  // src 1, seq 0 of src 2, seq 2 of src 2.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 0, 2, 4}));
  EXPECT_EQ(group.remote_delivered(), 5u);
  EXPECT_GE(group.epochs(), 2u);
}

// The per-edge lookahead machinery, exercised directly.  Registered edges
// 0->1=1000, 1->0=200, 1->2=3000, 2->1=50 give the closure
//   D[0][2] = 4000 (via 1),  D[2][0] = 250 (via 1),
//   D[0][0] = D[1][1] = 1200 (cycle 0->1->0),  D[2][2] = 3050,
// and with next events T = {100, 200, 300} the per-shard bounds are
//   bound_0 = T_1 + D[1][0] = 400,  bound_1 = T_2 + D[2][1] = 350,
//   bound_2 = T_1 + D[1][2] = 3200.
TEST(Sharding, AsymmetricMatrixBoundsFollowTheClosure) {
  sim::ShardGroup group(3, /*lookahead=*/10);
  // Before any registration every pair carries the constructor default.
  EXPECT_EQ(group.edge_lookahead(0, 2), 10u);
  group.register_edge_lookahead(0, 1, 1000);
  group.register_edge_lookahead(1, 0, 200);
  group.register_edge_lookahead(1, 2, 3000);
  group.register_edge_lookahead(2, 1, 50);
  // Registration flips the group to registered-edges-only...
  EXPECT_EQ(group.edge_lookahead(0, 2), sim::ShardGroup::kUnreachable);
  // ...and accumulates the minimum per pair.
  group.register_edge_lookahead(0, 1, 5000);
  EXPECT_EQ(group.edge_lookahead(0, 1), 1000u);

  EXPECT_EQ(group.path_lookahead(0, 2), 4000u);
  EXPECT_EQ(group.path_lookahead(2, 0), 250u);
  EXPECT_EQ(group.path_lookahead(0, 0), 1200u);
  EXPECT_EQ(group.path_lookahead(1, 1), 1200u);
  EXPECT_EQ(group.path_lookahead(2, 2), 3050u);

  group.shard(0).schedule_at(100, [] {});
  group.shard(1).schedule_at(200, [] {});
  group.shard(2).schedule_at(300, [] {});
  EXPECT_EQ(group.plan_bounds(),
            (std::vector<sim::Time>{400, 350, 3200}));
  // Every next event sits below its bound here, so all three run.
  EXPECT_EQ(group.planned_runnable(),
            (std::vector<std::uint8_t>{1, 1, 1}));

  // Posting over a pair nobody registered is an invariant violation, not a
  // silent unsound schedule.
  EXPECT_THROW(group.post_remote(0, 2, 100'000, [] {}),
               check::InvariantError);
}

// A shard no reachable peer can affect gets the drain sentinel: with only
// the edge 0->1 registered, nothing constrains shard 0 (no incoming path,
// no cycle), while shard 1 is bounded by T_0 + W[0][1].
TEST(Sharding, DrainSentinelWhenNoPathConstrains) {
  sim::ShardGroup group(2, /*lookahead=*/10);
  group.register_edge_lookahead(0, 1, 500);
  EXPECT_EQ(group.path_lookahead(1, 0), sim::ShardGroup::kUnreachable);
  group.shard(0).schedule_at(100, [] {});
  group.shard(1).schedule_at(50, [] {});
  EXPECT_EQ(group.plan_bounds(),
            (std::vector<sim::Time>{sim::ShardGroup::kNoBound, 600}));
  // A drained group plans nothing at all.
  group.run(1);
  EXPECT_TRUE(group.plan_bounds().empty());
}

// Idle shards (no events) and far-future shards are excluded from the
// runnable set, and a sole-runnable shard proceeds through coalesced
// micro-epochs on the barrier thread — counted by barrier_skips() and
// mirrored into the group's metrics registry.
TEST(Sharding, IdleShardSkipLeavesItNonRunnable) {
  sim::ShardGroup group(3, /*lookahead=*/100);
  // Uniform default edges: D[i][j] = 100 off-diagonal, every cycle 200.
  for (sim::Time t = 0; t < 100; t += 10) {
    group.shard(0).schedule_at(t, [] {});
  }
  group.shard(1).schedule_at(500, [] {});
  // Shard 2 stays idle.
  ASSERT_FALSE(group.plan_bounds().empty());
  // bound_0 = min(0+200, 500+100) = 200 > T_0; bound_1 = 0+100 <= 500;
  // shard 2 has no event at all.
  EXPECT_EQ(group.planned_runnable(),
            (std::vector<std::uint8_t>{1, 0, 0}));
  group.run(1);
  EXPECT_GE(group.barrier_skips(), 2u);  // both windows ran solo
  EXPECT_GE(group.epochs(), 2u);
  const auto snap = group.metrics().snapshot();
  EXPECT_EQ(snap.at("shard/epochs"),
            static_cast<std::int64_t>(group.epochs()));
  EXPECT_EQ(snap.at("shard/barrier_skips"),
            static_cast<std::int64_t>(group.barrier_skips()));
}

// Heterogeneous cables: host 0 on a short (200 ns) cable, host 1 on a long
// (5000 ns) one.  The registered per-link edges differ per direction pair,
// the serial engine must agree with a one-shard group byte-for-byte, and
// the outcome must stay invariant across shard counts and thread counts.
TEST(Sharding, HeterogeneousLinksOutcomeInvariantAcrossShardCounts) {
  ShardEchoOptions opt;
  opt.per_host_propagation = {200, 5000};
  ShardSignature plain = run_plain_echo(opt);
  ShardSignature one = run_sharded_echo(1, 1, opt);
  EXPECT_EQ(one, plain) << "heterogeneous group-of-one diverged from plain";
  CausalSignature two = causal_part(run_sharded_echo(2, 1, opt));
  CausalSignature four = causal_part(run_sharded_echo(4, 1, opt));
  EXPECT_EQ(two, causal_part(one)) << "heterogeneous diverged at 2 shards";
  EXPECT_EQ(four, causal_part(one)) << "heterogeneous diverged at 4 shards";
  EXPECT_EQ(run_sharded_echo(4, 4, opt), run_sharded_echo(4, 1, opt))
      << "heterogeneous: parallel diverged from serial stepping";
  EXPECT_GT(one.bytes_echoed, 0u);
}

// The point of the matrix: same simulation, same digests, fewer (never
// more) epochs than the scalar group-wide bound.  Uniform links already
// benefit — host<->host pairs relay through the switch shard, so their
// closure entries are 2x the scalar lookahead.
TEST(Sharding, MatrixLookaheadNeedsNoMoreEpochsThanScalar) {
  ShardEchoOptions opt;
  GroupStats matrix{};
  GroupStats scalar{};
  ShardSignature m = run_sharded_echo(4, 1, opt, &matrix);
  opt.scalar_lookahead = true;
  ShardSignature s = run_sharded_echo(4, 1, opt, &scalar);
  EXPECT_EQ(causal_part(m), causal_part(s))
      << "lookahead mode changed the simulated outcome";
  EXPECT_GT(scalar.epochs, 0u);
  EXPECT_LE(matrix.epochs, scalar.epochs)
      << "per-edge bounds must never need more barriers than the scalar";
}

TEST(QueueOrder, RandomInterleavingsMatchNaiveReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Engine eng;
    Lcg eng_rng{seed};
    NaiveScheduler ref;
    Lcg ref_rng{seed};

    Lcg root_rng{seed * 977};
    for (int i = 0; i < 64; ++i) {
      // Coarse root times force same-timestamp collisions.
      const sim::Time t = static_cast<sim::Time>((root_rng.next() % 32) * 512);
      eng.schedule_at(t, Spawner{&eng, &eng_rng, 4});
      ref.schedule(t, 4);
    }
    eng.run();
    ref.run(ref_rng);

    EXPECT_EQ(eng.events_executed(), ref.executed) << "seed " << seed;
    EXPECT_EQ(eng.now(), ref.now) << "seed " << seed;
    EXPECT_EQ(eng.digest(), ref.digest) << "seed " << seed;
    EXPECT_GT(ref.executed, 64u) << "seed " << seed;  // spawning happened
  }
}

}  // namespace
}  // namespace ulsocks
