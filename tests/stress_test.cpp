// Randomized property and stress tests across the full stack.
//
// These sweeps are the "did we really build a byte-stream?" insurance: for
// any interleaving of write sizes, read sizes, loss patterns, connection
// churn and concurrency the simulator's determinism lets us replay, the
// application must observe exactly the bytes that were sent.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "apps/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace ulsocks {
namespace {

using apps::Cluster;
using os::SockAddr;
using sim::Engine;
using sim::Task;

std::vector<std::uint8_t> random_payload(sim::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
  return v;
}

// ---------------------------------------------------------------------------
// Property: the substrate is a byte stream under ANY chunking.
// ---------------------------------------------------------------------------

class StreamChunking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamChunking, ArbitraryWriteAndReadSizesPreserveTheStream) {
  Engine eng(GetParam());
  Cluster cl(eng, sim::calibrated_cost_model(), 2);
  sim::Rng rng(GetParam() * 977 + 1);

  const std::size_t total = 20'000 + rng.uniform(0, 60'000);
  auto data = random_payload(rng, total);
  std::vector<std::uint8_t> received;

  auto server = [&]() -> Task<void> {
    auto& api = cl.node(1).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 80});
    co_await api.listen(ls, 1);
    int cs = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf;
    for (;;) {
      buf.resize(1 + rng.uniform(0, 8'000));  // random read size each call
      std::size_t n = co_await api.read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& api = cl.node(0).socks;
    co_await eng.delay(1000);
    int s = co_await api.socket();
    co_await api.connect(s, SockAddr{1, 80});
    std::size_t off = 0;
    while (off < data.size()) {
      std::size_t n =
          std::min<std::size_t>(1 + rng.uniform(0, 9'000), data.size() - off);
      co_await api.write_all(
          s, std::span<const std::uint8_t>(data).subspan(off, n));
      off += n;
      if (rng.chance(0.2)) co_await eng.delay(rng.uniform(0, 200'000));
    }
    co_await api.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  EXPECT_EQ(received, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamChunking,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Property: datagram mode preserves message boundaries for ANY size mix.
// ---------------------------------------------------------------------------

class DatagramBoundaries : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatagramBoundaries, EachReadReturnsExactlyOneMessage) {
  Engine eng(GetParam());
  Cluster cl(eng, sim::calibrated_cost_model(), 2, sockets::preset_dg());
  sim::Rng rng(GetParam() * 131 + 7);

  constexpr int kMessages = 40;
  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < kMessages; ++i) {
    // Mix of eager (< 4 KB) and rendezvous (> 4 KB) datagrams.
    std::size_t n = rng.chance(0.3) ? 4'097 + rng.uniform(0, 60'000)
                                    : 1 + rng.uniform(0, 4'000);
    sent.push_back(random_payload(rng, n));
  }
  int mismatches = 0;
  int received = 0;

  auto server = [&]() -> Task<void> {
    auto& api = cl.node(1).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 80});
    co_await api.listen(ls, 1);
    co_await api.set_option(ls, os::SockOpt::kDatagram, 1);
    int cs = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(70'000);
    for (int i = 0; i < kMessages; ++i) {
      std::size_t n = co_await api.read(cs, buf);
      ++received;
      if (n != sent[static_cast<std::size_t>(i)].size() ||
          !std::equal(sent[static_cast<std::size_t>(i)].begin(),
                      sent[static_cast<std::size_t>(i)].end(), buf.begin())) {
        ++mismatches;
      }
    }
    co_await api.close(cs);
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& api = cl.node(0).socks;
    co_await eng.delay(1000);
    int s = co_await api.socket();
    co_await api.set_option(s, os::SockOpt::kDatagram, 1);
    co_await api.connect(s, SockAddr{1, 80});
    for (const auto& msg : sent) {
      std::size_t n = co_await api.write(s, msg);
      EXPECT_EQ(n, msg.size());  // datagrams never split
      if (rng.chance(0.3)) co_await eng.delay(rng.uniform(0, 100'000));
    }
    co_await api.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  EXPECT_EQ(received, kMessages);
  EXPECT_EQ(mismatches, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatagramBoundaries,
                         ::testing::Values(11, 12, 13, 14));

// ---------------------------------------------------------------------------
// Soak: concurrent connections across 4 nodes under frame loss.
// ---------------------------------------------------------------------------

TEST(Soak, ConcurrentConnectionsUnderLossStayCorrect) {
  Engine eng(42);
  Cluster cl(eng, sim::calibrated_cost_model(), 4);
  for (std::size_t i = 0; i < 4; ++i) {
    cl.network().host_link(i).set_drop_policy(
        net::StarNetwork::kHostSide,
        net::random_drop_policy(eng.rng(), 0.01));
  }
  sim::Rng rng(4242);

  // Node 0 runs one echo server; nodes 1..3 each run 3 sequential client
  // sessions with random payloads.
  constexpr int kSessionsPerClient = 3;
  int verified = 0;

  auto server = [&]() -> Task<void> {
    auto& api = cl.node(0).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{0, 80});
    co_await api.listen(ls, 8);
    for (int c = 0; c < 3 * kSessionsPerClient; ++c) {
      int cs = co_await api.accept(ls, nullptr);
      // Echo until EOF, inside a detached task so accepts continue.
      auto echo = [](os::SocketApi& a, Engine& e, int fd) -> Task<void> {
        std::vector<std::uint8_t> buf(8192);
        for (;;) {
          std::size_t n = co_await a.read(fd, buf);
          if (n == 0) break;
          co_await a.write_all(
              fd, std::span<const std::uint8_t>(buf).first(n));
        }
        co_await a.close(fd);
        (void)e;
      };
      eng.spawn(echo(api, eng, cs));
    }
  };
  auto client = [&](std::size_t node) -> Task<void> {
    auto& api = cl.node(node).socks;
    co_await eng.delay(1000 * node);
    for (int s = 0; s < kSessionsPerClient; ++s) {
      auto payload = random_payload(rng, 5'000 + rng.uniform(0, 20'000));
      int fd = co_await api.socket();
      co_await api.connect(fd, SockAddr{0, 80});
      co_await api.write_all(fd, payload);
      std::vector<std::uint8_t> echo(payload.size());
      co_await api.read_exact(fd, echo);
      if (echo == payload) ++verified;
      co_await api.close(fd);
    }
  };
  eng.spawn(server());
  for (std::size_t n = 1; n <= 3; ++n) eng.spawn(client(n));
  eng.run();

  EXPECT_EQ(verified, 3 * kSessionsPerClient);
  // Loss definitely happened and was recovered at the EMP layer.
  std::uint64_t retx = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    retx += cl.node(i).emp.stats().retransmitted_frames;
  }
  EXPECT_GT(retx, 0u);
}

// ---------------------------------------------------------------------------
// Churn: many sequential connections recycle tags and descriptors cleanly.
// ---------------------------------------------------------------------------

TEST(Soak, ConnectionChurnLeaksNothing) {
  Engine eng(7);
  Cluster cl(eng, sim::calibrated_cost_model(), 2);
  constexpr int kConnections = 120;
  int served = 0;

  auto server = [&]() -> Task<void> {
    auto& api = cl.node(1).socks;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 80});
    co_await api.listen(ls, 4);
    for (int i = 0; i < kConnections; ++i) {
      int cs = co_await api.accept(ls, nullptr);
      std::vector<std::uint8_t> buf(32);
      co_await api.read_exact(cs, buf);
      co_await api.write_all(cs, buf);
      co_await api.close(cs);
      ++served;
    }
    co_await api.close(ls);
  };
  auto client = [&]() -> Task<void> {
    auto& api = cl.node(0).socks;
    std::vector<std::uint8_t> msg(32, 1);
    for (int i = 0; i < kConnections; ++i) {
      int fd = co_await api.socket();
      co_await api.connect(fd, SockAddr{1, 80});
      co_await api.write_all(fd, msg);
      co_await api.read_exact(fd, msg);
      co_await api.close(fd);
    }
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();

  EXPECT_EQ(served, kConnections);
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(cl.node(static_cast<std::size_t>(n)).socks
                  .active_socket_count(),
              0u)
        << "node " << n;
    EXPECT_EQ(cl.node(static_cast<std::size_t>(n)).emp
                  .posted_descriptor_count(),
              0u)
        << "node " << n;
    EXPECT_EQ(cl.node(static_cast<std::size_t>(n)).emp.pending_send_count(),
              0u)
        << "node " << n;
  }
}

// ---------------------------------------------------------------------------
// EMP NACK fast repair: a dropped early frame of a long message triggers a
// negative acknowledgment instead of waiting out the full timeout.
// ---------------------------------------------------------------------------

TEST(EmpNack, GapTriggersNegativeAck) {
  Engine eng;
  Cluster cl(eng, sim::calibrated_cost_model(), 2);
  // Drop the 2nd data frame once: frames 3.. create a gap > 2*ack_window.
  cl.network().host_link(0).set_drop_policy(
      net::StarNetwork::kHostSide, net::drop_nth_policy({2}));

  auto data = std::vector<std::uint8_t>(1480 * 40, 0x77);
  std::vector<std::uint8_t> buf(data.size());
  bool delivered = false;
  sim::Time delivered_at = 0;

  auto receiver = [&]() -> Task<void> {
    auto& ep = cl.node(1).emp;
    auto h = co_await ep.post_recv(emp::NodeId{0}, 5, buf);
    auto r = co_await ep.wait_recv(h);
    delivered = r.bytes == data.size();
    delivered_at = eng.now();
  };
  auto sender = [&]() -> Task<void> {
    auto& ep = cl.node(0).emp;
    co_await eng.delay(10'000);
    auto h = co_await ep.post_send(1, 5, data);
    co_await ep.wait_send_acked(h);
  };
  eng.spawn(receiver());
  eng.spawn(sender());
  eng.run();

  EXPECT_TRUE(delivered);
  EXPECT_EQ(buf, data);
  EXPECT_GT(cl.node(1).emp.stats().nacks_tx, 0u);
  // The NACK repaired the hole well before the 10 ms retransmit timeout:
  // delivery completes within ~2 ms of simulated time.  (eng.now() itself
  // runs on to the send's timeout event, which fires as a no-op.)
  EXPECT_LT(delivered_at, 5'000'000u);
}

// ---------------------------------------------------------------------------
// TCP under random loss, both directions, with small buffers.
// ---------------------------------------------------------------------------

class TcpLoss : public ::testing::TestWithParam<double> {};

TEST_P(TcpLoss, StreamSurvives) {
  Engine eng(99);
  Cluster cl(eng, sim::calibrated_cost_model(), 2);
  cl.network().host_link(0).set_drop_policy(
      net::StarNetwork::kHostSide,
      net::random_drop_policy(eng.rng(), GetParam()));
  cl.network().host_link(1).set_drop_policy(
      net::StarNetwork::kHostSide,
      net::random_drop_policy(eng.rng(), GetParam()));
  sim::Rng rng(5);
  auto data = random_payload(rng, 150'000);
  std::vector<std::uint8_t> received;

  auto server = [&]() -> Task<void> {
    auto& api = cl.node(1).tcp;
    int ls = co_await api.socket();
    co_await api.bind(ls, SockAddr{1, 80});
    co_await api.listen(ls, 1);
    int cs = co_await api.accept(ls, nullptr);
    std::vector<std::uint8_t> buf(8192);
    for (;;) {
      std::size_t n = co_await api.read(cs, buf);
      if (n == 0) break;
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
  };
  auto client = [&]() -> Task<void> {
    auto& api = cl.node(0).tcp;
    co_await eng.delay(1000);
    int s = co_await api.socket();
    co_await api.connect(s, SockAddr{1, 80});
    co_await api.write_all(s, data);
    co_await api.close(s);
  };
  eng.spawn(server());
  eng.spawn(client());
  eng.run();
  EXPECT_EQ(received, data);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLoss,
                         ::testing::Values(0.005, 0.02, 0.05));

}  // namespace
}  // namespace ulsocks
