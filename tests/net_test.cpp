// Unit tests for links, the learning switch and topologies.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "net/frame.hpp"
#include "net/link.hpp"
#include "net/payload_slice.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace ulsocks::net {
namespace {

using sim::Engine;
using sim::Time;

sim::WireCosts test_wire() {
  sim::WireCosts w;
  w.link_bps = 1'000'000'000ull;
  w.propagation_ns = 300;
  w.switch_latency_ns = 2'200;
  return w;
}

FramePtr make_frame(std::uint32_t from, std::uint32_t to,
                    std::size_t payload_size, std::uint8_t fill = 0xab) {
  return make_frame_ptr(
      MacAddress::for_host(to), MacAddress::for_host(from), EtherType::kEmp,
      std::vector<std::uint8_t>(payload_size, fill));
}

/// Records every delivered frame with its arrival time.
struct Recorder final : FrameSink {
  std::vector<std::pair<Time, FramePtr>> frames;
  Engine* eng = nullptr;
  void frame_arrived(FramePtr f) override {
    frames.emplace_back(eng->now(), std::move(f));
  }
};

TEST(Mac, ForHostIsUniqueAndStable) {
  EXPECT_EQ(MacAddress::for_host(1), MacAddress::for_host(1));
  EXPECT_NE(MacAddress::for_host(1), MacAddress::for_host(2));
  EXPECT_FALSE(MacAddress::for_host(1).is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_EQ(MacAddress::for_host(0x01020304).to_string(),
            "02:00:01:02:03:04");
}

TEST(Frame, WireBytesIncludesOverheadAndPadding) {
  Frame small(MacAddress::for_host(1), MacAddress::for_host(2),
              EtherType::kEmp, std::vector<std::uint8_t>(4));
  // 8 preamble + 14 header + 46 padded + 4 fcs + 12 ifg = 84.
  EXPECT_EQ(small.wire_bytes(), 84u);
  Frame full(MacAddress::for_host(1), MacAddress::for_host(2), EtherType::kEmp,
             std::vector<std::uint8_t>(1500));
  EXPECT_EQ(full.wire_bytes(), 1538u);
}

TEST(Link, DeliversFrameAfterSerializationAndPropagation) {
  Engine eng;
  auto wire = test_wire();
  Link link(eng, wire);
  Recorder rx;
  rx.eng = &eng;
  link.attach(Link::Side::kB, &rx);

  auto f = make_frame(0, 1, 1500);
  std::uint64_t wire_bytes = f->wire_bytes();
  link.transmit(Link::Side::kA, std::move(f));
  eng.run();

  ASSERT_EQ(rx.frames.size(), 1u);
  Time expected = sim::serialization_ns(wire_bytes, wire.link_bps) + 300;
  EXPECT_EQ(rx.frames[0].first, expected);
  EXPECT_EQ(rx.frames[0].second->payload.size(), 1500u);
}

TEST(Link, PayloadBytesSurviveTransit) {
  Engine eng;
  Link link(eng, test_wire());
  Recorder rx;
  rx.eng = &eng;
  link.attach(Link::Side::kB, &rx);

  std::vector<std::uint8_t> body(257);
  std::iota(body.begin(), body.end(), 0);
  link.transmit(Link::Side::kA,
                make_frame_ptr(MacAddress::for_host(1),
                               MacAddress::for_host(0), EtherType::kEmp,
                               body));
  eng.run();
  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].second->payload, body);
}

TEST(Link, BackToBackFramesAreSerializedFifo) {
  Engine eng;
  auto wire = test_wire();
  Link link(eng, wire);
  Recorder rx;
  rx.eng = &eng;
  link.attach(Link::Side::kB, &rx);

  for (int i = 0; i < 3; ++i) link.transmit(Link::Side::kA, make_frame(0, 1, 1500));
  eng.run();

  ASSERT_EQ(rx.frames.size(), 3u);
  sim::Duration ser = sim::serialization_ns(1538, wire.link_bps);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rx.frames[i].first, ser * (i + 1) + wire.propagation_ns);
  }
}

TEST(Link, FullDuplexDirectionsDoNotInterfere) {
  Engine eng;
  auto wire = test_wire();
  Link link(eng, wire);
  Recorder rx_a, rx_b;
  rx_a.eng = rx_b.eng = &eng;
  link.attach(Link::Side::kA, &rx_a);
  link.attach(Link::Side::kB, &rx_b);

  link.transmit(Link::Side::kA, make_frame(0, 1, 1500));
  link.transmit(Link::Side::kB, make_frame(1, 0, 1500));
  eng.run();

  ASSERT_EQ(rx_a.frames.size(), 1u);
  ASSERT_EQ(rx_b.frames.size(), 1u);
  // Both arrive at the single-frame time: no shared-medium contention.
  EXPECT_EQ(rx_a.frames[0].first, rx_b.frames[0].first);
}

TEST(Link, DropNthPolicyDropsExactly) {
  Engine eng;
  Link link(eng, test_wire());
  Recorder rx;
  rx.eng = &eng;
  link.attach(Link::Side::kB, &rx);
  link.set_drop_policy(Link::Side::kA, drop_nth_policy({2, 4}));

  for (std::uint8_t i = 0; i < 5; ++i) {
    link.transmit(Link::Side::kA, make_frame(0, 1, 100, i));
  }
  eng.run();

  ASSERT_EQ(rx.frames.size(), 3u);
  EXPECT_EQ(rx.frames[0].second->payload[0], 0);
  EXPECT_EQ(rx.frames[1].second->payload[0], 2);
  EXPECT_EQ(rx.frames[2].second->payload[0], 4);
  EXPECT_EQ(link.frames_dropped(Link::Side::kA), 2u);
  EXPECT_EQ(link.frames_sent(Link::Side::kA), 5u);
}

TEST(Link, RandomDropPolicyIsSeedDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Engine eng(seed);
    Link link(eng, test_wire());
    Recorder rx;
    rx.eng = &eng;
    link.attach(Link::Side::kB, &rx);
    link.set_drop_policy(Link::Side::kA,
                         random_drop_policy(eng.rng(), 0.3));
    for (int i = 0; i < 100; ++i) {
      link.transmit(Link::Side::kA, make_frame(0, 1, 64));
    }
    eng.run();
    return rx.frames.size();
  };
  EXPECT_EQ(run_once(9), run_once(9));
  EXPECT_GT(run_once(9), 40u);
  EXPECT_LT(run_once(9), 95u);
}

class SwitchTest : public ::testing::Test {
 protected:
  // Three hosts on a star.
  SwitchTest() : net_(eng_, test_wire(), 3) {
    for (int h = 0; h < 3; ++h) {
      rx_[h].eng = &eng_;
      net_.host_link(static_cast<std::size_t>(h))
          .attach(StarNetwork::kHostSide, &rx_[h]);
    }
  }

  void send(std::uint32_t from, std::uint32_t to, std::size_t size) {
    net_.host_link(from).transmit(
        Link::Side::kA == StarNetwork::kHostSide ? Link::Side::kA
                                                 : Link::Side::kB,
        make_frame(from, to, size));
  }

  Engine eng_;
  StarNetwork net_;
  Recorder rx_[3];
};

TEST_F(SwitchTest, UnknownDestinationIsFlooded) {
  send(0, 1, 100);
  eng_.run();
  // Host 1's MAC was never learned, so hosts 1 and 2 both get a copy.
  EXPECT_EQ(rx_[1].frames.size(), 1u);
  EXPECT_EQ(rx_[2].frames.size(), 1u);
  EXPECT_EQ(net_.fabric().frames_flooded(), 1u);
}

TEST_F(SwitchTest, LearnedDestinationIsUnicast) {
  send(1, 0, 64);  // teaches the switch where host 1 lives
  send(0, 1, 100);
  eng_.run();
  // After learning, the second frame goes only to host 1.
  EXPECT_EQ(rx_[1].frames.size(), 1u);
  EXPECT_EQ(rx_[2].frames.size(), 0u);
  EXPECT_EQ(net_.fabric().learned_macs(), 2u);
}

TEST_F(SwitchTest, StoreAndForwardTiming) {
  send(1, 0, 64);  // learn
  eng_.run();
  Time t0 = eng_.now();
  send(0, 1, 1500);
  eng_.run();
  ASSERT_EQ(rx_[1].frames.size(), 1u);
  auto wire = test_wire();
  sim::Duration ser = sim::serialization_ns(1538, wire.link_bps);
  Time expected = t0 + ser + wire.propagation_ns + wire.switch_latency_ns +
                  ser + wire.propagation_ns;
  EXPECT_EQ(rx_[1].frames[0].first, expected);
}

TEST_F(SwitchTest, BroadcastReachesAllOtherPorts) {
  net_.host_link(0).transmit(
      StarNetwork::kHostSide,
      make_frame_ptr(MacAddress::broadcast(), MacAddress::for_host(0),
                     EtherType::kEmp, std::vector<std::uint8_t>(10)));
  eng_.run();
  EXPECT_EQ(rx_[0].frames.size(), 0u);
  EXPECT_EQ(rx_[1].frames.size(), 1u);
  EXPECT_EQ(rx_[2].frames.size(), 1u);
}

TEST_F(SwitchTest, EgressOverloadDropsTail) {
  // Hosts 0 and 2 blast host 1 simultaneously; the egress port drains at
  // 1 Gb/s while 2 Gb/s arrives, so the port buffer must eventually drop.
  send(1, 0, 64);  // learn host 1
  eng_.run();
  const int kFrames = 400;  // 400 * 1538B ~ 615 KB >> 256 KB buffer
  for (int i = 0; i < kFrames; ++i) {
    send(0, 1, 1500);
    send(2, 1, 1500);
  }
  eng_.run();
  EXPECT_GT(net_.fabric().frames_dropped(), 0u);
  EXPECT_LT(rx_[1].frames.size(), static_cast<std::size_t>(2 * kFrames));
  EXPECT_GT(rx_[1].frames.size(), static_cast<std::size_t>(kFrames / 2));
}

TEST(BackToBack, ConnectsTwoHostsDirectly) {
  Engine eng;
  BackToBack b2b(eng, test_wire());
  Recorder rx;
  rx.eng = &eng;
  b2b.link().attach(b2b.side_of(1), &rx);
  b2b.link().transmit(b2b.side_of(0), make_frame(0, 1, 200));
  eng.run();
  EXPECT_EQ(rx.frames.size(), 1u);
}

// ---------------------------------------------------------------------------
// FramePool
// ---------------------------------------------------------------------------

TEST(FramePool, RecyclesStorageAndClearsStaleState) {
  FramePool pool;
  Frame* first;
  std::size_t warm_capacity;
  {
    FramePtr f = pool.acquire();
    first = f.get();
    f->dst = MacAddress::for_host(3);
    f->src = MacAddress::for_host(4);
    f->type = EtherType::kIpv4;
    f->wire_id = 99;
    f->payload.assign(1500, 0xab);
    warm_capacity = f->payload.capacity();
  }  // deleter returns the frame to the pool
  EXPECT_EQ(pool.outstanding(), 0u);

  FramePtr g = pool.acquire();
  ASSERT_EQ(g.get(), first) << "free-list acquire must reuse the storage";
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.recycled(), 1u);
  // No stale bytes may bleed into the frame's next life...
  EXPECT_EQ(g->payload.size(), 0u);
  EXPECT_EQ(g->dst, MacAddress{});
  EXPECT_EQ(g->src, MacAddress{});
  EXPECT_EQ(g->type, EtherType::kEmp);
  EXPECT_EQ(g->wire_id, 0u);
  // ... but the payload capacity stays warm — the point of the pool.
  EXPECT_GE(g->payload.capacity(), warm_capacity);
}

TEST(FramePool, HighWaterMarkReportsPeakThroughGauge) {
  FramePool pool;
  obs::Registry reg;
  obs::Gauge& hwm = reg.gauge("h0/nic/frame_pool_hwm");
  pool.bind_hwm_gauge(hwm);

  std::vector<FramePtr> held;
  for (int i = 0; i < 3; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.high_water_mark(), 3u);
  EXPECT_EQ(hwm.value(), 3);

  held.clear();
  FramePtr f = pool.acquire();  // peak was 3; one outstanding now
  EXPECT_EQ(pool.outstanding(), 1u);
  EXPECT_EQ(pool.high_water_mark(), 3u);
  EXPECT_EQ(hwm.value(), 3);
  EXPECT_EQ(pool.recycled(), 1u);  // served from the free list
}

TEST(FramePool, FramesSafelyOutliveTheirPool) {
  // Clusters destruct before the engine, so queued events may still hold
  // pooled frames when the pool dies; the deleter must then free normally.
  FramePtr straggler;
  {
    FramePool pool;
    straggler = pool.acquire();
    straggler->payload.assign(64, 0x5a);
  }  // pool destroyed while the frame is outstanding
  EXPECT_EQ(straggler->payload.size(), 64u);
  straggler.reset();  // must heap-free, not push to a dead pool (ASan gate)
}

TEST(FramePool, CopiesAreIndependentOfPoolMembership) {
  FramePool pool;
  FramePtr original = pool.acquire();
  original->payload.assign(100, 0x11);
  original->wire_id = 7;
  FramePtr copy = pool.acquire_copy(*original);
  EXPECT_EQ(copy->payload, original->payload);
  EXPECT_EQ(copy->wire_id, 7u);
  copy->payload[0] = 0x22;
  EXPECT_EQ(original->payload[0], 0x11);
}

// ---------------------------------------------------------------------------
// PayloadSlice / SlicePool
// ---------------------------------------------------------------------------

TEST(SlicePool, RecyclesStorageAndNeverBleedsStaleBytes) {
  SlicePool pool;
  std::size_t warm_capacity;
  {
    std::vector<std::uint8_t> big(4096, 0xee);
    PayloadSlice s = pool.copy_in(big);
    EXPECT_EQ(s.size(), 4096u);
    warm_capacity = 4096;
  }  // last ref dropped: storage returns to the pool
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.created(), 1u);

  std::vector<std::uint8_t> small{1, 2, 3};
  PayloadSlice t = pool.copy_in(small);
  EXPECT_EQ(pool.recycled(), 1u) << "second acquire must reuse the buffer";
  // The recycled buffer is filled exactly with the new bytes: no stale 0xee
  // from the previous life is reachable through the slice.
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.data()[0], 1);
  EXPECT_EQ(t.data()[2], 3);
  (void)warm_capacity;
}

TEST(SlicePool, GatherConcatenatesHeaderAndBody) {
  SlicePool pool;
  std::vector<std::uint8_t> head{0xaa, 0xbb};
  std::vector<std::uint8_t> body{1, 2, 3, 4};
  PayloadSlice s = pool.gather(head, body);
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s.data()[0], 0xaa);
  EXPECT_EQ(s.data()[1], 0xbb);
  EXPECT_EQ(s.data()[2], 1);
  EXPECT_EQ(s.data()[5], 4);
}

TEST(SlicePool, RefcountTracksCopiesAndSubslices) {
  SlicePool pool;
  std::vector<std::uint8_t> bytes(100, 0x7f);
  PayloadSlice a = pool.copy_in(bytes);
  EXPECT_EQ(a.use_count(), 1u);
  PayloadSlice b = a;                    // copy: refcount bump
  PayloadSlice c = a.subslice(10, 20);   // view: refcount bump, no copy
  EXPECT_EQ(a.use_count(), 3u);
  EXPECT_EQ(c.size(), 20u);
  EXPECT_EQ(c.data(), a.data() + 10) << "subslice views the same buffer";
  b = PayloadSlice{};
  c = PayloadSlice{};
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(pool.outstanding(), 1u) << "one buffer, many views";
}

TEST(SlicePool, HighWaterMarkReportsPeakThroughGauge) {
  SlicePool pool;
  obs::Registry reg;
  obs::Gauge& hwm = reg.gauge("h0/nic/slice_pool_hwm");
  pool.bind_hwm_gauge(hwm);

  std::vector<std::uint8_t> bytes(16);
  std::vector<PayloadSlice> held;
  for (int i = 0; i < 3; ++i) held.push_back(pool.copy_in(bytes));
  EXPECT_EQ(pool.high_water_mark(), 3u);
  EXPECT_EQ(hwm.value(), 3);

  held.clear();
  PayloadSlice s = pool.copy_in(bytes);  // peak was 3; one outstanding now
  EXPECT_EQ(pool.outstanding(), 1u);
  EXPECT_EQ(pool.high_water_mark(), 3u);
  EXPECT_EQ(hwm.value(), 3);
  EXPECT_GE(pool.recycled(), 1u);
}

TEST(SlicePool, SlicesSafelyOutliveTheirPool) {
  // Queued events hold frames holding slices when a Cluster destructs; the
  // release path must heap-free instead of pushing to a dead pool.
  PayloadSlice straggler;
  {
    SlicePool pool;
    std::vector<std::uint8_t> bytes(64, 0x5a);
    straggler = pool.copy_in(bytes);
  }  // pool destroyed while the slice is outstanding
  ASSERT_EQ(straggler.size(), 64u);
  EXPECT_EQ(straggler.data()[63], 0x5a);
  straggler = PayloadSlice{};  // must not touch the dead pool (ASan gate)
}

TEST(PayloadSlice, AdoptWrapsAVectorWithoutAPool) {
  std::vector<std::uint8_t> bytes{9, 8, 7};
  PayloadSlice s = PayloadSlice::adopt(std::move(bytes));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.data()[0], 9);
  PayloadSlice t = s;
  EXPECT_EQ(s.use_count(), 2u);
}

TEST(Frame, PayloadBytesAndCopyPayloadSpanInlineAndSlices) {
  SlicePool pool;
  Frame f(MacAddress::for_host(1), MacAddress::for_host(2), EtherType::kEmp,
          std::vector<std::uint8_t>{10, 11, 12});  // inline header region
  std::vector<std::uint8_t> body{20, 21, 22, 23};
  f.slices.push_back(pool.copy_in(body));
  std::vector<std::uint8_t> tail{30, 31};
  f.slices.push_back(pool.copy_in(tail));

  EXPECT_EQ(f.payload_bytes(), 9u);
  // Gather across the inline/slice boundary at an offset.
  std::vector<std::uint8_t> out(6);
  f.copy_payload(2, out);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{12, 20, 21, 22, 23, 30}));
}

TEST(FramePool, AcquireCopySharesSlicesInsteadOfDeepCopying) {
  FramePool frames;
  SlicePool slices;
  FramePtr original = frames.acquire();
  original->payload.assign(20, 0x42);
  std::vector<std::uint8_t> body(1000, 0x33);
  original->slices.push_back(slices.copy_in(body));

  FramePtr copy = frames.acquire_copy(*original);
  ASSERT_EQ(copy->slices.size(), 1u);
  EXPECT_EQ(copy->slices[0].data(), original->slices[0].data())
      << "flood copies must share the payload buffer, not duplicate it";
  EXPECT_EQ(original->slices[0].use_count(), 2u);
  EXPECT_EQ(slices.outstanding(), 1u);
  EXPECT_EQ(copy->payload_bytes(), original->payload_bytes());
}

}  // namespace
}  // namespace ulsocks::net
