#!/usr/bin/env python3
"""Gate simulator host throughput against the committed baseline.

Compares the wall-clock throughput points — events/sec ("evps") and the
C10K workload's requests/sec ("reqps") — of a freshly produced
BENCH_hostperf.json with bench/baselines/BENCH_hostperf.json and fails if
any scenario regressed by more than the allowed fraction (default 25%).

The threshold is deliberately loose: the baseline is recorded on one
machine and CI runs on another, so this catches "someone made the hot path
2x slower", not single-digit drift.

A baseline scenario missing from the current run is an ERROR (a silently
dropped workload is how perf gates rot); pass --allow-missing while a
scenario is being intentionally retired.  Scenarios present only in the
current run are reported with the baseline-refresh command but do not fail
the gate — the refreshed baseline then gates them from the next run on.

Beyond wall-clock, the per-scenario `host/bytes_copied` counter is gated
too: it is deterministic (a pure function of the workload), so the current
value may not exceed the baseline by more than 10% — that would mean a
copy crept back into the zero-copy data path.

The sharded engine has its own gate: the scale_web_16hosts scenario is
recorded at 1 shard and 4 shards, and the 4-shard point must reach at
least 2x the 1-shard events/sec — the parallel speedup the sharded engine
exists to buy.  Speedup requires cores: the check applies only when
host_perf.resolved_threads in the CURRENT run is > 1 (the bench clamps its
workers to the hardware, so resolved_threads == 1 means a single-core host
where the 4-shard point measures epoch overhead, not parallelism, and the
plain 25% regression gate is the only meaningful bound).

The C10K scenario has a structural gate of its own: scale_c10k records the
same ~1000-connection traffic served by the ring server (one parked reap
pump) and the blocking server (one parked coroutine per connection), and
the ring point must serve at least as many requests per wall second as the
blocking point — the batched submit/reap API exists to beat the thundering
herd, so losing to it is a regression in the ring path, not noise.

Epoch counts are checked on every host, single-core included: each evps
point carries its "shard/epochs" metric, reported per scenario, and a
point with a "_scalar" twin (same series, x + "_scalar" — the run pinned
to the scalar group-wide lookahead) must not need MORE epochs than the
twin.  Epoch counts are deterministic, so this is an exact structural
gate on the per-edge lookahead matrix, not a wall-clock one.

Usage: check_hostperf.py CURRENT [BASELINE] [--min-ratio R] [--allow-missing]
  CURRENT    BENCH_hostperf.json from the build under test
  BASELINE   committed reference (default bench/baselines/BENCH_hostperf.json)
  R          minimum allowed current/baseline ratio (default 0.75)
"""

import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir, "bench", "baselines", "BENCH_hostperf.json",
)
DEFAULT_MIN_RATIO = 0.75
# bytes_copied is deterministic per workload; allow slack only for
# smoke-vs-full sizing mistakes to surface loudly, not for drift.
BYTES_COPIED_MAX_RATIO = 1.10
# Required 4-shard/1-shard events/sec ratio on multi-core hosts.
SHARD_SERIES = "scale_web_16hosts"
MIN_SHARD_SPEEDUP = 2.0
# The completion-ring server must at least match the blocking server on
# identical C10K traffic (requests per wall second).
C10K_SERIES = "scale_c10k"


def evps_points(path):
    """(series, x) -> (value, bytes_copied or None, epochs or None).

    Covers every wall-clock throughput unit: simulator events/sec ("evps")
    and the C10K scenarios' application requests/sec ("reqps") — both gate
    identically against the baseline.
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    points = {}
    for p in doc.get("points", []):
        if p.get("unit") in ("evps", "reqps"):
            metrics = p.get("metrics", {})
            copied = metrics.get("host/bytes_copied")
            epochs = metrics.get("shard/epochs")
            points[(p["series"], p["x"])] = (float(p["value"]), copied, epochs)
    return points


def resolved_threads(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return doc.get("host_perf", {}).get("resolved_threads", 1)


def check_shard_speedup(current, current_path):
    """Returns a list of failure tuples (possibly empty)."""
    one = current.get((SHARD_SERIES, "1shard"))
    four = current.get((SHARD_SERIES, "4shards"))
    if one is None or four is None:
        return []
    threads = resolved_threads(current_path)
    speedup = four[0] / one[0] if one[0] > 0 else float("inf")
    if threads <= 1:
        print(f"NOTE {SHARD_SERIES}: 4-shard/1-shard ratio {speedup:.2f} on "
              f"a single-core host (resolved_threads={threads}); the "
              f">= {MIN_SHARD_SPEEDUP:.0f}x parallel-speedup gate needs "
              "cores and is skipped")
        return []
    status = "OK " if speedup >= MIN_SHARD_SPEEDUP else "FAIL"
    print(f"{status} {SHARD_SERIES:<16} 4-shard speedup {speedup:5.2f}x "
          f"(required >= {MIN_SHARD_SPEEDUP:.0f}x on "
          f"resolved_threads={threads})")
    if speedup < MIN_SHARD_SPEEDUP:
        return [(SHARD_SERIES, "4shards-speedup", speedup)]
    return []


def check_c10k_ring(current):
    """Ring server must serve >= the blocking server's reqps."""
    ring = current.get((C10K_SERIES, "ring"))
    blocking = current.get((C10K_SERIES, "blocking"))
    if ring is None or blocking is None:
        return []
    ratio = ring[0] / blocking[0] if blocking[0] > 0 else float("inf")
    status = "OK " if ratio >= 1.0 else "FAIL"
    print(f"{status} {C10K_SERIES:<16} ring/blocking reqps ratio {ratio:5.2f} "
          f"(required >= 1.00)")
    if ratio < 1.0:
        return [(C10K_SERIES, "ring-vs-blocking", ratio)]
    return []


def check_epochs(current):
    """Report epoch counts and gate matrix points against scalar twins.

    Every evps point that recorded "shard/epochs" is printed; a point whose
    series has an "<x>_scalar" sibling is the matrix-lookahead run of the
    same workload and shard count, and must not need more epochs than the
    scalar baseline (fewer is the whole point; equal can happen when a
    workload never gives the wider bounds room).
    """
    failures = []
    for (series, x), (_, _, epochs) in sorted(current.items()):
        if epochs is not None:
            print(f"     {series:<16} x={x:<14} shard/epochs {epochs}")
    for (series, x), (_, _, epochs) in sorted(current.items()):
        if epochs is None or x.endswith("_scalar"):
            continue
        scalar = current.get((series, x + "_scalar"))
        if scalar is None or scalar[2] is None:
            continue
        status = "OK " if epochs <= scalar[2] else "FAIL"
        print(f"{status} {series:<16} x={x:<14} matrix epochs {epochs} "
              f"vs scalar {scalar[2]}")
        if epochs > scalar[2]:
            failures.append((series, x + "-epochs", epochs / scalar[2]))
    return failures


def main(argv):
    allow_missing = "--allow-missing" in argv
    args = [a for a in argv[1:] if not a.startswith("--")]
    min_ratio = DEFAULT_MIN_RATIO
    for i, a in enumerate(argv):
        if a == "--min-ratio":
            min_ratio = float(argv[i + 1])
            args = [x for x in args if x != argv[i + 1]]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path = args[0]
    baseline_path = args[1] if len(args) > 1 else DEFAULT_BASELINE

    try:
        current = evps_points(current_path)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"ERROR: cannot read current results {current_path}: {e}",
              file=sys.stderr)
        return 1
    try:
        baseline = evps_points(baseline_path)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"WARNING: no usable baseline at {baseline_path} ({e}); "
              "skipping the host-perf gate", file=sys.stderr)
        return 0

    failures = []
    for key, (base, base_copied, _) in sorted(baseline.items()):
        series, x = key
        if key not in current:
            msg = f"scenario {series}/{x} missing from current run"
            if allow_missing:
                print(f"WARNING: {msg} (--allow-missing)")
            else:
                print(f"FAIL {msg}")
                failures.append((series, x, 0.0))
            continue
        cur, cur_copied, _ = current[key]
        ratio = cur / base if base > 0 else float("inf")
        status = "OK " if ratio >= min_ratio else "FAIL"
        print(f"{status} {series:<16} x={x:<12} "
              f"baseline {base / 1e6:8.2f} Mev/s   "
              f"current {cur / 1e6:8.2f} Mev/s   ratio {ratio:5.2f}")
        if ratio < min_ratio:
            failures.append((series, x, ratio))
        if (base_copied and cur_copied is not None
                and cur_copied > base_copied * BYTES_COPIED_MAX_RATIO):
            print(f"FAIL {series:<16} x={x:<12} host/bytes_copied "
                  f"{cur_copied} exceeds baseline {base_copied} by more "
                  f"than {(BYTES_COPIED_MAX_RATIO - 1) * 100:.0f}%")
            failures.append((series, x, cur_copied / base_copied))
    for key in sorted(set(current) - set(baseline)):
        print(f"NOTE: new scenario {key[0]}/{key[1]} has no baseline; "
              f"refresh with: cp {current_path} {baseline_path}")
    failures.extend(check_shard_speedup(current, current_path))
    failures.extend(check_c10k_ring(current))
    failures.extend(check_epochs(current))

    if failures:
        print(f"\nERROR: {len(failures)} host-perf gate failure(s)",
              file=sys.stderr)
        return 1
    print("host-perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
