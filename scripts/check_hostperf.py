#!/usr/bin/env python3
"""Gate simulator host throughput against the committed baseline.

Compares the wall-clock throughput points — events/sec ("evps") and the
C10K workload's requests/sec ("reqps") — of a freshly produced
BENCH_hostperf.json with bench/baselines/BENCH_hostperf.json and fails if
any scenario regressed by more than the allowed fraction (default 25%).

The threshold is deliberately loose: the baseline is recorded on one
machine and CI runs on another, so this catches "someone made the hot path
2x slower", not single-digit drift.

A baseline scenario missing from the current run is an ERROR (a silently
dropped workload is how perf gates rot); pass --allow-missing while a
scenario is being intentionally retired.  Scenarios present only in the
current run are reported with the baseline-refresh command but do not fail
the gate — the refreshed baseline then gates them from the next run on.

Beyond wall-clock, the per-scenario `host/bytes_copied` counter is gated
too: it is deterministic (a pure function of the workload), so the current
value may not exceed the baseline by more than 10% — that would mean a
copy crept back into the zero-copy data path.

The sharded engine has its own gate: the scale_web_16hosts scenario is
recorded at 1 shard and 4 shards, and the 4-shard point must reach at
least 2x the 1-shard events/sec — the parallel speedup the sharded engine
exists to buy.  Speedup requires cores: the check applies only when
host_perf.resolved_threads in the CURRENT run is > 1 (the bench clamps its
workers to the hardware, so resolved_threads == 1 means a single-core host
where the 4-shard point measures epoch overhead, not parallelism, and the
plain 25% regression gate is the only meaningful bound).

The C10K scenario has a structural gate of its own: scale_c10k records the
same ~1000-connection traffic served by the ring server (one parked reap
pump) and the blocking server (one parked coroutine per connection), and
the ring point must serve at least as many requests per wall second as the
blocking point — the batched submit/reap API exists to beat the thundering
herd, so losing to it is a regression in the ring path, not noise.

Epoch counts are checked on every host, single-core included: each evps
point carries its "shard/epochs" metric, reported per scenario, and a
point with a "_scalar" twin (same series, x + "_scalar" — the run pinned
to the scalar group-wide lookahead) must not need MORE epochs than the
twin.  Epoch counts are deterministic, so this is an exact structural
gate on the per-edge lookahead matrix, not a wall-clock one.

The scale_web_hotspot series gates live shard rebalancing: the causal
digest must be identical on every point (migration may move work between
shards, never change the simulation), the greedy rebalance point must cut
the per-shard executed-event imbalance at least 2x vs static placement
while running no more barrier epochs, and — multi-core hosts only — must
be at least 1.3x faster wall-clock.

Every wall-clock gate that needs real parallelism (the shard speedup, the
C10K reqps comparison, the hotspot rebalance speedup) arms through the one
shared multi_core_gate_armed() guard instead of per-gate copies.

Usage: check_hostperf.py CURRENT [BASELINE] [--min-ratio R] [--allow-missing]
  CURRENT    BENCH_hostperf.json from the build under test
  BASELINE   committed reference (default bench/baselines/BENCH_hostperf.json)
  R          minimum allowed current/baseline ratio (default 0.75)
"""

import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir, "bench", "baselines", "BENCH_hostperf.json",
)
DEFAULT_MIN_RATIO = 0.75
# bytes_copied is deterministic per workload; allow slack only for
# smoke-vs-full sizing mistakes to surface loudly, not for drift.
BYTES_COPIED_MAX_RATIO = 1.10
# Required 4-shard/1-shard events/sec ratio on multi-core hosts.
SHARD_SERIES = "scale_web_16hosts"
MIN_SHARD_SPEEDUP = 2.0
# The completion-ring server must at least match the blocking server on
# identical C10K traffic (requests per wall second).
C10K_SERIES = "scale_c10k"
# Skewed workload measured with rebalancing off and on: greedy migration
# must cut the per-shard executed-event imbalance at least this factor,
# run no more barrier epochs, leave the causal digest untouched, and (on
# multi-core hosts) buy wall-clock throughput.
HOTSPOT_SERIES = "scale_web_hotspot"
MIN_HOTSPOT_SPEEDUP = 1.3
MIN_IMBALANCE_CUT = 2.0


def evps_points(path):
    """(series, x) -> (value, bytes_copied or None, epochs or None, metrics).

    Covers every wall-clock throughput unit: simulator events/sec ("evps")
    and the C10K scenarios' application requests/sec ("reqps") — both gate
    identically against the baseline.
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    points = {}
    for p in doc.get("points", []):
        if p.get("unit") in ("evps", "reqps"):
            metrics = p.get("metrics", {})
            copied = metrics.get("host/bytes_copied")
            epochs = metrics.get("shard/epochs")
            points[(p["series"], p["x"])] = (
                float(p["value"]), copied, epochs, metrics)
    return points


def resolved_threads(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return doc.get("host_perf", {}).get("resolved_threads", 1)


def multi_core_gate_armed(current_path, gate, observed):
    """The single guard for every wall-clock gate that needs parallelism.

    A wall-clock ratio only means "the parallel machinery works" when the
    run had real cores: the bench clamps its workers to the hardware, so
    host_perf.resolved_threads == 1 is a single-core host where multi-shard
    points measure epoch overhead, not speedup, and only the plain 25%
    regression gate applies.  Prints the observed ratio either way so
    single-core CI logs still show the number.
    """
    threads = resolved_threads(current_path)
    if threads > 1:
        return True
    print(f"NOTE {gate}: observed {observed} on a single-core host "
          f"(resolved_threads={threads}); wall-clock gate skipped")
    return False


def check_shard_speedup(current, current_path):
    """Returns a list of failure tuples (possibly empty)."""
    one = current.get((SHARD_SERIES, "1shard"))
    four = current.get((SHARD_SERIES, "4shards"))
    if one is None or four is None:
        return []
    speedup = four[0] / one[0] if one[0] > 0 else float("inf")
    if not multi_core_gate_armed(current_path, SHARD_SERIES,
                                 f"4-shard/1-shard ratio {speedup:.2f}"):
        return []
    status = "OK " if speedup >= MIN_SHARD_SPEEDUP else "FAIL"
    print(f"{status} {SHARD_SERIES:<16} 4-shard speedup {speedup:5.2f}x "
          f"(required >= {MIN_SHARD_SPEEDUP:.0f}x on "
          f"resolved_threads={resolved_threads(current_path)})")
    if speedup < MIN_SHARD_SPEEDUP:
        return [(SHARD_SERIES, "4shards-speedup", speedup)]
    return []


def check_c10k_ring(current, current_path):
    """Ring server must serve >= the blocking server's reqps."""
    ring = current.get((C10K_SERIES, "ring"))
    blocking = current.get((C10K_SERIES, "blocking"))
    if ring is None or blocking is None:
        return []
    ratio = ring[0] / blocking[0] if blocking[0] > 0 else float("inf")
    if not multi_core_gate_armed(current_path, C10K_SERIES,
                                 f"ring/blocking reqps ratio {ratio:.2f}"):
        return []
    status = "OK " if ratio >= 1.0 else "FAIL"
    print(f"{status} {C10K_SERIES:<16} ring/blocking reqps ratio {ratio:5.2f} "
          f"(required >= 1.00)")
    if ratio < 1.0:
        return [(C10K_SERIES, "ring-vs-blocking", ratio)]
    return []


def check_hotspot_rebalance(current, current_path):
    """Structural + wall-clock gates on the skewed-workload rebalance pair.

    Determinism first: the causal digest must be identical on every
    scale_web_hotspot point present (1/2/4 shards, rebalance off and on) —
    live migration may move work, never change it.  Then the greedy point
    must cut the per-shard executed-event imbalance at least
    MIN_IMBALANCE_CUT vs static placement without running more barrier
    epochs.  Digest, imbalance and epoch counts are deterministic, so those
    gates apply on any host; the >= MIN_HOTSPOT_SPEEDUP events/sec ratio is
    wall-clock and arms only behind the shared multi-core guard.
    """
    failures = []
    hotspot = {x: v for (series, x), v in current.items()
               if series == HOTSPOT_SERIES}
    if not hotspot:
        return []
    digests = {x: m.get("shard/causal_digest")
               for x, (_, _, _, m) in hotspot.items()}
    known = {x: d for x, d in digests.items() if d is not None}
    if len(set(known.values())) > 1:
        print(f"FAIL {HOTSPOT_SERIES:<16} causal digests diverge across "
              f"points: {known}")
        failures.append((HOTSPOT_SERIES, "digest-parity", 0.0))
    elif known:
        print(f"OK   {HOTSPOT_SERIES:<16} causal digest identical on "
              f"{len(known)} point(s)")
    for x, d in digests.items():
        if d is None:
            print(f"FAIL {HOTSPOT_SERIES:<16} x={x:<14} missing "
                  "shard/causal_digest metric")
            failures.append((HOTSPOT_SERIES, x + "-digest-missing", 0.0))
    static = hotspot.get("4shards_static")
    greedy = hotspot.get("4shards_greedy")
    if static is None or greedy is None:
        return failures
    s_imb = static[3].get("shard/imbalance")
    g_imb = greedy[3].get("shard/imbalance")
    if s_imb and g_imb:
        cut = s_imb / g_imb
        status = "OK " if cut >= MIN_IMBALANCE_CUT else "FAIL"
        print(f"{status} {HOTSPOT_SERIES:<16} imbalance static {s_imb} / "
              f"greedy {g_imb} = {cut:.2f}x cut "
              f"(required >= {MIN_IMBALANCE_CUT:.0f}x)")
        if cut < MIN_IMBALANCE_CUT:
            failures.append((HOTSPOT_SERIES, "imbalance-cut", cut))
    migrations = greedy[3].get("shard/migrations")
    if not migrations:
        print(f"FAIL {HOTSPOT_SERIES:<16} greedy point applied no "
              "migrations — the policy never fired")
        failures.append((HOTSPOT_SERIES, "no-migrations", 0.0))
    if static[2] is not None and greedy[2] is not None:
        status = "OK " if greedy[2] <= static[2] else "FAIL"
        print(f"{status} {HOTSPOT_SERIES:<16} epochs greedy {greedy[2]} vs "
              "static "
              f"{static[2]} (rebalancing may not add barrier rounds)")
        if greedy[2] > static[2]:
            failures.append((HOTSPOT_SERIES, "rebalance-epochs",
                             greedy[2] / static[2]))
    speedup = greedy[0] / static[0] if static[0] > 0 else float("inf")
    if multi_core_gate_armed(current_path, HOTSPOT_SERIES,
                             f"greedy/static evps ratio {speedup:.2f}"):
        status = "OK " if speedup >= MIN_HOTSPOT_SPEEDUP else "FAIL"
        print(f"{status} {HOTSPOT_SERIES:<16} greedy/static evps "
              f"{speedup:5.2f}x (required >= {MIN_HOTSPOT_SPEEDUP:.1f}x on "
              f"resolved_threads={resolved_threads(current_path)})")
        if speedup < MIN_HOTSPOT_SPEEDUP:
            failures.append((HOTSPOT_SERIES, "rebalance-speedup", speedup))
    return failures


def check_epochs(current):
    """Report epoch counts and gate matrix points against scalar twins.

    Every evps point that recorded "shard/epochs" is printed; a point whose
    series has an "<x>_scalar" sibling is the matrix-lookahead run of the
    same workload and shard count, and must not need more epochs than the
    scalar baseline (fewer is the whole point; equal can happen when a
    workload never gives the wider bounds room).
    """
    failures = []
    for (series, x), (_, _, epochs, _) in sorted(current.items()):
        if epochs is not None:
            print(f"     {series:<16} x={x:<14} shard/epochs {epochs}")
    for (series, x), (_, _, epochs, _) in sorted(current.items()):
        if epochs is None or x.endswith("_scalar"):
            continue
        scalar = current.get((series, x + "_scalar"))
        if scalar is None or scalar[2] is None:
            continue
        status = "OK " if epochs <= scalar[2] else "FAIL"
        print(f"{status} {series:<16} x={x:<14} matrix epochs {epochs} "
              f"vs scalar {scalar[2]}")
        if epochs > scalar[2]:
            failures.append((series, x + "-epochs", epochs / scalar[2]))
    return failures


def main(argv):
    allow_missing = "--allow-missing" in argv
    args = [a for a in argv[1:] if not a.startswith("--")]
    min_ratio = DEFAULT_MIN_RATIO
    for i, a in enumerate(argv):
        if a == "--min-ratio":
            min_ratio = float(argv[i + 1])
            args = [x for x in args if x != argv[i + 1]]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path = args[0]
    baseline_path = args[1] if len(args) > 1 else DEFAULT_BASELINE

    try:
        current = evps_points(current_path)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"ERROR: cannot read current results {current_path}: {e}",
              file=sys.stderr)
        return 1
    try:
        baseline = evps_points(baseline_path)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"WARNING: no usable baseline at {baseline_path} ({e}); "
              "skipping the host-perf gate", file=sys.stderr)
        return 0

    failures = []
    for key, (base, base_copied, _, _) in sorted(baseline.items()):
        series, x = key
        if key not in current:
            msg = f"scenario {series}/{x} missing from current run"
            if allow_missing:
                print(f"WARNING: {msg} (--allow-missing)")
            else:
                print(f"FAIL {msg}")
                failures.append((series, x, 0.0))
            continue
        cur, cur_copied, _, _ = current[key]
        ratio = cur / base if base > 0 else float("inf")
        status = "OK " if ratio >= min_ratio else "FAIL"
        print(f"{status} {series:<16} x={x:<12} "
              f"baseline {base / 1e6:8.2f} Mev/s   "
              f"current {cur / 1e6:8.2f} Mev/s   ratio {ratio:5.2f}")
        if ratio < min_ratio:
            failures.append((series, x, ratio))
        if (base_copied and cur_copied is not None
                and cur_copied > base_copied * BYTES_COPIED_MAX_RATIO):
            print(f"FAIL {series:<16} x={x:<12} host/bytes_copied "
                  f"{cur_copied} exceeds baseline {base_copied} by more "
                  f"than {(BYTES_COPIED_MAX_RATIO - 1) * 100:.0f}%")
            failures.append((series, x, cur_copied / base_copied))
    for key in sorted(set(current) - set(baseline)):
        print(f"NOTE: new scenario {key[0]}/{key[1]} has no baseline; "
              f"refresh with: cp {current_path} {baseline_path}")
    failures.extend(check_shard_speedup(current, current_path))
    failures.extend(check_c10k_ring(current, current_path))
    failures.extend(check_hotspot_rebalance(current, current_path))
    failures.extend(check_epochs(current))

    if failures:
        print(f"\nERROR: {len(failures)} host-perf gate failure(s)",
              file=sys.stderr)
        return 1
    print("host-perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
