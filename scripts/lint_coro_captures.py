#!/usr/bin/env python3
"""Coroutine-capture lint for ulsocks.

Flags the use-after-free shape this architecture is most exposed to:

1. A lambda with by-reference captures (``[&]``, ``[&x]``, ``[this, &x]``)
   passed to ``schedule_at(...)`` / ``schedule_after(...)``.  The callback
   runs from the event queue long after the scheduling frame has returned
   — a reference capture of a stack variable dangles by the time it fires.
   In a coroutine, *every* local lives in the coroutine frame, which may
   already be destroyed when the event fires.

2. An immediately-invoked lambda coroutine (body contains ``co_await`` /
   ``co_return`` / ``co_yield``) with any captures.  The lambda object —
   which owns the captures — is a temporary destroyed at the end of the
   full expression, while the coroutine frame it spawned lives on; every
   capture access after the first suspension point is a use-after-free.

Suppress a finding with ``// NOLINT(coro-capture)`` on the same line as the
lambda introducer.

Usage: lint_coro_captures.py [paths...]   (default: src)
Exits non-zero if any finding is reported.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SCHEDULE_CALL = re.compile(r"\b(schedule_at|schedule_after)\s*\(")
LAMBDA_INTRO = re.compile(r"\[([^\[\]]*)\]\s*(?:\([^)]*\)\s*)?[^;{]*\{")
CORO_KEYWORD = re.compile(r"\bco_(await|return|yield)\b")
SUPPRESS = "NOLINT(coro-capture)"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving newlines
    and byte offsets so reported line numbers stay accurate.  Lines whose
    comment carries the NOLINT marker keep that marker visible."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            chunk = text[i:j]
            out.append(SUPPRESS if SUPPRESS in chunk else "")
            out.append(" " * (j - i - len(out[-1])))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isalnum()
                                     or text[i - 1] == "_"):
            out.append(c)  # digit separator (65'535), not a char literal
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            inner = "".join(ch if ch == "\n" else " " for ch in
                            text[i + 1:j - 1])
            out.append(quote + inner + quote if j - i >= 2 else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def matching_brace(text: str, open_idx: int) -> int:
    """Index just past the brace matching text[open_idx] == '{'."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def matching_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def has_ref_capture(capture_list: str) -> bool:
    for item in capture_list.split(","):
        item = item.strip()
        if item == "&" or (item.startswith("&") and not item.startswith("&&")):
            return True
    return False


def line_of(text: str, idx: int) -> int:
    return text.count("\n", 0, idx) + 1


def line_text(original: str, lineno: int) -> str:
    return original.splitlines()[lineno - 1].strip()


def lint_file(path: Path) -> list[str]:
    original = path.read_text(errors="replace")
    text = strip_comments_and_strings(original)
    findings: list[str] = []

    # Rule 1: ref-capture lambdas inside schedule_at/schedule_after calls.
    for call in SCHEDULE_CALL.finditer(text):
        open_paren = call.end() - 1
        close = matching_paren(text, open_paren)
        arg_text = text[open_paren:close]
        for lam in LAMBDA_INTRO.finditer(arg_text):
            lineno = line_of(text, open_paren + lam.start())
            if SUPPRESS in text.splitlines()[lineno - 1]:
                continue
            if has_ref_capture(lam.group(1)):
                findings.append(
                    f"{path}:{lineno}: lambda with by-reference capture "
                    f"passed to {call.group(1)}() — the callback outlives "
                    f"the scheduling frame (use-after-free across "
                    f"suspension points)\n    {line_text(original, lineno)}")

    # Rule 2: immediately-invoked lambda coroutines with captures.
    for lam in LAMBDA_INTRO.finditer(text):
        captures = lam.group(1).strip()
        if not captures:
            continue
        body_open = lam.end() - 1
        body_close = matching_brace(text, body_open)
        body = text[body_open:body_close]
        if not CORO_KEYWORD.search(body):
            continue
        # Immediately invoked: '(' directly after the closing brace.
        after = text[body_close:body_close + 16].lstrip()
        if not after.startswith("("):
            continue
        lineno = line_of(text, lam.start())
        if SUPPRESS in text.splitlines()[lineno - 1]:
            continue
        findings.append(
            f"{path}:{lineno}: immediately-invoked lambda coroutine with "
            f"captures [{captures}] — the closure object dies at the end "
            f"of the expression; captures dangle after the first "
            f"suspension point\n    {line_text(original, lineno)}")

    return findings


def main(argv: list[str]) -> int:
    roots = [Path(p) for p in (argv[1:] or ["src"])]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.cpp")))
            files.extend(sorted(root.rglob("*.hpp")))
        else:
            print(f"lint_coro_captures: error: no such path: {root}",
                  file=sys.stderr)
            return 2
    findings: list[str] = []
    for f in files:
        findings.extend(lint_file(f))
    for finding in findings:
        print(finding)
    if findings:
        print(f"\nlint_coro_captures: {len(findings)} finding(s) in "
              f"{len(files)} files")
        return 1
    print(f"lint_coro_captures: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
