#!/usr/bin/env python3
"""DEPRECATED shim — the coroutine-capture lint now lives in ulsan.

The original single-purpose linter was absorbed into the ulsan rule
framework as ``ulsan-coro-schedule-capture`` and
``ulsan-coro-iife-capture`` (plus the new ``ulsan-coro-ref-across-await``,
which this shim does NOT run, to keep legacy behaviour).  Invoke the real
tool instead:

    python3 -m ulsan src            # all rules, baseline-gated
    python3 -m ulsan --explain coro-schedule-capture

This wrapper keeps old invocations (and the legacy
``// NOLINT(coro-capture)`` spelling) working while callers migrate; it
will be removed once nothing runs it.
"""

import sys
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(SCRIPTS_DIR))

from ulsan.cli import main as ulsan_main  # noqa: E402


def main(argv):
    print("lint_coro_captures.py is deprecated: use 'python3 -m ulsan' "
          "(rules ulsan-coro-schedule-capture, ulsan-coro-iife-capture); "
          "migrate NOLINT(coro-capture) to NOLINT(ulsan-coro-capture)",
          file=sys.stderr)
    paths = argv or ["src"]
    return ulsan_main([
        *paths,
        "--rules", "coro-schedule-capture,coro-iife-capture",
        "--allow-legacy-coro-alias",
        "--no-baseline",
    ])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
