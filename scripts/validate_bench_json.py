#!/usr/bin/env python3
"""Validate BENCH_*.json files emitted by the bench harness.

Checks the ulsocks.bench.v1 schema without third-party dependencies:

  {
    "schema": "ulsocks.bench.v1",
    "figure": str, "title": str,
    "host_perf": {"events": int, "wall_ms": number,          # optional
                  "events_per_sec": number, "peak_rss_kb": int,
                  "threads": int,
                  # shard/thread configuration of the process's runs:
                  # largest shard count used, the epoch window (lookahead,
                  # simulated ns) of the sharded runs, and the worker
                  # thread count the sharded runs actually used after
                  # clamping to the hardware.
                  "shards": int, "epoch_ns": int,
                  "resolved_threads": int},
    "points": [{"series": str, "stack": str, "config": str, "x": str,
                "value": number, "unit": str,
                "metrics": {str: int, ...}}, ...]
  }

Usage: validate_bench_json.py FILE [FILE...]
Exits non-zero, naming every violation, if any file fails.
"""

import json
import sys

SCHEMA = "ulsocks.bench.v1"
POINT_FIELDS = {
    "series": str,
    "stack": str,
    "config": str,
    "x": str,
    "unit": str,
    "metrics": dict,
}
STACKS = {"substrate", "tcp", "emp", "sim"}
HOST_PERF_FIELDS = {
    "events": int,
    "wall_ms": (int, float),
    "events_per_sec": (int, float),
    "peak_rss_kb": int,
    "threads": int,
    "shards": int,
    "epoch_ns": int,
    "resolved_threads": int,
}


def validate(path):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    if doc.get("schema") != SCHEMA:
        err(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for field in ("figure", "title"):
        if not isinstance(doc.get(field), str) or not doc.get(field):
            err(f"missing or empty {field!r}")
    host_perf = doc.get("host_perf")
    if host_perf is not None:
        if not isinstance(host_perf, dict):
            err("'host_perf' is not an object")
        else:
            for field, ftype in HOST_PERF_FIELDS.items():
                v = host_perf.get(field)
                if not isinstance(v, ftype) or isinstance(v, bool):
                    err(f"host_perf.{field} missing or wrong type")

    points = doc.get("points")
    if not isinstance(points, list):
        return errors + [f"{path}: 'points' is not a list"]
    if not points:
        err("'points' is empty")

    for i, p in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(p, dict):
            err(f"{where} is not an object")
            continue
        for field, ftype in POINT_FIELDS.items():
            if not isinstance(p.get(field), ftype):
                err(f"{where}.{field} missing or not {ftype.__name__}")
        if not isinstance(p.get("value"), (int, float)) or isinstance(
            p.get("value"), bool
        ):
            err(f"{where}.value missing or not a number")
        if isinstance(p.get("stack"), str) and p["stack"] not in STACKS:
            err(f"{where}.stack {p['stack']!r} not one of {sorted(STACKS)}")
        metrics = p.get("metrics")
        if isinstance(metrics, dict):
            for k, v in metrics.items():
                if not isinstance(k, str) or not isinstance(v, int) or isinstance(v, bool):
                    err(f"{where}.metrics[{k!r}] is not a str->int entry")
                    break
            # Every run registers the global host-copy tally; a point
            # without it came from an engine that bypassed the registry
            # snapshot and would silently escape the zero-copy gate.
            if "host/bytes_copied" not in metrics:
                err(f"{where}.metrics missing required 'host/bytes_copied'")
            # Sharded runs (anything that recorded an epoch count) must
            # also carry the rebalance telemetry: applied-migration count
            # and final per-shard load skew.  A sharded point without them
            # would silently escape the rebalance gates in
            # check_hostperf.py.
            if "shard/epochs" in metrics:
                for required in ("shard/migrations", "shard/imbalance"):
                    if required not in metrics:
                        err(f"{where}.metrics missing required "
                            f"'{required}' on sharded point")
            # Ring scenarios (x starting with "ring") must carry the
            # OpRing instruments — a ring point without them ran the
            # blocking server by mistake and the ring-vs-blocking gate
            # would silently compare blocking against blocking.
            if isinstance(p.get("x"), str) and p["x"].startswith("ring"):
                for path_prefix in (
                    "ring/batch_size/",
                    "ring/reap_wait_ns/",
                ):
                    if not any(k.startswith(path_prefix) for k in metrics):
                        err(f"{where}.metrics missing ring instrument "
                            f"'{path_prefix}*' on ring scenario")
                if "ring/sqe_inflight" not in metrics:
                    err(f"{where}.metrics missing required "
                        "'ring/sqe_inflight' on ring scenario")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(validate(path))
    for e in all_errors:
        print(f"ERROR: {e}", file=sys.stderr)
    if not all_errors:
        print(f"OK: {len(argv) - 1} bench result file(s) valid")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
