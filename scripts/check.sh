#!/usr/bin/env bash
# Pre-merge gate for ulsocks (see DESIGN.md "Correctness tooling"):
#   1. Debug build with AddressSanitizer + UndefinedBehaviorSanitizer,
#      full ctest suite (protocol invariant checkers are always on).
#   2. clang-tidy over src/ with the repo's .clang-tidy profile.
#   3. ulsan, the repo-specific static-analysis suite (python3 -m ulsan
#      src): determinism, shard affinity, coroutine lifetime, layering,
#      wire hygiene.  Fails on new findings, unused suppressions or a
#      stale baseline (DESIGN.md §12).
#   4. Bench smoke: a short fig11_latency run must emit a BENCH_*.json
#      that passes scripts/validate_bench_json.py.
#   5. ThreadSanitizer build running the sharded determinism tests with
#      4 shards on 4 worker threads (the parallel engine's race surface).
#   6. Host-perf gate: a Release build runs bench/hostperf and
#      scripts/check_hostperf.py fails the gate if events/sec dropped
#      more than 25% below bench/baselines/BENCH_hostperf.json.
#
# Usage: scripts/check.sh [build-dir] [--require-tools] [--no-hostperf]
#   build-dir        build tree to use (default: build-check)
#   --require-tools  a missing optional tool (clang-tidy) is a hard
#                    failure instead of a skip-with-warning.  Defaults ON
#                    when $CI is set, so CI never silently loses a stage.
#   --no-hostperf    skip stage 6 (host-perf is meaningless on shared or
#                    throttled runners; CI uses this).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build-check"
REQUIRE_TOOLS="${CI:+1}"
RUN_HOSTPERF=1
for arg in "$@"; do
  case "$arg" in
    --require-tools) REQUIRE_TOOLS=1 ;;
    --no-require-tools) REQUIRE_TOOLS= ;;
    --no-hostperf) RUN_HOSTPERF= ;;
    --*) echo "check.sh: unknown flag '$arg'" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
JOBS="$(nproc 2>/dev/null || echo 4)"
TOTAL=6

echo "==> [1/$TOTAL] Debug + ASan/UBSan build and test"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DULSOCKS_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$JOBS"
# halt_on_error makes any sanitizer report fail the test that produced it.
ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if command -v clang-tidy >/dev/null 2>&1; then
  TIDY_VERSION="$(clang-tidy --version | sed -n 's/.*version */version /p' | head -n1)"
  echo "==> [2/$TOTAL] clang-tidy (${TIDY_VERSION:-version unknown})"
  mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "${SOURCES[@]}"
  else
    clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
  fi
elif [ -n "$REQUIRE_TOOLS" ]; then
  echo "==> [2/$TOTAL] clang-tidy"
  echo "ERROR: clang-tidy not installed and --require-tools is set" >&2
  exit 1
else
  echo "==> [2/$TOTAL] clang-tidy"
  echo "WARNING: clang-tidy not installed; skipping static analysis" >&2
  echo "         (pass --require-tools to make this a failure)" >&2
fi

echo "==> [3/$TOTAL] ulsan static-analysis suite"
PYTHONPATH="$PWD/scripts${PYTHONPATH:+:$PYTHONPATH}" python3 -m ulsan src

echo "==> [4/$TOTAL] bench smoke + results-schema validation"
SMOKE_DIR="$BUILD_DIR/bench-smoke"
mkdir -p "$SMOKE_DIR"
"$BUILD_DIR/bench/fig11_latency" --iters 3 --out "$SMOKE_DIR" >/dev/null
python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json

echo "==> [5/$TOTAL] ThreadSanitizer: sharded determinism tests with real threads"
# The sharded engine's only cross-thread surface is the epoch barrier and
# the mailboxes; the Sharding.* tests run 4-shard groups on 4 worker
# threads, which is exactly the surface TSan needs to see.  TSan excludes
# the other sanitizers, so this is its own build tree.
TSAN_DIR="$BUILD_DIR-tsan"
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DULSOCKS_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" --target determinism_test
TSAN_OPTIONS=halt_on_error=1 \
  "$TSAN_DIR/tests/determinism_test" --gtest_filter='Sharding.*'

if [ -n "$RUN_HOSTPERF" ]; then
  echo "==> [6/$TOTAL] host-perf gate (Release build, full hostperf bench)"
  # Sanitizer builds measure the sanitizer, not the simulator: the host-perf
  # numbers only mean something at -O2/-O3 without instrumentation.
  PERF_DIR="$BUILD_DIR-release"
  cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$PERF_DIR" -j "$JOBS" --target hostperf
  HOSTPERF_DIR="$PERF_DIR/bench-hostperf"
  mkdir -p "$HOSTPERF_DIR"
  "$PERF_DIR/bench/hostperf" --out "$HOSTPERF_DIR"
  python3 scripts/validate_bench_json.py "$HOSTPERF_DIR/BENCH_hostperf.json"
  python3 scripts/check_hostperf.py "$HOSTPERF_DIR/BENCH_hostperf.json"
else
  echo "==> [6/$TOTAL] host-perf gate skipped (--no-hostperf)"
fi

echo "==> all checks passed"
