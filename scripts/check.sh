#!/usr/bin/env bash
# Pre-merge gate for ulsocks (see DESIGN.md "Correctness tooling"):
#   1. Debug build with AddressSanitizer + UndefinedBehaviorSanitizer,
#      full ctest suite (protocol invariant checkers are always on).
#   2. clang-tidy over src/ with the repo's .clang-tidy profile
#      (skipped with a warning if clang-tidy is not installed).
#   3. The coroutine-capture lint (scripts/lint_coro_captures.py).
#   4. Bench smoke: a short fig11_latency run must emit a BENCH_*.json
#      that passes scripts/validate_bench_json.py.
#
# Usage: scripts/check.sh [build-dir]      (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/4] Debug + ASan/UBSan build and test"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DULSOCKS_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$JOBS"
# halt_on_error makes any sanitizer report fail the test that produced it.
ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "==> [2/4] clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "${SOURCES[@]}"
  else
    clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
  fi
else
  echo "WARNING: clang-tidy not installed; skipping static analysis" >&2
fi

echo "==> [3/4] coroutine-capture lint"
python3 scripts/lint_coro_captures.py src

echo "==> [4/4] bench smoke + results-schema validation"
SMOKE_DIR="$BUILD_DIR/bench-smoke"
mkdir -p "$SMOKE_DIR"
"$BUILD_DIR/bench/fig11_latency" --iters 3 --out "$SMOKE_DIR" >/dev/null
python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json

echo "==> all checks passed"
