#!/usr/bin/env bash
# Pre-merge gate for ulsocks (see DESIGN.md "Correctness tooling"):
#   1. Debug build with AddressSanitizer + UndefinedBehaviorSanitizer,
#      full ctest suite (protocol invariant checkers are always on).
#   2. clang-tidy over src/ with the repo's .clang-tidy profile
#      (skipped with a warning if clang-tidy is not installed).
#   3. The coroutine-capture lint (scripts/lint_coro_captures.py).
#   4. Bench smoke: a short fig11_latency run must emit a BENCH_*.json
#      that passes scripts/validate_bench_json.py.
#   5. ThreadSanitizer build running the sharded determinism tests with
#      4 shards on 4 worker threads (the parallel engine's race surface).
#   6. Host-perf gate: a Release build runs bench/hostperf and
#      scripts/check_hostperf.py fails the gate if events/sec dropped
#      more than 25% below bench/baselines/BENCH_hostperf.json.
#
# Usage: scripts/check.sh [build-dir]      (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/6] Debug + ASan/UBSan build and test"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DULSOCKS_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$JOBS"
# halt_on_error makes any sanitizer report fail the test that produced it.
ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "==> [2/6] clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "${SOURCES[@]}"
  else
    clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
  fi
else
  echo "WARNING: clang-tidy not installed; skipping static analysis" >&2
fi

echo "==> [3/6] coroutine-capture lint"
python3 scripts/lint_coro_captures.py src

echo "==> [4/6] bench smoke + results-schema validation"
SMOKE_DIR="$BUILD_DIR/bench-smoke"
mkdir -p "$SMOKE_DIR"
"$BUILD_DIR/bench/fig11_latency" --iters 3 --out "$SMOKE_DIR" >/dev/null
python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json

echo "==> [5/6] ThreadSanitizer: sharded determinism tests with real threads"
# The sharded engine's only cross-thread surface is the epoch barrier and
# the mailboxes; the Sharding.* tests run 4-shard groups on 4 worker
# threads, which is exactly the surface TSan needs to see.  TSan excludes
# the other sanitizers, so this is its own build tree.
TSAN_DIR="$BUILD_DIR-tsan"
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DULSOCKS_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" --target determinism_test
TSAN_OPTIONS=halt_on_error=1 \
  "$TSAN_DIR/tests/determinism_test" --gtest_filter='Sharding.*'

echo "==> [6/6] host-perf gate (Release build, full hostperf bench)"
# Sanitizer builds measure the sanitizer, not the simulator: the host-perf
# numbers only mean something at -O2/-O3 without instrumentation.
PERF_DIR="$BUILD_DIR-release"
cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$PERF_DIR" -j "$JOBS" --target hostperf
HOSTPERF_DIR="$PERF_DIR/bench-hostperf"
mkdir -p "$HOSTPERF_DIR"
"$PERF_DIR/bench/hostperf" --out "$HOSTPERF_DIR"
python3 scripts/validate_bench_json.py "$HOSTPERF_DIR/BENCH_hostperf.json"
python3 scripts/check_hostperf.py "$HOSTPERF_DIR/BENCH_hostperf.json"

echo "==> all checks passed"
