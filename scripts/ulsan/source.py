"""Lexical utilities shared by every ulsan rule.

ulsan deliberately works on *stripped token text*, not an AST: the proven
approach of the original ``lint_coro_captures.py``.  Comments, string and
char literals are blanked in place (newlines and byte offsets preserved),
so regex matches report accurate line numbers and never fire inside a
comment.  Brace/paren/angle matchers give rules just enough structure to
reason about lambda bodies, call argument lists and template parameter
lists without a real parser.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from pathlib import Path


def strip_comments_and_strings(text: str) -> str:
    """Blank comments, string and char literals, preserving newlines and
    byte offsets.  Suppression comments are scanned separately on the
    original text, so nothing survives here — rules only ever see code."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isalnum()
                                     or text[i - 1] == "_"):
            out.append(c)  # digit separator (65'535), not a char literal
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            inner = "".join(ch if ch == "\n" else " "
                            for ch in text[i + 1:j - 1])
            out.append(quote + inner + quote if j - i >= 2 else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def matching_brace(text: str, open_idx: int) -> int:
    """Index just past the brace matching ``text[open_idx] == '{'``."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def matching_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def matching_angle(text: str, open_idx: int) -> int:
    """Index just past the ``>`` matching ``text[open_idx] == '<'``.
    ``>>`` closes two levels (C++11); parenthesized sub-expressions are
    skipped so a ``<`` used as less-than inside a default argument cannot
    desynchronize the count."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c == "(":
            i = matching_paren(text, i)
            continue
        elif c in ";{":
            break  # ran off the declaration: not a template after all
        i += 1
    return len(text)


# A lambda introducer: capture list, optional parameter list, anything up
# to the body's opening brace.  (Same pattern the original coro lint used.)
LAMBDA_INTRO = re.compile(r"\[([^\[\]]*)\]\s*(?:\([^)]*\)\s*)?[^;{]*\{")

IDENT_TAIL = re.compile(r"([A-Za-z_]\w*)\s*$")


def has_ref_capture(capture_list: str) -> bool:
    for item in capture_list.split(","):
        item = item.strip()
        if item == "&" or (item.startswith("&")
                           and not item.startswith("&&")):
            return True
    return False


def capture_items(capture_list: str) -> list[str]:
    return [it.strip() for it in capture_list.split(",") if it.strip()]


@dataclass
class SourceFile:
    """One parsed source file: original text plus the stripped shadow."""

    path: Path
    original: str = field(repr=False)
    text: str = field(repr=False)  # comments/strings blanked
    _line_starts: list[int] = field(default_factory=list, repr=False)

    @classmethod
    def load(cls, path: Path) -> "SourceFile":
        original = path.read_text(errors="replace")
        return cls(path=path, original=original,
                   text=strip_comments_and_strings(original))

    def __post_init__(self) -> None:
        starts = [0]
        for i, c in enumerate(self.original):
            if c == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    @property
    def display(self) -> str:
        return self.path.as_posix()

    def line_of(self, idx: int) -> int:
        """1-based line number of byte offset ``idx``."""
        return bisect.bisect_right(self._line_starts, idx)

    def line_text(self, lineno: int) -> str:
        lines = self.original.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def stripped_line(self, lineno: int) -> str:
        lines = self.text.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""

    def enclosing_block_end(self, idx: int) -> int:
        """End offset (exclusive) of the innermost ``{}`` block containing
        ``idx``; end of file if ``idx`` is at namespace/file scope."""
        stack: list[int] = []
        for i, c in enumerate(self.text):
            if i >= idx:
                break
            if c == "{":
                stack.append(i)
            elif c == "}" and stack:
                stack.pop()
        if not stack:
            return len(self.text)
        return matching_brace(self.text, stack[-1]) - 1
