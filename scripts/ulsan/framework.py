"""ulsan rule framework: registry, findings, suppressions, baseline.

Suppression syntax
------------------
A finding on line L is suppressed by ``// NOLINT(ulsan-<rule>)`` on line L
or ``// NOLINTNEXTLINE(ulsan-<rule>)`` on line L-1.  The parenthesized
list is comma-separated and shared with clang-tidy: tokens that do not
start with ``ulsan-`` belong to clang-tidy and are ignored here, so one
comment can silence both tools.  Every ulsan token must suppress at least
one finding — an unused suppression is itself an error (it means the code
was fixed, or the token is misspelled).  A bare ``// NOLINT`` with no
rule list is rejected as a blanket suppression, and unknown ``ulsan-*``
rule names are rejected as typos.  The pre-ulsan ``NOLINT(coro-capture)``
convention is recognized only to tell you to migrate.

Baseline
--------
``scripts/ulsan/baseline.json`` grandfathers pre-existing findings so the
gate can demand "no *new* findings" from day one.  Entries match on
(rule, file, whitespace-normalized line text) — stable across unrelated
edits that renumber lines — and absorb up to ``count`` occurrences.  Every
entry must carry a non-empty ``justification`` and must still match
something: a stale entry fails the run so the baseline only ever shrinks.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from .source import SourceFile

# Rules whose findings the committed gate must never baseline; kept here so
# both the runner and the self-tests can assert the policy.
NO_BASELINE_RULES = ("layering", "wire-hygiene")

# Legacy spelling from lint_coro_captures.py; accepted by the shim only.
LEGACY_CORO_TOKEN = "coro-capture"
# Umbrella alias: suppresses both absorbed coroutine-capture rules.
CORO_ALIAS = "coro-capture"
CORO_ALIAS_TARGETS = ("coro-schedule-capture", "coro-iife-capture")


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str
    excerpt: str = ""
    status: str = "new"  # new | suppressed | baselined

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, normalize_text(self.excerpt))

    def render(self) -> str:
        loc = f"{self.path}:{self.line}"
        text = f"{loc}: [ulsan-{self.rule}] {self.message}"
        if self.excerpt:
            text += f"\n    {self.excerpt}"
        return text

    def as_json(self) -> dict:
        return {
            "rule": f"ulsan-{self.rule}",
            "file": self.path,
            "line": self.line,
            "message": self.message,
            "excerpt": self.excerpt,
            "status": self.status,
        }


@dataclass
class Rule:
    name: str  # without the ulsan- prefix
    summary: str
    doc: str
    check: Callable[[SourceFile, "RunContext"], list[Finding]]


_REGISTRY: dict[str, Rule] = {}


def rule(name: str, summary: str, doc: str):
    """Decorator registering ``fn(sf, ctx) -> list[Finding]`` as a rule."""

    def wrap(fn):
        _REGISTRY[name] = Rule(name=name, summary=summary, doc=doc,
                               check=fn)
        return fn

    return wrap


def all_rules() -> dict[str, Rule]:
    # Importing the rules package populates the registry exactly once.
    from . import rules  # noqa: F401
    return dict(_REGISTRY)


def normalize_text(s: str) -> str:
    return " ".join(s.split())


class RunContext:
    """Per-run state shared by rules: file cache and the scan roots."""

    def __init__(self, roots: list[Path]):
        self.roots = roots
        self._cache: dict[Path, SourceFile] = {}

    def load(self, path: Path) -> SourceFile:
        path = path.resolve()
        if path not in self._cache:
            self._cache[path] = SourceFile.load(path)
        return self._cache[path]

    def sibling_header(self, sf: SourceFile) -> SourceFile | None:
        """The same-stem .hpp next to a .cpp (member declarations usually
        live there), or None."""
        if sf.path.suffix != ".cpp":
            return None
        hpp = sf.path.with_suffix(".hpp")
        if hpp.exists():
            loaded = self.load(hpp)
            # Keep the .cpp's display path out of the header's findings by
            # never reporting from here; callers only read declarations.
            return loaded
        return None


# --------------------------------------------------------------------------
# Suppressions

NOLINT_RE = re.compile(r"//\s*(NOLINTNEXTLINE|NOLINT)\b(\(([^)]*)\))?")


@dataclass
class Suppression:
    token: str      # rule name without ulsan- prefix, or special token
    line: int       # line the comment is on
    target: int     # line it suppresses
    used: bool = False


@dataclass
class FileSuppressions:
    path: str
    entries: list[Suppression] = field(default_factory=list)
    malformed: list[Finding] = field(default_factory=list)

    def covering(self, rule_name: str, line: int) -> Suppression | None:
        for s in self.entries:
            if s.target != line:
                continue
            if s.token == rule_name:
                return s
            if s.token == CORO_ALIAS and rule_name in CORO_ALIAS_TARGETS:
                return s
        return None


def scan_suppressions(sf: SourceFile, known_rules: Iterable[str],
                      allow_legacy: bool = False) -> FileSuppressions:
    known = set(known_rules)
    out = FileSuppressions(path=sf.display)
    for lineno, line in enumerate(sf.original.splitlines(), start=1):
        for m in NOLINT_RE.finditer(line):
            kind, has_list, body = m.group(1), m.group(2), m.group(3)
            target = lineno + 1 if kind == "NOLINTNEXTLINE" else lineno
            if not has_list:
                out.malformed.append(Finding(
                    rule="suppression-syntax", path=sf.display, line=lineno,
                    message=f"blanket {kind} suppresses every tool and "
                            f"every rule; name the rule(s): "
                            f"// {kind}(ulsan-<rule>)",
                    excerpt=sf.line_text(lineno)))
                continue
            for raw in body.split(","):
                tok = raw.strip()
                if not tok:
                    continue
                if tok == LEGACY_CORO_TOKEN and not tok.startswith("ulsan-"):
                    if allow_legacy:
                        out.entries.append(Suppression(
                            token=CORO_ALIAS, line=lineno, target=target))
                    else:
                        out.malformed.append(Finding(
                            rule="suppression-syntax", path=sf.display,
                            line=lineno,
                            message="legacy NOLINT(coro-capture) syntax; "
                                    "migrate to NOLINT(ulsan-coro-capture) "
                                    "or a specific ulsan-coro-* rule",
                            excerpt=sf.line_text(lineno)))
                    continue
                if not tok.startswith("ulsan-"):
                    continue  # clang-tidy's namespace
                name = tok[len("ulsan-"):]
                if name == CORO_ALIAS:
                    out.entries.append(Suppression(
                        token=CORO_ALIAS, line=lineno, target=target))
                elif name in known:
                    out.entries.append(Suppression(
                        token=name, line=lineno, target=target))
                else:
                    out.malformed.append(Finding(
                        rule="suppression-syntax", path=sf.display,
                        line=lineno,
                        message=f"unknown rule '{tok}' in {kind} "
                                f"(see --list-rules)",
                        excerpt=sf.line_text(lineno)))
    return out


# --------------------------------------------------------------------------
# Baseline

@dataclass
class BaselineEntry:
    rule: str
    file: str
    text: str
    count: int
    justification: str
    matched: int = 0


class Baseline:
    def __init__(self, entries: list[BaselineEntry], path: Path | None):
        self.entries = entries
        self.path = path

    @classmethod
    def load(cls, path: Path | None) -> "Baseline":
        if path is None or not path.exists():
            return cls([], path)
        data = json.loads(path.read_text())
        entries = [
            BaselineEntry(
                rule=e["rule"].removeprefix("ulsan-"),
                file=e["file"],
                text=normalize_text(e["text"]),
                count=int(e.get("count", 1)),
                justification=e.get("justification", ""),
            )
            for e in data.get("entries", [])
        ]
        return cls(entries, path)

    def absorb(self, f: Finding) -> bool:
        for e in self.entries:
            if (e.rule == f.rule and e.file == f.path
                    and e.text == normalize_text(f.excerpt)
                    and e.matched < e.count):
                e.matched += 1
                return True
        return False

    def problems(self) -> list[Finding]:
        out: list[Finding] = []
        for e in self.entries:
            if e.rule in NO_BASELINE_RULES:
                out.append(Finding(
                    rule="baseline-policy", path=e.file, line=0,
                    message=f"rule ulsan-{e.rule} may not be baselined "
                            f"(fix the code instead)", excerpt=e.text))
            if not e.justification.strip():
                out.append(Finding(
                    rule="baseline-policy", path=e.file, line=0,
                    message=f"baseline entry for ulsan-{e.rule} has no "
                            f"justification", excerpt=e.text))
            if e.matched == 0:
                out.append(Finding(
                    rule="baseline-stale", path=e.file, line=0,
                    message=f"baseline entry for ulsan-{e.rule} matched "
                            f"nothing — the finding was fixed; delete the "
                            f"entry", excerpt=e.text))
            elif e.matched < e.count:
                out.append(Finding(
                    rule="baseline-stale", path=e.file, line=0,
                    message=f"baseline entry for ulsan-{e.rule} expects "
                            f"{e.count} occurrence(s) but only {e.matched} "
                            f"remain; lower the count", excerpt=e.text))
        return out

    @staticmethod
    def render(findings: list[Finding],
               old: "Baseline | None" = None) -> str:
        """Serialize current findings as a baseline file, carrying forward
        justifications from ``old`` where keys still match."""
        kept: dict[tuple[str, str, str], str] = {}
        if old is not None:
            for e in old.entries:
                kept[(e.rule, e.file, e.text)] = e.justification
        grouped: dict[tuple[str, str, str], int] = {}
        for f in findings:
            grouped[f.key()] = grouped.get(f.key(), 0) + 1
        entries = []
        for (rule_name, path, text), count in sorted(grouped.items()):
            entries.append({
                "rule": f"ulsan-{rule_name}",
                "file": path,
                "text": text,
                "count": count,
                "justification": kept.get((rule_name, path, text),
                                          "TODO: justify or fix"),
            })
        return json.dumps({"version": 1, "entries": entries}, indent=2) + "\n"


# --------------------------------------------------------------------------
# Runner

CPP_SUFFIXES = (".cpp", ".hpp")
SKIP_DIRS = {".git", "build"}


def collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for root in paths:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            for suffix in CPP_SUFFIXES:
                files.extend(
                    p for p in sorted(root.rglob(f"*{suffix}"))
                    if not any(part in SKIP_DIRS
                               or part.startswith("build-")
                               for part in p.parts))
        else:
            raise FileNotFoundError(f"no such path: {root}")
    # De-duplicate while preserving order.
    seen: set[Path] = set()
    out = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            out.append(f)
    return out


@dataclass
class RunResult:
    files_scanned: int = 0
    new: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    errors: list[Finding] = field(default_factory=list)  # unused/malformed/stale

    @property
    def failed(self) -> bool:
        return bool(self.new or self.errors)

    def all_findings(self) -> list[Finding]:
        return self.new + self.suppressed + self.baselined + self.errors


def run(paths: list[Path], rule_names: list[str] | None = None,
        baseline: Baseline | None = None,
        allow_legacy: bool = False) -> RunResult:
    registry = all_rules()
    if rule_names is None:
        active = list(registry.values())
    else:
        unknown = [n for n in rule_names if n not in registry]
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(unknown)}")
        active = [registry[n] for n in rule_names]

    ctx = RunContext(paths)
    result = RunResult()
    files = collect_files(paths)
    result.files_scanned = len(files)

    for path in files:
        sf = ctx.load(path)
        # Report with the path as given on the command line, not resolved.
        sf = SourceFile(path=path, original=sf.original, text=sf.text)
        sup = scan_suppressions(sf, registry.keys(),
                                allow_legacy=allow_legacy)
        result.errors.extend(sup.malformed)
        for r in active:
            for f in r.check(sf, ctx):
                cover = sup.covering(f.rule, f.line)
                if cover is not None:
                    cover.used = True
                    f.status = "suppressed"
                    result.suppressed.append(f)
                elif baseline is not None and baseline.absorb(f):
                    f.status = "baselined"
                    result.baselined.append(f)
                else:
                    result.new.append(f)
        # Only suppressions for *active* rules can be judged unused: a
        # restricted --rules run must not flag the other rules' tokens.
        active_names = {r.name for r in active}
        if CORO_ALIAS_TARGETS[0] in active_names \
                or CORO_ALIAS_TARGETS[1] in active_names:
            active_names.add(CORO_ALIAS)
        for s in sup.entries:
            if not s.used and s.token in active_names:
                result.errors.append(Finding(
                    rule="unused-suppression", path=sf.display, line=s.line,
                    message=f"NOLINT(ulsan-{s.token}) suppresses nothing — "
                            f"the finding was fixed or the rule name is "
                            f"wrong; remove it",
                    excerpt=sf.line_text(s.line)))

    if baseline is not None:
        result.errors.extend(baseline.problems())
    return result
