"""ulsan-layering: the include DAG between src/ libraries is enforced.

The paper's stack is a strict layering — applications over sockets over
the transport protocols over the fabric over the event engine — and the
simulator mirrors it one directory per layer:

    sim <- net <- nic <- {oskernel} <- {emp, tcp} <- sockets <- apps

with two utility layers importable from everywhere:

* ``check/`` (invariants) includes nothing but itself;
* ``obs/`` (metrics/tracing) may additionally see ``sim/time.hpp`` —
  observations are stamped with simulated time — but nothing else from
  sim; ``sim`` in turn owns the registries and may include ``obs``.

``oskernel`` is the user-visible OS surface: alongside processes and the
blocking ``SocketApi``, it declares the completion-ring interface
(``oskernel/ring.hpp`` — SQE/CQE records and the abstract ``OpRing``).
Those are interface-only headers; the stacks above implement them
(``sockets/ring.cpp``), so the dependency arrow still points downward —
``sockets`` includes ``oskernel``, never the reverse.

Concretely, each importer directory may include only the directories
listed for it below (SimBricks-style interface discipline: a lower layer
that reaches up stops being composable, and a sideways include between
``emp`` and ``tcp`` would entangle the two stacks the paper compares).
This rule is never baselined: a layering violation is fixed, not
grandfathered.
"""

from __future__ import annotations

import re

from ..framework import Finding, RunContext, rule
from ..source import SourceFile

LAYERS = ("sim", "obs", "check", "net", "nic", "oskernel", "emp", "tcp",
          "sockets", "apps")

ALLOWED: dict[str, set[str]] = {
    "check": {"check"},
    "obs": {"obs", "check"},  # + the sim/time.hpp exception below
    "sim": {"sim", "check", "obs"},
    "net": {"net", "sim", "check", "obs"},
    "nic": {"nic", "net", "sim", "check", "obs"},
    "oskernel": {"oskernel", "net", "sim", "check", "obs"},
    "emp": {"emp", "nic", "net", "sim", "check", "obs"},
    "tcp": {"tcp", "nic", "net", "oskernel", "sim", "check", "obs"},
    "sockets": {"sockets", "emp", "tcp", "oskernel", "nic", "net", "sim",
                "check", "obs"},
    "apps": set(LAYERS),
}

# File-granular exceptions: (importer layer, exact include path).
FILE_EXCEPTIONS = {("obs", "sim/time.hpp")}

INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


def layer_of(sf: SourceFile) -> str | None:
    parts = sf.path.as_posix().split("/")
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "src" and parts[i + 1] in ALLOWED:
            return parts[i + 1]
    return None


@rule(
    "layering",
    "include edge violates the sim <- net <- {emp,tcp} <- sockets <- apps "
    "DAG",
    __doc__,
)
def check(sf: SourceFile, ctx: RunContext) -> list[Finding]:
    importer = layer_of(sf)
    if importer is None:
        return []
    findings: list[Finding] = []
    # Scan the original text: include lines never contain code, and the
    # stripped shadow blanks the quoted path.
    for m in INCLUDE.finditer(sf.original):
        target = m.group(1)
        target_layer = target.split("/", 1)[0]
        if target_layer not in ALLOWED:
            continue  # not an intra-repo layer include
        if target_layer in ALLOWED[importer]:
            continue
        if (importer, target) in FILE_EXCEPTIONS:
            continue
        lineno = sf.line_of(m.start())
        findings.append(Finding(
            rule="layering", path=sf.display, line=lineno,
            message=f"'{importer}' may not include '{target_layer}' "
                    f"(allowed: "
                    f"{', '.join(sorted(ALLOWED[importer]))}) — the "
                    f"layer DAG is sim <- net <- nic <- oskernel <- "
                    f"{{emp, tcp}} <- sockets <- apps, with check/obs "
                    f"importable everywhere",
            excerpt=sf.line_text(lineno)))
    return findings
