"""Importing this package registers every rule with the framework."""

from . import affinity  # noqa: F401
from . import coro  # noqa: F401
from . import determinism  # noqa: F401
from . import layering  # noqa: F401
from . import wire  # noqa: F401
