"""ulsan-wire-hygiene: wire-format structs pin their layout with a
static_assert.

Every struct defined in the wire-format translation units — EMP's frame
header (``src/emp/wire.hpp``/``.cpp``) and TCP-lite's segment
(``src/tcp/segment.hpp``/``.cpp``) — must be followed, within a few
lines, by a ``static_assert`` that mentions the struct by name (typically
``sizeof(Name)`` or a per-field size sum against the wire-header
constant).  Growing one of these structs without consciously revisiting
the encoder is exactly how a wire format drifts: the assert turns the
silent drift into a compile error at the definition site.

This rule is never baselined: adding the assert is always cheaper than
carrying the exemption.
"""

from __future__ import annotations

import re

from ..framework import Finding, RunContext, rule
from ..source import SourceFile, matching_brace

# (parent directory, file stem) pairs this rule applies to.
WIRE_FILES = {("emp", "wire"), ("tcp", "segment")}

STRUCT_DEF = re.compile(r"\bstruct\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
                        r"(?::[^{;]*)?\{")
# How far below the closing brace the assert may sit (lines).
ADJACENT_LINES = 10


def applies(sf: SourceFile) -> bool:
    p = sf.path
    return (p.parent.name, p.stem) in WIRE_FILES


@rule(
    "wire-hygiene",
    "wire-format struct without an adjacent static_assert on its size",
    __doc__,
)
def check(sf: SourceFile, ctx: RunContext) -> list[Finding]:
    if not applies(sf):
        return []
    text = sf.text
    findings: list[Finding] = []
    for m in STRUCT_DEF.finditer(text):
        name = m.group(1)
        body_open = text.index("{", m.start())
        body_close = matching_brace(text, body_open)
        close_line = sf.line_of(body_close - 1)
        window_start = body_open
        # End offset of the adjacency window: N lines past the close.
        lines = text.splitlines(keepends=True)
        end_line = min(close_line + ADJACENT_LINES, len(lines))
        window_end = sum(len(ln) for ln in lines[:end_line])
        window = text[window_start:window_end]
        asserted = re.search(
            rf"static_assert\s*\([^;]*\b{re.escape(name)}\b", window)
        if asserted is None:
            lineno = sf.line_of(m.start())
            findings.append(Finding(
                rule="wire-hygiene", path=sf.display, line=lineno,
                message=f"wire-format struct '{name}' has no adjacent "
                        f"static_assert on its size — pin the layout "
                        f"(e.g. static_assert(sizeof({name}) == ...)) so "
                        f"growing it forces a conscious wire-format "
                        f"revision",
                excerpt=sf.line_text(lineno)))
    return findings
