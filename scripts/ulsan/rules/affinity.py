"""ulsan-shard-affinity: pool and engine handles must not cross shards.

Frame pools, slice pools, slice refcounts and engines are single-threaded
by contract (DESIGN.md §11): every shard owns its own, and the hot path is
lock-free *because* nothing is shared.  The one sanctioned crossing is
``net::Link``'s rehoming transmit path, which deep-copies the frame out of
its source shard's allocator world (``clone_for_shard_transfer``) before
handing it to ``ShardGroup::post_remote``.

Three shapes are flagged:

1. The cross-shard primitives — ``post_remote(`` and
   ``clone_for_shard_transfer(`` — anywhere outside the rehoming path
   (``src/net/link.cpp``) and the shard runtime itself
   (``src/sim/shard.hpp``/``.cpp``).  New cross-shard edges must be
   designed, not sprinkled.

2. Writes to the group's lookahead matrix —
   ``register_edge_lookahead(`` — outside the same sanctioned set.  Epoch
   soundness rests on every registered edge being a true lower bound on
   that link's latency; ``net::Link`` derives it from its own wire costs
   when a cross-shard edge forms, and nothing else may invent one.

3. A lambda handed to ``post_remote`` that smuggles shard-local state:
   any by-reference or ``this`` capture (the callback runs on another
   shard's thread), or a capture whose name looks like a pool or engine
   handle.  This check applies *inside* the sanctioned files too — the
   rehoming path must stay clean (value captures of the destination sink
   and the already-cloned frame only).

4. The live-migration entry points — ``request_domain_migration(``,
   ``extract_domain(``, ``adopt_domain(`` and ``rehome(`` — outside the
   sanctioned rebalance path (the shard runtime, ``sim::Engine``'s domain
   machinery, ``net::Link``'s endpoint rehoming and ``apps::Cluster``'s
   DomainMigrator).  Migration is barrier-phase surgery on two engines'
   heaps: a call from anywhere else (an application, a bench, a protocol
   layer) would move events mid-window and unsound the epoch induction.
   Policies belong behind ``ShardGroup::set_rebalance_policy``, which runs
   them on the barrier thread — they never need these primitives outside
   the group's own call.
"""

from __future__ import annotations

import re

from ..framework import Finding, RunContext, rule
from ..source import (SourceFile, capture_items, has_ref_capture,
                      matching_paren, LAMBDA_INTRO)

ALLOWED_SUFFIXES = ("src/net/link.cpp", "src/sim/shard.hpp",
                    "src/sim/shard.cpp")
# Live migration additionally touches the engine's domain machinery, the
# link endpoint rehoming helper, and the cluster's DomainMigrator — the
# full sanctioned rebalance path.
MIGRATION_ALLOWED_SUFFIXES = ALLOWED_SUFFIXES + (
    "src/sim/engine.hpp", "src/net/link.hpp", "src/apps/cluster.hpp")
POST_REMOTE = re.compile(r"\bpost_remote\s*\(")
CLONE = re.compile(r"\bclone_for_shard_transfer\s*\(")
REGISTER = re.compile(r"\bregister_edge_lookahead\s*\(")
MIGRATION = re.compile(
    r"\b(request_domain_migration|extract_domain|adopt_domain|rehome)\s*\(")
HANDLE_NAME = re.compile(r"(?:^|_)(?:pool|eng|engine)s?_?$|pool_?$",
                         re.IGNORECASE)


def _finding(sf: SourceFile, idx: int, message: str) -> Finding:
    lineno = sf.line_of(idx)
    return Finding(rule="shard-affinity", path=sf.display, line=lineno,
                   message=message, excerpt=sf.line_text(lineno))


def _smuggled(capture_list: str) -> str | None:
    for item in capture_items(capture_list):
        if item == "this":
            return "this"
        name = item.lstrip("&").strip()
        if "=" in name:
            name = name.split("=", 1)[0].strip()
        if HANDLE_NAME.search(name):
            return item
    return None


@rule(
    "shard-affinity",
    "pool/engine handles or cross-shard primitives outside the sanctioned "
    "rehoming path",
    __doc__,
)
def check(sf: SourceFile, ctx: RunContext) -> list[Finding]:
    text = sf.text
    findings: list[Finding] = []
    sanctioned = any(sf.display.endswith(s) for s in ALLOWED_SUFFIXES)

    if not sanctioned:
        for m in POST_REMOTE.finditer(text):
            findings.append(_finding(
                sf, m.start(),
                "post_remote() outside net::Link's rehoming transmit path "
                "— cross-shard edges are designed in src/net/link.cpp, "
                "nowhere else"))
        for m in CLONE.finditer(text):
            findings.append(_finding(
                sf, m.start(),
                "clone_for_shard_transfer() outside the rehoming path — "
                "shard-crossing frames are cloned exactly once, in "
                "net::Link::transmit"))
        for m in REGISTER.finditer(text):
            findings.append(_finding(
                sf, m.start(),
                "register_edge_lookahead() outside net::Link — edge "
                "lookaheads are derived from a link's own wire costs when "
                "a cross-shard edge forms; a hand-written entry that "
                "overstates a latency silently unsounds every epoch bound"))

    if not any(sf.display.endswith(s) for s in MIGRATION_ALLOWED_SUFFIXES):
        for m in MIGRATION.finditer(text):
            findings.append(_finding(
                sf, m.start(),
                f"{m.group(1)}() outside the sanctioned rebalance path — "
                "live migration is barrier-phase surgery on two engines' "
                "heaps; install a policy via "
                "ShardGroup::set_rebalance_policy instead of calling the "
                "migration primitives directly"))

    # Capture hygiene on every post_remote callback, sanctioned or not.
    for call in POST_REMOTE.finditer(text):
        open_paren = call.end() - 1
        close = matching_paren(text, open_paren)
        for lam in LAMBDA_INTRO.finditer(text, open_paren, close):
            caps = lam.group(1)
            if has_ref_capture(caps):
                findings.append(_finding(
                    sf, lam.start(),
                    "by-reference capture in a post_remote callback — the "
                    "callback runs on another shard's thread; captured "
                    "referents belong to the source shard"))
                continue
            bad = _smuggled(caps)
            if bad is not None:
                findings.append(_finding(
                    sf, lam.start(),
                    f"capture '{bad}' in a post_remote callback smuggles a "
                    f"shard-local handle across the engine boundary — "
                    f"pools and engines are single-threaded by contract "
                    f"(DESIGN.md §11)"))
    return findings
