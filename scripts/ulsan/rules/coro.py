"""Coroutine-lifetime rules (the absorbed lint_coro_captures.py + one new).

All resumptions in this codebase are routed through the event queue, so a
callback or coroutine body almost always runs after the frame that created
it has returned.  Three rules cover the use-after-free shapes the type
system cannot:

* **ulsan-coro-schedule-capture** — a lambda with by-reference captures
  passed to ``schedule_at``/``schedule_after``.  The callback fires from
  the event queue long after the scheduling frame returned; a reference
  capture of a stack variable dangles by then.

* **ulsan-coro-iife-capture** — an immediately-invoked lambda coroutine
  (body contains ``co_await``/``co_return``/``co_yield``) with any
  captures.  The closure object owning the captures is a temporary that
  dies at the end of the full expression while the coroutine frame lives
  on; every capture access after the first suspension is a use-after-free.

* **ulsan-coro-ref-across-await** — a reference (or pointer) obtained
  *into a container element* — subscript, ``.front()``/``.back()``,
  ``it->second``, or ``&local`` — that is used again after a later
  ``co_await`` in the same scope.  The container can mutate while the
  coroutine is suspended (another task runs), invalidating the element.
  References returned by plain calls are not flagged: returning a
  reference to node-stable state is this codebase's accessor idiom.

Suppress with ``// NOLINT(ulsan-coro-capture)`` (covers the first two) or
the specific rule name.
"""

from __future__ import annotations

import re

from ..framework import Finding, RunContext, rule
from ..source import (SourceFile, has_ref_capture, matching_brace,
                      matching_paren, LAMBDA_INTRO)

SCHEDULE_CALL = re.compile(r"\b(schedule_at|schedule_after)\s*\(")
CORO_KEYWORD = re.compile(r"\bco_(await|return|yield)\b")
CO_AWAIT = re.compile(r"\bco_await\b")

REF_DECL = re.compile(
    r"(?:^|[;{}()])\s*(?:const\s+)?(?:auto|[A-Za-z_][\w:]*(?:<[^;<>]*>)?)"
    r"\s*&\s*([A-Za-z_]\w*)\s*=\s*([^;]+);")
PTR_DECL = re.compile(
    r"(?:^|[;{}()])\s*(?:auto|[A-Za-z_][\w:]*(?:<[^;<>]*>)?)"
    r"\s*\*\s*(?:const\s+)?([A-Za-z_]\w*)\s*=\s*(&\s*[A-Za-z_]\w*)\s*[;,]")

# Initializers that hand out a reference into a container element.
ELEMENT_INIT = re.compile(
    r"\[[^\]]*\]"                 # subscript
    r"|\.\s*(?:front|back|top|at)\s*\("   # element accessors
    r"|->\s*(?:second|first)\b"   # iterator payload
    r"|^\s*\*")                   # iterator deref


def _finding(sf: SourceFile, rule_name: str, idx: int,
             message: str) -> Finding:
    lineno = sf.line_of(idx)
    return Finding(rule=rule_name, path=sf.display, line=lineno,
                   message=message, excerpt=sf.line_text(lineno))


@rule(
    "coro-schedule-capture",
    "by-reference lambda capture passed to schedule_at/schedule_after",
    __doc__,
)
def check_schedule(sf: SourceFile, ctx: RunContext) -> list[Finding]:
    text = sf.text
    findings: list[Finding] = []
    for call in SCHEDULE_CALL.finditer(text):
        open_paren = call.end() - 1
        close = matching_paren(text, open_paren)
        arg_text = text[open_paren:close]
        for lam in LAMBDA_INTRO.finditer(arg_text):
            if has_ref_capture(lam.group(1)):
                findings.append(_finding(
                    sf, "coro-schedule-capture",
                    open_paren + lam.start(),
                    f"lambda with by-reference capture passed to "
                    f"{call.group(1)}() — the callback outlives the "
                    f"scheduling frame (use-after-free across suspension "
                    f"points)"))
    return findings


@rule(
    "coro-iife-capture",
    "immediately-invoked lambda coroutine with captures",
    __doc__,
)
def check_iife(sf: SourceFile, ctx: RunContext) -> list[Finding]:
    text = sf.text
    findings: list[Finding] = []
    for lam in LAMBDA_INTRO.finditer(text):
        captures = lam.group(1).strip()
        if not captures:
            continue
        body_open = lam.end() - 1
        body_close = matching_brace(text, body_open)
        if not CORO_KEYWORD.search(text[body_open:body_close]):
            continue
        after = text[body_close:body_close + 16].lstrip()
        if not after.startswith("("):
            continue
        findings.append(_finding(
            sf, "coro-iife-capture", lam.start(),
            f"immediately-invoked lambda coroutine with captures "
            f"[{captures}] — the closure object dies at the end of the "
            f"expression; captures dangle after the first suspension "
            f"point"))
    return findings


@rule(
    "coro-ref-across-await",
    "reference/pointer into a container element used across co_await",
    __doc__,
)
def check_ref_across_await(sf: SourceFile, ctx: RunContext) -> list[Finding]:
    text = sf.text
    findings: list[Finding] = []

    def scan(decl_end: int, name: str, idx: int, what: str) -> None:
        scope_end = sf.enclosing_block_end(idx)
        await_m = CO_AWAIT.search(text, decl_end, scope_end)
        if await_m is None:
            return
        use = re.compile(rf"\b{re.escape(name)}\b")
        if use.search(text, await_m.end(), scope_end) is None:
            return
        findings.append(_finding(
            sf, "coro-ref-across-await", idx,
            f"{what} '{name}' is used after a co_await — the referent can "
            f"be invalidated while this coroutine is suspended; re-fetch "
            f"it after resuming or copy the value"))

    for m in REF_DECL.finditer(text):
        init = m.group(2).strip()
        if not ELEMENT_INIT.search(init):
            continue
        name_idx = m.start(1)
        scan(m.end(), m.group(1), name_idx, "reference into a container")
    for m in PTR_DECL.finditer(text):
        scan(m.end(), m.group(1), m.start(1), "pointer to a local")
    return findings
