"""ulsan-determinism: code shapes whose behaviour depends on host state.

The repo's crown-jewel property is byte-identical digests across shard
counts, pool modes and slicing modes (DESIGN.md §§9-11).  Every
determinism bug shipped so far was a statically visible shape — PR 3's
pin cache keyed host allocator addresses into simulated timing.  Three
patterns, one rule:

1. **Unordered iteration.**  Iterating an ``std::unordered_map``/``set``
   visits elements in hash-table order, which depends on insertion
   history, rehash points and (for pointer keys) host addresses.  Any
   iteration that feeds scheduled events, digests or wire encodes is a
   nondeterminism bug; iterations that are provably order-insensitive
   (e.g. pure invariant sweeps) carry a NOLINT with the reason.

2. **Pointer keys in ordered containers.**  ``std::map``/``set`` ordered
   by raw pointer value sort by host heap addresses — iteration order
   changes run to run.

3. **Ambient entropy.**  ``rand()``, ``std::random_device``, wall-clock
   reads and environment lookups inject host state.  All simulation
   randomness must come from the seeded engines in ``sim/random.hpp``
   (the one exempt file).
"""

from __future__ import annotations

import re

from ..framework import Finding, RunContext, rule
from ..source import SourceFile, matching_angle, matching_paren

UNORDERED_DECL = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*(<)")
ORDERED_DECL = re.compile(r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*(<)")
VAR_AFTER_TYPE = re.compile(r"\s*[&*]*\s*([A-Za-z_]\w*)\s*(?=[;={(,)]|$)")
FOR_KW = re.compile(r"\bfor\s*\(")
IDENT_TAIL = re.compile(r"([A-Za-z_]\w*)\s*$")
BEGIN_CALL = re.compile(r"=\s*(?:(?:this\s*->\s*)?[\w.>-]*?)"
                        r"([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")

ENTROPY_PATTERNS = [
    (re.compile(r"\bs?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)"
                r"\s*::\s*now\b"), "wall-clock read"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time()"),
    (re.compile(r"\bgetenv\s*\("), "environment lookup"),
]

ENTROPY_EXEMPT_SUFFIX = "sim/random.hpp"


def unordered_vars(text: str) -> set[str]:
    """Names declared (variable, member or parameter) with an unordered
    container type in ``text``."""
    names: set[str] = set()
    for m in UNORDERED_DECL.finditer(text):
        close = matching_angle(text, m.end() - 1)
        vm = VAR_AFTER_TYPE.match(text, close)
        if vm:
            names.add(vm.group(1))
    return names


def _top_level_colon(header: str) -> int:
    """Offset of the range-for ':' in a for-header, or -1."""
    depth = 0
    i = 0
    while i < len(header):
        c = header[i]
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(header) and header[i + 1] == ":":
                i += 2
                continue
            if i > 0 and header[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


@rule(
    "determinism",
    "host-state-dependent shapes: unordered iteration, pointer-ordered "
    "containers, ambient entropy",
    __doc__,
)
def check(sf: SourceFile, ctx: RunContext) -> list[Finding]:
    text = sf.text
    findings: list[Finding] = []

    # Declarations may live in the sibling header (members declared in the
    # .hpp, iterated in the .cpp).
    names = unordered_vars(text)
    sibling = ctx.sibling_header(sf)
    if sibling is not None:
        names |= unordered_vars(sibling.text)

    def flag(idx: int, message: str) -> None:
        lineno = sf.line_of(idx)
        findings.append(Finding(
            rule="determinism", path=sf.display, line=lineno,
            message=message, excerpt=sf.line_text(lineno)))

    # 1a. Range-for over a known unordered container.
    for fm in FOR_KW.finditer(text):
        open_paren = fm.end() - 1
        close = matching_paren(text, open_paren)
        header = text[open_paren + 1:close - 1]
        colon = _top_level_colon(header)
        if colon < 0:
            continue
        range_expr = header[colon + 1:].strip()
        tail = IDENT_TAIL.search(range_expr)
        if tail and tail.group(1) in names:
            flag(fm.start(),
                 f"iteration over unordered container '{tail.group(1)}' — "
                 f"hash-table order is host-state-dependent; use an ordered "
                 f"container or justify order-insensitivity with a NOLINT")

    # 1b. Explicit iterator loops (auto it = c.begin(); ...).
    for bm in BEGIN_CALL.finditer(text):
        if bm.group(1) in names:
            flag(bm.start(),
                 f"iterator walk over unordered container "
                 f"'{bm.group(1)}' — hash-table order is "
                 f"host-state-dependent")

    # 2. Ordered containers keyed by raw pointers.
    for m in ORDERED_DECL.finditer(text):
        close = matching_angle(text, m.end() - 1)
        args = text[m.end():close - 1]
        # First top-level template argument.
        depth = 0
        first_end = len(args)
        for i, c in enumerate(args):
            if c in "(<[":
                depth += 1
            elif c in ")>]":
                depth -= 1
            elif c == "," and depth == 0:
                first_end = i
                break
        key = args[:first_end].strip()
        if key.endswith("*"):
            flag(m.start(),
                 f"ordered container keyed by raw pointer ({key}) — "
                 f"iteration order is host heap-address order, different "
                 f"every run")

    # 3. Ambient entropy.
    if not sf.display.endswith(ENTROPY_EXEMPT_SUFFIX):
        for pat, what in ENTROPY_PATTERNS:
            for m in pat.finditer(text):
                flag(m.start(),
                     f"{what} injects host state into the simulation — "
                     f"draw from the seeded engines in sim/random.hpp "
                     f"instead")

    return findings
