"""ulsan — repo-specific static analysis for the ulsocks codebase.

A token-level multi-rule lint framework (the generalization of the old
``lint_coro_captures.py``) guarding the properties this repository's
correctness argument rests on: determinism (byte-identical digests across
shard counts and pool modes), shard affinity (single-threaded pools and
engines), coroutine lifetime, the inter-library include DAG, and wire
format hygiene.

Run ``python3 -m ulsan src`` from the repository root, or see
``python3 -m ulsan --help``.  DESIGN.md §12 documents the rule catalogue
and the suppression/baseline policy.
"""

__version__ = "1.0"

from .framework import (Baseline, Finding, Rule, RunResult, all_rules,  # noqa: F401
                        run)
