"""Command-line interface for ulsan (``python3 -m ulsan``)."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import __version__
from .framework import Baseline, all_rules, run

DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python3 -m ulsan",
        description="Repo-specific static analysis for ulsocks: "
                    "determinism, shard affinity, coroutine lifetime, "
                    "layering, wire hygiene.")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to scan (default: src)")
    p.add_argument("--rules", metavar="LIST",
                   help="comma-separated rule names (without the ulsan- "
                        "prefix) to run; default: all")
    p.add_argument("--list-rules", action="store_true",
                   help="list registered rules and exit")
    p.add_argument("--explain", metavar="RULE",
                   help="print a rule's full documentation and exit")
    p.add_argument("--json", metavar="FILE",
                   help="write findings as JSON ('-' for stdout)")
    p.add_argument("--baseline", metavar="FILE", type=Path,
                   default=DEFAULT_BASELINE,
                   help=f"baseline file (default: {DEFAULT_BASELINE})")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline: report every finding")
    p.add_argument("--write-baseline", action="store_true",
                   help="rewrite the baseline from current findings "
                        "(carries forward matching justifications)")
    p.add_argument("--allow-legacy-coro-alias", action="store_true",
                   help=argparse.SUPPRESS)  # used by the deprecated shim
    p.add_argument("--quiet", action="store_true",
                   help="print findings only, no summary line")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    registry = all_rules()

    if args.list_rules:
        width = max(len(n) for n in registry)
        for name in sorted(registry):
            print(f"ulsan-{name:<{width}}  {registry[name].summary}")
        return 0

    if args.explain:
        name = args.explain.removeprefix("ulsan-")
        if name not in registry:
            print(f"ulsan: unknown rule '{args.explain}' "
                  f"(see --list-rules)", file=sys.stderr)
            return 2
        r = registry[name]
        print(f"ulsan-{r.name}: {r.summary}\n")
        print((r.doc or "").strip())
        return 0

    rule_names = None
    if args.rules:
        rule_names = [n.strip().removeprefix("ulsan-")
                      for n in args.rules.split(",") if n.strip()]

    paths = [Path(p) for p in args.paths]
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(args.baseline)

    try:
        result = run(paths, rule_names=rule_names, baseline=baseline,
                     allow_legacy=args.allow_legacy_coro_alias)
    except FileNotFoundError as e:
        print(f"ulsan: error: {e}", file=sys.stderr)
        return 2
    except KeyError as e:
        print(f"ulsan: error: {e.args[0]}", file=sys.stderr)
        return 2

    if args.write_baseline:
        old = Baseline.load(args.baseline)
        args.baseline.write_text(Baseline.render(result.new, old))
        print(f"ulsan: wrote {len(result.new)} finding(s) to "
              f"{args.baseline}")
        return 0

    for f in result.new + result.errors:
        print(f.render())

    if args.json:
        payload = {
            "tool": "ulsan",
            "version": __version__,
            "files_scanned": result.files_scanned,
            "rules": sorted(f"ulsan-{n}" for n in
                            (rule_names or registry.keys())),
            "findings": [f.as_json() for f in result.all_findings()],
            "counts": {
                "new": len(result.new),
                "suppressed": len(result.suppressed),
                "baselined": len(result.baselined),
                "errors": len(result.errors),
            },
        }
        text = json.dumps(payload, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text)

    if not args.quiet:
        bits = [f"{result.files_scanned} files"]
        if result.baselined:
            bits.append(f"{len(result.baselined)} baselined")
        if result.suppressed:
            bits.append(f"{len(result.suppressed)} suppressed")
        if result.failed:
            print(f"\nulsan: FAILED — {len(result.new)} new finding(s), "
                  f"{len(result.errors)} suppression/baseline error(s) "
                  f"({', '.join(bits)})")
        else:
            print(f"ulsan: clean ({', '.join(bits)})")
    return 1 if result.failed else 0
