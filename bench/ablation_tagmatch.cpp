// Ablation (§6.3/§6.4): NIC tag-matching walk cost.
//
// The paper measured 550 ns per walked descriptor.  This bench pre-posts a
// growing number of unrelated descriptors ahead of the measurement channel
// and reports the added one-way latency, which should grow by ~0.55 us per
// descriptor (the walk happens on both data and reply paths, but the reply
// side's list is short).
#include <cstdio>

#include "harness.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace ulsocks;
  using namespace ulsocks::bench;

  const BenchOptions opt = parse_bench_args(argc, argv);

  std::printf("Ablation: tag-matching walk cost (4-byte one-way, us)\n\n");

  BenchResults results("ablation_tagmatch",
                       "NIC tag-matching walk cost (4-byte one-way, us)");
  double base = measure_latency_with_extra_descriptors_us(0);
  sim::ResultTable table(
      {"extra_descriptors", "latency_us", "delta_us", "ns_per_descriptor"});
  for (std::size_t extra : {0ul, 4ul, 8ul, 16ul, 32ul, 64ul, 128ul}) {
    double lat = measure_latency_with_extra_descriptors_us(extra);
    results.add("latency", "emp", "raw", std::to_string(extra), lat, "us");
    double delta = lat - base;
    // The fillers sit on one side only, so the walk happens once per round
    // trip; one-way latency carries half of it.
    double per = extra ? delta * 2000.0 / static_cast<double>(extra) : 0.0;
    table.add_row({std::to_string(extra), sim::ResultTable::num(lat, 2),
                   sim::ResultTable::num(delta, 2),
                   sim::ResultTable::num(per, 0)});
  }
  table.print();
  std::printf("\npaper: ~550 ns per walked descriptor\n");
  results.write(opt.out_dir);
  return 0;
}
