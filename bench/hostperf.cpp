// Host performance of the simulator itself: wall-clock events/sec on the
// fig13 microbench workloads, plus a raw engine churn loop.
//
// Unlike every other bench, the value here is NOT a simulated quantity —
// it is how fast this build of the simulator executes on the host.  The
// committed baseline (bench/baselines/BENCH_hostperf.json) is the
// regression gate: scripts/check_hostperf.py fails the build if any
// events/sec point drops more than 25% below it.
//
// Methodology: each scenario runs `reps` times and records the best
// events/sec (best-of-N is robust against scheduler noise on shared CI
// hosts; medians still drift when the whole host is loaded).  The
// simulated results of every rep are identical — the engine is
// deterministic — so best-of changes only the wall-clock estimate.
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "harness.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"

namespace {

using ulsocks::bench::HostPerf;

/// Pure event-queue churn: four self-rescheduling chains of empty events,
/// no protocol work at all.  Measures the engine's ceiling.
HostPerf engine_churn(std::uint64_t total_events,
                      std::map<std::string, std::int64_t>& metrics) {
  ulsocks::sim::Engine eng;
  // No protocol stack runs here, so no host copies happen; register the
  // counter anyway so every bench point carries host/bytes_copied.
  (void)eng.metrics().counter("host/bytes_copied");
  struct Chain {
    ulsocks::sim::Engine* eng;
    std::uint64_t left;
    void operator()() {
      if (--left == 0) return;
      eng->schedule_after(100, Chain{*this});
    }
  };
  for (std::uint64_t lane = 0; lane < 4; ++lane) {
    eng.schedule_after(lane, Chain{&eng, total_events / 4});
  }
  auto t0 = std::chrono::steady_clock::now();
  eng.run();
  auto wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  HostPerf p;
  p.wall_ms = wall_ns / 1e6;
  p.events = eng.events_executed();
  p.events_per_sec =
      wall_ns > 0 ? static_cast<double>(p.events) * 1e9 / wall_ns : 0.0;
  metrics = eng.metrics().snapshot();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ulsocks;
  using namespace ulsocks::bench;

  const BenchOptions opt = parse_bench_args(argc, argv);
  // Smoke runs (--iters N) shrink every scenario so CI stays fast; the
  // committed baseline is recorded with the full defaults.
  const bool smoke = opt.iters > 0;
  const int reps = 3;

  BenchResults results("hostperf",
                       "Simulator host throughput (wall-clock events/sec)");
  const auto ds = StackChoice::substrate(sockets::preset("ds_da_uq"));
  const auto emp = StackChoice::raw_emp();

  const std::size_t bw_total = smoke ? (4ul << 20) : (96ul << 20);
  const std::size_t ftp_bytes = smoke ? (512ul << 10) : (24ul << 20);
  const int lat_iters = smoke ? opt.iters : 2000;
  const std::size_t scale_requests = smoke ? 8 : 192;
  // C10K: 3 client hosts x 334 connections ~ 1000 concurrent against one
  // server.  Small credit window / staging buffers keep the descriptor
  // memory of a thousand live connections bounded (credits=4 is the
  // paper's web-server setting).
  const std::size_t c10k_conns = smoke ? 8 : 334;
  // Hotspot skew: two hosts carry ~80% of the request traffic
  // (2 x hot vs 13 x cold).
  const std::size_t hot_requests = smoke ? 16 : 240;
  const std::size_t cold_requests = smoke ? 2 : 9;
  sockets::SubstrateConfig c10k_cfg = sockets::preset("ds_da_uq").cfg;
  c10k_cfg.credits = 4;
  c10k_cfg.buffer_bytes = 2048;
  const auto c10k = StackChoice::substrate(c10k_cfg, "c10k credits=4");

  struct Scenario {
    const char* name;
    const StackChoice* stack;
    const char* x;
    std::function<double()> job;
    const char* unit = "evps";
  };
  const std::vector<Scenario> scenarios = {
      // Large-message streaming drained with the zero-copy read_view API:
      // the tentpole workload for the slice data path.
      {"fig13_bw_64K", &ds, "64K",
       [&] { return measure_bandwidth_view_mbps(ds, 65536, bw_total); }},
      {"fig13_lat_4B", &ds, "4",
       [&] { return measure_latency_us(ds, 4, lat_iters); }},
      // Large-file FTP over the substrate (the paper's fig 14 application).
      {"fig14_ftp", &ds, "file",
       [&] { return measure_ftp_mbps(ds, ftp_bytes); }},
      {"emp_bw_64K", &emp, "64K",
       [&] { return measure_bandwidth_mbps(emp, 65536, bw_total); }},
      // Sharded scaling: the same 16-host web workload serial and at 4
      // shards x 4 threads.  The simulated result is identical; the
      // events/sec ratio between the two points is the parallel speedup
      // the sharded engine buys (gated >= 2x via the committed baseline).
      {"scale_web_16hosts", &ds, "1shard",
       [&] {
         return measure_scale_web_evps(ds, 16, 1, 1, scale_requests);
       }},
      {"scale_web_16hosts", &ds, "4shards",
       [&] {
         return measure_scale_web_evps(ds, 16, opt.shards_or(4), 4,
                                       scale_requests);
       }},
      // Same run pinned to the PR5-era scalar epoch bound: the A/B
      // baseline for the lookahead matrix.  check_hostperf.py asserts the
      // matrix point above needs no more epochs ("shard/epochs" in each
      // point's metrics) than this one.
      {"scale_web_16hosts", &ds, "4shards_scalar",
       [&] {
         return measure_scale_web_evps(ds, 16, opt.shards_or(4), 4,
                                       scale_requests, /*scalar=*/true);
       }},
      // Skewed ("hotspot") web workload: hosts 1 and 5 carry ~80% of the
      // traffic, and at 4 shards the static (i + 1) % shards placement
      // parks both on one shard.  Four points: 1 and 2 shards for the
      // causal-digest parity gate, then 4 shards static vs greedy live
      // rebalancing.  check_hostperf.py asserts the digests of all four
      // match, that greedy cuts the per-shard executed-event imbalance at
      // least 2x vs static, that it runs no more barrier epochs, and (on
      // multi-core recordings) that it is >= 1.3x faster wall-clock.
      {"scale_web_hotspot", &ds, "1shard",
       [&] {
         return measure_scale_web_hotspot_evps(ds, 1, 1, false,
                                               hot_requests, cold_requests);
       }},
      {"scale_web_hotspot", &ds, "2shards",
       [&] {
         return measure_scale_web_hotspot_evps(ds, 2, 2, false,
                                               hot_requests, cold_requests);
       }},
      {"scale_web_hotspot", &ds, "4shards_static",
       [&] {
         return measure_scale_web_hotspot_evps(ds, opt.shards_or(4), 4,
                                               false, hot_requests,
                                               cold_requests);
       }},
      {"scale_web_hotspot", &ds, "4shards_greedy",
       [&] {
         return measure_scale_web_hotspot_evps(ds, opt.shards_or(4), 4,
                                               true, hot_requests,
                                               cold_requests);
       }},
      // C10K ring-vs-blocking: identical traffic (~1000 simultaneous
      // connections), two servers.  The gated quantity is requests served
      // per wall second — the ring's point is doing the same application
      // work with fewer engine events (one parked pump vs a thundering
      // herd), so events/sec would reward the blocking server's waste.
      // check_hostperf.py asserts ring >= blocking.
      {"scale_c10k", &c10k, "ring",
       [&] { return measure_scale_c10k_reqps(c10k, true, c10k_conns); },
       "reqps"},
      {"scale_c10k", &c10k, "blocking",
       [&] { return measure_scale_c10k_reqps(c10k, false, c10k_conns); },
       "reqps"},
      // The ring server composes with the sharded engine: same workload
      // partitioned over 4 shards.
      {"scale_c10k", &c10k, "ring_4shards",
       [&] {
         return measure_scale_c10k_reqps(c10k, true, c10k_conns,
                                         opt.shards_or(4), 4);
       },
       "reqps"},
  };

  sim::ResultTable table({"scenario", "stack", "Mev/s", "wall_ms"});
  for (const auto& sc : scenarios) {
    HostPerf best{};
    std::map<std::string, std::int64_t> best_metrics;
    // evps scenarios record the run's host events/sec; other units (the
    // C10K reqps points) record the job's own return value.  Best-of-N
    // picks by the recorded quantity either way.
    const bool evps = std::string_view(sc.unit) == "evps";
    double best_value = -1.0;
    for (int r = 0; r < reps; ++r) {
      const double ret = sc.job();
      const HostPerf& p = last_run_host_perf();
      const double value = evps ? p.events_per_sec : ret;
      if (value > best_value) {
        best_value = value;
        best = p;
        best_metrics = last_run_metrics();
      }
    }
    results.add(sc.name, sc.stack->name(), sc.stack->config_label(), sc.x,
                best_value, sc.unit, best_metrics);
    table.add_row({sc.name, sc.stack->name(),
                   sim::ResultTable::num(best.events_per_sec / 1e6, 2),
                   sim::ResultTable::num(best.wall_ms, 1)});
  }

  {
    const std::uint64_t n = smoke ? 200'000 : 2'000'000;
    HostPerf best{};
    std::map<std::string, std::int64_t> best_metrics;
    for (int r = 0; r < reps; ++r) {
      std::map<std::string, std::int64_t> metrics;
      HostPerf p = engine_churn(n, metrics);
      if (p.events_per_sec > best.events_per_sec) {
        best = p;
        best_metrics = std::move(metrics);
      }
    }
    results.add("engine_churn", "sim", "engine", "empty_events",
                best.events_per_sec, "evps", std::move(best_metrics));
    table.add_row({"engine_churn", "sim",
                   sim::ResultTable::num(best.events_per_sec / 1e6, 2),
                   sim::ResultTable::num(best.wall_ms, 1)});
  }

  table.print();
  results.write(opt.out_dir);
  return 0;
}
