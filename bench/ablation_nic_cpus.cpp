// Ablation: the Tigon2's two firmware CPUs (cf. Shivam et al., IPDPS'02,
// "Can User Level Protocols Take Advantage of Multi-CPU NICs?").
//
// In single-CPU mode the transmit and receive firmware paths serialize on
// one core; ping-pong latency suffers little (the paths alternate) but
// bidirectional and streaming throughput lose the overlap.
#include <cstdio>

#include "harness.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace ulsocks;
  using namespace ulsocks::bench;

  auto cfg = sockets::preset_ds_da_uq();

  std::printf("Ablation: dual vs single NIC firmware CPU\n\n");
  sim::ResultTable table({"metric", "dual_cpu", "single_cpu"});

  double lat_dual =
      measure_latency_us_nic(substrate_choice(cfg), 4, /*dual=*/true);
  double lat_single =
      measure_latency_us_nic(substrate_choice(cfg), 4, /*dual=*/false);
  table.add_row({"latency_4B_us", sim::ResultTable::num(lat_dual, 1),
                 sim::ResultTable::num(lat_single, 1)});

  constexpr std::size_t kTotal = 16ul << 20;
  double bw_dual = measure_bandwidth_mbps_nic(substrate_choice(cfg), 65536,
                                              kTotal, /*dual=*/true);
  double bw_single = measure_bandwidth_mbps_nic(substrate_choice(cfg), 65536,
                                                kTotal, /*dual=*/false);
  table.add_row({"stream_mbps", sim::ResultTable::num(bw_dual, 0),
                 sim::ResultTable::num(bw_single, 0)});

  double emp_dual = measure_latency_us_nic(raw_emp_choice(), 4, true);
  double emp_single = measure_latency_us_nic(raw_emp_choice(), 4, false);
  table.add_row({"raw_emp_latency_us", sim::ResultTable::num(emp_dual, 1),
                 sim::ResultTable::num(emp_single, 1)});

  table.print();
  std::printf(
      "\nexpected: streaming bandwidth drops hardest in single-CPU mode — "
      "the\nreceive path's per-frame work no longer overlaps ack "
      "generation\n");
  return 0;
}
