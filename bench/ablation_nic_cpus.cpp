// Ablation: the Tigon2's two firmware CPUs (cf. Shivam et al., IPDPS'02,
// "Can User Level Protocols Take Advantage of Multi-CPU NICs?").
//
// In single-CPU mode the transmit and receive firmware paths serialize on
// one core; ping-pong latency suffers little (the paths alternate) but
// bidirectional and streaming throughput lose the overlap.
#include <cstdio>

#include "harness.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace ulsocks;
  using namespace ulsocks::bench;

  const BenchOptions opt = parse_bench_args(argc, argv);
  const std::size_t total = opt.iters > 0 ? (1ul << 20) : (16ul << 20);

  const auto sub = StackChoice::substrate(sockets::preset("ds_da_uq"));
  const auto emp = StackChoice::raw_emp();

  BenchResults results("ablation_nic_cpus",
                       "Dual vs single NIC firmware CPU");
  std::printf("Ablation: dual vs single NIC firmware CPU\n\n");
  sim::ResultTable table({"metric", "dual_cpu", "single_cpu"});

  double lat_dual = measure_latency_us_nic(sub, 4, /*dual=*/true);
  results.add("latency_4B", sub, "dual", lat_dual, "us");
  double lat_single = measure_latency_us_nic(sub, 4, /*dual=*/false);
  results.add("latency_4B", sub, "single", lat_single, "us");
  table.add_row({"latency_4B_us", sim::ResultTable::num(lat_dual, 1),
                 sim::ResultTable::num(lat_single, 1)});

  double bw_dual = measure_bandwidth_mbps_nic(sub, 65536, total,
                                              /*dual=*/true);
  results.add("stream_bw", sub, "dual", bw_dual, "mbps");
  double bw_single = measure_bandwidth_mbps_nic(sub, 65536, total,
                                                /*dual=*/false);
  results.add("stream_bw", sub, "single", bw_single, "mbps");
  table.add_row({"stream_mbps", sim::ResultTable::num(bw_dual, 0),
                 sim::ResultTable::num(bw_single, 0)});

  double emp_dual = measure_latency_us_nic(emp, 4, true);
  results.add("raw_emp_latency", emp, "dual", emp_dual, "us");
  double emp_single = measure_latency_us_nic(emp, 4, false);
  results.add("raw_emp_latency", emp, "single", emp_single, "us");
  table.add_row({"raw_emp_latency_us", sim::ResultTable::num(emp_dual, 1),
                 sim::ResultTable::num(emp_single, 1)});

  table.print();
  std::printf(
      "\nexpected: streaming bandwidth drops hardest in single-CPU mode — "
      "the\nreceive path's per-frame work no longer overlaps ack "
      "generation\n");
  results.write(opt.out_dir);
  return 0;
}
