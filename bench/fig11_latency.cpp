// Figure 11: micro-benchmark latency of the substrate's incremental
// enhancements, against raw EMP.
//
//   DS        data streaming, immediate acks, pre-posted ack descriptors
//   DS_DA     + delayed acknowledgments (§6.3)
//   DS_DA_UQ  + acks on the EMP unexpected queue (§6.4) and piggybacking
//   DG        datagram sockets (§6.2)
//   EMP       raw EMP ping-pong (no sockets layer)
//
// Paper reference points at 4 bytes: EMP ~28 us, DG ~28.5 us, DS_DA_UQ
// ~37 us, with plain DS clearly above DS_DA above DS_DA_UQ.
#include <cstdio>
#include <iterator>
#include <vector>

#include "harness.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace ulsocks;
  using namespace ulsocks::bench;

  const BenchOptions opt = parse_bench_args(argc, argv);
  const int iters = opt.iters_or(50);

  std::printf("Figure 11: substrate latency by enhancement (one-way, us)\n");
  std::printf("credits=32, 64KB temporary buffers, 4-node-testbed model\n\n");

  const StackChoice stacks[] = {
      StackChoice::substrate(sockets::preset("ds")),
      StackChoice::substrate(sockets::preset("ds_da")),
      StackChoice::substrate(sockets::preset("ds_da_uq")),
      StackChoice::substrate(sockets::preset("dg")),
      StackChoice::raw_emp(),
  };
  const char* series[] = {"DS", "DS_DA", "DS_DA_UQ", "DG", "raw_EMP"};

  BenchResults results("fig11_latency",
                       "Substrate latency by enhancement (one-way, us)");
  const std::size_t sizes[] = {4, 64, 256, 1024, 4096};
  sim::ResultTable table(
      {"size", "DS", "DS_DA", "DS_DA_UQ", "DG", "raw_EMP"});
  for (std::size_t size : sizes) {
    std::vector<std::string> row{size_label(size)};
    for (std::size_t s = 0; s < std::size(stacks); ++s) {
      double us = measure_latency_us(stacks[s], size, iters);
      results.add(series[s], stacks[s], size_label(size), us, "us");
      row.push_back(sim::ResultTable::num(us, 1));
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\npaper (4B): DS > DS_DA > DS_DA_UQ ~= 37, DG ~= 28.5, EMP ~= 28\n");
  results.write(opt.out_dir);
  return 0;
}
