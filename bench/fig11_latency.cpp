// Figure 11: micro-benchmark latency of the substrate's incremental
// enhancements, against raw EMP.
//
//   DS        data streaming, immediate acks, pre-posted ack descriptors
//   DS_DA     + delayed acknowledgments (§6.3)
//   DS_DA_UQ  + acks on the EMP unexpected queue (§6.4) and piggybacking
//   DG        datagram sockets (§6.2)
//   EMP       raw EMP ping-pong (no sockets layer)
//
// Paper reference points at 4 bytes: EMP ~28 us, DG ~28.5 us, DS_DA_UQ
// ~37 us, with plain DS clearly above DS_DA above DS_DA_UQ.
#include <cstdio>

#include "harness.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace ulsocks;
  using namespace ulsocks::bench;

  std::printf("Figure 11: substrate latency by enhancement (one-way, us)\n");
  std::printf("credits=32, 64KB temporary buffers, 4-node-testbed model\n\n");

  const std::size_t sizes[] = {4, 64, 256, 1024, 4096};
  sim::ResultTable table(
      {"size", "DS", "DS_DA", "DS_DA_UQ", "DG", "raw_EMP"});
  for (std::size_t size : sizes) {
    double ds = measure_latency_us(
        substrate_choice(sockets::preset_ds()), size);
    double ds_da = measure_latency_us(
        substrate_choice(sockets::preset_ds_da()), size);
    double ds_da_uq = measure_latency_us(
        substrate_choice(sockets::preset_ds_da_uq()), size);
    double dg = measure_latency_us(substrate_choice(sockets::preset_dg()),
                                   size);
    double emp = measure_latency_us(raw_emp_choice(), size);
    table.add_row({size_label(size), sim::ResultTable::num(ds, 1),
                   sim::ResultTable::num(ds_da, 1),
                   sim::ResultTable::num(ds_da_uq, 1),
                   sim::ResultTable::num(dg, 1),
                   sim::ResultTable::num(emp, 1)});
  }
  table.print();
  std::printf(
      "\npaper (4B): DS > DS_DA > DS_DA_UQ ~= 37, DG ~= 28.5, EMP ~= 28\n");
  return 0;
}
