// Shared measurement harness for the figure-reproduction benches.
//
// Every routine builds a fresh 2- or 4-node cluster, runs the workload to
// completion in simulated time and reports microseconds / Mb/s exactly the
// way the paper does: "latency" is half the ping-pong round trip, bandwidth
// is receiver-side goodput over the transfer window.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/cluster.hpp"
#include "sim/stats.hpp"
#include "sockets/config.hpp"

namespace ulsocks::bench {

using apps::Cluster;
using sim::Task;

/// Which transport a measurement runs over.
struct StackChoice {
  enum class Kind { kSubstrate, kTcp, kRawEmp } kind = Kind::kSubstrate;
  sockets::SubstrateConfig cfg{};       // substrate runs
  int tcp_sockbuf = 0;                  // 0: kernel default (16 KB)
  bool tcp_nodelay = true;
};

[[nodiscard]] StackChoice substrate_choice(sockets::SubstrateConfig cfg);
[[nodiscard]] StackChoice tcp_choice(int sockbuf = 0);
[[nodiscard]] StackChoice raw_emp_choice();

/// One-way latency (us) for `msg_bytes` messages, averaged over `iters`
/// ping-pong rounds after `warmup` rounds.
[[nodiscard]] double measure_latency_us(const StackChoice& stack,
                                        std::size_t msg_bytes,
                                        int iters = 50, int warmup = 5);

/// Unidirectional goodput (Mb/s) sending `total_bytes` in `msg_bytes`
/// application writes.
[[nodiscard]] double measure_bandwidth_mbps(const StackChoice& stack,
                                            std::size_t msg_bytes,
                                            std::size_t total_bytes);

/// ftp RETR throughput (Mb/s) for a file of `file_bytes` on a RAM disk.
[[nodiscard]] double measure_ftp_mbps(const StackChoice& stack,
                                      std::size_t file_bytes);

/// Web-server mean response time (us): 1 server + 3 clients, 16-byte
/// requests, `response_bytes` replies, `requests_per_connection` per
/// connection (1 = HTTP/1.0, 8 = HTTP/1.1).
[[nodiscard]] double measure_web_response_us(
    const StackChoice& stack, std::uint32_t response_bytes,
    std::uint32_t requests_per_connection, std::size_t requests_per_client);

/// Distributed matmul wall time (ms) for an n x n problem on 4 nodes.
[[nodiscard]] double measure_matmul_ms(const StackChoice& stack,
                                       std::size_t n);

/// Latency with `extra_descriptors` unrelated descriptors pre-posted ahead
/// of the measurement channel (tag-matching walk-cost ablation).
[[nodiscard]] double measure_latency_with_extra_descriptors_us(
    std::size_t extra_descriptors, std::size_t msg_bytes = 4);

/// Latency / bandwidth with a single-CPU NIC (ablation of the Tigon2's
/// dual-core design).
[[nodiscard]] double measure_latency_us_nic(const StackChoice& stack,
                                            std::size_t msg_bytes,
                                            bool dual_cpu);
[[nodiscard]] double measure_bandwidth_mbps_nic(const StackChoice& stack,
                                                std::size_t msg_bytes,
                                                std::size_t total_bytes,
                                                bool dual_cpu);

/// Pretty size label ("4", "1K", "64K").
[[nodiscard]] std::string size_label(std::size_t bytes);

}  // namespace ulsocks::bench
