// Shared measurement harness for the figure-reproduction benches.
//
// Every routine builds a fresh 2- or 4-node cluster, runs the workload to
// completion in simulated time and reports microseconds / Mb/s exactly the
// way the paper does: "latency" is half the ping-pong round trip, bandwidth
// is receiver-side goodput over the transfer window.
//
// Observability: each run's engine carries the obs metrics registry and
// timeline tracer.  After any measure_* call, last_run_metrics() holds that
// run's full registry snapshot; BenchResults attaches it to every recorded
// point and writes the schema-versioned BENCH_<figure>.json that
// scripts/validate_bench_json.py checks.  set_trace_export() arms a Chrome
// trace_event export of the next run (see DESIGN.md §8).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "apps/cluster.hpp"
#include "sim/stats.hpp"
#include "sockets/config.hpp"

namespace ulsocks::bench {

using apps::Cluster;
using sim::Task;

/// Which transport a measurement runs over.  Built through the named
/// factories so every choice carries a stack name and a config label the
/// JSON emitter reuses; the paper presets flow in via sockets::preset().
class StackChoice {
 public:
  enum class Kind { kSubstrate, kTcp, kRawEmp };

  /// Substrate run with a registry preset (label = the paper figure label).
  [[nodiscard]] static StackChoice substrate(const sockets::Preset& preset);
  /// Substrate run with a hand-built config (ablations that tweak knobs).
  [[nodiscard]] static StackChoice substrate(sockets::SubstrateConfig cfg,
                                             std::string label);
  /// Kernel TCP; `sockbuf` of 0 keeps the kernel default (16 KB).
  [[nodiscard]] static StackChoice tcp(int sockbuf = 0);
  /// Raw EMP ping-pong, no sockets layer at all.
  [[nodiscard]] static StackChoice raw_emp();

  /// Stack name for series labels and JSON: "substrate", "tcp" or "emp".
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Configuration label: preset figure label, "sockbuf=N", or "raw".
  [[nodiscard]] const std::string& config_label() const noexcept {
    return label_;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const sockets::SubstrateConfig& cfg() const noexcept {
    return cfg_;
  }
  [[nodiscard]] int tcp_sockbuf() const noexcept { return tcp_sockbuf_; }
  [[nodiscard]] bool tcp_nodelay() const noexcept { return tcp_nodelay_; }

 private:
  Kind kind_ = Kind::kSubstrate;
  sockets::SubstrateConfig cfg_{};
  int tcp_sockbuf_ = 0;  // 0: kernel default (16 KB)
  bool tcp_nodelay_ = true;
  std::string name_ = "substrate";
  std::string label_;
};

/// Registry snapshot of the most recent measure_* run on this thread
/// (path -> value; see obs/metrics.hpp for the "h<N>/<layer>/<name>" path
/// scheme).  Thread-local so run_points() workers don't race.
[[nodiscard]] const std::map<std::string, std::int64_t>& last_run_metrics();

/// Host-side (wall-clock) cost of a simulator run: how fast the simulator
/// itself executes, as opposed to the simulated result it produces.
struct HostPerf {
  double wall_ms = 0;
  std::uint64_t events = 0;
  double events_per_sec = 0;
};

/// HostPerf of the most recent measure_* run on this thread.
[[nodiscard]] const HostPerf& last_run_host_perf();

/// One completed measurement job: the measured value plus the metrics and
/// host-perf snapshots of the run that produced it.
struct MeasuredPoint {
  double value = 0;
  std::map<std::string, std::int64_t> metrics;
  HostPerf perf;
};

/// Run independent measurement jobs — each a closure over one measure_*
/// call — and return their results in job order.  With `threads` > 1 the
/// jobs run on a thread pool (each job builds its own Engine, so runs are
/// fully isolated and the simulated results are identical to a serial
/// sweep; only wall-clock changes).  Falls back to serial when `threads`
/// <= 1 or a trace export is armed (the trace must capture exactly one
/// run).  A job that throws rethrows from run_points after all jobs
/// complete.
[[nodiscard]] std::vector<MeasuredPoint> run_points(
    std::vector<std::function<double()>> jobs, unsigned threads);

/// Arm a timeline export: the next measure_* run executes with the tracer
/// enabled and writes Chrome trace_event JSON to `path` when it finishes.
void set_trace_export(std::string path);

/// Options every bench main understands:
///   --iters N    latency iterations per point (smoke runs use small N)
///   --trace F    export a Chrome trace of the first run to F
///   --out DIR    directory for BENCH_<figure>.json (default ".")
///   --threads N  run_points() pool size (0 = auto: hardware threads, <= 8)
///   --shards N   shard count for sharded scenarios (0 = scenario default)
struct BenchOptions {
  int iters = 0;  // 0: the figure's default
  std::string trace_path;
  std::string out_dir = ".";
  unsigned threads = 0;  // 0: auto
  unsigned shards = 0;   // 0: each scenario picks its own

  [[nodiscard]] int iters_or(int dflt) const { return iters > 0 ? iters : dflt; }
  /// Pool size for run_points(): --threads, or the auto default.
  [[nodiscard]] unsigned resolved_threads() const;
  /// Shard count for sharded scenarios: --shards, or `dflt`.
  [[nodiscard]] std::size_t shards_or(std::size_t dflt) const {
    return shards > 0 ? shards : dflt;
  }
};
[[nodiscard]] BenchOptions parse_bench_args(int argc, char** argv);

/// Machine-readable bench results.  add() records one measured point along
/// with the metrics snapshot of the run that produced it; write() emits
///
///   {
///     "schema": "ulsocks.bench.v1",
///     "figure": "<figure>", "title": "<title>",
///     "host_perf": {"events": 12345, "wall_ms": 67.8,
///                   "events_per_sec": 1.8e6, "peak_rss_kb": 34567,
///                   "threads": 4},
///     "points": [{"series", "stack", "config", "x", "value", "unit",
///                 "metrics": {"h0/emp/data_frames_tx": 123, ...}}, ...]
///   }
///
/// host_perf aggregates every run of the process so far: total events,
/// summed per-run wall time (across pool threads when parallel), and peak
/// RSS — the "how fast is the simulator itself" record that
/// scripts/check_hostperf.py gates on.
///
/// as BENCH_<figure>.json so plots and regression checks never scrape the
/// human tables.
class BenchResults {
 public:
  BenchResults(std::string figure, std::string title);

  /// Record the point for the measure_* call that just returned `value`.
  void add(std::string_view series, const StackChoice& stack,
           std::string_view x, double value, std::string_view unit);
  /// Record a run_points() result (carries its own metrics snapshot).
  void add(std::string_view series, const StackChoice& stack,
           std::string_view x, double value, std::string_view unit,
           std::map<std::string, std::int64_t> metrics);
  /// Record a point that has no StackChoice (raw-parameter ablations).
  void add(std::string_view series, std::string_view stack_name,
           std::string_view config_label, std::string_view x, double value,
           std::string_view unit);
  /// Record a point with an explicit metrics snapshot (benches that drive
  /// their own Engine instead of the measure_* routines).
  void add(std::string_view series, std::string_view stack_name,
           std::string_view config_label, std::string_view x, double value,
           std::string_view unit, std::map<std::string, std::int64_t> metrics);

  /// Write BENCH_<figure>.json into `dir`; returns the path written, or
  /// empty on I/O failure (also printed to stderr).
  std::string write(const std::string& dir = ".") const;

 private:
  struct Point {
    std::string series;
    std::string stack;
    std::string config;
    std::string x;
    double value;
    std::string unit;
    std::map<std::string, std::int64_t> metrics;
  };
  std::string figure_;
  std::string title_;
  std::vector<Point> points_;
};

/// One-way latency (us) for `msg_bytes` messages, averaged over `iters`
/// ping-pong rounds after `warmup` rounds.
[[nodiscard]] double measure_latency_us(const StackChoice& stack,
                                        std::size_t msg_bytes,
                                        int iters = 50, int warmup = 5);

/// Unidirectional goodput (Mb/s) sending `total_bytes` in `msg_bytes`
/// application writes.
[[nodiscard]] double measure_bandwidth_mbps(const StackChoice& stack,
                                            std::size_t msg_bytes,
                                            std::size_t total_bytes);

/// Same workload, but the receiver drains with read_view() instead of
/// read(): the zero-copy receive API (sliced stacks lend their buffers;
/// others fall back to one copy into the view's scratch).
[[nodiscard]] double measure_bandwidth_view_mbps(const StackChoice& stack,
                                                 std::size_t msg_bytes,
                                                 std::size_t total_bytes);

/// ftp RETR throughput (Mb/s) for a file of `file_bytes` on a RAM disk.
[[nodiscard]] double measure_ftp_mbps(const StackChoice& stack,
                                      std::size_t file_bytes);

/// Web-server mean response time (us): 1 server + 3 clients, 16-byte
/// requests, `response_bytes` replies, `requests_per_connection` per
/// connection (1 = HTTP/1.0, 8 = HTTP/1.1).
[[nodiscard]] double measure_web_response_us(
    const StackChoice& stack, std::uint32_t response_bytes,
    std::uint32_t requests_per_connection, std::size_t requests_per_client);

/// Distributed matmul wall time (ms) for an n x n problem on 4 nodes.
[[nodiscard]] double measure_matmul_ms(const StackChoice& stack,
                                       std::size_t n);

/// Latency with `extra_descriptors` unrelated descriptors pre-posted ahead
/// of the measurement channel (tag-matching walk-cost ablation).
[[nodiscard]] double measure_latency_with_extra_descriptors_us(
    std::size_t extra_descriptors, std::size_t msg_bytes = 4);

/// Latency / bandwidth with a single-CPU NIC (ablation of the Tigon2's
/// dual-core design).
[[nodiscard]] double measure_latency_us_nic(const StackChoice& stack,
                                            std::size_t msg_bytes,
                                            bool dual_cpu);
[[nodiscard]] double measure_bandwidth_mbps_nic(const StackChoice& stack,
                                                std::size_t msg_bytes,
                                                std::size_t total_bytes,
                                                bool dual_cpu);

/// Host events/sec of the many-host sharded web workload (bench/scale.hpp):
/// 1 server + (hosts-1) clients on a star, partitioned over `shards`
/// engines run by `threads` workers.  The simulated result is shard-count
/// invariant; the returned wall-clock throughput is what scales.
/// last_run_metrics() afterwards holds the merged cross-shard snapshot and
/// last_run_host_perf() the aggregate event count.
/// `scalar_lookahead` pins the group to the PR5-era scalar epoch bound —
/// the A/B baseline for the lookahead-matrix epoch-count comparison.
[[nodiscard]] double measure_scale_web_evps(const StackChoice& stack,
                                            std::size_t hosts,
                                            std::size_t shards,
                                            unsigned threads,
                                            std::size_t requests_per_client,
                                            bool scalar_lookahead = false);

/// Host events/sec of the skewed ("hotspot") 16-host web workload: two
/// hosts carry ~80% of the request traffic, so the static (i + 1) % shards
/// placement leaves one shard much hotter than the rest.  `rebalance`
/// turns the greedy live-rebalancing policy on; off is the static A/B
/// baseline.  After the call last_run_metrics() additionally carries
/// "shard/causal_digest" (bit-cast to int64) — identical across shard
/// counts and rebalance on/off when migration is sound — next to the
/// group's shard/epochs, shard/imbalance and shard/migrations gauges.
[[nodiscard]] double measure_scale_web_hotspot_evps(
    const StackChoice& stack, std::size_t shards, unsigned threads,
    bool rebalance, std::size_t hot_requests, std::size_t cold_requests);

/// Served requests per wall-clock second of the C10K concurrency workload
/// (bench/scale.hpp ScaleC10k): 3 client hosts x `connections_per_host`
/// simultaneous connections against one server, ring (`ring = true`) or
/// blocking.  Requests-per-second, not events-per-second, is the gated
/// quantity: the ring server exists to do the same application work with
/// FEWER engine events (one parked pump instead of a per-connection
/// thundering herd), so comparing evps would reward the wasteful server.
/// last_run_metrics() afterwards carries the merged snapshot including the
/// ring/batch_size, ring/reap_wait_ns and ring/sqe_inflight instruments.
[[nodiscard]] double measure_scale_c10k_reqps(const StackChoice& stack,
                                              bool ring,
                                              std::size_t connections_per_host,
                                              std::size_t shards = 1,
                                              unsigned threads = 1,
                                              std::size_t reap_batch = 64);

/// Pretty size label ("4", "1K", "64K").
[[nodiscard]] std::string size_label(std::size_t bytes);

}  // namespace ulsocks::bench
