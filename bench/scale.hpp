// Many-host scaling topology: one web server plus N-1 request clients on a
// sharded star network (sim/shard.hpp).  This is the workload the sharded
// engine exists for — fig15/16-style traffic at host counts a serial event
// loop cannot sustain — packaged so benches and tests can build it with
// any shard count and compare results across counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "apps/cluster.hpp"
#include "apps/httpd.hpp"
#include "net/link.hpp"
#include "oskernel/process.hpp"
#include "sim/shard.hpp"
#include "sim/stats.hpp"
#include "sockets/config.hpp"

namespace ulsocks::bench {

struct ScaleWebOptions {
  std::size_t hosts = 16;   // host 0 serves, the rest request
  std::size_t shards = 1;   // ShardGroup size (1 = serial reference)
  unsigned threads = 1;     // worker threads for ShardGroup::run
  std::uint32_t response_bytes = 8192;
  std::uint32_t requests_per_connection = 8;  // HTTP/1.1 style
  std::size_t requests_per_client = 64;
  std::uint64_t seed = 1;
  // Skewed workloads: when non-empty, client idx (serving host idx+1) runs
  // per_client_requests[idx % size()] requests instead of the uniform
  // requests_per_client.  The hotspot bench concentrates ~80% of traffic
  // on two hosts this way.
  std::vector<std::size_t> per_client_requests = {};
  // Live rebalancing: install the greedy-by-event-rate policy (sampled
  // every rebalance_interval_epochs barrier epochs).  Off = placement
  // stays static, the A/B baseline the rebalance gates compare against.
  bool rebalance = false;
  std::uint64_t rebalance_interval_epochs = 64;
  double rebalance_hysteresis = 1.5;
  // A/B switch: pin the group to the PR5-era scalar bound (global_min + W)
  // instead of the per-edge lookahead matrix.  Same topology, same traffic
  // — only the epoch schedule differs, so epoch counts are comparable.
  bool scalar_lookahead = false;
  // Per-host cable lengths (ns of propagation, cycled over hosts); empty
  // keeps the model's uniform wire.  See apps::Cluster.
  std::vector<sim::Duration> per_host_propagation = {};
};

/// Builds the sharded cluster; run() spawns the server and every client on
/// its own shard's engine and drives the group to completion.
class ScaleWeb {
 public:
  ScaleWeb(const sim::CostModel& model, const sockets::SubstrateConfig& cfg,
           const ScaleWebOptions& opt)
      : opt_(opt),
        group_(opt.shards, default_lookahead(model, opt), opt.seed),
        cluster_(group_, model, opt.hosts, cfg, {}, true,
                 opt.per_host_propagation),
        per_client_(opt.hosts > 1 ? opt.hosts - 1 : 0) {
    if (opt.scalar_lookahead) {
      group_.set_lookahead_mode(sim::ShardGroup::LookaheadMode::kScalar);
    }
    if (opt.rebalance) {
      sim::ShardGroup::GreedyRebalanceOptions gopt;
      gopt.hysteresis = opt.rebalance_hysteresis;
      group_.set_rebalance_policy(
          sim::ShardGroup::greedy_rebalance_policy(gopt),
          opt.rebalance_interval_epochs);
    }
  }

  /// Requests client `idx` (host idx + 1) issues this run.
  [[nodiscard]] std::size_t requests_of_client(std::size_t idx) const {
    if (opt_.per_client_requests.empty()) return opt_.requests_per_client;
    return opt_.per_client_requests[idx % opt_.per_client_requests.size()];
  }

  [[nodiscard]] sim::ShardGroup& group() { return group_; }
  [[nodiscard]] apps::Cluster& cluster() { return cluster_; }
  [[nodiscard]] const std::vector<sim::OnlineStats>& per_client() const {
    return per_client_;
  }

  void run(apps::Cluster::StackKind kind = apps::Cluster::StackKind::kSubstrate) {
    auto server = [&]() -> sim::Task<void> {
      os::Process proc(cluster_.node(0).host);
      apps::WebServerOptions so;
      so.requests_per_connection = opt_.requests_per_connection;
      so.max_connections = 0;
      for (std::size_t i = 0; i + 1 < opt_.hosts; ++i) {
        so.max_connections += static_cast<std::size_t>(
            (requests_of_client(i) + opt_.requests_per_connection - 1) /
            opt_.requests_per_connection);
      }
      co_await apps::web_server(proc, cluster_.stack(0, kind), so);
    };
    auto client = [&](std::size_t idx) -> sim::Task<void> {
      // Stagger connects on the client's own engine so the accept queue
      // sees an orderly arrival pattern at any host count.
      co_await cluster_.node_engine(idx + 1).delay(10'000 + idx * 700);
      os::Process proc(cluster_.node(idx + 1).host);
      apps::WebClientOptions co;
      co.server_node = 0;
      co.response_bytes = opt_.response_bytes;
      co.requests_per_connection = opt_.requests_per_connection;
      co.total_requests = requests_of_client(idx);
      co_await apps::web_client(proc, cluster_.stack(idx + 1, kind), co,
                                per_client_[idx]);
    };
    // spawn_on tags each workload with its host's domain — the handle live
    // rebalancing migrates by.  A bare engine.spawn would pin it for good.
    cluster_.spawn_on(0, server());
    for (std::size_t i = 0; i + 1 < opt_.hosts; ++i) {
      cluster_.spawn_on(i + 1, client(i));
    }
    group_.run(opt_.threads);
  }

 private:
  // The group's default (and scalar-mode) lookahead must lower-bound every
  // link in the topology, so with heterogeneous cables it is the minimum
  // per-host link latency; the registered edge matrix carries the true
  // per-link values on top.
  [[nodiscard]] static sim::Duration default_lookahead(
      const sim::CostModel& model, const ScaleWebOptions& opt) {
    sim::WireCosts wire = model.wire;
    if (opt.per_host_propagation.empty()) return net::shard_lookahead(wire);
    sim::Duration w = sim::ShardGroup::kUnreachable;
    for (sim::Duration p : opt.per_host_propagation) {
      wire.propagation_ns = p;
      w = std::min(w, net::shard_lookahead(wire));
    }
    return w;
  }

  ScaleWebOptions opt_;
  sim::ShardGroup group_;
  apps::Cluster cluster_;
  std::vector<sim::OnlineStats> per_client_;
};

/// C10K-style concurrency workload: a few client hosts each run hundreds of
/// concurrent connection coroutines against ONE server host, so the server
/// multiplexes ~a thousand simultaneous connections.  This is the workload
/// the os::OpRing exists for — a blocking server parks one coroutine per
/// connection and every stack wake resumes all of them (the thundering
/// herd); the ring server parks a single pump.  The same options run either
/// server, so benches can report ring-vs-blocking on identical traffic.
struct ScaleC10kOptions {
  std::size_t client_hosts = 3;          // hosts 1..N each run many conns
  std::size_t connections_per_host = 334;  // 3 * 334 ~ 1000 concurrent
  std::size_t shards = 1;
  unsigned threads = 1;
  std::uint32_t response_bytes = 256;
  std::uint32_t requests_per_connection = 2;
  bool ring_server = true;               // false: blocking web_server
  std::size_t reap_batch = 64;
  // Accept window / listen depth.  A thousand near-simultaneous SYNs
  // against a small backlog turn into a retransmission storm of refused
  // and retried connects; like a tuned C10K listener (somaxconn-style),
  // the window is sized for the arrival burst.
  int backlog = 1024;
  std::uint64_t seed = 1;
};

class ScaleC10k {
 public:
  ScaleC10k(const sim::CostModel& model, const sockets::SubstrateConfig& cfg,
            const ScaleC10kOptions& opt)
      : opt_(opt),
        group_(opt.shards, net::shard_lookahead(model.wire), opt.seed),
        cluster_(group_, model, opt.client_hosts + 1, cfg),
        per_conn_(opt.client_hosts * opt.connections_per_host) {}

  [[nodiscard]] sim::ShardGroup& group() { return group_; }
  [[nodiscard]] apps::Cluster& cluster() { return cluster_; }

  /// Responses received across every connection (the "requests served"
  /// numerator of the reqps metric).
  [[nodiscard]] std::size_t requests_served() const {
    std::size_t n = 0;
    for (const auto& st : per_conn_) n += st.count();
    return n;
  }

  void run(apps::Cluster::StackKind kind =
               apps::Cluster::StackKind::kSubstrate) {
    const std::size_t total =
        opt_.client_hosts * opt_.connections_per_host;
    auto server = [&]() -> sim::Task<void> {
      os::Process proc(cluster_.node(0).host);
      apps::WebServerOptions so;
      so.requests_per_connection = opt_.requests_per_connection;
      so.max_connections = total;
      so.backlog = opt_.backlog;
      so.reap_batch = opt_.reap_batch;
      if (opt_.ring_server) {
        co_await apps::web_server_ring(proc, cluster_.stack(0, kind), so);
      } else {
        co_await apps::web_server(proc, cluster_.stack(0, kind), so);
      }
    };
    auto conn = [&](std::size_t host, std::size_t c) -> sim::Task<void> {
      // Near-simultaneous arrivals: 50 ns apart, so the full connection
      // population overlaps and the server really holds ~`total` live
      // connections at once (EMP retransmission absorbs backlog overflow).
      const std::size_t idx = (host - 1) * opt_.connections_per_host + c;
      co_await cluster_.node_engine(host).delay(10'000 + idx * 50);
      os::Process proc(cluster_.node(host).host);
      apps::WebClientOptions co;
      co.server_node = 0;
      co.response_bytes = opt_.response_bytes;
      co.requests_per_connection = opt_.requests_per_connection;
      co.total_requests = opt_.requests_per_connection;  // one connection
      // A thousand simultaneous SYNs can outlast EMP's retransmission
      // give-up against a finite backlog; like any C10K client, back off
      // and retry a refused connect (deterministic, idx-jittered delays).
      for (int attempt = 0;; ++attempt) {
        bool retry = false;
        try {
          co_await apps::web_client(proc, cluster_.stack(host, kind), co,
                                    per_conn_[idx]);
        } catch (const os::SocketError& e) {
          if (e.code() != os::SockErr::kRefused || attempt >= 6) throw;
          retry = true;  // co_await is illegal inside a handler
        }
        if (!retry) break;
        co_await cluster_.node_engine(host).delay(100'000 * (attempt + 1) +
                                                  idx * 131);
      }
    };
    cluster_.spawn_on(0, server());
    for (std::size_t h = 1; h <= opt_.client_hosts; ++h) {
      for (std::size_t c = 0; c < opt_.connections_per_host; ++c) {
        cluster_.spawn_on(h, conn(h, c));
      }
    }
    group_.run(opt_.threads);
  }

 private:
  ScaleC10kOptions opt_;
  sim::ShardGroup group_;
  apps::Cluster cluster_;
  std::vector<sim::OnlineStats> per_conn_;
};

}  // namespace ulsocks::bench
